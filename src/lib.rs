//! # hbbp — Hybrid Basic Block Profiling
//!
//! A complete, self-contained reproduction of **"Low-Overhead Dynamic
//! Instruction Mix Generation using Hybrid Basic Block Profiling"**
//! (Nowak, Yasin, Szostek, Zwaenepoel — ISPASS 2018), in pure Rust.
//!
//! HBBP produces dynamic instruction mixes from basic block execution
//! counts gathered by the CPU's performance monitoring unit: it combines
//! Event Based Sampling (accurate on long blocks) with Last Branch Records
//! (accurate on short blocks, modulo an entry\[0\] hardware bias) through a
//! learned per-block rule — *block length ≤ 18 → LBR, otherwise EBS* — at
//! under 2% runtime overhead versus 4–76× for software instrumentation.
//!
//! This umbrella crate re-exports the whole stack:
//!
//! | crate | role |
//! |---|---|
//! | [`isa`] | synthetic x86-like ISA + byte-exact codec (XED stand-in) |
//! | [`program`] | blocks, CFGs, layouts, text images, block maps |
//! | [`sim`] | CPU + PMU simulator (skid, shadowing, LBR bias quirk) |
//! | [`perf`] | perf.data-like records and the dual-event collector |
//! | [`instrument`] | SDE/PIN-like ground truth with slowdown model |
//! | [`mltree`] | CART classification trees (scikit stand-in) |
//! | [`workloads`] | SPEC-like suite, Test40, Fitter, kernel module, … |
//! | [`core`] | HBBP itself: estimators, hybrid rule, analyzer, training |
//! | [`obs`] | lock-free self-observability: metrics registry, snapshots, scrape endpoint |
//! | [`store`] | persistent mergeable profile store + `hbbpd` collection daemon |
//! | [`cli`] | the `hbbp` command-line driver (record, analyze, serve, query, store, report) |
//!
//! ## Quickstart
//!
//! ```
//! use hbbp::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A workload from the paper's evaluation (scaled down for this doc test).
//! let workload = hbbp::workloads::test40(Scale::Tiny);
//!
//! // Profile it end to end: clean run, period policy, dual-LBR
//! // collection, kernel patching, EBS/LBR/HBBP analysis.
//! let profiler = HbbpProfiler::new(Cpu::with_seed(42));
//! let result = profiler.profile(&workload)?;
//!
//! println!("collection overhead: {:.2}%", result.overhead_fraction() * 100.0);
//! for (mnemonic, count) in result.hbbp_mix().top(5) {
//!     println!("{mnemonic:>12}  {count:>12.0}");
//! }
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use hbbp_cli as cli;
pub use hbbp_core as core;
pub use hbbp_instrument as instrument;
pub use hbbp_isa as isa;
pub use hbbp_mltree as mltree;
pub use hbbp_obs as obs;
pub use hbbp_perf as perf;
pub use hbbp_program as program;
pub use hbbp_sim as sim;
pub use hbbp_store as store;
pub use hbbp_workloads as workloads;

/// The names most sessions need, in one import.
pub mod prelude {
    pub use hbbp_core::{
        Analyzer, Choice, Field, HbbpProfiler, HybridRule, LbrOptions, MixComparison,
        ProfileResult, SamplingPeriods,
    };
    pub use hbbp_instrument::{cross_check, CostModel, Instrumenter};
    pub use hbbp_isa::{Instruction, Mnemonic, Taxonomy};
    pub use hbbp_program::{Bbec, BlockMap, ImageView, MnemonicMix, Ring};
    pub use hbbp_sim::{Cpu, EventSpec, PmuConfig, SystemConfig};
    pub use hbbp_workloads::{Scale, Workload};
}

//! The Fitter compiler-regression investigation of paper §VIII.C.
//!
//! "While working with a beta version of the Intel compiler, we noticed
//! that AVX performance was significantly (20x) lower than expected. …
//! through the use of HBBP we concluded that the number of executed vector
//! instructions was not suspicious. At the same time, the instruction mix
//! showed a high number of call instructions, which in turn led us to
//! trace the problem to the lack of inlining."
//!
//! This example replays that diagnosis on the broken and fixed AVX builds.
//!
//! ```text
//! cargo run --release --example vector_regression
//! ```

use hbbp::prelude::*;
use hbbp::workloads::{fitter, FitterVariant};
use hbbp_isa::Extension;

fn profile(
    variant: FitterVariant,
) -> Result<(Workload, ProfileResult), Box<dyn std::error::Error>> {
    let w = fitter(variant, Scale::Small);
    let result = HbbpProfiler::new(Cpu::with_seed(7)).profile(&w)?;
    Ok((w, result))
}

fn ext_total(mix: &MnemonicMix, ext: Extension) -> f64 {
    mix.iter()
        .filter(|(m, _)| m.extension() == ext)
        .map(|(_, c)| c)
        .sum()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (_, broken) = profile(FitterVariant::AvxBroken)?;
    let (_, fixed) = profile(FitterVariant::AvxFix)?;
    let tracks = hbbp::workloads::fitter::tracks(Scale::Small) as f64;

    println!("Fitter AVX build: slow (regression) vs fixed\n");
    println!("{:<26} {:>14} {:>14}", "", "slow build", "fixed build");
    let row = |label: &str, a: f64, b: f64| {
        println!("{label:<26} {a:>14.0} {b:>14.0}");
    };
    let bm = broken.hbbp_mix();
    let fm = fixed.hbbp_mix();

    // Step 1 of the paper's diagnosis: vector instruction counts are NOT
    // suspicious — AVX math is still being emitted.
    row(
        "AVX instructions",
        ext_total(&bm, Extension::Avx),
        ext_total(&fm, Extension::Avx),
    );

    // Step 2: but CALLs exploded, and x87 spill traffic appeared.
    row(
        "CALL_NEAR",
        bm.get(Mnemonic::CallNear),
        fm.get(Mnemonic::CallNear),
    );
    row(
        "x87 instructions",
        ext_total(&bm, Extension::X87),
        ext_total(&fm, Extension::X87),
    );

    println!(
        "{:<26} {:>13.2}us {:>13.2}us",
        "time per track",
        broken.clean_seconds() / tracks * 1e6,
        fixed.clean_seconds() / tracks * 1e6
    );

    let call_ratio = bm.get(Mnemonic::CallNear) / fm.get(Mnemonic::CallNear).max(1.0);
    println!(
        "\ndiagnosis: AVX emission is fine, but {call_ratio:.0}x more CALLs and the x87\n\
         spill traffic around them reveal the lost inlining — exactly the\n\
         compiler regression of paper §VIII.C (fixed by restoring inlining)."
    );
    Ok(())
}

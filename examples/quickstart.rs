//! Quickstart: profile a workload with HBBP and print its instruction mix.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use hbbp::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Test40 — the Geant4-like particle-physics workload of paper §VIII.B.
    let workload = hbbp::workloads::test40(Scale::Small);

    // End-to-end HBBP: clean baseline run, Table 4 period policy, one
    // dual-LBR collection run, kernel text patching, and the per-block
    // EBS/LBR hybrid.
    let profiler = HbbpProfiler::new(Cpu::with_seed(42));
    let result = profiler.profile(&workload)?;

    println!("workload: {}", workload.name());
    println!(
        "clean runtime: {:.2} ms | with HBBP collection: {:.2} ms ({:.2}% overhead)",
        result.clean_seconds() * 1e3,
        result.collection_seconds() * 1e3,
        result.overhead_fraction() * 100.0
    );
    println!(
        "sampling: {} ({} EBS samples, {} LBR stacks)",
        result.periods, result.analysis.ebs.samples_used, result.analysis.lbr.stacks
    );
    let (ebs_blocks, lbr_blocks) = result.analysis.hbbp.choice_counts();
    println!("rule choices: {ebs_blocks} blocks from EBS, {lbr_blocks} from LBR\n");

    // The instruction mix, like the paper's "top mnemonics" view.
    let mix = result.hbbp_mix();
    println!("{:<14} {:>14} {:>8}", "mnemonic", "executions", "share");
    for (mnemonic, count) in mix.top(15) {
        println!(
            "{:<14} {:>14.0} {:>7.2}%",
            mnemonic.name(),
            count,
            count / mix.total() * 100.0
        );
    }

    // Compare against software-instrumentation ground truth (SDE-like).
    let truth = Instrumenter::new()
        .with_cost(workload.sde_cost().clone())
        .run(workload.program(), workload.layout(), workload.oracle());
    let cmp = MixComparison::compare(&truth.mix, &result.hbbp_mix_for_ring(Ring::User));
    println!(
        "\nSDE would have taken {:.2} ms ({:.1}x slowdown); HBBP's avg weighted error: {:.2}%",
        truth.instrumented_seconds(2.4) * 1e3,
        truth.slowdown(),
        cmp.avg_weighted_error() * 100.0
    );
    Ok(())
}

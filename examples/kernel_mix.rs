//! Kernel-mode instruction mixes — paper §VIII.D.
//!
//! Software instrumentation cannot see Ring 0; HBBP can. This example
//! profiles the synthetic prime-search benchmark whose identical code runs
//! both as a user binary (`hello_u`) and inside a kernel module
//! (`hello_k`, with self-modifying tracepoint sites), and shows:
//!
//! 1. the user/kernel mnemonic agreement of Table 7, and
//! 2. why the §III.C kernel text patch matters (stale on-disk text derails
//!    LBR stream walking).
//!
//! ```text
//! cargo run --release --example kernel_mix
//! ```

use hbbp::prelude::*;
use hbbp::workloads::kernel_benchmark;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = kernel_benchmark(Scale::Small);

    // With the paper's remedy: kernel text patched from the live image.
    let result = HbbpProfiler::new(Cpu::with_seed(3)).profile(&workload)?;
    let user = result.analyzer.mix_where(&result.analysis.hbbp.bbec, |b| {
        b.symbol.as_deref() == Some("hello_u")
    });
    let kernel = result.analyzer.mix_where(&result.analysis.hbbp.bbec, |b| {
        b.symbol.as_deref() == Some("hello_k")
    });

    println!("prime-search benchmark: same code in user space and in hello.ko\n");
    println!(
        "{:<10} {:>14} {:>14}",
        "mnemonic", "hello_u(user)", "hello_k(ring0)"
    );
    for (m, u) in user.top(12) {
        println!("{:<10} {:>14.0} {:>14.0}", m.name(), u, kernel.get(m));
    }
    println!(
        "{:<10} {:>14.0} {:>14.0}",
        "total",
        user.total(),
        kernel.total()
    );
    let agreement = (user.total() - kernel.total()).abs() / user.total();
    println!("\nuser/kernel total deviation: {:.2}%", agreement * 100.0);
    println!(
        "derailed LBR streams (patched kernel text): {:.2}%",
        result.analysis.lbr.derail_fraction() * 100.0
    );

    // Ablation: skip the patch — the analyzer decodes stale tracepoint
    // JMPs, streams derail, kernel counts suffer.
    let stale = HbbpProfiler::new(Cpu::with_seed(3))
        .without_kernel_patching()
        .profile(&workload)?;
    let stale_kernel = stale
        .analyzer
        .mix_where(&stale.analysis.hbbp.bbec, |b| b.ring == Ring::Kernel);
    println!(
        "\nwithout the kernel text patch (paper §III.C):\n  derailed streams: {:.2}%  kernel instruction total: {:.0} (patched: {:.0})",
        stale.analysis.lbr.derail_fraction() * 100.0,
        stale_kernel.total(),
        result
            .analyzer
            .mix_where(&result.analysis.hbbp.bbec, |b| b.ring == Ring::Kernel)
            .total()
    );
    Ok(())
}

//! The HBBP criteria search — paper §IV.B / Figure 1.
//!
//! Trains a classification tree on ≈1,100 basic blocks from the non-SPEC
//! training suite (labels: whichever of EBS/LBR lands closer to
//! instrumentation ground truth, weighted by execution count), prints the
//! scikit-style tree, and deploys both the tree and its distilled
//! length-cutoff rule on a workload the training never saw.
//!
//! ```text
//! cargo run --release --example train_rule
//! ```

use hbbp::core::{train_rule, TrainingConfig};
use hbbp::prelude::*;
use hbbp::workloads::{spec, training_suite};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("training on the non-SPEC suite (paper §IV.B)…\n");
    let workloads = training_suite(Scale::Tiny);
    let outcome = train_rule(&workloads, &TrainingConfig::default())?;
    println!("{outcome}");

    // Deploy on an unseen workload and compare rules.
    let target = spec::workload_for("hmmer", Scale::Small);
    let truth = Instrumenter::new().run(target.program(), target.layout(), target.oracle());
    for (label, rule) in [
        ("paper rule (len<=18)", HybridRule::paper_default()),
        ("trained tree", outcome.rule()),
        ("always EBS", HybridRule::AlwaysEbs),
        ("always LBR", HybridRule::AlwaysLbr),
    ] {
        let result = HbbpProfiler::new(Cpu::with_seed(99))
            .with_rule(rule)
            .profile(&target)?;
        let cmp = MixComparison::compare(&truth.mix, &result.hbbp_mix_for_ring(Ring::User));
        println!(
            "hmmer with {label:<22} avg weighted error: {:.2}%",
            cmp.avg_weighted_error() * 100.0
        );
    }
    Ok(())
}

//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build environment has no network access to a cargo registry, so this
//! vendored crate implements the subset the workspace's property tests use:
//! [`strategy::Strategy`] with `prop_map` and `boxed`, range / tuple /
//! [`strategy::Just`] / [`arbitrary::any`] strategies, [`collection::vec`],
//! the [`prop_oneof!`] union, and the [`proptest!`] test macro with
//! `ProptestConfig::with_cases`.
//!
//! Differences from the real crate, deliberately accepted:
//!
//! * **No shrinking.** A failing case reports the panic from the assert
//!   macros directly; inputs are deterministic per test name, so failures
//!   reproduce exactly.
//! * **Deterministic seeding.** Each test's RNG is seeded from a hash of
//!   its module path and name, so runs are stable across machines and CI.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Test-runner configuration and RNG plumbing.
pub mod test_runner {
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// Configuration accepted by the [`proptest!`](crate::proptest) macro's
    /// `#![proptest_config(..)]` attribute.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` generated inputs per property.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// The RNG handed to strategies.
    pub type TestRng = SmallRng;

    /// Build the deterministic RNG for a named test (FNV-1a over the name).
    #[must_use]
    pub fn rng_for(test_name: &str) -> TestRng {
        let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
        for byte in test_name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        SmallRng::seed_from_u64(hash)
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draw one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }

        /// Erase the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// Always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The [`Strategy::prop_map`] combinator.
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) source: S,
        pub(crate) f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.generate(rng))
        }
    }

    /// Uniform choice among boxed strategies (the [`prop_oneof!`](crate::prop_oneof) macro).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Build a union; panics if `options` is empty.
        #[must_use]
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.random_range(0..self.options.len());
            self.options[idx].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )*};
    }

    int_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize, f64);

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }
}

/// `any::<T>()` — full-domain strategies for primitive types.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draw one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// Strategy returned by [`any`].
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Any<T>(PhantomData<T>);

    /// The canonical strategy for `T`'s whole domain.
    #[must_use]
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.random_range(0u8..2) == 1
        }
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.random_range(<$t>::MIN..=<$t>::MAX)
                }
            }
        )*};
    }

    int_arbitrary!(i8, i16, i32, i64, u8, u16, u32, u64, usize);

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Finite, sign-symmetric, wide dynamic range; NaN/inf excluded
            // (the estimators under test assume finite inputs).
            let mag = rng.random_range(-300.0..300.0);
            let sign = if rng.random_range(0u8..2) == 1 {
                -1.0
            } else {
                1.0
            };
            sign * 10f64.powf(mag / 10.0)
        }
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// An element-count specification for [`vec()`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generate vectors whose elements come from `element` and whose length
    /// is drawn uniformly from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.random_range(self.size.lo..=self.size.hi_inclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The common imports property tests start from.
pub mod prelude {
    pub use crate::arbitrary::{any, Any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Assert inside a property (maps to [`assert!`]; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

/// Assert equality inside a property (maps to [`assert_eq!`]).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}

/// Assert inequality inside a property (maps to [`assert_ne!`]).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tokens:tt)*) => { assert_ne!($($tokens)*) };
}

/// Uniform choice among strategies yielding the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Define property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` deterministic inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl!(config = $config; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        );
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr;) => {};
    (
        config = $config:expr;
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strategy:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $config;
            let mut __rng = $crate::test_runner::rng_for(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for __case in 0..__config.cases {
                let _ = __case;
                $(let $pat = $crate::strategy::Strategy::generate(&($strategy), &mut __rng);)*
                $body
            }
        }
        $crate::__proptest_impl!(config = $config; $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::rng_for;

    #[test]
    fn ranges_and_maps() {
        let mut rng = rng_for("ranges_and_maps");
        let s = (1u8..5).prop_map(|v| v * 2);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!(v % 2 == 0 && (2..10).contains(&v));
        }
    }

    #[test]
    fn oneof_and_vec() {
        let mut rng = rng_for("oneof_and_vec");
        let s = crate::collection::vec(prop_oneof![Just(1u8), Just(9u8)], 2..6);
        for _ in 0..50 {
            let v = s.generate(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x == 1 || x == 9));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_expands_and_runs(a in 0u32..10, b in any::<bool>()) {
            prop_assert!(a < 10);
            prop_assert_eq!(b as u8 <= 1, true);
        }
    }
}

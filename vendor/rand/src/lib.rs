//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment has no network access to a cargo registry, so this
//! vendored crate provides the exact API subset the workspace uses — the
//! rand 0.9 method names (`random`, `random_bool`, `random_range`,
//! `seq::IndexedRandom::choose`) and a deterministic [`rngs::SmallRng`]
//! backed by xoshiro256++ seeded through SplitMix64. It is not a
//! cryptographic RNG and makes no distribution-quality claims beyond what
//! the simulator and workload generators need: uniform, seed-stable
//! streams.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A random number generator: a `u64` source plus the derived sampling
/// methods the workspace calls.
pub trait Rng {
    /// Produce the next raw 64-bit value from the generator.
    fn next_u64(&mut self) -> u64;

    /// Sample a value of type `T` from its natural uniform distribution.
    fn random<T: Random>(&mut self) -> T
    where
        Self: Sized,
    {
        T::random(self)
    }

    /// Return `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        let p = p.clamp(0.0, 1.0);
        self.random::<f64>() < p
    }

    /// Sample uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

/// Types that can be sampled uniformly from a raw `u64` stream.
pub trait Random {
    /// Draw one value from `rng`.
    fn random<R: Rng>(rng: &mut R) -> Self;
}

impl Random for f64 {
    fn random<R: Rng>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for f32 {
    fn random<R: Rng>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Random for u64 {
    fn random<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Random for u32 {
    fn random<R: Rng>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Random for bool {
    fn random<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// A range from which [`Rng::random_range`] can sample a `T`.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample<R: Rng>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + offset) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128 % span) as i128;
                (lo as i128 + offset) as $t
            }
        }
    )*};
}

int_sample_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample<R: Rng>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        self.start + rng.random::<f64>() * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample<R: Rng>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample from empty range");
        lo + rng.random::<f64>() * (hi - lo)
    }
}

/// Construction of generators from seeds.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Concrete generator implementations.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// A small, fast, deterministic generator (xoshiro256++).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            SmallRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related sampling helpers.
pub mod seq {
    use super::Rng;

    /// Uniform selection from indexable collections (slices).
    pub trait IndexedRandom {
        /// The element type.
        type Item;

        /// Choose one element uniformly at random, or `None` if empty.
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> IndexedRandom for [T] {
        type Item = T;

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let idx = (rng.next_u64() % self.len() as u64) as usize;
                self.get(idx)
            }
        }
    }
}

/// Re-export of the prelude-ish names some code imports directly.
pub mod prelude {
    pub use super::rngs::SmallRng;
    pub use super::seq::IndexedRandom;
    pub use super::{Rng, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::IndexedRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn determinism() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.random_range(-512..512);
            assert!((-512..512).contains(&v));
            let u = rng.random_range(3u64..=9);
            assert!((3..=9).contains(&u));
            let f = rng.random_range(0.15..0.85);
            assert!((0.15..0.85).contains(&f));
            let x = rng.random::<f64>();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn random_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(9);
        assert!(!(0..100).any(|_| rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
    }

    #[test]
    fn choose_uniformish() {
        let mut rng = SmallRng::seed_from_u64(11);
        let options = [1, 2, 3];
        assert!(options.choose(&mut rng).is_some());
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}

//! Offline stand-in for the [`bytes`](https://crates.io/crates/bytes) crate.
//!
//! The build environment has no network access to a cargo registry, so this
//! vendored crate provides the subset the perf.data codec uses: [`BytesMut`]
//! as a growable little-endian writer, [`Bytes`] as its frozen read-only
//! form, and [`Buf`] implemented for `&[u8]` cursors. Unlike the real crate
//! there is no reference-counted zero-copy sharing — `freeze` simply moves
//! the buffer — which is behaviorally equivalent for single-owner use.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Deref;

/// An immutable byte buffer (frozen [`BytesMut`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
}

impl Bytes {
    /// Create an empty buffer.
    #[must_use]
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Copy the contents into a fresh `Vec<u8>`.
    #[must_use]
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.clone()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data }
    }
}

impl From<Bytes> for Vec<u8> {
    fn from(bytes: Bytes) -> Self {
        bytes.data
    }
}

/// A growable byte buffer with little-endian put methods.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Create an empty buffer.
    #[must_use]
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Create an empty buffer with room for `capacity` bytes.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Number of bytes written so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Convert into an immutable [`Bytes`].
    #[must_use]
    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data }
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

/// Write access to a byte buffer (little-endian subset).
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a `u16` in little-endian order.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a `u32` in little-endian order.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a `u64` in little-endian order.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Read access to a byte cursor (little-endian subset).
///
/// # Panics
///
/// Like the real crate, the `get_*` and `advance` methods panic when the
/// cursor holds fewer bytes than requested; callers are expected to check
/// [`Buf::remaining`] first.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Whether any bytes are left.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Skip `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Copy `dst.len()` bytes out and advance past them.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Read a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Read a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Read a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of buffer");
        *self = &self[cnt..];
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.len(), "read past end of buffer");
        let (head, rest) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = rest;
    }
}

#[cfg(test)]
mod tests {
    use super::{Buf, BufMut, BytesMut};

    #[test]
    fn roundtrip_le() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_u8(7);
        buf.put_u16_le(0xBEEF);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u64_le(0x0123_4567_89AB_CDEF);
        buf.put_slice(b"xyz");
        let frozen = buf.freeze();
        let mut cursor: &[u8] = &frozen;
        assert_eq!(cursor.get_u8(), 7);
        assert_eq!(cursor.get_u16_le(), 0xBEEF);
        assert_eq!(cursor.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(cursor.get_u64_le(), 0x0123_4567_89AB_CDEF);
        assert_eq!(cursor.remaining(), 3);
        cursor.advance(1);
        assert_eq!(cursor, b"yz");
    }

    #[test]
    #[should_panic(expected = "read past end")]
    fn get_past_end_panics() {
        let mut cursor: &[u8] = &[1];
        let _ = cursor.get_u32_le();
    }
}

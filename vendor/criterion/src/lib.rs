//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! crate.
//!
//! The build environment has no network access to a cargo registry, so this
//! vendored crate implements the API subset `hbbp-bench` uses:
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`] with
//! [`BenchmarkGroup::throughput`] / [`BenchmarkGroup::sample_size`], the
//! [`criterion_group!`] / [`criterion_main!`] macros, and [`Throughput`].
//!
//! Measurement is intentionally simple: each benchmark is calibrated to a
//! stable batch size, then timed over a fixed wall-clock budget and
//! reported as a mean ns/iter, with elements/bytes throughput derived when
//! configured. `sample_size` is accepted for API parity only. There are no
//! HTML reports or statistical regressions — just stable
//! `name ... ns/iter` lines on stdout, plus a [`Criterion::measurements`]
//! accessor (a deliberate extension over the real crate) so bench targets
//! with a custom `main` can emit BENCH_*.json trajectory files directly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Units for reporting work performed per iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Iterations process this many logical elements.
    Elements(u64),
    /// Iterations process this many bytes.
    Bytes(u64),
}

/// Timing loop handle passed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
    min_iters: u64,
}

impl Default for Bencher {
    fn default() -> Bencher {
        Bencher {
            iters: 0,
            elapsed: Duration::ZERO,
            min_iters: 1,
        }
    }
}

impl Bencher {
    /// Time `routine`, running it enough times for a stable reading.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup + calibration: find an iteration count that runs ≥ ~5 ms.
        let mut batch: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            if start.elapsed() >= Duration::from_millis(5) || batch >= 1 << 20 {
                break;
            }
            batch *= 4;
        }
        // Measurement: a fixed wall-clock budget at the calibrated size,
        // but never fewer than `min_iters` iterations — a routine slower
        // than the whole budget would otherwise be judged on a single run
        // (see `BenchmarkGroup::sample_size`). The loop body always runs at
        // least once (elapsed ≈ 0 < budget on entry), so `iters` ends
        // positive.
        let budget = Duration::from_millis(25);
        let start = Instant::now();
        let mut iters = 0u64;
        while start.elapsed() < budget || iters < self.min_iters {
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            iters += batch;
        }
        self.elapsed = start.elapsed();
        self.iters = iters;
    }

    fn ns_per_iter(&self) -> f64 {
        self.elapsed.as_nanos() as f64 / self.iters as f64
    }
}

/// One recorded benchmark result (an extension over the real criterion
/// API: custom `main`s use it to emit machine-readable BENCH_*.json
/// trajectory files without re-measuring).
#[derive(Debug, Clone, PartialEq)]
pub struct Measurement {
    /// Full benchmark name (`group/name` when grouped).
    pub name: String,
    /// Mean nanoseconds per iteration.
    pub ns_per_iter: f64,
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    measurements: Vec<Measurement>,
}

impl Criterion {
    /// Run one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher::default();
        f(&mut bencher);
        self.record(None, name, &bencher, None);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            criterion: self,
            throughput: None,
            sample_size: 10,
        }
    }

    /// All results recorded so far, in execution order.
    pub fn measurements(&self) -> &[Measurement] {
        &self.measurements
    }

    fn record(
        &mut self,
        group: Option<&str>,
        name: &str,
        bencher: &Bencher,
        throughput: Option<Throughput>,
    ) {
        let full = match group {
            Some(g) => format!("{g}/{name}"),
            None => name.to_string(),
        };
        let ns = bencher.ns_per_iter();
        match throughput {
            Some(Throughput::Elements(n)) => {
                let rate = n as f64 / (ns * 1e-9);
                println!("bench: {full:<48} {ns:>14.1} ns/iter ({rate:>12.0} elem/s)");
            }
            Some(Throughput::Bytes(n)) => {
                let rate = n as f64 / (ns * 1e-9) / (1024.0 * 1024.0);
                println!("bench: {full:<48} {ns:>14.1} ns/iter ({rate:>10.1} MiB/s)");
            }
            None => println!("bench: {full:<48} {ns:>14.1} ns/iter"),
        }
        self.measurements.push(Measurement {
            name: full,
            ns_per_iter: ns,
        });
    }
}

/// A group of related benchmarks sharing throughput/sample settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Report results in terms of this much work per iteration.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Lower bound on measured iterations (the real criterion's sample
    /// count). Routines slower than the wall-clock budget still measure at
    /// least this many runs, so one noisy run cannot decide the result.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Run one named benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher {
            min_iters: self.sample_size as u64,
            ..Bencher::default()
        };
        f(&mut bencher);
        let throughput = self.throughput;
        let group = self.name.clone();
        self.criterion
            .record(Some(&group), name, &bencher, throughput);
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Re-export matching the real crate's `criterion::black_box`.
pub use std::hint::black_box;

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Produce a `main` that runs the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::{Bencher, Criterion, Throughput};

    #[test]
    fn bencher_times_something() {
        let mut b = Bencher::default();
        b.iter(|| (0..100u64).sum::<u64>());
        assert!(b.ns_per_iter() > 0.0);
    }

    #[test]
    fn group_api_flows() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(100));
        group.sample_size(5);
        group.bench_function("noop", |b| b.iter(|| 1 + 1));
        group.finish();
        c.bench_function("top_level", |b| b.iter(|| 2 + 2));
        let names: Vec<&str> = c.measurements().iter().map(|m| m.name.as_str()).collect();
        assert_eq!(names, vec!["g/noop", "top_level"]);
        assert!(c.measurements().iter().all(|m| m.ns_per_iter > 0.0));
    }
}

//! Text images and static basic-block discovery.
//!
//! A [`TextImage`] is the raw machine code of one module, either as found
//! **on disk** or as captured from the **live** machine. The two differ for
//! kernel modules with tracepoints: on disk a site is an unconditional
//! `JMP` into the module's probe stub; live (tracing disabled) the site is
//! a same-length multi-byte NOP (paper §III.C).
//!
//! [`BlockMap::discover`] rebuilds the static basic-block structure from
//! images + symbols, exactly like the paper's analyzer maps "dynamic
//! (sample) information … onto static basic block maps" (§V.B).

use crate::{Layout, ModuleId, Program, Ring, TracepointSite};
use hbbp_isa::{codec, BranchKind, Instruction, Mnemonic, Operand};
use std::fmt;

/// Which view of a module's text to encode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ImageView {
    /// The on-disk binary: tracepoint sites are `JMP stub`.
    Disk,
    /// The live text: tracepoint sites are NOPs (tracing disabled).
    Live,
}

/// The machine code of one module at a load address.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TextImage {
    module: ModuleId,
    name: String,
    ring: Ring,
    base: u64,
    bytes: Vec<u8>,
}

impl TextImage {
    /// Encode a module's text from a laid-out program.
    pub fn encode(
        program: &Program,
        layout: &Layout,
        module: ModuleId,
        view: ImageView,
    ) -> TextImage {
        let m = program.module(module);
        let (base, end) = layout.module_range(module);
        let mut bytes = Vec::with_capacity((end - base) as usize);
        let tracepoints: &[TracepointSite] = m.tracepoints();
        for &fid in m.functions() {
            for &bid in program.function(fid).blocks() {
                let block = program.block(bid);
                for (idx, instr) in block.instrs().iter().enumerate() {
                    let is_site = tracepoints
                        .iter()
                        .any(|t| t.block == bid && t.instr_index == idx);
                    if is_site && view == ImageView::Disk {
                        // Disk form: JMP to the probe stub, same length as
                        // the live NOP (both are header + one imm32).
                        let here = layout.instr_addr(bid, idx);
                        let next = here + instr.encoded_len() as u64;
                        let stub = layout.stub_addr(module).expect("module has stub");
                        let disp = (stub as i64 - next as i64) as i32;
                        let jmp =
                            Instruction::with_operands(Mnemonic::Jmp, vec![Operand::Imm(disp)]);
                        debug_assert_eq!(jmp.encoded_len(), instr.encoded_len());
                        codec::encode_into(&jmp, &mut bytes);
                    } else {
                        codec::encode_into(instr, &mut bytes);
                    }
                }
            }
        }
        if layout.stub_addr(module).is_some() {
            let stub_nop = Instruction::with_operands(Mnemonic::NopMulti, vec![Operand::Imm(0)]);
            for _ in 0..crate::layout::STUB_NOPS {
                codec::encode_into(&stub_nop, &mut bytes);
            }
        }
        debug_assert_eq!(bytes.len() as u64, end - base, "image size mismatch");
        TextImage {
            module,
            name: m.name().to_owned(),
            ring: m.ring(),
            base,
            bytes,
        }
    }

    /// Module id.
    pub fn module(&self) -> ModuleId {
        self.module
    }

    /// Module name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Ring level of the module.
    pub fn ring(&self) -> Ring {
        self.ring
    }

    /// Load (base) address.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Raw text bytes.
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// End address (exclusive).
    pub fn end(&self) -> u64 {
        self.base + self.bytes.len() as u64
    }

    /// Overwrite this image's bytes with another image of the same module
    /// at the same address — the paper's remedy for self-modified kernel
    /// text: "we patch the static kernel binary on disk with the .text
    /// extracted from the live kernel image" (§III.C).
    ///
    /// Returns the number of bytes that changed.
    ///
    /// # Errors
    ///
    /// Fails if the images cover different modules or address ranges.
    pub fn patch_from(&mut self, live: &TextImage) -> Result<usize, PatchError> {
        if self.module != live.module
            || self.base != live.base
            || self.bytes.len() != live.bytes.len()
        {
            return Err(PatchError {
                expected: (self.module, self.base, self.bytes.len()),
                found: (live.module, live.base, live.bytes.len()),
            });
        }
        let mut changed = 0;
        for (dst, src) in self.bytes.iter_mut().zip(&live.bytes) {
            if dst != src {
                changed += 1;
                *dst = *src;
            }
        }
        Ok(changed)
    }
}

/// Error patching one image from another (module/range mismatch).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatchError {
    expected: (ModuleId, u64, usize),
    found: (ModuleId, u64, usize),
}

impl fmt::Display for PatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "image mismatch: expected module {} @{:#x} ({} bytes), found module {} @{:#x} ({} bytes)",
            self.expected.0, self.expected.1, self.expected.2,
            self.found.0, self.found.1, self.found.2
        )
    }
}

impl std::error::Error for PatchError {}

/// A statically discovered basic block.
#[derive(Debug, Clone)]
pub struct StaticBlock {
    /// Start address.
    pub start: u64,
    /// Byte length.
    pub byte_len: u32,
    /// Decoded instructions.
    pub instrs: Vec<Instruction>,
    /// Per-instruction byte offsets relative to `start`.
    pub offsets: Vec<u32>,
    /// Owning module.
    pub module: ModuleId,
    /// Ring level.
    pub ring: Ring,
    /// Branch kind of the final instruction, if it is a branch.
    pub term_kind: Option<BranchKind>,
    /// Decoded direct-branch target address, if the final instruction is a
    /// direct jump/branch/call.
    pub term_target: Option<u64>,
    /// Enclosing symbol (function) name, if any.
    pub symbol: Option<String>,
}

impl StaticBlock {
    /// End address (exclusive).
    pub fn end(&self) -> u64 {
        self.start + self.byte_len as u64
    }

    /// Number of instructions — the HBBP block-length feature.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Whether the block has no instructions (never true after discovery).
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// Address of the final (terminator) instruction.
    pub fn terminator_addr(&self) -> u64 {
        self.start + *self.offsets.last().expect("non-empty") as u64
    }

    /// Whether any instruction in the block is long-latency (an HBBP
    /// training feature).
    pub fn has_long_latency(&self) -> bool {
        self.instrs.iter().any(Instruction::is_long_latency)
    }
}

/// Result of walking one LBR stream across the block map.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamWalk {
    /// Indices (into [`BlockMap::blocks`]) of the blocks covered.
    pub blocks: Vec<usize>,
    /// The walk hit an inconsistency (e.g. a mid-stream unconditional jump
    /// whose target is not the next address — the stale-kernel-text
    /// signature) and stopped early.
    pub derailed: bool,
}

/// The static basic-block map: every discovered block of every module,
/// sorted by address, with fast address lookup.
///
/// A discovered map also carries a page-granular lookup index (see
/// `PageIndex`) so [`BlockMap::enclosing`] resolves an instruction
/// pointer with a handful of comparisons instead of a binary search over
/// every block, and hands out [`BlockCursor`]s exploiting the temporal
/// locality of profiling samples.
#[derive(Debug, Clone)]
pub struct BlockMap {
    blocks: Vec<StaticBlock>,
    pages: PageIndex,
}

/// Log2 of the page granularity of [`PageIndex`] (256-byte pages — small
/// enough that a page holds only a few blocks, so the residual search
/// after the page lookup touches at most a cache line or two).
const PAGE_SHIFT: u32 = 8;

/// A hole of at least this many pages between consecutive blocks starts a
/// new [`PageSegment`] instead of extending the current one, keeping the
/// index compact across the user/kernel address-space split.
const SEGMENT_GAP_PAGES: u64 = 64;

/// One contiguous run of indexed pages.
#[derive(Debug, Clone)]
struct PageSegment {
    /// First page (address >> [`PAGE_SHIFT`]) covered by this segment.
    first_page: u64,
    /// `first_block[slot]` is the index of the first block whose `end()`
    /// lies beyond the base address of page `first_page + slot` — the
    /// lowest block that could contain an address in that page.
    first_block: Vec<u32>,
    /// One past the index of the last block starting inside this segment.
    end_block: u32,
}

/// Page-granular accelerator for IP → block lookups.
///
/// The sorted block vector alone answers `enclosing` in `O(log n)`; the
/// page index narrows the candidate range to the handful of blocks
/// overlapping one 256-byte page first, making lookups effectively `O(log
/// #segments)` — and segments are one-per-module in practice. Blocks never
/// overlap (they partition decoded text), which is what makes the
/// per-page `[first_block[p], first_block[p+1]]` candidate window exact.
#[derive(Debug, Clone, Default)]
struct PageIndex {
    segments: Vec<PageSegment>,
}

impl PageIndex {
    fn build(blocks: &[StaticBlock]) -> PageIndex {
        let mut segments: Vec<PageSegment> = Vec::new();
        for (i, block) in blocks.iter().enumerate() {
            let start_page = block.start >> PAGE_SHIFT;
            let end_page = (block.end() - 1) >> PAGE_SHIFT;
            let open_new = match segments.last() {
                Some(seg) => {
                    let next_uncovered = seg.first_page + seg.first_block.len() as u64;
                    start_page >= next_uncovered.saturating_add(SEGMENT_GAP_PAGES)
                }
                None => true,
            };
            if open_new {
                segments.push(PageSegment {
                    first_page: start_page,
                    first_block: Vec::new(),
                    end_block: i as u32,
                });
            }
            let seg = segments.last_mut().expect("segment just ensured");
            // Every not-yet-covered page up to the block's last page sees
            // this block as the first one ending beyond its base (earlier
            // blocks all end at or before the previous covered page).
            while seg.first_page + (seg.first_block.len() as u64) <= end_page {
                seg.first_block.push(i as u32);
            }
            seg.end_block = (i + 1) as u32;
        }
        PageIndex { segments }
    }

    /// Candidate block range `[lo, hi)` for `addr`, or `None` when no
    /// block can contain it.
    fn candidates(&self, addr: u64) -> Option<(usize, usize)> {
        let page = addr >> PAGE_SHIFT;
        let si = self.segments.partition_point(|s| s.first_page <= page);
        let seg = &self.segments[si.checked_sub(1)?];
        let slot = (page - seg.first_page) as usize;
        if slot >= seg.first_block.len() {
            return None;
        }
        let lo = seg.first_block[slot] as usize;
        // Blocks past `first_block[slot + 1]` start beyond the next page
        // base (> addr); blocks past `end_block` start beyond the segment.
        let hi = match seg.first_block.get(slot + 1) {
            Some(&next) => (next as usize + 1).min(seg.end_block as usize),
            None => seg.end_block as usize,
        };
        Some((lo, hi))
    }
}

/// A stateful IP → block lookup handle over one [`BlockMap`].
///
/// Profiling samples are highly local: consecutive IPs usually land in the
/// same block or the next one. The cursor checks its last hit (and the
/// following block) before falling back to the map's indexed lookup, so
/// hot loops resolve in a couple of comparisons. Lookups through a cursor
/// return exactly what [`BlockMap::enclosing`] returns.
#[derive(Debug, Clone)]
pub struct BlockCursor<'a> {
    map: &'a BlockMap,
    last: usize,
}

impl<'a> BlockCursor<'a> {
    /// The map this cursor reads.
    pub fn map(&self) -> &'a BlockMap {
        self.map
    }

    /// Index of the block containing `addr` (same result as
    /// [`BlockMap::enclosing`], usually much cheaper).
    pub fn enclosing(&mut self, addr: u64) -> Option<usize> {
        let blocks = self.map.blocks();
        if let Some(block) = blocks.get(self.last) {
            if addr >= block.start && addr < block.end() {
                return Some(self.last);
            }
            if let Some(next) = blocks.get(self.last + 1) {
                if addr >= next.start && addr < next.end() {
                    self.last += 1;
                    return Some(self.last);
                }
            }
        }
        let idx = self.map.enclosing(addr)?;
        self.last = idx;
        Some(idx)
    }

    /// Walk an LBR stream like [`BlockMap::walk_stream`], but resolve the
    /// stream target through the cursor's locality cache and append the
    /// covered block indices to `covered` (cleared first) instead of
    /// allocating. Returns whether the walk derailed.
    pub fn walk_stream_into(&mut self, target: u64, source: u64, covered: &mut Vec<usize>) -> bool {
        covered.clear();
        let Some(idx) = self.enclosing(target) else {
            return true;
        };
        self.map.walk_from(idx, target, source, covered)
    }
}

/// Error from static block discovery (decode failure inside an image).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiscoverError {
    /// Module whose image failed to decode.
    pub module: ModuleId,
    /// Underlying codec error.
    pub source: codec::DecodeError,
}

impl fmt::Display for DiscoverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "module {}: {}", self.module, self.source)
    }
}

impl std::error::Error for DiscoverError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

impl BlockMap {
    /// Discover basic blocks in a set of images.
    ///
    /// Leaders are: symbol entry points, instructions following a branch,
    /// and direct branch targets. Unreachable bytes (probe stubs) become
    /// blocks too, which is harmless — they receive no samples.
    ///
    /// # Errors
    ///
    /// Fails if an image's bytes do not decode.
    pub fn discover(
        images: &[TextImage],
        symbols: &[crate::SymbolInfo],
    ) -> Result<BlockMap, DiscoverError> {
        let mut blocks = Vec::new();
        for image in images {
            Self::discover_module(image, symbols, &mut blocks).map_err(|source| DiscoverError {
                module: image.module(),
                source,
            })?;
        }
        blocks.sort_by_key(|b: &StaticBlock| b.start);
        // Annotate blocks with their enclosing symbol.
        let mut sorted_syms: Vec<&crate::SymbolInfo> = symbols.iter().collect();
        sorted_syms.sort_by_key(|s| s.addr);
        for block in &mut blocks {
            let pos = sorted_syms.partition_point(|s| s.addr <= block.start);
            if pos > 0 {
                let sym = sorted_syms[pos - 1];
                if block.start < sym.addr + sym.size {
                    block.symbol = Some(sym.name.clone());
                }
            }
        }
        let pages = PageIndex::build(&blocks);
        Ok(BlockMap { blocks, pages })
    }

    fn discover_module(
        image: &TextImage,
        symbols: &[crate::SymbolInfo],
        out: &mut Vec<StaticBlock>,
    ) -> Result<(), codec::DecodeError> {
        // Pass 1: linear decode with offsets.
        let mut instrs: Vec<(u64, Instruction)> = Vec::new();
        let mut dec = codec::Decoder::new(image.bytes());
        let mut offset = 0usize;
        while offset < image.bytes().len() {
            match dec.next() {
                Some(Ok(i)) => {
                    instrs.push((image.base() + offset as u64, i));
                    offset = dec.offset();
                }
                Some(Err(e)) => return Err(e),
                None => break,
            }
        }
        // Pass 2: leaders.
        use std::collections::BTreeSet;
        let mut leaders: BTreeSet<u64> = BTreeSet::new();
        if let Some((first, _)) = instrs.first() {
            leaders.insert(*first);
        }
        for sym in symbols {
            if sym.module == image.module() {
                leaders.insert(sym.addr);
            }
        }
        for (idx, (addr, instr)) in instrs.iter().enumerate() {
            if instr.is_branch() {
                if let Some((next_addr, _)) = instrs.get(idx + 1) {
                    leaders.insert(*next_addr);
                }
                if let Some(target) = direct_target(*addr, instr) {
                    if target >= image.base() && target < image.end() {
                        leaders.insert(target);
                    }
                }
            }
        }
        // Pass 3: emit blocks between leaders / after branches.
        let mut current: Vec<(u64, Instruction)> = Vec::new();
        let flush = |current: &mut Vec<(u64, Instruction)>, out: &mut Vec<StaticBlock>| {
            if current.is_empty() {
                return;
            }
            let start = current[0].0;
            let offsets: Vec<u32> = current.iter().map(|(a, _)| (*a - start) as u32).collect();
            let byte_len = {
                let (last_addr, last) = current.last().expect("non-empty");
                (*last_addr - start) as u32 + last.encoded_len()
            };
            let (last_addr, last) = current.last().expect("non-empty");
            let term_kind = last.branch_kind();
            let term_target = direct_target(*last_addr, last);
            out.push(StaticBlock {
                start,
                byte_len,
                instrs: current.iter().map(|(_, i)| i.clone()).collect(),
                offsets,
                module: image.module(),
                ring: image.ring(),
                term_kind,
                term_target,
                symbol: None,
            });
            current.clear();
        };
        for (addr, instr) in instrs {
            if leaders.contains(&addr) {
                flush(&mut current, out);
            }
            let is_branch = instr.is_branch();
            current.push((addr, instr));
            if is_branch {
                flush(&mut current, out);
            }
        }
        flush(&mut current, out);
        Ok(())
    }

    /// All blocks, sorted by start address.
    pub fn blocks(&self) -> &[StaticBlock] {
        &self.blocks
    }

    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Index of the block containing `addr`.
    ///
    /// The page index narrows the search to the few blocks overlapping
    /// `addr`'s 256-byte page before the final `partition_point`, so this
    /// is effectively constant-time for any map built by
    /// [`BlockMap::discover`].
    pub fn enclosing(&self, addr: u64) -> Option<usize> {
        let found = self.enclosing_indexed(addr);
        debug_assert_eq!(found, self.enclosing_unindexed(addr));
        found
    }

    fn enclosing_indexed(&self, addr: u64) -> Option<usize> {
        let (lo, hi) = self.pages.candidates(addr)?;
        let pos = lo + self.blocks[lo..hi].partition_point(|b| b.start <= addr);
        if pos == lo {
            return None;
        }
        let idx = pos - 1;
        (addr < self.blocks[idx].end()).then_some(idx)
    }

    /// Reference lookup over the full sorted block vector (the seed
    /// implementation, a whole-map binary search per call). Kept as the
    /// oracle for the page index — `enclosing` must agree with it on every
    /// address — and as the baseline the `BENCH_pipeline.json` perf
    /// trajectory measures the indexed pipeline against.
    pub fn enclosing_seed(&self, addr: u64) -> Option<usize> {
        let pos = self.blocks.partition_point(|b| b.start <= addr);
        if pos == 0 {
            return None;
        }
        let idx = pos - 1;
        (addr < self.blocks[idx].end()).then_some(idx)
    }

    fn enclosing_unindexed(&self, addr: u64) -> Option<usize> {
        self.enclosing_seed(addr)
    }

    /// A stateful lookup handle exploiting sample locality (last-hit
    /// cache in front of the indexed lookup).
    pub fn cursor(&self) -> BlockCursor<'_> {
        BlockCursor {
            map: self,
            last: usize::MAX,
        }
    }

    /// Index of the block starting exactly at `addr`.
    pub fn at_start(&self, addr: u64) -> Option<usize> {
        self.blocks.binary_search_by_key(&addr, |b| b.start).ok()
    }

    /// Block + instruction index for an exact instruction address.
    pub fn instr_at(&self, addr: u64) -> Option<(usize, usize)> {
        let bi = self.enclosing(addr)?;
        let b = &self.blocks[bi];
        let off = (addr - b.start) as u32;
        match b.offsets.binary_search(&off) {
            Ok(i) => Some((bi, i)),
            Err(_) => None,
        }
    }

    /// Walk an LBR stream `<target, source>`: the straight-line execution
    /// from the branch-target address to the next taken-branch source.
    ///
    /// Returns every block index covered. Mid-stream blocks ending in an
    /// unconditional jump, call or return whose continuation is not the next
    /// address mark the walk as derailed (stale text or bogus stream) and
    /// stop it.
    pub fn walk_stream(&self, target: u64, source: u64) -> StreamWalk {
        let mut covered = Vec::new();
        let derailed = self.walk_stream_into(target, source, &mut covered);
        StreamWalk {
            blocks: covered,
            derailed,
        }
    }

    /// Allocation-free form of [`BlockMap::walk_stream`]: append the
    /// covered block indices to `covered` (cleared first) and return
    /// whether the walk derailed. Hot callers reuse one buffer across
    /// streams.
    pub fn walk_stream_into(&self, target: u64, source: u64, covered: &mut Vec<usize>) -> bool {
        covered.clear();
        let Some(idx) = self.enclosing(target) else {
            return true;
        };
        self.walk_from(idx, target, source, covered)
    }

    /// Seed-faithful stream walk: whole-map binary searches for the target
    /// lookup and for every mid-stream block transition (`at_start`), with
    /// a fresh allocation per call — exactly the seed implementation.
    /// Same results as [`BlockMap::walk_stream`]; kept for the reference
    /// estimators the perf trajectory benchmark compares against.
    pub fn walk_stream_seed(&self, target: u64, source: u64) -> StreamWalk {
        let mut covered = Vec::new();
        let Some(mut idx) = self.enclosing_seed(target) else {
            return StreamWalk {
                blocks: covered,
                derailed: true,
            };
        };
        if source < target {
            return StreamWalk {
                blocks: covered,
                derailed: true,
            };
        }
        loop {
            let block = &self.blocks[idx];
            covered.push(idx);
            if source >= block.start && source < block.end() {
                return StreamWalk {
                    blocks: covered,
                    derailed: false,
                };
            }
            let consistent = match block.term_kind {
                Some(BranchKind::Conditional) | None => true,
                Some(BranchKind::Unconditional) => block.term_target == Some(block.end()),
                Some(BranchKind::Call) | Some(BranchKind::Return) => false,
            };
            if !consistent {
                return StreamWalk {
                    blocks: covered,
                    derailed: true,
                };
            }
            match self.at_start(block.end()) {
                Some(next) => idx = next,
                None => {
                    return StreamWalk {
                        blocks: covered,
                        derailed: true,
                    }
                }
            }
        }
    }

    /// Shared walk body: `idx` must be the block enclosing `target`.
    fn walk_from(
        &self,
        mut idx: usize,
        target: u64,
        source: u64,
        covered: &mut Vec<usize>,
    ) -> bool {
        if source < target {
            return true;
        }
        loop {
            let block = &self.blocks[idx];
            covered.push(idx);
            if source >= block.start && source < block.end() {
                // Stream ends inside this block.
                return false;
            }
            // Mid-stream: execution must continue at block.end().
            let consistent = match block.term_kind {
                // A conditional branch falls through mid-stream.
                Some(BranchKind::Conditional) | None => true,
                // An unconditional jump is fine only if it targets the next
                // address (e.g. a jump-to-next); otherwise the stream claims
                // execution ignored the jump — the stale-text signature.
                Some(BranchKind::Unconditional) => block.term_target == Some(block.end()),
                // Calls and returns always divert; a stream cannot cross them.
                Some(BranchKind::Call) | Some(BranchKind::Return) => false,
            };
            if !consistent {
                return true;
            }
            // Blocks are sorted and non-overlapping, so a block starting at
            // `block.end()` can only be the next one in the vector.
            match self.blocks.get(idx + 1) {
                Some(next) if next.start == block.end() => idx += 1,
                _ => return true,
            }
        }
    }
}

/// Compute the target of a direct branch instruction at `addr`.
fn direct_target(addr: u64, instr: &Instruction) -> Option<u64> {
    if !instr.is_branch() || instr.branch_kind() == Some(BranchKind::Return) {
        return None;
    }
    let disp = instr.operands().iter().find_map(|op| match op {
        Operand::Imm(d) => Some(*d),
        _ => None,
    })?;
    let next = addr + instr.encoded_len() as u64;
    Some((next as i64 + disp as i64) as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Layout, ProgramBuilder, Ring};
    use hbbp_isa::instruction::build::*;
    use hbbp_isa::{Mnemonic, Reg};

    /// Three-block user program with a loop and a call.
    fn build_sample() -> (crate::Program, Layout) {
        let mut b = ProgramBuilder::new("s");
        let m = b.module("s.bin", Ring::User);
        let f = b.function(m, "main");
        let leaf = b.function(m, "leaf");

        let l0 = b.block(leaf);
        b.push(l0, rr(Mnemonic::Add, Reg::gpr(0), Reg::gpr(1)));
        b.terminate_ret(l0);

        let b0 = b.block(f);
        let b1 = b.block(f);
        let b2 = b.block(f);
        b.push(b0, ri(Mnemonic::Mov, Reg::gpr(0), 3));
        b.terminate_call(b0, leaf, b1);
        b.push(b1, rr(Mnemonic::Sub, Reg::gpr(0), Reg::gpr(1)));
        b.push(b1, rr(Mnemonic::Cmp, Reg::gpr(0), Reg::gpr(1)));
        b.terminate_branch(b1, Mnemonic::Jnz, b1, b2);
        b.terminate_exit(b2, bare(Mnemonic::Syscall));

        let mut p = b.build(f).unwrap();
        let layout = Layout::compute(&mut p).unwrap();
        (p, layout)
    }

    #[test]
    fn discovery_matches_program_blocks() {
        let (p, layout) = build_sample();
        let image = TextImage::encode(&p, &layout, p.modules()[0].id(), ImageView::Disk);
        let map = BlockMap::discover(&[image], layout.symbols()).unwrap();
        assert_eq!(map.len(), p.block_count());
        for block in p.blocks() {
            let idx = map
                .at_start(layout.block_start(block.id()))
                .unwrap_or_else(|| panic!("{} not discovered", block.id()));
            let sb = &map.blocks()[idx];
            assert_eq!(sb.len(), block.len(), "{}", block.id());
            assert_eq!(sb.byte_len, layout.block_bytes(block.id()));
            assert_eq!(sb.instrs.as_slice(), block.instrs());
        }
    }

    #[test]
    fn instr_at_exact_addresses() {
        let (p, layout) = build_sample();
        let image = TextImage::encode(&p, &layout, p.modules()[0].id(), ImageView::Disk);
        let map = BlockMap::discover(&[image], layout.symbols()).unwrap();
        for block in p.blocks() {
            for idx in 0..block.len() {
                let addr = layout.instr_addr(block.id(), idx);
                let (bi, ii) = map.instr_at(addr).expect("instr found");
                assert_eq!(map.blocks()[bi].start, layout.block_start(block.id()));
                assert_eq!(ii, idx);
            }
        }
        // Mid-instruction addresses resolve to no instruction.
        let b0 = p.functions()[0].blocks()[0];
        assert_eq!(map.instr_at(layout.block_start(b0) + 1), None);
    }

    #[test]
    fn stream_walk_covers_linear_range() {
        let (p, layout) = build_sample();
        let image = TextImage::encode(&p, &layout, p.modules()[0].id(), ImageView::Disk);
        let map = BlockMap::discover(&[image], layout.symbols()).unwrap();
        // Stream from start of b1 to its own terminator: exactly one block.
        let f = p.entry();
        let b1 = p.function(f).blocks()[1];
        let walk = map.walk_stream(layout.block_start(b1), layout.terminator_addr(b1));
        assert!(!walk.derailed);
        assert_eq!(walk.blocks.len(), 1);
        // Stream spanning b1 (fallthrough) into b2.
        let b2 = p.function(f).blocks()[2];
        let walk = map.walk_stream(layout.block_start(b1), layout.terminator_addr(b2));
        assert!(!walk.derailed);
        assert_eq!(walk.blocks.len(), 2);
    }

    #[test]
    fn stream_walk_rejects_backwards_range() {
        let (p, layout) = build_sample();
        let image = TextImage::encode(&p, &layout, p.modules()[0].id(), ImageView::Disk);
        let map = BlockMap::discover(&[image], layout.symbols()).unwrap();
        let f = p.entry();
        let b1 = p.function(f).blocks()[1];
        let walk = map.walk_stream(layout.terminator_addr(b1), layout.block_start(b1));
        assert!(walk.derailed);
    }

    #[test]
    fn stream_walk_derails_on_midstream_call() {
        let (p, layout) = build_sample();
        let image = TextImage::encode(&p, &layout, p.modules()[0].id(), ImageView::Disk);
        let map = BlockMap::discover(&[image], layout.symbols()).unwrap();
        let f = p.entry();
        let b0 = p.function(f).blocks()[0]; // ends with CALL
        let b2 = p.function(f).blocks()[2];
        let walk = map.walk_stream(layout.block_start(b0), layout.terminator_addr(b2));
        assert!(walk.derailed);
        assert_eq!(walk.blocks.len(), 1); // only b0 attributed before derail
    }

    fn build_kernel_sample() -> (crate::Program, Layout) {
        let mut b = ProgramBuilder::new("k");
        let m = b.module("hello.ko", Ring::Kernel);
        let f = b.function(m, "hello_k");
        let b0 = b.block(f);
        let b1 = b.block(f);
        b.push(b0, rr(Mnemonic::Add, Reg::gpr(0), Reg::gpr(1)));
        b.tracepoint(b0);
        b.push(b0, rr(Mnemonic::Sub, Reg::gpr(0), Reg::gpr(1)));
        b.terminate_branch(b0, Mnemonic::Jnz, b0, b1);
        b.terminate_ret(b1);
        let mut p = b.build(f).unwrap();
        let layout = Layout::compute(&mut p).unwrap();
        (p, layout)
    }

    #[test]
    fn disk_and_live_views_differ_only_at_tracepoints() {
        let (p, layout) = build_kernel_sample();
        let mid = p.modules()[0].id();
        let disk = TextImage::encode(&p, &layout, mid, ImageView::Disk);
        let live = TextImage::encode(&p, &layout, mid, ImageView::Live);
        assert_eq!(disk.bytes().len(), live.bytes().len());
        assert_ne!(disk.bytes(), live.bytes());
        let mut patched = disk.clone();
        let changed = patched.patch_from(&live).unwrap();
        assert!(changed > 0);
        assert_eq!(patched.bytes(), live.bytes());
    }

    #[test]
    fn stale_disk_text_splits_blocks_and_derails_streams() {
        let (p, layout) = build_kernel_sample();
        let mid = p.modules()[0].id();
        let disk = TextImage::encode(&p, &layout, mid, ImageView::Disk);
        let live = TextImage::encode(&p, &layout, mid, ImageView::Live);

        let disk_map = BlockMap::discover(&[disk], layout.symbols()).unwrap();
        let live_map = BlockMap::discover(&[live], layout.symbols()).unwrap();

        // The disk view sees an extra JMP → more (split) blocks.
        assert!(disk_map.len() > live_map.len());

        // A stream across the tracepoint derails on the disk map …
        let f = p.entry();
        let b0 = p.function(f).blocks()[0];
        let walk = disk_map.walk_stream(layout.block_start(b0), layout.terminator_addr(b0));
        assert!(walk.derailed, "stale text must derail the stream walk");
        // … but not on the live (patched) map.
        let walk = live_map.walk_stream(layout.block_start(b0), layout.terminator_addr(b0));
        assert!(!walk.derailed);
    }

    #[test]
    fn patch_mismatch_rejected() {
        let (p, layout) = build_sample();
        let (kp, klayout) = build_kernel_sample();
        let user = TextImage::encode(&p, &layout, p.modules()[0].id(), ImageView::Disk);
        let kernel = TextImage::encode(&kp, &klayout, kp.modules()[0].id(), ImageView::Live);
        let mut user2 = user.clone();
        let err = user2.patch_from(&kernel).unwrap_err();
        assert!(!err.to_string().is_empty());
    }
}

//! Address layout: assigns virtual addresses to modules, blocks and
//! instructions, and patches branch displacement immediates.
//!
//! User modules load at the canonical 0x400000-style low range; kernel
//! modules load in the high half, mirroring Linux. Everything downstream —
//! samples, LBR records, block maps — speaks virtual addresses.

use crate::{BlockId, ModuleId, Program, ProgramError, Ring, Terminator};
use hbbp_isa::{Instruction, Operand};

/// Base address of the first user-mode module.
pub const USER_BASE: u64 = 0x0040_0000;
/// Spacing between user module bases.
pub const USER_STRIDE: u64 = 0x0100_0000;
/// Base address of the first kernel module.
pub const KERNEL_BASE: u64 = 0xFFFF_FFFF_8100_0000;
/// Spacing between kernel module bases.
pub const KERNEL_STRIDE: u64 = 0x0010_0000;
/// Number of multi-byte NOPs forming a module's probe-stub region.
pub const STUB_NOPS: usize = 4;

/// Computed addresses for a program.
///
/// Obtained from [`Layout::compute`], which also patches the displacement
/// immediates of all terminator branches in the program (so encoded images
/// carry real targets).
#[derive(Debug, Clone)]
pub struct Layout {
    block_addr: Vec<u64>,
    block_bytes: Vec<u32>,
    instr_offsets: Vec<Vec<u32>>,
    module_range: Vec<(u64, u64)>,
    stub_addr: Vec<Option<u64>>,
    // Blocks sorted by start address, for locate().
    sorted_blocks: Vec<(u64, BlockId)>,
    symbols: Vec<SymbolInfo>,
}

/// A laid-out symbol (function) for address→name resolution.
#[derive(Debug, Clone)]
pub struct SymbolInfo {
    /// Start address of the function's first block.
    pub addr: u64,
    /// Total byte size of the function.
    pub size: u64,
    /// Function name.
    pub name: String,
    /// Owning module.
    pub module: ModuleId,
    /// Function id.
    pub function: crate::FunctionId,
}

impl Layout {
    /// Assign addresses to every module/function/block of `program` and
    /// patch branch displacements in place.
    ///
    /// # Errors
    ///
    /// Returns an error if a branch displacement overflows 32 bits (cannot
    /// happen with realistic module sizes).
    pub fn compute(program: &mut Program) -> Result<Layout, ProgramError> {
        let nblocks = program.block_count();
        let mut block_addr = vec![0u64; nblocks];
        let mut block_bytes = vec![0u32; nblocks];
        let mut instr_offsets: Vec<Vec<u32>> = vec![Vec::new(); nblocks];
        let mut module_range = Vec::new();
        let mut stub_addr = Vec::new();
        let mut symbols = Vec::new();

        let mut next_user = USER_BASE;
        let mut next_kernel = KERNEL_BASE;

        let module_ids: Vec<ModuleId> = program.modules().iter().map(|m| m.id()).collect();
        for mid in module_ids {
            let (ring, function_ids, has_tracepoints) = {
                let m = program.module(mid);
                (
                    m.ring(),
                    m.functions().to_vec(),
                    !m.tracepoints().is_empty(),
                )
            };
            let base = match ring {
                Ring::User => {
                    let b = next_user;
                    next_user += USER_STRIDE;
                    b
                }
                Ring::Kernel => {
                    let b = next_kernel;
                    next_kernel += KERNEL_STRIDE;
                    b
                }
            };
            let mut cursor = base;
            for fid in function_ids {
                let fstart = cursor;
                let block_ids = program.function(fid).blocks().to_vec();
                for bid in block_ids {
                    let block = program.block(bid);
                    let mut offsets = Vec::with_capacity(block.len());
                    let mut off = 0u32;
                    for instr in block.instrs() {
                        offsets.push(off);
                        off += instr.encoded_len();
                    }
                    block_addr[bid.index()] = cursor;
                    block_bytes[bid.index()] = off;
                    instr_offsets[bid.index()] = offsets;
                    cursor += off as u64;
                }
                let name = program.function(fid).name().to_owned();
                symbols.push(SymbolInfo {
                    addr: fstart,
                    size: cursor - fstart,
                    name,
                    module: mid,
                    function: fid,
                });
            }
            let stub = if has_tracepoints {
                let s = cursor;
                let stub_nop =
                    Instruction::with_operands(hbbp_isa::Mnemonic::NopMulti, vec![Operand::Imm(0)]);
                cursor += (stub_nop.encoded_len() as u64) * STUB_NOPS as u64;
                Some(s)
            } else {
                None
            };
            stub_addr.push(stub);
            module_range.push((base, cursor));
        }

        let mut layout = Layout {
            block_addr,
            block_bytes,
            instr_offsets,
            module_range,
            stub_addr,
            sorted_blocks: Vec::new(),
            symbols,
        };
        layout.patch_branches(program)?;
        let mut sorted: Vec<(u64, BlockId)> = (0..nblocks)
            .map(|i| (layout.block_addr[i], BlockId::from_index(i)))
            .collect();
        sorted.sort_unstable();
        layout.sorted_blocks = sorted;
        layout.symbols.sort_by_key(|s| s.addr);
        Ok(layout)
    }

    /// Patch every terminator branch's displacement immediate to point at
    /// its laid-out target.
    fn patch_branches(&self, program: &mut Program) -> Result<(), ProgramError> {
        let nblocks = program.block_count();
        for i in 0..nblocks {
            let bid = BlockId::from_index(i);
            let term = program.block(bid).terminator();
            let target_addr = match term {
                Terminator::Jump(t) => Some(self.block_start(t)),
                Terminator::Branch { taken, .. } => Some(self.block_start(taken)),
                Terminator::Call { callee, .. } => {
                    let entry = program.function(callee).entry();
                    Some(self.block_start(entry))
                }
                Terminator::Ret | Terminator::Exit => None,
            };
            let Some(target) = target_addr else { continue };
            let term_idx = program.block(bid).len() - 1;
            let next_addr = self.block_end(bid);
            let disp = target as i64 - next_addr as i64;
            let disp32 = i32::try_from(disp).map_err(|_| {
                ProgramError::new(format!("{bid}: branch displacement {disp} overflows i32"))
            })?;
            let block = program.block_mut(bid);
            let old = &block.instrs()[term_idx];
            let patched = patch_imm(old, disp32);
            block.instrs_mut()[term_idx] = patched;
        }
        Ok(())
    }

    /// Start address of a block.
    pub fn block_start(&self, b: BlockId) -> u64 {
        self.block_addr[b.index()]
    }

    /// End address (exclusive) of a block.
    pub fn block_end(&self, b: BlockId) -> u64 {
        self.block_addr[b.index()] + self.block_bytes[b.index()] as u64
    }

    /// Byte size of a block.
    pub fn block_bytes(&self, b: BlockId) -> u32 {
        self.block_bytes[b.index()]
    }

    /// Address of instruction `idx` within block `b`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn instr_addr(&self, b: BlockId, idx: usize) -> u64 {
        self.block_addr[b.index()] + self.instr_offsets[b.index()][idx] as u64
    }

    /// Address of a block's terminator (last) instruction.
    pub fn terminator_addr(&self, b: BlockId) -> u64 {
        let offs = &self.instr_offsets[b.index()];
        self.block_addr[b.index()] + *offs.last().expect("non-empty block") as u64
    }

    /// Per-instruction byte offsets within a block.
    pub fn instr_offsets(&self, b: BlockId) -> &[u32] {
        &self.instr_offsets[b.index()]
    }

    /// Address range `[base, end)` of a module's text.
    pub fn module_range(&self, m: ModuleId) -> (u64, u64) {
        self.module_range[m.index()]
    }

    /// Address of a module's probe-stub region, if it has tracepoints.
    pub fn stub_addr(&self, m: ModuleId) -> Option<u64> {
        self.stub_addr[m.index()]
    }

    /// Locate the block and instruction index containing `addr`.
    ///
    /// Returns `None` for addresses outside any block (e.g. stub regions).
    pub fn locate(&self, addr: u64) -> Option<(BlockId, usize)> {
        let pos = self
            .sorted_blocks
            .partition_point(|&(start, _)| start <= addr);
        if pos == 0 {
            return None;
        }
        let (start, bid) = self.sorted_blocks[pos - 1];
        let len = self.block_bytes[bid.index()] as u64;
        if addr >= start + len {
            return None;
        }
        let off = (addr - start) as u32;
        let offs = &self.instr_offsets[bid.index()];
        let idx = offs.partition_point(|&o| o <= off) - 1;
        Some((bid, idx))
    }

    /// Symbols sorted by address.
    pub fn symbols(&self) -> &[SymbolInfo] {
        &self.symbols
    }

    /// Resolve an address to its enclosing symbol.
    pub fn symbolize(&self, addr: u64) -> Option<&SymbolInfo> {
        let pos = self.symbols.partition_point(|s| s.addr <= addr);
        if pos == 0 {
            return None;
        }
        let sym = &self.symbols[pos - 1];
        (addr < sym.addr + sym.size).then_some(sym)
    }
}

/// Rebuild an instruction with its (single) immediate operand replaced.
fn patch_imm(instr: &Instruction, imm: i32) -> Instruction {
    let ops: Vec<Operand> = instr
        .operands()
        .iter()
        .map(|op| match op {
            Operand::Imm(_) => Operand::Imm(imm),
            other => *other,
        })
        .collect();
    let mut out = Instruction::with_operands(instr.mnemonic(), ops);
    if instr.is_locked() {
        out = out.locked();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ProgramBuilder;
    use hbbp_isa::instruction::build::*;
    use hbbp_isa::{Mnemonic, Reg};

    fn sample_program() -> (Program, Layout, Vec<BlockId>) {
        let mut b = ProgramBuilder::new("t");
        let m = b.module("t.bin", Ring::User);
        let f = b.function(m, "main");
        let g = b.function(m, "leaf");

        let g0 = b.block(g);
        b.push(g0, rr(Mnemonic::Add, Reg::gpr(0), Reg::gpr(1)));
        b.terminate_ret(g0);

        let b0 = b.block(f);
        let b1 = b.block(f);
        let b2 = b.block(f);
        b.push(b0, ri(Mnemonic::Mov, Reg::gpr(0), 5));
        b.terminate_call(b0, g, b1);
        b.push(b1, rr(Mnemonic::Sub, Reg::gpr(0), Reg::gpr(1)));
        b.terminate_branch(b1, Mnemonic::Jnz, b1, b2);
        b.terminate_exit(b2, bare(Mnemonic::Syscall));

        let mut p = b.build(f).unwrap();
        let layout = Layout::compute(&mut p).unwrap();
        (p, layout, vec![g0, b0, b1, b2])
    }

    #[test]
    fn addresses_are_contiguous_within_function() {
        let (p, layout, ids) = sample_program();
        let (g0, b0, b1, b2) = (ids[0], ids[1], ids[2], ids[3]);
        // Functions are laid out in creation order: main(f) first, leaf(g)
        // second, regardless of block creation order.
        assert_eq!(layout.block_start(b0), USER_BASE);
        assert!(layout.block_start(b0) < layout.block_start(g0));
        assert_eq!(layout.block_end(b0), layout.block_start(b1));
        assert_eq!(layout.block_end(b1), layout.block_start(b2));
        let _ = p;
    }

    #[test]
    fn call_displacement_points_at_callee_entry() {
        let (p, layout, ids) = sample_program();
        let (g0, b0) = (ids[0], ids[1]);
        let call_block = p.block(b0);
        let call = call_block.last_instr().unwrap();
        let hbbp_isa::Operand::Imm(disp) = call.operands()[0] else {
            panic!("call has no imm");
        };
        let next = layout.block_end(b0);
        assert_eq!(
            (next as i64 + disp as i64) as u64,
            layout.block_start(g0),
            "call target mismatch"
        );
    }

    #[test]
    fn branch_displacement_points_at_taken_target() {
        let (p, layout, ids) = sample_program();
        let b1 = ids[2];
        let br = p.block(b1).last_instr().unwrap();
        let hbbp_isa::Operand::Imm(disp) = br.operands()[0] else {
            panic!("no imm")
        };
        let next = layout.block_end(b1);
        // taken target is b1 itself (self loop)
        assert_eq!((next as i64 + disp as i64) as u64, layout.block_start(b1));
    }

    #[test]
    fn locate_finds_every_instruction() {
        let (p, layout, _) = sample_program();
        for block in p.blocks() {
            for (idx, _instr) in block.instrs().iter().enumerate() {
                let addr = layout.instr_addr(block.id(), idx);
                assert_eq!(layout.locate(addr), Some((block.id(), idx)));
            }
        }
    }

    #[test]
    fn locate_rejects_gap_addresses() {
        let (_, layout, ids) = sample_program();
        let last = ids[0]; // g0 laid out last
        assert_eq!(layout.locate(layout.block_end(last) + 100), None);
        assert_eq!(layout.locate(USER_BASE - 1), None);
    }

    #[test]
    fn symbolize_resolves_functions() {
        let (p, layout, ids) = sample_program();
        let b0 = ids[1];
        let sym = layout.symbolize(layout.block_start(b0)).unwrap();
        assert_eq!(sym.name, "main");
        let g0 = ids[0];
        let sym = layout.symbolize(layout.terminator_addr(g0)).unwrap();
        assert_eq!(sym.name, "leaf");
        let _ = p;
    }

    #[test]
    fn kernel_modules_go_high() {
        let mut b = ProgramBuilder::new("k");
        let km = b.module("hello.ko", Ring::Kernel);
        let f = b.function(km, "hello_k");
        let b0 = b.block(f);
        b.push(b0, bare(Mnemonic::Nop));
        b.terminate_ret(b0);
        let mut p = b.build(f).unwrap();
        let layout = Layout::compute(&mut p).unwrap();
        assert!(layout.block_start(b0) >= KERNEL_BASE);
        assert_eq!(layout.module_range(km).0, KERNEL_BASE);
    }

    #[test]
    fn stub_region_present_only_with_tracepoints() {
        let mut b = ProgramBuilder::new("k");
        let km = b.module("hello.ko", Ring::Kernel);
        let f = b.function(km, "hello_k");
        let b0 = b.block(f);
        b.tracepoint(b0);
        b.terminate_ret(b0);
        let mut p = b.build(f).unwrap();
        let layout = Layout::compute(&mut p).unwrap();
        let stub = layout.stub_addr(km).expect("stub");
        assert_eq!(stub, layout.block_end(b0));
        let (_, end) = layout.module_range(km);
        assert!(end > stub);
    }
}

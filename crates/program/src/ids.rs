//! Typed identifiers for program entities.

use std::fmt;

/// Identifier of a basic block within a [`crate::Program`].
///
/// Blocks live in a single arena per program; the id is the arena index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(pub(crate) u32);

impl BlockId {
    /// Arena index of the block.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Construct from a raw arena index (for tables indexed by block).
    pub fn from_index(index: usize) -> BlockId {
        BlockId(index as u32)
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

/// Identifier of a function within a [`crate::Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FunctionId(pub(crate) u32);

impl FunctionId {
    /// Arena index of the function.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Construct from a raw arena index.
    pub fn from_index(index: usize) -> FunctionId {
        FunctionId(index as u32)
    }
}

impl fmt::Display for FunctionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fn{}", self.0)
    }
}

/// Identifier of a module (binary / shared object / kernel module).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ModuleId(pub(crate) u16);

impl ModuleId {
    /// Arena index of the module.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Construct from a raw arena index.
    pub fn from_index(index: usize) -> ModuleId {
        ModuleId(index as u16)
    }
}

impl fmt::Display for ModuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "mod{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_index_roundtrip() {
        assert_eq!(BlockId::from_index(7).to_string(), "bb7");
        assert_eq!(BlockId::from_index(7).index(), 7);
        assert_eq!(FunctionId::from_index(3).to_string(), "fn3");
        assert_eq!(ModuleId::from_index(1).to_string(), "mod1");
    }

    #[test]
    fn ordering_follows_indices() {
        assert!(BlockId::from_index(1) < BlockId::from_index(2));
    }
}

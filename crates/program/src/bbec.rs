//! Basic block execution counts (BBECs) and mnemonic mixes.
//!
//! "An instruction mix is easily obtained from a basic block execution
//! count (BBEC). If we know how many times a basic block is executed, we
//! also know exactly how many times each instruction within it is executed"
//! (paper §I). [`Bbec`] is the per-block count table (keyed by block start
//! address, the coordinate system shared by ground truth and PMU
//! estimates); [`MnemonicMix`] is the per-mnemonic histogram derived from
//! it.

use hbbp_isa::{Instruction, Mnemonic};
use std::collections::BTreeMap;

/// Per-basic-block execution counts, keyed by block start address.
///
/// Counts are `f64` because PMU-derived estimates are extrapolated from
/// samples (count ≈ samples × period / block_len) and need not be integral.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Bbec {
    counts: BTreeMap<u64, f64>,
}

impl Bbec {
    /// Empty table.
    pub fn new() -> Bbec {
        Bbec::default()
    }

    /// Add `weight` executions to the block starting at `addr`.
    pub fn add(&mut self, addr: u64, weight: f64) {
        *self.counts.entry(addr).or_insert(0.0) += weight;
    }

    /// Set the count of a block.
    pub fn set(&mut self, addr: u64, count: f64) {
        self.counts.insert(addr, count);
    }

    /// Count for the block starting at `addr` (0 if absent).
    pub fn get(&self, addr: u64) -> f64 {
        self.counts.get(&addr).copied().unwrap_or(0.0)
    }

    /// Number of blocks with a nonzero entry.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Iterate `(block_start, count)` in address order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, f64)> + '_ {
        self.counts.iter().map(|(&a, &c)| (a, c))
    }

    /// Sum of all counts.
    pub fn total(&self) -> f64 {
        self.counts.values().sum()
    }

    /// Multiply every count by `factor` (e.g. period extrapolation).
    pub fn scale(&mut self, factor: f64) {
        for v in self.counts.values_mut() {
            *v *= factor;
        }
    }

    /// Merge another table into this one (summing counts).
    pub fn merge(&mut self, other: &Bbec) {
        for (addr, c) in other.iter() {
            self.add(addr, c);
        }
    }

    /// Block addresses present in either table, ascending.
    ///
    /// Both key streams are already sorted (`BTreeMap` iteration order), so
    /// this is a lazy two-pointer merge — no intermediate collect, sort or
    /// dedup.
    pub fn union_addrs<'a>(&'a self, other: &'a Bbec) -> impl Iterator<Item = u64> + 'a {
        let mut a = self.counts.keys().copied().peekable();
        let mut b = other.counts.keys().copied().peekable();
        std::iter::from_fn(move || match (a.peek(), b.peek()) {
            (Some(&x), Some(&y)) => {
                if x < y {
                    a.next()
                } else if y < x {
                    b.next()
                } else {
                    b.next();
                    a.next()
                }
            }
            (Some(_), None) => a.next(),
            (None, Some(_)) => b.next(),
            (None, None) => None,
        })
    }
}

impl FromIterator<(u64, f64)> for Bbec {
    fn from_iter<T: IntoIterator<Item = (u64, f64)>>(iter: T) -> Bbec {
        let mut b = Bbec::new();
        for (a, c) in iter {
            b.add(a, c);
        }
        b
    }
}

impl Extend<(u64, f64)> for Bbec {
    fn extend<T: IntoIterator<Item = (u64, f64)>>(&mut self, iter: T) {
        for (a, c) in iter {
            self.add(a, c);
        }
    }
}

/// A dynamic instruction mix: executions per mnemonic.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MnemonicMix {
    counts: BTreeMap<Mnemonic, f64>,
}

impl MnemonicMix {
    /// Empty mix.
    pub fn new() -> MnemonicMix {
        MnemonicMix::default()
    }

    /// Add `weight` executions of `mnemonic`.
    pub fn add(&mut self, mnemonic: Mnemonic, weight: f64) {
        *self.counts.entry(mnemonic).or_insert(0.0) += weight;
    }

    /// Credit one block execution (weight `count`) to every instruction of
    /// the block.
    pub fn add_block(&mut self, instrs: &[Instruction], count: f64) {
        for i in instrs {
            self.add(i.mnemonic(), count);
        }
    }

    /// Executions of a mnemonic (0 if absent).
    pub fn get(&self, mnemonic: Mnemonic) -> f64 {
        self.counts.get(&mnemonic).copied().unwrap_or(0.0)
    }

    /// Number of distinct mnemonics.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// Whether the mix is empty.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Iterate `(mnemonic, count)` in opcode order.
    pub fn iter(&self) -> impl Iterator<Item = (Mnemonic, f64)> + '_ {
        self.counts.iter().map(|(&m, &c)| (m, c))
    }

    /// Total executed instructions.
    pub fn total(&self) -> f64 {
        self.counts.values().sum()
    }

    /// The `n` most-executed mnemonics, descending (ties broken by opcode).
    pub fn top(&self, n: usize) -> Vec<(Mnemonic, f64)> {
        let mut v: Vec<(Mnemonic, f64)> = self.iter().collect();
        v.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        v.truncate(n);
        v
    }

    /// Merge another mix into this one.
    pub fn merge(&mut self, other: &MnemonicMix) {
        for (m, c) in other.iter() {
            self.add(m, c);
        }
    }

    /// Multiply every count by `factor`.
    pub fn scale(&mut self, factor: f64) {
        for v in self.counts.values_mut() {
            *v *= factor;
        }
    }

    /// Total-variation distance between two mixes as distributions:
    /// `0.5 · Σ_M |self_share(M) − other_share(M)|`, in `[0, 1]`.
    ///
    /// `0.0` means identical shares; `1.0` means disjoint mnemonic sets.
    /// When either mix is empty the distance is defined as `0.0` — an
    /// empty mix carries no evidence of divergence. The sum runs over the
    /// union of mnemonics in opcode order, which makes the result
    /// bit-stable across call sites (`hbbp_core::MixDrift::divergence`
    /// delegates here) and exactly symmetric (IEEE `|x − y| == |y − x|`).
    pub fn tv_distance(&self, other: &MnemonicMix) -> f64 {
        let (st, ot) = (self.total(), other.total());
        if st <= 0.0 || ot <= 0.0 {
            return 0.0;
        }
        0.5 * self
            .union_mnemonics(other)
            .into_iter()
            .map(|m| (other.get(m) / ot - self.get(m) / st).abs())
            .sum::<f64>()
    }

    /// Mnemonics present in either mix.
    pub fn union_mnemonics<'a>(&'a self, other: &'a MnemonicMix) -> Vec<Mnemonic> {
        let mut v: Vec<Mnemonic> = self
            .counts
            .keys()
            .chain(other.counts.keys())
            .copied()
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }
}

impl FromIterator<(Mnemonic, f64)> for MnemonicMix {
    fn from_iter<T: IntoIterator<Item = (Mnemonic, f64)>>(iter: T) -> MnemonicMix {
        let mut m = MnemonicMix::new();
        for (k, c) in iter {
            m.add(k, c);
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbbp_isa::instruction::build::*;
    use hbbp_isa::Reg;

    #[test]
    fn bbec_accumulates() {
        let mut b = Bbec::new();
        b.add(0x400000, 1.0);
        b.add(0x400000, 2.5);
        b.add(0x400010, 1.0);
        assert_eq!(b.get(0x400000), 3.5);
        assert_eq!(b.get(0xdead), 0.0);
        assert_eq!(b.len(), 2);
        assert!((b.total() - 4.5).abs() < 1e-12);
    }

    #[test]
    fn bbec_scale_and_merge() {
        let mut a: Bbec = [(0x1000u64, 1.0), (0x2000u64, 2.0)].into_iter().collect();
        a.scale(10.0);
        assert_eq!(a.get(0x1000), 10.0);
        let b: Bbec = [(0x2000u64, 1.0), (0x3000u64, 5.0)].into_iter().collect();
        a.merge(&b);
        assert_eq!(a.get(0x2000), 21.0);
        assert_eq!(a.get(0x3000), 5.0);
        let addrs: Vec<u64> = a.union_addrs(&b).collect();
        assert_eq!(addrs, vec![0x1000, 0x2000, 0x3000]);
    }

    #[test]
    fn mix_from_blocks() {
        let instrs = vec![
            rr(Mnemonic::Add, Reg::gpr(0), Reg::gpr(1)),
            rr(Mnemonic::Add, Reg::gpr(2), Reg::gpr(3)),
            bare(Mnemonic::RetNear),
        ];
        let mut mix = MnemonicMix::new();
        mix.add_block(&instrs, 10.0);
        assert_eq!(mix.get(Mnemonic::Add), 20.0);
        assert_eq!(mix.get(Mnemonic::RetNear), 10.0);
        assert_eq!(mix.total(), 30.0);
    }

    #[test]
    fn mix_top_sorted_descending() {
        let mut mix = MnemonicMix::new();
        mix.add(Mnemonic::Mov, 100.0);
        mix.add(Mnemonic::Add, 300.0);
        mix.add(Mnemonic::Sub, 200.0);
        let top = mix.top(2);
        assert_eq!(top[0].0, Mnemonic::Add);
        assert_eq!(top[1].0, Mnemonic::Sub);
        assert_eq!(mix.top(10).len(), 3);
    }

    #[test]
    fn tv_distance_is_total_variation_over_shares() {
        let mut a = MnemonicMix::new();
        a.add(Mnemonic::Add, 1.0);
        a.add(Mnemonic::Mov, 3.0);
        let mut scaled = MnemonicMix::new();
        scaled.add(Mnemonic::Add, 10.0);
        scaled.add(Mnemonic::Mov, 30.0);
        // Identical shares at different scales: zero distance.
        assert_eq!(a.tv_distance(&scaled), 0.0);
        // Disjoint mnemonic sets: maximal distance.
        let mut disjoint = MnemonicMix::new();
        disjoint.add(Mnemonic::Sub, 5.0);
        assert!((a.tv_distance(&disjoint) - 1.0).abs() < 1e-12);
        // Exactly symmetric, bit for bit.
        let mut b = MnemonicMix::new();
        b.add(Mnemonic::Add, 2.0);
        b.add(Mnemonic::Sub, 1.0);
        assert_eq!(a.tv_distance(&b).to_bits(), b.tv_distance(&a).to_bits());
        // An empty side is defined as zero evidence.
        assert_eq!(MnemonicMix::new().tv_distance(&a), 0.0);
        assert_eq!(a.tv_distance(&MnemonicMix::new()), 0.0);
    }

    #[test]
    fn mix_merge_and_union() {
        let mut a = MnemonicMix::new();
        a.add(Mnemonic::Mov, 1.0);
        let mut b = MnemonicMix::new();
        b.add(Mnemonic::Add, 2.0);
        b.add(Mnemonic::Mov, 3.0);
        a.merge(&b);
        assert_eq!(a.get(Mnemonic::Mov), 4.0);
        assert_eq!(a.union_mnemonics(&b).len(), 2);
    }
}

//! Functions, modules and privilege rings.

use crate::{BlockId, FunctionId, ModuleId};
use std::fmt;

/// Privilege ring a module executes in.
///
/// The paper's headline coverage claim is that PMU profiling, unlike
/// software instrumentation, sees Ring 0: "Both the user space (Rings 1-3)
/// and the kernel (Ring 0) are monitored" (§V.A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Ring {
    /// User-mode code (instrumentable by SDE/PIN).
    #[default]
    User,
    /// Kernel-mode code (invisible to software instrumentation).
    Kernel,
}

impl Ring {
    /// Short label for reports.
    pub fn name(self) -> &'static str {
        match self {
            Ring::User => "user",
            Ring::Kernel => "kernel",
        }
    }
}

impl fmt::Display for Ring {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A function: a named, contiguous sequence of basic blocks.
#[derive(Debug, Clone)]
pub struct Function {
    id: FunctionId,
    module: ModuleId,
    name: String,
    blocks: Vec<BlockId>,
}

impl Function {
    pub(crate) fn new(id: FunctionId, module: ModuleId, name: String) -> Function {
        Function {
            id,
            module,
            name,
            blocks: Vec::new(),
        }
    }

    /// The function's id.
    pub fn id(&self) -> FunctionId {
        self.id
    }

    /// The module containing this function.
    pub fn module(&self) -> ModuleId {
        self.module
    }

    /// Symbol name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Blocks in layout order; the first is the entry block.
    pub fn blocks(&self) -> &[BlockId] {
        &self.blocks
    }

    /// The entry block.
    ///
    /// # Panics
    ///
    /// Panics if the function has no blocks (cannot happen in a validated
    /// program).
    pub fn entry(&self) -> BlockId {
        self.blocks[0]
    }

    pub(crate) fn push_block(&mut self, block: BlockId) {
        self.blocks.push(block);
    }
}

/// A tracepoint site inside a kernel module.
///
/// The on-disk text holds an unconditional `JMP` to an out-of-line probe
/// stub; the live kernel patches the site to a NOP when tracing is disabled
/// (paper §III.C). The program's *logical* instruction at the site is the
/// NOP (that is what executes); images encode the site differently for the
/// disk and live views.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TracepointSite {
    /// Block containing the tracepoint.
    pub block: BlockId,
    /// Instruction index of the patched NOP within the block.
    pub instr_index: usize,
}

/// A module: an executable image (main binary, shared object, or kernel
/// module) with its functions and ring level.
#[derive(Debug, Clone)]
pub struct Module {
    id: ModuleId,
    name: String,
    ring: Ring,
    functions: Vec<FunctionId>,
    tracepoints: Vec<TracepointSite>,
}

impl Module {
    pub(crate) fn new(id: ModuleId, name: String, ring: Ring) -> Module {
        Module {
            id,
            name,
            ring,
            functions: Vec::new(),
            tracepoints: Vec::new(),
        }
    }

    /// The module's id.
    pub fn id(&self) -> ModuleId {
        self.id
    }

    /// Module (file) name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Privilege ring.
    pub fn ring(&self) -> Ring {
        self.ring
    }

    /// Functions in layout order.
    pub fn functions(&self) -> &[FunctionId] {
        &self.functions
    }

    /// Tracepoint sites (kernel self-modifying text).
    pub fn tracepoints(&self) -> &[TracepointSite] {
        &self.tracepoints
    }

    pub(crate) fn push_function(&mut self, f: FunctionId) {
        self.functions.push(f);
    }

    pub(crate) fn push_tracepoint(&mut self, t: TracepointSite) {
        self.tracepoints.push(t);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_labels() {
        assert_eq!(Ring::User.to_string(), "user");
        assert_eq!(Ring::Kernel.to_string(), "kernel");
        assert_eq!(Ring::default(), Ring::User);
    }

    #[test]
    fn function_blocks_ordered() {
        let mut f = Function::new(FunctionId(0), ModuleId(0), "main".into());
        f.push_block(BlockId(3));
        f.push_block(BlockId(5));
        assert_eq!(f.entry(), BlockId(3));
        assert_eq!(f.blocks(), &[BlockId(3), BlockId(5)]);
        assert_eq!(f.name(), "main");
    }

    #[test]
    fn module_accumulates_functions_and_tracepoints() {
        let mut m = Module::new(ModuleId(0), "vmlinux".into(), Ring::Kernel);
        m.push_function(FunctionId(0));
        m.push_tracepoint(TracepointSite {
            block: BlockId(0),
            instr_index: 2,
        });
        assert_eq!(m.functions().len(), 1);
        assert_eq!(m.tracepoints().len(), 1);
        assert_eq!(m.ring(), Ring::Kernel);
    }
}

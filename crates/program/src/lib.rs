//! # hbbp-program — programs, blocks, images and block maps
//!
//! The HBBP pipeline is organised around *basic blocks*: the collector
//! attributes PMU samples to blocks, the analyzer maps blocks back to
//! instructions through static disassembly, and the hybrid rule decides per
//! block which PMU source to trust. This crate provides the program
//! representation shared by every other layer:
//!
//! * [`Program`] / [`ProgramBuilder`] — modules, functions and
//!   [`BasicBlock`]s with validated control flow ([`Terminator`]).
//! * [`Layout`] — virtual address assignment (user modules low, kernel
//!   modules high) and branch displacement patching.
//! * [`TextImage`] — encoded machine code per module, in both the on-disk
//!   and live views (they differ at kernel tracepoint sites, §III.C of the
//!   paper), plus [`TextImage::patch_from`], the paper's kernel-text patch
//!   step.
//! * [`BlockMap`] — static basic-block discovery over images ("static basic
//!   block maps", §V.B) with page-indexed address lookup ([`BlockCursor`])
//!   and LBR stream walking.
//! * [`Walker`] / [`ExecutionOracle`] — deterministic dynamic execution,
//!   shared by the CPU simulator and the instrumentation ground truth.
//! * [`Bbec`] / [`DenseBbec`] / [`MnemonicMix`] — block execution counts in
//!   the address-keyed and block-index coordinate systems, and the derived
//!   instruction mixes.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod bbec;
mod block;
mod builder;
mod dense;
mod ids;
mod image;
pub mod layout;
mod module;
mod program;
pub mod walk;

pub use bbec::{Bbec, MnemonicMix};
pub use block::{BasicBlock, Terminator};
pub use builder::ProgramBuilder;
pub use dense::DenseBbec;
pub use ids::{BlockId, FunctionId, ModuleId};
pub use image::{
    BlockCursor, BlockMap, DiscoverError, ImageView, PatchError, StaticBlock, StreamWalk, TextImage,
};
pub use layout::{Layout, SymbolInfo, KERNEL_BASE, USER_BASE};
pub use module::{Function, Module, Ring, TracepointSite};
pub use program::{Program, ProgramError};
pub use walk::{ConstOracle, ExecutionOracle, TripCountOracle, WalkEnd, Walker};

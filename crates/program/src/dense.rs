//! Dense, index-addressed basic block execution counts.
//!
//! [`crate::Bbec`] keys counts by block **start address** — the coordinate
//! system shared with ground truth, perf data and external consumers. The
//! analysis hot path, however, already knows every block's position in the
//! sorted [`BlockMap`](crate::BlockMap), so it can use the **block index**
//! as the coordinate instead and replace every `BTreeMap`/`HashMap` lookup
//! with direct vector indexing. [`DenseBbec`] is that representation: a
//! `Vec<f64>` with one slot per block of a specific block map.
//!
//! Use [`DenseBbec`] inside estimator/combiner loops; convert to [`Bbec`]
//! with [`DenseBbec::to_bbec`] at API boundaries where the address keyed
//! form is expected (serialization, cross-recording merges, ground-truth
//! comparisons). Conversions preserve values bit-for-bit; entries that are
//! exactly `0.0` are treated as "absent", matching the sparse tables'
//! convention that `Bbec::get` returns `0.0` for missing blocks.

use crate::{Bbec, BlockMap};

/// Per-basic-block execution counts, indexed by [`BlockMap`] block index.
///
/// A `DenseBbec` is only meaningful relative to the block map it was sized
/// for: index `i` refers to `map.blocks()[i]`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DenseBbec {
    counts: Vec<f64>,
}

impl DenseBbec {
    /// A zeroed table with `n` block slots.
    pub fn zeros(n: usize) -> DenseBbec {
        DenseBbec {
            counts: vec![0.0; n],
        }
    }

    /// A zeroed table with one slot per block of `map`.
    pub fn for_map(map: &BlockMap) -> DenseBbec {
        DenseBbec::zeros(map.len())
    }

    /// Number of block slots (equals the block map's length, not the
    /// number of nonzero entries).
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// Whether the table has no slots at all.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Add `weight` executions to the block at index `idx`.
    pub fn add(&mut self, idx: usize, weight: f64) {
        self.counts[idx] += weight;
    }

    /// Set the count of the block at index `idx`.
    pub fn set(&mut self, idx: usize, count: f64) {
        self.counts[idx] = count;
    }

    /// Count of the block at index `idx` (0 for out-of-range indices, so
    /// the API mirrors `Bbec::get` on absent blocks).
    pub fn get(&self, idx: usize) -> f64 {
        self.counts.get(idx).copied().unwrap_or(0.0)
    }

    /// Raw count slice, one slot per block.
    pub fn as_slice(&self) -> &[f64] {
        &self.counts
    }

    /// Iterate `(block_index, count)` over nonzero entries, in index
    /// (= address) order.
    pub fn iter_nonzero(&self) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c != 0.0)
            .map(|(i, &c)| (i, c))
    }

    /// Number of nonzero entries.
    pub fn nonzero_len(&self) -> usize {
        self.counts.iter().filter(|&&c| c != 0.0).count()
    }

    /// Sum of all counts.
    pub fn total(&self) -> f64 {
        self.counts.iter().sum()
    }

    /// Multiply every count by `factor`.
    pub fn scale(&mut self, factor: f64) {
        for v in &mut self.counts {
            *v *= factor;
        }
    }

    /// Merge another dense table into this one (summing counts).
    ///
    /// # Panics
    ///
    /// Panics if the tables were sized for different block maps.
    pub fn merge(&mut self, other: &DenseBbec) {
        assert_eq!(
            self.counts.len(),
            other.counts.len(),
            "dense BBEC size mismatch"
        );
        for (dst, src) in self.counts.iter_mut().zip(&other.counts) {
            *dst += src;
        }
    }

    /// Convert to the address-keyed form, using `map` (which must be the
    /// map this table was sized for) to translate indices into block start
    /// addresses. Zero entries are skipped.
    ///
    /// # Panics
    ///
    /// Panics if the table is longer than the map.
    pub fn to_bbec(&self, map: &BlockMap) -> Bbec {
        assert!(
            self.counts.len() <= map.len(),
            "dense BBEC larger than block map"
        );
        let mut bbec = Bbec::new();
        for (i, c) in self.iter_nonzero() {
            bbec.set(map.blocks()[i].start, c);
        }
        bbec
    }

    /// Build the dense form of an address-keyed table over `map`.
    ///
    /// Entries whose address is not a block start of `map` are dropped —
    /// they have no index in this coordinate system.
    pub fn from_bbec(bbec: &Bbec, map: &BlockMap) -> DenseBbec {
        let mut dense = DenseBbec::for_map(map);
        for (addr, c) in bbec.iter() {
            if let Some(i) = map.at_start(addr) {
                dense.counts[i] = c;
            }
        }
        dense
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ImageView, Layout, ProgramBuilder, Ring, TextImage};
    use hbbp_isa::instruction::build::*;
    use hbbp_isa::{Mnemonic, Reg};

    fn small_map() -> BlockMap {
        let mut b = ProgramBuilder::new("d");
        let m = b.module("d.bin", Ring::User);
        let f = b.function(m, "main");
        let b0 = b.block(f);
        let b1 = b.block(f);
        let b2 = b.block(f);
        b.push(b0, rr(Mnemonic::Add, Reg::gpr(0), Reg::gpr(1)));
        b.terminate_branch(b0, Mnemonic::Jnz, b0, b1);
        b.push(b1, rr(Mnemonic::Sub, Reg::gpr(0), Reg::gpr(1)));
        b.terminate_jump(b1, b2);
        b.terminate_exit(b2, bare(Mnemonic::Syscall));
        let mut p = b.build(f).unwrap();
        let layout = Layout::compute(&mut p).unwrap();
        let image = TextImage::encode(&p, &layout, p.modules()[0].id(), ImageView::Disk);
        BlockMap::discover(&[image], layout.symbols()).unwrap()
    }

    #[test]
    fn accumulate_and_total() {
        let mut d = DenseBbec::zeros(3);
        d.add(0, 1.0);
        d.add(0, 2.5);
        d.set(2, 4.0);
        assert_eq!(d.get(0), 3.5);
        assert_eq!(d.get(1), 0.0);
        assert_eq!(d.get(99), 0.0);
        assert_eq!(d.nonzero_len(), 2);
        assert!((d.total() - 7.5).abs() < 1e-12);
        d.scale(2.0);
        assert_eq!(d.get(2), 8.0);
    }

    #[test]
    fn merge_sums_slots() {
        let mut a = DenseBbec::zeros(2);
        a.set(0, 1.0);
        let mut b = DenseBbec::zeros(2);
        b.set(0, 2.0);
        b.set(1, 5.0);
        a.merge(&b);
        assert_eq!(a.get(0), 3.0);
        assert_eq!(a.get(1), 5.0);
    }

    #[test]
    fn bbec_roundtrip_over_map() {
        let map = small_map();
        let mut d = DenseBbec::for_map(&map);
        d.set(0, 10.0);
        d.set(map.len() - 1, 0.25);
        let bbec = d.to_bbec(&map);
        assert_eq!(bbec.len(), 2);
        assert_eq!(bbec.get(map.blocks()[0].start), 10.0);
        let back = DenseBbec::from_bbec(&bbec, &map);
        assert_eq!(back, d);
    }

    #[test]
    fn from_bbec_drops_unmapped_addrs() {
        let map = small_map();
        let mut bbec = Bbec::new();
        bbec.set(0xdead_beef, 7.0);
        bbec.set(map.blocks()[0].start, 1.0);
        let d = DenseBbec::from_bbec(&bbec, &map);
        assert_eq!(d.nonzero_len(), 1);
        assert_eq!(d.get(0), 1.0);
    }

    #[test]
    fn iter_nonzero_in_index_order() {
        let mut d = DenseBbec::zeros(4);
        d.set(3, 1.0);
        d.set(1, 2.0);
        let got: Vec<(usize, f64)> = d.iter_nonzero().collect();
        assert_eq!(got, vec![(1, 2.0), (3, 1.0)]);
    }
}

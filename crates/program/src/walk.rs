//! Deterministic execution walking.
//!
//! A [`Walker`] enumerates the dynamic basic-block sequence of a program
//! run, consulting an [`ExecutionOracle`] at conditional branches. The same
//! seeded oracle drives both the CPU/PMU simulator and the software
//! instrumenter, so the PMU's view and the ground truth describe the exact
//! same execution — the property the paper gets by running the real
//! workload under both collectors.

use crate::{BlockId, Program, Terminator};
use std::collections::HashMap;

/// Decides conditional-branch outcomes during a walk.
pub trait ExecutionOracle {
    /// Whether the conditional branch ending `block` is taken this time.
    fn branch_taken(&mut self, block: BlockId) -> bool;
}

impl<F: FnMut(BlockId) -> bool> ExecutionOracle for F {
    fn branch_taken(&mut self, block: BlockId) -> bool {
        self(block)
    }
}

/// Oracle that always takes (or never takes) branches.
#[derive(Debug, Clone, Copy)]
pub struct ConstOracle(pub bool);

impl ExecutionOracle for ConstOracle {
    fn branch_taken(&mut self, _block: BlockId) -> bool {
        self.0
    }
}

/// Oracle for counted loops: the branch ending a block is taken `trips - 1`
/// consecutive times, then falls through once, then the counter resets —
/// the shape of a `do { … } while (--n)` loop executing `trips` iterations
/// per entry. Blocks without an entry take the default.
#[derive(Debug, Clone)]
pub struct TripCountOracle {
    trips: HashMap<BlockId, u64>,
    state: HashMap<BlockId, u64>,
    default_trips: u64,
}

impl TripCountOracle {
    /// Create an oracle with a default trip count for unlisted blocks.
    pub fn new(default_trips: u64) -> TripCountOracle {
        TripCountOracle {
            trips: HashMap::new(),
            state: HashMap::new(),
            default_trips: default_trips.max(1),
        }
    }

    /// Set the trip count of a specific loop block.
    pub fn with_trips(mut self, block: BlockId, trips: u64) -> TripCountOracle {
        self.trips.insert(block, trips.max(1));
        self
    }
}

impl ExecutionOracle for TripCountOracle {
    fn branch_taken(&mut self, block: BlockId) -> bool {
        let trips = self
            .trips
            .get(&block)
            .copied()
            .unwrap_or(self.default_trips);
        let count = self.state.entry(block).or_insert(0);
        *count += 1;
        if *count >= trips {
            *count = 0;
            false
        } else {
            true
        }
    }
}

/// Why a walk ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalkEnd {
    /// The program reached an exit block.
    Exited,
    /// A return executed with an empty call stack (treated as thread exit).
    ReturnedFromEntry,
    /// The safety valve tripped.
    BlockLimit,
    /// The walk is still in progress.
    Running,
}

/// Iterator over the dynamic block sequence of one program run.
#[derive(Debug)]
pub struct Walker<'p, O> {
    program: &'p Program,
    oracle: O,
    current: Option<BlockId>,
    stack: Vec<BlockId>,
    started: bool,
    max_blocks: u64,
    executed: u64,
    end: WalkEnd,
}

/// Default safety valve: no realistic workload in this repo exceeds it.
pub const DEFAULT_MAX_BLOCKS: u64 = 2_000_000_000;

impl<'p, O: ExecutionOracle> Walker<'p, O> {
    /// Start a walk at the program's entry function.
    pub fn new(program: &'p Program, oracle: O) -> Walker<'p, O> {
        let entry = program.function(program.entry()).entry();
        Walker {
            program,
            oracle,
            current: Some(entry),
            stack: Vec::new(),
            started: false,
            max_blocks: DEFAULT_MAX_BLOCKS,
            executed: 0,
            end: WalkEnd::Running,
        }
    }

    /// Override the safety valve.
    pub fn with_max_blocks(mut self, max_blocks: u64) -> Walker<'p, O> {
        self.max_blocks = max_blocks;
        self
    }

    /// Number of blocks yielded so far.
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// How the walk ended ([`WalkEnd::Running`] while in progress).
    pub fn end(&self) -> WalkEnd {
        self.end
    }

    /// Advance to the next executed block.
    pub fn next_block(&mut self) -> Option<BlockId> {
        if self.executed >= self.max_blocks {
            self.end = WalkEnd::BlockLimit;
            return None;
        }
        if !self.started {
            self.started = true;
            self.executed += 1;
            return self.current;
        }
        let current = self.current?;
        let next = match self.program.block(current).terminator() {
            Terminator::Jump(t) => Some(t),
            Terminator::Branch { taken, fallthrough } => {
                if self.oracle.branch_taken(current) {
                    Some(taken)
                } else {
                    Some(fallthrough)
                }
            }
            Terminator::Call { callee, return_to } => {
                self.stack.push(return_to);
                Some(self.program.function(callee).entry())
            }
            Terminator::Ret => match self.stack.pop() {
                Some(ret) => Some(ret),
                None => {
                    self.end = WalkEnd::ReturnedFromEntry;
                    None
                }
            },
            Terminator::Exit => {
                self.end = WalkEnd::Exited;
                None
            }
        };
        self.current = next;
        if next.is_some() {
            self.executed += 1;
        }
        next
    }
}

impl<O: ExecutionOracle> Iterator for Walker<'_, O> {
    type Item = BlockId;

    fn next(&mut self) -> Option<Self::Item> {
        self.next_block()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ProgramBuilder, Ring};
    use hbbp_isa::instruction::build::*;
    use hbbp_isa::{Mnemonic, Reg};

    /// `main: b0 -> call leaf -> b1(loop) -> b2(exit)`.
    fn program() -> (Program, Vec<BlockId>) {
        let mut b = ProgramBuilder::new("w");
        let m = b.module("w.bin", Ring::User);
        let main = b.function(m, "main");
        let leaf = b.function(m, "leaf");

        let l0 = b.block(leaf);
        b.push(l0, rr(Mnemonic::Add, Reg::gpr(0), Reg::gpr(1)));
        b.terminate_ret(l0);

        let b0 = b.block(main);
        let b1 = b.block(main);
        let b2 = b.block(main);
        b.push(b0, ri(Mnemonic::Mov, Reg::gpr(0), 3));
        b.terminate_call(b0, leaf, b1);
        b.push(b1, rr(Mnemonic::Sub, Reg::gpr(0), Reg::gpr(1)));
        b.terminate_branch(b1, Mnemonic::Jnz, b1, b2);
        b.terminate_exit(b2, bare(Mnemonic::Syscall));

        let p = b.build(main).unwrap();
        (p, vec![l0, b0, b1, b2])
    }

    use crate::Program;

    #[test]
    fn walk_visits_call_and_loop() {
        let (p, ids) = program();
        let (l0, b0, b1, b2) = (ids[0], ids[1], ids[2], ids[3]);
        let oracle = TripCountOracle::new(1).with_trips(b1, 3);
        let seq: Vec<BlockId> = Walker::new(&p, oracle).collect();
        assert_eq!(seq, vec![b0, l0, b1, b1, b1, b2]);
    }

    #[test]
    fn walk_end_reason() {
        let (p, ids) = program();
        let b1 = ids[2];
        let mut w = Walker::new(&p, TripCountOracle::new(1).with_trips(b1, 2));
        while w.next_block().is_some() {}
        assert_eq!(w.end(), WalkEnd::Exited);
        assert_eq!(w.executed(), 5);
    }

    #[test]
    fn block_limit_stops_infinite_loops() {
        let (p, ids) = program();
        let b1 = ids[2];
        // Loop forever.
        let oracle = move |b: BlockId| b == b1;
        let mut w = Walker::new(&p, oracle).with_max_blocks(100);
        let mut n = 0;
        while w.next_block().is_some() {
            n += 1;
        }
        assert_eq!(n, 100);
        assert_eq!(w.end(), WalkEnd::BlockLimit);
    }

    #[test]
    fn const_oracle_never_taken_exits_quickly() {
        let (p, ids) = program();
        let seq: Vec<BlockId> = Walker::new(&p, ConstOracle(false)).collect();
        assert_eq!(seq, vec![ids[1], ids[0], ids[2], ids[3]]);
    }

    #[test]
    fn trip_counts_reset_between_entries() {
        let mut o = TripCountOracle::new(3);
        let b = BlockId::from_index(0);
        // First entry: taken, taken, not-taken.
        assert!(o.branch_taken(b));
        assert!(o.branch_taken(b));
        assert!(!o.branch_taken(b));
        // Second entry: same pattern.
        assert!(o.branch_taken(b));
        assert!(o.branch_taken(b));
        assert!(!o.branch_taken(b));
    }

    #[test]
    fn closure_oracle_works() {
        let (p, ids) = program();
        let b1 = ids[2];
        let mut countdown = 2;
        let oracle = move |b: BlockId| {
            if b == b1 && countdown > 0 {
                countdown -= 1;
                true
            } else {
                false
            }
        };
        let seq: Vec<BlockId> = Walker::new(&p, oracle).collect();
        assert_eq!(seq.iter().filter(|&&b| b == b1).count(), 3);
    }
}

//! Basic blocks and terminators.

use crate::{BlockId, FunctionId};
use hbbp_isa::{BranchKind, Instruction};
use std::fmt;

/// How control leaves a basic block.
///
/// Every terminator except [`Terminator::Exit`] corresponds to an explicit
/// branch instruction that must be the last instruction of the block — the
/// branch itself retires and appears in instruction mixes (the paper's
/// Figures 3/4 rank `JMP`, `RET_NEAR`, conditional jumps among the hottest
/// mnemonics).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Terminator {
    /// Unconditional jump to another block of the same function.
    Jump(BlockId),
    /// Conditional branch: `taken` on branch-taken, `fallthrough` otherwise.
    ///
    /// The fallthrough block must be laid out immediately after this block.
    Branch {
        /// Successor when the branch is taken.
        taken: BlockId,
        /// Successor when the branch falls through (next block in memory).
        fallthrough: BlockId,
    },
    /// Near call into `callee`; execution resumes at `return_to` (which must
    /// be laid out immediately after this block).
    Call {
        /// Called function.
        callee: FunctionId,
        /// Block execution resumes at after the callee returns.
        return_to: BlockId,
    },
    /// Near return to the caller (pops the simulated return stack).
    Ret,
    /// Program (thread) exit; the block may end with any instruction.
    Exit,
}

impl Terminator {
    /// Branch kind required of the block's final instruction.
    pub fn required_branch_kind(&self) -> Option<BranchKind> {
        match self {
            Terminator::Jump(_) => Some(BranchKind::Unconditional),
            Terminator::Branch { .. } => Some(BranchKind::Conditional),
            Terminator::Call { .. } => Some(BranchKind::Call),
            Terminator::Ret => Some(BranchKind::Return),
            Terminator::Exit => None,
        }
    }

    /// Static successor blocks (excluding call/return linkage).
    pub fn successors(&self) -> Vec<BlockId> {
        match *self {
            Terminator::Jump(t) => vec![t],
            Terminator::Branch { taken, fallthrough } => vec![taken, fallthrough],
            Terminator::Call { return_to, .. } => vec![return_to],
            Terminator::Ret | Terminator::Exit => vec![],
        }
    }
}

impl fmt::Display for Terminator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Terminator::Jump(t) => write!(f, "jump {t}"),
            Terminator::Branch { taken, fallthrough } => {
                write!(f, "branch taken={taken} fallthrough={fallthrough}")
            }
            Terminator::Call { callee, return_to } => {
                write!(f, "call {callee} return_to={return_to}")
            }
            Terminator::Ret => write!(f, "ret"),
            Terminator::Exit => write!(f, "exit"),
        }
    }
}

/// A basic block: a straight-line instruction sequence ending in a
/// terminator.
#[derive(Debug, Clone)]
pub struct BasicBlock {
    id: BlockId,
    function: FunctionId,
    instrs: Vec<Instruction>,
    terminator: Terminator,
}

impl BasicBlock {
    pub(crate) fn new(
        id: BlockId,
        function: FunctionId,
        instrs: Vec<Instruction>,
        terminator: Terminator,
    ) -> BasicBlock {
        BasicBlock {
            id,
            function,
            instrs,
            terminator,
        }
    }

    /// The block's id.
    pub fn id(&self) -> BlockId {
        self.id
    }

    /// The function this block belongs to.
    pub fn function(&self) -> FunctionId {
        self.function
    }

    /// All instructions, terminator branch included.
    pub fn instrs(&self) -> &[Instruction] {
        &self.instrs
    }

    /// Number of instructions (the HBBP "block length" feature; the paper's
    /// learned rule compares it with the cutoff 18).
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Whether the block carries no instructions (invalid in finished
    /// programs; used transiently by the builder).
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// Encoded size of the block in bytes.
    pub fn byte_len(&self) -> u32 {
        self.instrs.iter().map(Instruction::encoded_len).sum()
    }

    /// The block's terminator.
    pub fn terminator(&self) -> Terminator {
        self.terminator
    }

    /// The final (terminator) instruction.
    pub fn last_instr(&self) -> Option<&Instruction> {
        self.instrs.last()
    }

    pub(crate) fn instrs_mut(&mut self) -> &mut Vec<Instruction> {
        &mut self.instrs
    }

    /// Validate that the final instruction matches the terminator.
    pub(crate) fn validate(&self) -> Result<(), String> {
        if self.instrs.is_empty() {
            return Err(format!("{}: block has no instructions", self.id));
        }
        let last = self.instrs.last().expect("non-empty");
        match self.terminator.required_branch_kind() {
            Some(kind) => {
                if last.branch_kind() != Some(kind) {
                    return Err(format!(
                        "{}: terminator {} requires a {kind} branch, found `{last}`",
                        self.id, self.terminator
                    ));
                }
            }
            None => {
                if last.is_branch() {
                    return Err(format!(
                        "{}: exit block must not end with a branch, found `{last}`",
                        self.id
                    ));
                }
            }
        }
        // Only the final instruction may branch.
        for (i, instr) in self.instrs[..self.instrs.len() - 1].iter().enumerate() {
            if instr.is_branch() {
                return Err(format!(
                    "{}: branch `{instr}` at position {i} is not the final instruction",
                    self.id
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbbp_isa::instruction::build::*;
    use hbbp_isa::{Mnemonic, Operand, Reg};

    fn bb(instrs: Vec<Instruction>, term: Terminator) -> BasicBlock {
        BasicBlock::new(BlockId(0), FunctionId(0), instrs, term)
    }

    #[test]
    fn valid_jump_block() {
        let b = bb(
            vec![
                rr(Mnemonic::Add, Reg::gpr(0), Reg::gpr(1)),
                Instruction::with_operands(Mnemonic::Jmp, vec![Operand::Imm(0)]),
            ],
            Terminator::Jump(BlockId(1)),
        );
        assert!(b.validate().is_ok());
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn terminator_mismatch_rejected() {
        let b = bb(vec![bare(Mnemonic::RetNear)], Terminator::Jump(BlockId(1)));
        assert!(b.validate().is_err());
    }

    #[test]
    fn exit_block_must_not_branch() {
        let b = bb(vec![bare(Mnemonic::Jmp)], Terminator::Exit);
        assert!(b.validate().is_err());
        let ok = bb(vec![bare(Mnemonic::Syscall)], Terminator::Exit);
        assert!(ok.validate().is_ok());
    }

    #[test]
    fn midblock_branch_rejected() {
        let b = bb(
            vec![
                Instruction::with_operands(Mnemonic::Jmp, vec![Operand::Imm(0)]),
                bare(Mnemonic::RetNear),
            ],
            Terminator::Ret,
        );
        assert!(b.validate().is_err());
    }

    #[test]
    fn empty_block_rejected() {
        let b = bb(vec![], Terminator::Exit);
        assert!(b.validate().is_err());
    }

    #[test]
    fn successors() {
        assert_eq!(Terminator::Jump(BlockId(4)).successors(), vec![BlockId(4)]);
        assert_eq!(
            Terminator::Branch {
                taken: BlockId(1),
                fallthrough: BlockId(2)
            }
            .successors()
            .len(),
            2
        );
        assert!(Terminator::Ret.successors().is_empty());
        assert!(Terminator::Exit.successors().is_empty());
    }

    #[test]
    fn byte_len_sums_instructions() {
        let i1 = rr(Mnemonic::Add, Reg::gpr(0), Reg::gpr(1));
        let i2 = bare(Mnemonic::RetNear);
        let expect = i1.encoded_len() + i2.encoded_len();
        let b = bb(vec![i1, i2], Terminator::Ret);
        assert_eq!(b.byte_len(), expect);
    }
}

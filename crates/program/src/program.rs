//! The [`Program`] arena: modules, functions and blocks of one workload.

use crate::{BasicBlock, BlockId, Function, FunctionId, Module, ModuleId, Ring, Terminator};
use std::fmt;

/// A complete program: one or more modules (user binaries and/or kernel
/// modules) with their functions and basic blocks.
///
/// Programs are built with [`crate::ProgramBuilder`], validated on
/// [`crate::ProgramBuilder::build`], and assigned addresses by
/// [`crate::Layout::compute`].
#[derive(Debug, Clone)]
pub struct Program {
    name: String,
    modules: Vec<Module>,
    functions: Vec<Function>,
    blocks: Vec<BasicBlock>,
    entry: FunctionId,
}

impl Program {
    pub(crate) fn new(
        name: String,
        modules: Vec<Module>,
        functions: Vec<Function>,
        blocks: Vec<BasicBlock>,
        entry: FunctionId,
    ) -> Program {
        Program {
            name,
            modules,
            functions,
            blocks,
            entry,
        }
    }

    /// Program name (used in reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All modules.
    pub fn modules(&self) -> &[Module] {
        &self.modules
    }

    /// All functions.
    pub fn functions(&self) -> &[Function] {
        &self.functions
    }

    /// Number of basic blocks in the program.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Iterate over all blocks.
    pub fn blocks(&self) -> impl Iterator<Item = &BasicBlock> {
        self.blocks.iter()
    }

    /// The program's entry function (execution starts at its entry block).
    pub fn entry(&self) -> FunctionId {
        self.entry
    }

    /// Look up a block.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this program.
    pub fn block(&self, id: BlockId) -> &BasicBlock {
        &self.blocks[id.index()]
    }

    pub(crate) fn block_mut(&mut self, id: BlockId) -> &mut BasicBlock {
        &mut self.blocks[id.index()]
    }

    /// Look up a function.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this program.
    pub fn function(&self, id: FunctionId) -> &Function {
        &self.functions[id.index()]
    }

    /// Look up a module.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this program.
    pub fn module(&self, id: ModuleId) -> &Module {
        &self.modules[id.index()]
    }

    /// The module containing a block.
    pub fn module_of_block(&self, id: BlockId) -> &Module {
        let f = self.block(id).function();
        self.module(self.function(f).module())
    }

    /// The ring a block executes in.
    pub fn ring_of_block(&self, id: BlockId) -> Ring {
        self.module_of_block(id).ring()
    }

    /// Total static instruction count.
    pub fn instr_count(&self) -> usize {
        self.blocks.iter().map(BasicBlock::len).sum()
    }

    /// Distribution summary of block lengths (min, mean, max) — the feature
    /// HBBP's learned rule keys on.
    pub fn block_length_stats(&self) -> (usize, f64, usize) {
        let mut min = usize::MAX;
        let mut max = 0usize;
        let mut sum = 0usize;
        for b in &self.blocks {
            min = min.min(b.len());
            max = max.max(b.len());
            sum += b.len();
        }
        if self.blocks.is_empty() {
            (0, 0.0, 0)
        } else {
            (min, sum as f64 / self.blocks.len() as f64, max)
        }
    }

    /// Validate structural invariants (block shape, terminator targets,
    /// fallthrough adjacency, entry reachability of functions).
    pub fn validate(&self) -> Result<(), ProgramError> {
        if self.functions.get(self.entry.index()).is_none() {
            return Err(ProgramError::new("entry function does not exist"));
        }
        for f in &self.functions {
            if f.blocks().is_empty() {
                return Err(ProgramError::new(format!(
                    "function `{}` has no blocks",
                    f.name()
                )));
            }
        }
        for (fi, f) in self.functions.iter().enumerate() {
            for (pos, &bid) in f.blocks().iter().enumerate() {
                let block = self
                    .blocks
                    .get(bid.index())
                    .ok_or_else(|| ProgramError::new(format!("{bid} out of range")))?;
                if block.function().index() != fi {
                    return Err(ProgramError::new(format!(
                        "{bid} listed in `{}` but owned by {}",
                        f.name(),
                        block.function()
                    )));
                }
                block.validate().map_err(ProgramError::new)?;
                self.validate_terminator(f, pos, block)?;
            }
        }
        Ok(())
    }

    fn validate_terminator(
        &self,
        f: &Function,
        pos: usize,
        block: &BasicBlock,
    ) -> Result<(), ProgramError> {
        let same_function = |target: BlockId| -> Result<(), ProgramError> {
            let tb = self
                .blocks
                .get(target.index())
                .ok_or_else(|| ProgramError::new(format!("target {target} out of range")))?;
            if tb.function() != block.function() {
                return Err(ProgramError::new(format!(
                    "{}: branch target {target} is in another function",
                    block.id()
                )));
            }
            Ok(())
        };
        let next_in_layout = f.blocks().get(pos + 1).copied();
        match block.terminator() {
            Terminator::Jump(t) => same_function(t),
            Terminator::Branch { taken, fallthrough } => {
                same_function(taken)?;
                same_function(fallthrough)?;
                if next_in_layout != Some(fallthrough) {
                    return Err(ProgramError::new(format!(
                        "{}: fallthrough {fallthrough} is not the next block in layout",
                        block.id()
                    )));
                }
                Ok(())
            }
            Terminator::Call { callee, return_to } => {
                if self.functions.get(callee.index()).is_none() {
                    return Err(ProgramError::new(format!(
                        "{}: call target {callee} does not exist",
                        block.id()
                    )));
                }
                same_function(return_to)?;
                if next_in_layout != Some(return_to) {
                    return Err(ProgramError::new(format!(
                        "{}: call return block {return_to} is not the next block in layout",
                        block.id()
                    )));
                }
                Ok(())
            }
            Terminator::Ret | Terminator::Exit => Ok(()),
        }
    }
}

/// Error describing a structural problem in a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProgramError {
    message: String,
}

impl ProgramError {
    pub(crate) fn new(message: impl Into<String>) -> ProgramError {
        ProgramError {
            message: message.into(),
        }
    }
}

impl fmt::Display for ProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid program: {}", self.message)
    }
}

impl std::error::Error for ProgramError {}

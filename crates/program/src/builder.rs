//! Fluent construction of [`Program`]s.
//!
//! Workload generators assemble hundreds of functions; the builder keeps
//! that ergonomic while deferring validation to [`ProgramBuilder::build`].
//! Branch displacement immediates are inserted as placeholders and patched
//! by [`crate::Layout::compute`] once addresses are known.

use crate::{
    BasicBlock, BlockId, FunctionId, Module, ModuleId, Program, ProgramError, Ring, Terminator,
    TracepointSite,
};
use hbbp_isa::{Instruction, Mnemonic, Operand};

/// Incremental builder for [`Program`].
///
/// ```
/// use hbbp_program::{ProgramBuilder, Ring, Terminator};
/// use hbbp_isa::{instruction::build, Mnemonic, Reg};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = ProgramBuilder::new("demo");
/// let m = b.module("demo.bin", Ring::User);
/// let f = b.function(m, "main");
/// let b0 = b.block(f);
/// b.push(b0, build::rr(Mnemonic::Add, Reg::gpr(0), Reg::gpr(1)));
/// b.terminate_exit(b0, build::bare(Mnemonic::Syscall));
/// let program = b.build(f)?;
/// assert_eq!(program.block_count(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    name: String,
    modules: Vec<Module>,
    functions: Vec<crate::Function>,
    blocks: Vec<PendingBlock>,
}

#[derive(Debug)]
struct PendingBlock {
    id: BlockId,
    function: FunctionId,
    instrs: Vec<Instruction>,
    terminator: Option<Terminator>,
}

impl ProgramBuilder {
    /// Start a new program.
    pub fn new(name: impl Into<String>) -> ProgramBuilder {
        ProgramBuilder {
            name: name.into(),
            ..ProgramBuilder::default()
        }
    }

    /// Add a module.
    pub fn module(&mut self, name: impl Into<String>, ring: Ring) -> ModuleId {
        let id = ModuleId::from_index(self.modules.len());
        self.modules.push(Module::new(id, name.into(), ring));
        id
    }

    /// Add a function to a module.
    ///
    /// # Panics
    ///
    /// Panics if `module` was not created by this builder.
    pub fn function(&mut self, module: ModuleId, name: impl Into<String>) -> FunctionId {
        let id = FunctionId::from_index(self.functions.len());
        self.functions
            .push(crate::Function::new(id, module, name.into()));
        self.modules[module.index()].push_function(id);
        id
    }

    /// Add an (empty) block to a function. Blocks are laid out in creation
    /// order within their function.
    ///
    /// # Panics
    ///
    /// Panics if `function` was not created by this builder.
    pub fn block(&mut self, function: FunctionId) -> BlockId {
        let id = BlockId::from_index(self.blocks.len());
        self.blocks.push(PendingBlock {
            id,
            function,
            instrs: Vec::new(),
            terminator: None,
        });
        self.functions[function.index()].push_block(id);
        id
    }

    /// Append a (non-branch) instruction to a block.
    ///
    /// # Panics
    ///
    /// Panics if the block is already terminated.
    pub fn push(&mut self, block: BlockId, instr: Instruction) {
        let pb = &mut self.blocks[block.index()];
        assert!(
            pb.terminator.is_none(),
            "{block} already terminated; cannot append `{instr}`"
        );
        pb.instrs.push(instr);
    }

    /// Append many instructions.
    pub fn push_all(&mut self, block: BlockId, instrs: impl IntoIterator<Item = Instruction>) {
        for i in instrs {
            self.push(block, i);
        }
    }

    /// Current instruction count of a block (before termination).
    pub fn block_len(&self, block: BlockId) -> usize {
        self.blocks[block.index()].instrs.len()
    }

    /// Terminate with an unconditional jump (`JMP target`).
    pub fn terminate_jump(&mut self, block: BlockId, target: BlockId) {
        self.push(
            block,
            Instruction::with_operands(Mnemonic::Jmp, vec![Operand::Imm(0)]),
        );
        self.set_terminator(block, Terminator::Jump(target));
    }

    /// Terminate with a conditional branch using the given Jcc mnemonic.
    ///
    /// # Panics
    ///
    /// Panics if `jcc` is not a conditional-branch mnemonic.
    pub fn terminate_branch(
        &mut self,
        block: BlockId,
        jcc: Mnemonic,
        taken: BlockId,
        fallthrough: BlockId,
    ) {
        assert_eq!(
            jcc.category(),
            hbbp_isa::Category::CondBranch,
            "{jcc} is not a conditional branch"
        );
        self.push(
            block,
            Instruction::with_operands(jcc, vec![Operand::Imm(0)]),
        );
        self.set_terminator(block, Terminator::Branch { taken, fallthrough });
    }

    /// Terminate with a near call; execution resumes at `return_to`.
    pub fn terminate_call(&mut self, block: BlockId, callee: FunctionId, return_to: BlockId) {
        self.push(
            block,
            Instruction::with_operands(Mnemonic::CallNear, vec![Operand::Imm(0)]),
        );
        self.set_terminator(block, Terminator::Call { callee, return_to });
    }

    /// Terminate with a near return.
    pub fn terminate_ret(&mut self, block: BlockId) {
        self.push(block, Instruction::new(Mnemonic::RetNear));
        self.set_terminator(block, Terminator::Ret);
    }

    /// Terminate as a program exit block, appending `final_instr` (which
    /// must not be a branch).
    pub fn terminate_exit(&mut self, block: BlockId, final_instr: Instruction) {
        self.push(block, final_instr);
        self.set_terminator(block, Terminator::Exit);
    }

    fn set_terminator(&mut self, block: BlockId, term: Terminator) {
        let pb = &mut self.blocks[block.index()];
        assert!(pb.terminator.is_none(), "{block} terminated twice");
        pb.terminator = Some(term);
    }

    /// Register a tracepoint site: appends a multi-byte NOP to `block` (the
    /// live-kernel form) and records the site so images can encode the
    /// on-disk `JMP` form. Only meaningful for kernel modules.
    pub fn tracepoint(&mut self, block: BlockId) {
        let index = self.blocks[block.index()].instrs.len();
        // The live form: a NOP as wide as the disk-form JMP (both carry a
        // 4-byte immediate payload in the synthetic encoding).
        self.push(
            block,
            Instruction::with_operands(Mnemonic::NopMulti, vec![Operand::Imm(0)]),
        );
        let function = self.blocks[block.index()].function;
        let module = self.functions[function.index()].module();
        self.modules[module.index()].push_tracepoint(TracepointSite {
            block,
            instr_index: index,
        });
    }

    /// Finish and validate the program.
    ///
    /// # Errors
    ///
    /// Returns a [`ProgramError`] if any block is unterminated or the
    /// program violates structural invariants (see [`Program::validate`]).
    pub fn build(self, entry: FunctionId) -> Result<Program, ProgramError> {
        let mut blocks = Vec::with_capacity(self.blocks.len());
        for pb in self.blocks {
            let term = pb
                .terminator
                .ok_or_else(|| ProgramError::new(format!("{} was never terminated", pb.id)))?;
            blocks.push(BasicBlock::new(pb.id, pb.function, pb.instrs, term));
        }
        let program = Program::new(self.name, self.modules, self.functions, blocks, entry);
        program.validate()?;
        Ok(program)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbbp_isa::instruction::build::*;
    use hbbp_isa::Reg;

    #[test]
    fn build_two_function_program() {
        let mut b = ProgramBuilder::new("t");
        let m = b.module("t.bin", Ring::User);
        let main = b.function(m, "main");
        let helper = b.function(m, "helper");

        let h0 = b.block(helper);
        b.push(h0, rr(Mnemonic::Add, Reg::gpr(0), Reg::gpr(1)));
        b.terminate_ret(h0);

        let b0 = b.block(main);
        let b1 = b.block(main);
        b.push(b0, ri(Mnemonic::Mov, Reg::gpr(0), 1));
        b.terminate_call(b0, helper, b1);
        b.terminate_exit(b1, bare(Mnemonic::Syscall));

        let p = b.build(main).expect("valid");
        assert_eq!(p.block_count(), 3);
        assert_eq!(p.functions().len(), 2);
        assert_eq!(p.function(main).name(), "main");
        assert_eq!(p.entry(), main);
        // Call block ends with CALL_NEAR.
        let call_block = p.block(b0);
        assert_eq!(
            call_block.last_instr().unwrap().mnemonic(),
            Mnemonic::CallNear
        );
    }

    #[test]
    fn unterminated_block_rejected() {
        let mut b = ProgramBuilder::new("t");
        let m = b.module("t.bin", Ring::User);
        let f = b.function(m, "main");
        let blk = b.block(f);
        b.push(blk, bare(Mnemonic::Nop));
        assert!(b.build(f).is_err());
    }

    #[test]
    fn branch_fallthrough_must_be_adjacent() {
        let mut b = ProgramBuilder::new("t");
        let m = b.module("t.bin", Ring::User);
        let f = b.function(m, "main");
        let b0 = b.block(f);
        let b1 = b.block(f);
        let b2 = b.block(f);
        // b0 branches with fallthrough b2, but b1 is next in layout: invalid.
        b.terminate_branch(b0, Mnemonic::Jnz, b1, b2);
        b.terminate_exit(b1, bare(Mnemonic::Nop));
        b.terminate_exit(b2, bare(Mnemonic::Nop));
        assert!(b.build(f).is_err());
    }

    #[test]
    fn valid_loop_shape() {
        let mut b = ProgramBuilder::new("loop");
        let m = b.module("loop.bin", Ring::User);
        let f = b.function(m, "main");
        let head = b.block(f);
        let exit = b.block(f);
        b.push(head, ri(Mnemonic::Add, Reg::gpr(0), 1));
        // Loop: taken -> back to head, fallthrough -> exit (next in layout).
        b.terminate_branch(head, Mnemonic::Jnz, head, exit);
        b.terminate_exit(exit, bare(Mnemonic::Syscall));
        let p = b.build(f).expect("valid loop");
        assert_eq!(p.block(head).len(), 2);
    }

    #[test]
    fn tracepoint_registers_site_and_nop() {
        let mut b = ProgramBuilder::new("k");
        let m = b.module("probe.ko", Ring::Kernel);
        let f = b.function(m, "probed");
        let b0 = b.block(f);
        b.push(b0, rr(Mnemonic::Add, Reg::gpr(0), Reg::gpr(1)));
        b.tracepoint(b0);
        b.push(b0, rr(Mnemonic::Sub, Reg::gpr(0), Reg::gpr(1)));
        b.terminate_ret(b0);
        let p = b.build(f).unwrap();
        let sites = p.module(m).tracepoints();
        assert_eq!(sites.len(), 1);
        assert_eq!(sites[0].instr_index, 1);
        assert_eq!(p.block(b0).instrs()[1].mnemonic(), Mnemonic::NopMulti);
    }

    #[test]
    #[should_panic(expected = "already terminated")]
    fn push_after_terminate_panics() {
        let mut b = ProgramBuilder::new("t");
        let m = b.module("t.bin", Ring::User);
        let f = b.function(m, "main");
        let blk = b.block(f);
        b.terminate_ret(blk);
        b.push(blk, bare(Mnemonic::Nop));
    }

    #[test]
    #[should_panic(expected = "not a conditional branch")]
    fn non_jcc_branch_mnemonic_panics() {
        let mut b = ProgramBuilder::new("t");
        let m = b.module("t.bin", Ring::User);
        let f = b.function(m, "main");
        let b0 = b.block(f);
        let b1 = b.block(f);
        b.terminate_branch(b0, Mnemonic::Add, b1, b1);
    }
}

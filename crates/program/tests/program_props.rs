//! Property tests: random well-formed programs must lay out, encode,
//! and rediscover consistently; the indexed/cached address lookups must
//! agree with a naive linear scan on every address.

use hbbp_isa::instruction::build;
use hbbp_isa::{Mnemonic, Reg};
use hbbp_program::{
    Bbec, BlockMap, DenseBbec, ImageView, Layout, ProgramBuilder, Ring, TextImage, TripCountOracle,
    Walker,
};
use proptest::prelude::*;

/// A recipe for one generated function: a chain of blocks, each with a
/// body length and a flag for whether it loops back on itself.
#[derive(Debug, Clone)]
struct FnRecipe {
    blocks: Vec<(u8, bool)>,
}

fn arb_fn() -> impl Strategy<Value = FnRecipe> {
    proptest::collection::vec((1u8..20, any::<bool>()), 1..8).prop_map(|blocks| FnRecipe { blocks })
}

fn filler(i: usize) -> hbbp_isa::Instruction {
    match i % 4 {
        0 => build::rr(Mnemonic::Add, Reg::gpr((i % 16) as u8), Reg::gpr(1)),
        1 => build::rr(Mnemonic::Mov, Reg::gpr(2), Reg::gpr((i % 16) as u8)),
        2 => build::ri(Mnemonic::Cmp, Reg::gpr(0), i as i32),
        _ => build::rr(Mnemonic::Xor, Reg::gpr(3), Reg::gpr(4)),
    }
}

/// Build a program from recipes: function 0 is the entry; every other
/// function is called once from the entry chain.
fn build_program(recipes: &[FnRecipe]) -> hbbp_program::Program {
    let mut b = ProgramBuilder::new("prop");
    let m = b.module("prop.bin", Ring::User);
    let fids: Vec<_> = (0..recipes.len())
        .map(|i| b.function(m, format!("f{i}")))
        .collect();

    for (fi, recipe) in recipes.iter().enumerate() {
        let bids: Vec<_> = recipe.blocks.iter().map(|_| b.block(fids[fi])).collect();
        for (bi, &(len, self_loop)) in recipe.blocks.iter().enumerate() {
            let bid = bids[bi];
            for k in 0..len {
                b.push(bid, filler(k as usize + bi));
            }
            let is_last = bi + 1 == recipe.blocks.len();
            if is_last {
                if fi == 0 {
                    b.terminate_exit(bid, build::bare(Mnemonic::Syscall));
                } else {
                    b.terminate_ret(bid);
                }
            } else if self_loop {
                b.terminate_branch(bid, Mnemonic::Jnz, bid, bids[bi + 1]);
            } else if fi == 0 && bi < recipes.len() - 1 && bi + 1 < recipe.blocks.len() {
                // Entry function calls other functions along its chain.
                let callee = fids[(bi + 1) % recipes.len()];
                if callee != fids[0] {
                    b.terminate_call(bid, callee, bids[bi + 1]);
                } else {
                    b.terminate_jump(bid, bids[bi + 1]);
                }
            } else {
                b.terminate_jump(bid, bids[bi + 1]);
            }
        }
    }
    b.build(fids[0]).expect("valid generated program")
}

/// Naive reference for `BlockMap::enclosing`: linear scan over all blocks.
fn enclosing_linear(map: &BlockMap, addr: u64) -> Option<usize> {
    map.blocks()
        .iter()
        .position(|b| addr >= b.start && addr < b.end())
}

/// A two-ring program (user + kernel modules), so lookups must cross the
/// sparse user/kernel address-space split the page index segments over.
fn build_two_ring(recipes: &[FnRecipe]) -> (hbbp_program::Program, Layout) {
    let mut b = ProgramBuilder::new("rings");
    let um = b.module("u.bin", Ring::User);
    let km = b.module("k.ko", Ring::Kernel);
    let entry = b.function(um, "main");
    let e0 = b.block(entry);
    b.push(e0, filler(0));
    b.terminate_exit(e0, build::bare(Mnemonic::Syscall));
    // Kernel functions are never called — they only exist to populate the
    // high half of the address space for lookup tests.
    for (fi, recipe) in recipes.iter().enumerate() {
        let f = b.function(km, format!("k{fi}"));
        let bids: Vec<_> = recipe.blocks.iter().map(|_| b.block(f)).collect();
        for (bi, &(len, self_loop)) in recipe.blocks.iter().enumerate() {
            let bid = bids[bi];
            for k in 0..len {
                b.push(bid, filler(k as usize + bi));
            }
            if bi + 1 == recipe.blocks.len() {
                b.terminate_ret(bid);
            } else if self_loop {
                b.terminate_branch(bid, Mnemonic::Jnz, bid, bids[bi + 1]);
            } else {
                b.terminate_jump(bid, bids[bi + 1]);
            }
        }
    }
    let mut p = b.build(entry).expect("valid generated program");
    let layout = Layout::compute(&mut p).unwrap();
    (p, layout)
}

/// Interesting probe addresses for a map: block boundaries ± 1, interior
/// instruction addresses, and far-out-of-range extremes.
fn probe_addrs(map: &BlockMap) -> Vec<u64> {
    let mut addrs = vec![0, 1, u64::MAX, u64::MAX - 1];
    for b in map.blocks() {
        addrs.extend([
            b.start.wrapping_sub(1),
            b.start,
            b.start + 1,
            b.end() - 1,
            b.end(),
            b.end() + 1,
        ]);
        for &off in &b.offsets {
            addrs.push(b.start + off as u64);
        }
    }
    addrs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn discovery_reproduces_program_blocks(recipes in proptest::collection::vec(arb_fn(), 1..5)) {
        let mut p = build_program(&recipes);
        let layout = Layout::compute(&mut p).unwrap();
        let images: Vec<TextImage> = p
            .modules()
            .iter()
            .map(|m| TextImage::encode(&p, &layout, m.id(), ImageView::Disk))
            .collect();
        let map = BlockMap::discover(&images, layout.symbols()).unwrap();
        prop_assert_eq!(map.len(), p.block_count());
        for block in p.blocks() {
            let start = layout.block_start(block.id());
            let idx = map.at_start(start);
            prop_assert!(idx.is_some(), "block at {:#x} missing", start);
            let sb = &map.blocks()[idx.unwrap()];
            prop_assert_eq!(sb.len(), block.len());
            prop_assert_eq!(sb.instrs.as_slice(), block.instrs());
        }
    }

    #[test]
    fn locate_total_on_instruction_addrs(recipes in proptest::collection::vec(arb_fn(), 1..4)) {
        let mut p = build_program(&recipes);
        let layout = Layout::compute(&mut p).unwrap();
        for block in p.blocks() {
            for idx in 0..block.len() {
                let addr = layout.instr_addr(block.id(), idx);
                prop_assert_eq!(layout.locate(addr), Some((block.id(), idx)));
            }
        }
    }

    #[test]
    fn walker_terminates_and_counts(recipes in proptest::collection::vec(arb_fn(), 1..4), trips in 1u64..5) {
        let mut p = build_program(&recipes);
        let _ = Layout::compute(&mut p).unwrap();
        let mut walker = Walker::new(&p, TripCountOracle::new(trips)).with_max_blocks(100_000);
        let mut count = 0u64;
        while walker.next_block().is_some() {
            count += 1;
        }
        prop_assert_eq!(count, walker.executed());
        prop_assert!(count >= 1);
    }

    #[test]
    fn indexed_enclosing_matches_linear_scan(recipes in proptest::collection::vec(arb_fn(), 1..4)) {
        let (p, layout) = build_two_ring(&recipes);
        let images: Vec<TextImage> = p
            .modules()
            .iter()
            .map(|m| TextImage::encode(&p, &layout, m.id(), ImageView::Live))
            .collect();
        let map = BlockMap::discover(&images, layout.symbols()).unwrap();
        for addr in probe_addrs(&map) {
            prop_assert_eq!(
                map.enclosing(addr),
                enclosing_linear(&map, addr),
                "lookup mismatch at {:#x}",
                addr
            );
        }
    }

    #[test]
    fn cursor_agrees_with_enclosing(
        recipes in proptest::collection::vec(arb_fn(), 1..4),
        picks in proptest::collection::vec(0usize..4096, 1..200),
    ) {
        let (p, layout) = build_two_ring(&recipes);
        let images: Vec<TextImage> = p
            .modules()
            .iter()
            .map(|m| TextImage::encode(&p, &layout, m.id(), ImageView::Live))
            .collect();
        let map = BlockMap::discover(&images, layout.symbols()).unwrap();
        let pool = probe_addrs(&map);
        // One long-lived cursor over an arbitrary (locality-free) address
        // sequence must still return exactly what the stateless lookup does.
        let mut cursor = map.cursor();
        for pick in picks {
            let addr = pool[pick % pool.len()];
            prop_assert_eq!(cursor.enclosing(addr), map.enclosing(addr));
        }
    }

    #[test]
    fn walk_stream_into_matches_walk_stream(
        recipes in proptest::collection::vec(arb_fn(), 1..4),
        picks in proptest::collection::vec((0usize..4096, 0usize..4096), 1..64),
    ) {
        let (p, layout) = build_two_ring(&recipes);
        let images: Vec<TextImage> = p
            .modules()
            .iter()
            .map(|m| TextImage::encode(&p, &layout, m.id(), ImageView::Live))
            .collect();
        let map = BlockMap::discover(&images, layout.symbols()).unwrap();
        let pool = probe_addrs(&map);
        let mut cursor = map.cursor();
        let mut buf = Vec::new();
        for (ti, si) in picks {
            let target = pool[ti % pool.len()];
            let source = pool[si % pool.len()];
            let walk = map.walk_stream(target, source);
            let derailed = map.walk_stream_into(target, source, &mut buf);
            prop_assert_eq!(derailed, walk.derailed);
            prop_assert_eq!(&buf, &walk.blocks);
            let derailed = cursor.walk_stream_into(target, source, &mut buf);
            prop_assert_eq!(derailed, walk.derailed);
            prop_assert_eq!(&buf, &walk.blocks);
        }
    }

    #[test]
    fn union_addrs_is_sorted_set_union(
        a in proptest::collection::vec((0u64..2000, 1.0f64..10.0), 0..40),
        b in proptest::collection::vec((0u64..2000, 1.0f64..10.0), 0..40),
    ) {
        let ba: Bbec = a.into_iter().collect();
        let bb: Bbec = b.into_iter().collect();
        let got: Vec<u64> = ba.union_addrs(&bb).collect();
        let mut expect: Vec<u64> = ba.iter().map(|(k, _)| k).chain(bb.iter().map(|(k, _)| k)).collect();
        expect.sort_unstable();
        expect.dedup();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn dense_bbec_roundtrips_over_map(
        recipes in proptest::collection::vec(arb_fn(), 1..4),
        entries in proptest::collection::vec((0usize..4096, 1.0f64..1e6), 0..40),
    ) {
        let (p, layout) = build_two_ring(&recipes);
        let images: Vec<TextImage> = p
            .modules()
            .iter()
            .map(|m| TextImage::encode(&p, &layout, m.id(), ImageView::Live))
            .collect();
        let map = BlockMap::discover(&images, layout.symbols()).unwrap();
        let mut dense = DenseBbec::for_map(&map);
        for (i, c) in entries {
            dense.set(i % map.len(), c);
        }
        let bbec = dense.to_bbec(&map);
        prop_assert_eq!(DenseBbec::from_bbec(&bbec, &map), dense.clone());
        // And values agree block by block.
        for (bi, block) in map.blocks().iter().enumerate() {
            prop_assert_eq!(bbec.get(block.start), dense.get(bi));
        }
    }

    #[test]
    fn every_stream_walk_within_a_block_succeeds(recipes in proptest::collection::vec(arb_fn(), 1..4)) {
        let mut p = build_program(&recipes);
        let layout = Layout::compute(&mut p).unwrap();
        let images: Vec<TextImage> = p
            .modules()
            .iter()
            .map(|m| TextImage::encode(&p, &layout, m.id(), ImageView::Live))
            .collect();
        let map = BlockMap::discover(&images, layout.symbols()).unwrap();
        for block in p.blocks() {
            let start = layout.block_start(block.id());
            let term = layout.terminator_addr(block.id());
            let walk = map.walk_stream(start, term);
            prop_assert!(!walk.derailed);
            prop_assert_eq!(walk.blocks.len(), 1);
        }
    }
}

//! Property tests: random well-formed programs must lay out, encode,
//! and rediscover consistently.

use hbbp_isa::instruction::build;
use hbbp_isa::{Mnemonic, Reg};
use hbbp_program::{
    BlockMap, ImageView, Layout, ProgramBuilder, Ring, TextImage, TripCountOracle, Walker,
};
use proptest::prelude::*;

/// A recipe for one generated function: a chain of blocks, each with a
/// body length and a flag for whether it loops back on itself.
#[derive(Debug, Clone)]
struct FnRecipe {
    blocks: Vec<(u8, bool)>,
}

fn arb_fn() -> impl Strategy<Value = FnRecipe> {
    proptest::collection::vec((1u8..20, any::<bool>()), 1..8).prop_map(|blocks| FnRecipe { blocks })
}

fn filler(i: usize) -> hbbp_isa::Instruction {
    match i % 4 {
        0 => build::rr(Mnemonic::Add, Reg::gpr((i % 16) as u8), Reg::gpr(1)),
        1 => build::rr(Mnemonic::Mov, Reg::gpr(2), Reg::gpr((i % 16) as u8)),
        2 => build::ri(Mnemonic::Cmp, Reg::gpr(0), i as i32),
        _ => build::rr(Mnemonic::Xor, Reg::gpr(3), Reg::gpr(4)),
    }
}

/// Build a program from recipes: function 0 is the entry; every other
/// function is called once from the entry chain.
fn build_program(recipes: &[FnRecipe]) -> hbbp_program::Program {
    let mut b = ProgramBuilder::new("prop");
    let m = b.module("prop.bin", Ring::User);
    let fids: Vec<_> = (0..recipes.len())
        .map(|i| b.function(m, format!("f{i}")))
        .collect();

    for (fi, recipe) in recipes.iter().enumerate() {
        let bids: Vec<_> = recipe.blocks.iter().map(|_| b.block(fids[fi])).collect();
        for (bi, &(len, self_loop)) in recipe.blocks.iter().enumerate() {
            let bid = bids[bi];
            for k in 0..len {
                b.push(bid, filler(k as usize + bi));
            }
            let is_last = bi + 1 == recipe.blocks.len();
            if is_last {
                if fi == 0 {
                    b.terminate_exit(bid, build::bare(Mnemonic::Syscall));
                } else {
                    b.terminate_ret(bid);
                }
            } else if self_loop {
                b.terminate_branch(bid, Mnemonic::Jnz, bid, bids[bi + 1]);
            } else if fi == 0 && bi < recipes.len() - 1 && bi + 1 < recipe.blocks.len() {
                // Entry function calls other functions along its chain.
                let callee = fids[(bi + 1) % recipes.len()];
                if callee != fids[0] {
                    b.terminate_call(bid, callee, bids[bi + 1]);
                } else {
                    b.terminate_jump(bid, bids[bi + 1]);
                }
            } else {
                b.terminate_jump(bid, bids[bi + 1]);
            }
        }
    }
    b.build(fids[0]).expect("valid generated program")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn discovery_reproduces_program_blocks(recipes in proptest::collection::vec(arb_fn(), 1..5)) {
        let mut p = build_program(&recipes);
        let layout = Layout::compute(&mut p).unwrap();
        let images: Vec<TextImage> = p
            .modules()
            .iter()
            .map(|m| TextImage::encode(&p, &layout, m.id(), ImageView::Disk))
            .collect();
        let map = BlockMap::discover(&images, layout.symbols()).unwrap();
        prop_assert_eq!(map.len(), p.block_count());
        for block in p.blocks() {
            let start = layout.block_start(block.id());
            let idx = map.at_start(start);
            prop_assert!(idx.is_some(), "block at {:#x} missing", start);
            let sb = &map.blocks()[idx.unwrap()];
            prop_assert_eq!(sb.len(), block.len());
            prop_assert_eq!(sb.instrs.as_slice(), block.instrs());
        }
    }

    #[test]
    fn locate_total_on_instruction_addrs(recipes in proptest::collection::vec(arb_fn(), 1..4)) {
        let mut p = build_program(&recipes);
        let layout = Layout::compute(&mut p).unwrap();
        for block in p.blocks() {
            for idx in 0..block.len() {
                let addr = layout.instr_addr(block.id(), idx);
                prop_assert_eq!(layout.locate(addr), Some((block.id(), idx)));
            }
        }
    }

    #[test]
    fn walker_terminates_and_counts(recipes in proptest::collection::vec(arb_fn(), 1..4), trips in 1u64..5) {
        let mut p = build_program(&recipes);
        let _ = Layout::compute(&mut p).unwrap();
        let mut walker = Walker::new(&p, TripCountOracle::new(trips)).with_max_blocks(100_000);
        let mut count = 0u64;
        while walker.next_block().is_some() {
            count += 1;
        }
        prop_assert_eq!(count, walker.executed());
        prop_assert!(count >= 1);
    }

    #[test]
    fn every_stream_walk_within_a_block_succeeds(recipes in proptest::collection::vec(arb_fn(), 1..4)) {
        let mut p = build_program(&recipes);
        let layout = Layout::compute(&mut p).unwrap();
        let images: Vec<TextImage> = p
            .modules()
            .iter()
            .map(|m| TextImage::encode(&p, &layout, m.id(), ImageView::Live))
            .collect();
        let map = BlockMap::discover(&images, layout.symbols()).unwrap();
        for block in p.blocks() {
            let start = layout.block_start(block.id());
            let term = layout.terminator_addr(block.id());
            let walk = map.walk_stream(start, term);
            prop_assert!(!walk.derailed);
            prop_assert_eq!(walk.blocks.len(), 1);
        }
    }
}

//! The segment-log frame codec: CRC-framed, varint/delta-encoded records.
//!
//! A store file is a header followed by self-describing frames:
//!
//! ```text
//! header   "HBBPSTOR" (8 bytes)  version u32 LE
//! frame    type u8 | payload_len u32 LE | crc32 u32 LE | payload
//! ```
//!
//! The CRC (IEEE 802.3, over **type + length + payload** — the header
//! fields are covered too, so a flipped type byte cannot masquerade as a
//! skippable unknown frame) is what makes recovery decidable at the file
//! layer: a torn append, a bit flip, or a bogus length prefix all fail
//! the checksum, and [`crate::ProfileStore::open`] truncates the log at
//! the first frame that does. Frames of an unknown type whose checksum
//! verifies are skipped (forward compatibility), mirroring the perf
//! codec's unknown-record rule.
//!
//! Payload encodings favour the dominant frame: a [`CountsRecord`] holds a
//! BBEC whose block start addresses are ascending, so they are stored as
//! varint **deltas**; counts are `f64` and cross the file bit-exactly as
//! raw little-endian bits (the store's merge guarantees are bitwise, so no
//! textual or lossy form is acceptable).

use bytes::{Buf, BufMut, BytesMut};
use hbbp_isa::Mnemonic;
use hbbp_program::{Bbec, MnemonicMix, Ring};

pub(crate) const MAGIC: &[u8; 8] = b"HBBPSTOR";
pub(crate) const VERSION: u32 = 1;
pub(crate) const HEADER_LEN: usize = MAGIC.len() + 4;
/// Frame bytes before the payload: type + length + checksum.
pub(crate) const FRAME_OVERHEAD: usize = 1 + 4 + 4;

pub(crate) const T_IDENTITY: u8 = 1;
pub(crate) const T_COUNTS: u8 = 2;
pub(crate) const T_WINDOW: u8 = 3;
pub(crate) const T_EPOCH: u8 = 4;

/// CRC-32 (IEEE 802.3) lookup table, built at compile time.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC-32 over a sequence of byte slices (one running checksum).
pub(crate) fn crc32_parts(parts: &[&[u8]]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for part in parts {
        for &b in *part {
            c = CRC_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
        }
    }
    c ^ 0xFFFF_FFFF
}

/// CRC-32 of a byte slice.
#[cfg(test)]
pub(crate) fn crc32(bytes: &[u8]) -> u32 {
    crc32_parts(&[bytes])
}

/// One module's address span inside a [`StoreIdentity`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModuleSpan {
    /// Module file name (e.g. `phased.bin`).
    pub name: String,
    /// Load base address.
    pub base: u64,
    /// Text span length in bytes.
    pub len: u64,
    /// Privilege ring of the module's code.
    pub ring: Ring,
}

/// The program/module identity a store is keyed by.
///
/// Profiles are only mergeable when they were collected against the same
/// address space: the identity header pins the program name, the block
/// count of its static map and every module's load span, and
/// [`crate::ProfileStore`] refuses to append to or merge stores whose
/// identities differ.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreIdentity {
    /// Program name.
    pub program: String,
    /// Number of blocks in the static block map (a cheap fingerprint of
    /// the text contents, over and above the module spans).
    pub block_count: u32,
    /// Every module's load span, in program order.
    pub modules: Vec<ModuleSpan>,
}

/// One recording's profile: the per-block execution counts a single
/// analyzed run (one collector connection, one perf.data file) produced.
///
/// The store's aggregate is a deterministic fold of these records sorted
/// by `(source, seq)` — see [`crate::Snapshot::aggregate`].
#[derive(Debug, Clone, PartialEq)]
pub struct CountsRecord {
    /// Collector-chosen origin id (client/session id in the daemon).
    pub source: u32,
    /// Per-source sequence number, assigned by the store on append.
    pub seq: u32,
    /// EBS-event samples the recording contributed.
    pub ebs_samples: u64,
    /// LBR-event samples the recording contributed.
    pub lbr_samples: u64,
    /// The recording's HBBP per-block execution counts.
    pub bbec: Bbec,
}

/// One closed analysis window's timeline record: where in (cycle) time a
/// recording was, and what instruction mix it executed there.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowRecord {
    /// Collector-chosen origin id.
    pub source: u32,
    /// Window emission index within its recording.
    pub index: u32,
    /// Window start in core cycles.
    pub start_cycles: u64,
    /// Window end in core cycles (exclusive for time windows).
    pub end_cycles: u64,
    /// EBS-event samples in the window.
    pub ebs_samples: u64,
    /// LBR-event samples in the window.
    pub lbr_samples: u64,
    /// The window's HBBP instruction mix.
    pub mix: MnemonicMix,
}

/// A decoded segment frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// The program/module identity header.
    Identity(StoreIdentity),
    /// One recording's counts.
    Counts(CountsRecord),
    /// One window timeline record.
    Window(WindowRecord),
    /// An epoch boundary: every counts/window frame after this marker
    /// belongs to the named epoch (frames before the first marker belong
    /// to epoch 0). Markers must ascend within a log; readers of version
    /// 1 stores written before epochs existed skip nothing (no markers),
    /// and pre-epoch readers skip the marker as an unknown type.
    Epoch(u32),
}

/// Outcome of attempting to decode one frame from a byte slice.
#[derive(Debug)]
pub(crate) enum FrameOutcome {
    /// A frame was consumed. `frame` is `None` for a checksum-valid frame
    /// of an unknown type (skipped for forward compatibility).
    Frame {
        /// The decoded frame, if of a known type.
        frame: Option<Frame>,
        /// Bytes consumed from the input.
        consumed: usize,
    },
    /// The slice ends inside the frame (torn write / still being written).
    Incomplete,
    /// Checksum or payload decode failure: the log is damaged here.
    Corrupt,
}

pub(crate) fn put_varint(buf: &mut BytesMut, mut v: u64) {
    while v >= 0x80 {
        buf.put_u8((v as u8 & 0x7F) | 0x80);
        v >>= 7;
    }
    buf.put_u8(v as u8);
}

pub(crate) fn get_varint(p: &mut &[u8]) -> Result<u64, ()> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        if !p.has_remaining() || shift >= 64 {
            return Err(());
        }
        let b = p.get_u8();
        v |= u64::from(b & 0x7F) << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

fn put_string(buf: &mut BytesMut, s: &str) {
    buf.put_u16_le(s.len() as u16);
    buf.put_slice(s.as_bytes());
}

fn get_string(p: &mut &[u8]) -> Result<String, ()> {
    if p.remaining() < 2 {
        return Err(());
    }
    let n = p.get_u16_le() as usize;
    if p.remaining() < n {
        return Err(());
    }
    let (s, rest) = p.split_at(n);
    let out = String::from_utf8(s.to_vec()).map_err(|_| ())?;
    *p = rest;
    Ok(out)
}

fn ring_code(ring: Ring) -> u8 {
    match ring {
        Ring::User => 0,
        Ring::Kernel => 1,
    }
}

fn ring_from_code(code: u8) -> Result<Ring, ()> {
    match code {
        0 => Ok(Ring::User),
        1 => Ok(Ring::Kernel),
        _ => Err(()),
    }
}

/// Delta/varint encode an address-keyed BBEC (addresses ascend, counts
/// cross as raw `f64` bits).
fn put_bbec(buf: &mut BytesMut, bbec: &Bbec) {
    buf.put_u32_le(bbec.len() as u32);
    let mut prev = 0u64;
    for (addr, count) in bbec.iter() {
        put_varint(buf, addr - prev);
        buf.put_u64_le(count.to_bits());
        prev = addr;
    }
}

fn get_bbec(p: &mut &[u8]) -> Result<Bbec, ()> {
    if p.remaining() < 4 {
        return Err(());
    }
    let n = p.get_u32_le() as usize;
    let mut bbec = Bbec::new();
    let mut prev = 0u64;
    for _ in 0..n {
        let delta = get_varint(p)?;
        if p.remaining() < 8 {
            return Err(());
        }
        let count = f64::from_bits(p.get_u64_le());
        let addr = prev.checked_add(delta).ok_or(())?;
        bbec.set(addr, count);
        prev = addr;
    }
    Ok(bbec)
}

fn put_mix(buf: &mut BytesMut, mix: &MnemonicMix) {
    buf.put_u32_le(mix.len() as u32);
    for (mnemonic, count) in mix.iter() {
        put_varint(buf, u64::from(mnemonic.opcode()));
        buf.put_u64_le(count.to_bits());
    }
}

fn get_mix(p: &mut &[u8]) -> Result<MnemonicMix, ()> {
    if p.remaining() < 4 {
        return Err(());
    }
    let n = p.get_u32_le() as usize;
    let mut mix = MnemonicMix::new();
    for _ in 0..n {
        let opcode = u16::try_from(get_varint(p)?).map_err(|_| ())?;
        let mnemonic = Mnemonic::from_opcode(opcode).ok_or(())?;
        if p.remaining() < 8 {
            return Err(());
        }
        mix.add(mnemonic, f64::from_bits(p.get_u64_le()));
    }
    Ok(mix)
}

fn frame_type(frame: &Frame) -> u8 {
    match frame {
        Frame::Identity(_) => T_IDENTITY,
        Frame::Counts(_) => T_COUNTS,
        Frame::Window(_) => T_WINDOW,
        Frame::Epoch(_) => T_EPOCH,
    }
}

fn encode_payload(frame: &Frame) -> BytesMut {
    let mut buf = BytesMut::new();
    match frame {
        Frame::Identity(id) => {
            put_string(&mut buf, &id.program);
            buf.put_u32_le(id.block_count);
            buf.put_u16_le(id.modules.len() as u16);
            for m in &id.modules {
                put_string(&mut buf, &m.name);
                buf.put_u64_le(m.base);
                buf.put_u64_le(m.len);
                buf.put_u8(ring_code(m.ring));
            }
        }
        Frame::Counts(c) => {
            buf.put_u32_le(c.source);
            buf.put_u32_le(c.seq);
            buf.put_u64_le(c.ebs_samples);
            buf.put_u64_le(c.lbr_samples);
            put_bbec(&mut buf, &c.bbec);
        }
        Frame::Window(w) => {
            buf.put_u32_le(w.source);
            buf.put_u32_le(w.index);
            buf.put_u64_le(w.start_cycles);
            buf.put_u64_le(w.end_cycles);
            buf.put_u64_le(w.ebs_samples);
            buf.put_u64_le(w.lbr_samples);
            put_mix(&mut buf, &w.mix);
        }
        Frame::Epoch(epoch) => {
            buf.put_u32_le(*epoch);
        }
    }
    buf
}

fn decode_payload(rtype: u8, mut p: &[u8]) -> Result<Option<Frame>, ()> {
    let frame = match rtype {
        T_IDENTITY => {
            let program = get_string(&mut p)?;
            if p.remaining() < 6 {
                return Err(());
            }
            let block_count = p.get_u32_le();
            let n = p.get_u16_le() as usize;
            let mut modules = Vec::with_capacity(n);
            for _ in 0..n {
                let name = get_string(&mut p)?;
                if p.remaining() < 17 {
                    return Err(());
                }
                let base = p.get_u64_le();
                let len = p.get_u64_le();
                let ring = ring_from_code(p.get_u8())?;
                modules.push(ModuleSpan {
                    name,
                    base,
                    len,
                    ring,
                });
            }
            Frame::Identity(StoreIdentity {
                program,
                block_count,
                modules,
            })
        }
        T_COUNTS => {
            if p.remaining() < 24 {
                return Err(());
            }
            let source = p.get_u32_le();
            let seq = p.get_u32_le();
            let ebs_samples = p.get_u64_le();
            let lbr_samples = p.get_u64_le();
            let bbec = get_bbec(&mut p)?;
            Frame::Counts(CountsRecord {
                source,
                seq,
                ebs_samples,
                lbr_samples,
                bbec,
            })
        }
        T_WINDOW => {
            if p.remaining() < 40 {
                return Err(());
            }
            let source = p.get_u32_le();
            let index = p.get_u32_le();
            let start_cycles = p.get_u64_le();
            let end_cycles = p.get_u64_le();
            let ebs_samples = p.get_u64_le();
            let lbr_samples = p.get_u64_le();
            let mix = get_mix(&mut p)?;
            Frame::Window(WindowRecord {
                source,
                index,
                start_cycles,
                end_cycles,
                ebs_samples,
                lbr_samples,
                mix,
            })
        }
        T_EPOCH => {
            if p.remaining() < 4 {
                return Err(());
            }
            Frame::Epoch(p.get_u32_le())
        }
        _ => return Ok(None),
    };
    // A decode must consume the payload exactly (same rule as the perf
    // codec): leftover bytes mean a corrupted length prefix.
    if p.has_remaining() {
        return Err(());
    }
    Ok(Some(frame))
}

/// Encode one full frame (type, length, checksum, payload).
pub(crate) fn encode_frame(frame: &Frame) -> Vec<u8> {
    let payload = encode_payload(frame);
    let mut out = Vec::with_capacity(FRAME_OVERHEAD + payload.len());
    out.push(frame_type(frame));
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    let crc = crc32_parts(&[&out[..5], &payload]);
    out.extend_from_slice(&crc.to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Try to decode the frame at the start of `bytes`.
pub(crate) fn read_frame(bytes: &[u8]) -> FrameOutcome {
    if bytes.len() < FRAME_OVERHEAD {
        return FrameOutcome::Incomplete;
    }
    let rtype = bytes[0];
    let len = u32::from_le_bytes(bytes[1..5].try_into().expect("4 length bytes")) as usize;
    let crc = u32::from_le_bytes(bytes[5..9].try_into().expect("4 crc bytes"));
    let Some(payload) = bytes.get(FRAME_OVERHEAD..FRAME_OVERHEAD + len) else {
        return FrameOutcome::Incomplete;
    };
    if crc32_parts(&[&bytes[..5], payload]) != crc {
        return FrameOutcome::Corrupt;
    }
    match decode_payload(rtype, payload) {
        Ok(frame) => FrameOutcome::Frame {
            frame,
            consumed: FRAME_OVERHEAD + len,
        },
        Err(()) => FrameOutcome::Corrupt,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_counts() -> CountsRecord {
        let mut bbec = Bbec::new();
        bbec.set(0x400000, 128.5);
        bbec.set(0x400010, 3.0);
        bbec.set(0x7fff_0000_0000, 1.0 / 3.0);
        CountsRecord {
            source: 7,
            seq: 2,
            ebs_samples: 100,
            lbr_samples: 42,
            bbec,
        }
    }

    fn sample_identity() -> StoreIdentity {
        StoreIdentity {
            program: "phased".into(),
            block_count: 99,
            modules: vec![
                ModuleSpan {
                    name: "phased.bin".into(),
                    base: 0x400000,
                    len: 0x2000,
                    ring: Ring::User,
                },
                ModuleSpan {
                    name: "vmlinux".into(),
                    base: 0xFFFF_FFFF_8100_0000,
                    len: 0x1000,
                    ring: Ring::Kernel,
                },
            ],
        }
    }

    fn sample_window() -> WindowRecord {
        let mut mix = MnemonicMix::new();
        mix.add(Mnemonic::Add, 1000.25);
        mix.add(Mnemonic::Addps, 17.0);
        WindowRecord {
            source: 7,
            index: 3,
            start_cycles: 1_000_000,
            end_cycles: 2_000_000,
            ebs_samples: 55,
            lbr_samples: 44,
            mix,
        }
    }

    #[test]
    fn crc32_matches_known_vector() {
        // IEEE 802.3 CRC of "123456789" is the classic check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn varint_roundtrips_at_boundaries() {
        for v in [0u64, 1, 127, 128, 16_383, 16_384, u64::MAX - 1, u64::MAX] {
            let mut buf = BytesMut::new();
            put_varint(&mut buf, v);
            let mut p: &[u8] = &buf;
            assert_eq!(get_varint(&mut p), Ok(v));
            assert!(!p.has_remaining());
        }
    }

    #[test]
    fn frames_roundtrip_bit_exactly() {
        for frame in [
            Frame::Identity(sample_identity()),
            Frame::Counts(sample_counts()),
            Frame::Window(sample_window()),
            Frame::Epoch(0),
            Frame::Epoch(7),
            Frame::Epoch(u32::MAX),
        ] {
            let bytes = encode_frame(&frame);
            match read_frame(&bytes) {
                FrameOutcome::Frame {
                    frame: Some(back),
                    consumed,
                } => {
                    assert_eq!(back, frame);
                    assert_eq!(consumed, bytes.len());
                }
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn counts_preserve_f64_bits() {
        // Counts must cross the file bitwise, including values that have
        // no short decimal form.
        let rec = sample_counts();
        let bytes = encode_frame(&Frame::Counts(rec.clone()));
        let FrameOutcome::Frame {
            frame: Some(Frame::Counts(back)),
            ..
        } = read_frame(&bytes)
        else {
            panic!("decode");
        };
        for (addr, count) in rec.bbec.iter() {
            assert_eq!(back.bbec.get(addr).to_bits(), count.to_bits());
        }
    }

    #[test]
    fn bit_flips_anywhere_in_the_frame_are_caught() {
        // The checksum covers type + length + payload: no single-bit flip
        // may decode as a frame (a flip that inflates the length field
        // reads as Incomplete, which recovery also truncates).
        for frame in [Frame::Counts(sample_counts()), Frame::Epoch(3)] {
            let bytes = encode_frame(&frame);
            for at in 0..bytes.len() {
                for bit in 0..8 {
                    let mut bad = bytes.clone();
                    bad[at] ^= 1 << bit;
                    assert!(
                        !matches!(read_frame(&bad), FrameOutcome::Frame { .. }),
                        "flip at byte {at} bit {bit} slipped through"
                    );
                }
            }
        }
    }

    #[test]
    fn epoch_frame_payload_is_exactly_four_bytes() {
        // An epoch payload with trailing bytes means a corrupted length
        // prefix (the consume-exactly rule), even if the CRC was forged
        // over the longer span.
        let payload = [5u8, 0, 0, 0, 9];
        let mut bytes = vec![T_EPOCH];
        bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        let crc = crc32_parts(&[&bytes, &payload]);
        bytes.extend_from_slice(&crc.to_le_bytes());
        bytes.extend_from_slice(&payload);
        assert!(matches!(read_frame(&bytes), FrameOutcome::Corrupt));
    }

    #[test]
    fn truncation_is_incomplete_not_corrupt() {
        let bytes = encode_frame(&Frame::Window(sample_window()));
        for cut in 0..bytes.len() {
            assert!(
                matches!(read_frame(&bytes[..cut]), FrameOutcome::Incomplete),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn unknown_type_with_valid_crc_is_skipped() {
        let payload = b"future frame kind";
        let mut bytes = vec![200u8];
        bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        let crc = crc32_parts(&[&bytes, payload]);
        bytes.extend_from_slice(&crc.to_le_bytes());
        bytes.extend_from_slice(payload);
        match read_frame(&bytes) {
            FrameOutcome::Frame {
                frame: None,
                consumed,
            } => assert_eq!(consumed, bytes.len()),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn overlong_length_prefix_is_corrupt() {
        // Declare two extra payload bytes: the CRC no longer matches the
        // claimed span.
        let mut bytes = encode_frame(&Frame::Counts(sample_counts()));
        let len = u32::from_le_bytes(bytes[1..5].try_into().unwrap());
        bytes[1..5].copy_from_slice(&(len + 2).to_le_bytes());
        bytes.extend_from_slice(&[0, 0]);
        assert!(matches!(read_frame(&bytes), FrameOutcome::Corrupt));
    }
}

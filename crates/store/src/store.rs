//! The persistent profile store: an append-only, CRC-framed segment log.
//!
//! A [`ProfileStore`] is one file holding one program's profiles: an
//! identity header, any number of per-recording [`CountsRecord`] frames
//! and per-window [`WindowRecord`] timeline frames. Appends go straight
//! to the end of the file; nothing is ever rewritten in place, so a crash
//! can only damage the **tail**, and [`ProfileStore::open`] recovers by
//! truncating at the first frame that fails its checksum or ends early —
//! the file-layer version of the perf stream decoder's resilience.
//!
//! ## Merge semantics (what "lossless" means here)
//!
//! The aggregate profile of a store is a **deterministic fold**: counts
//! records sorted by `(source, seq)`, merged left to right with
//! [`Bbec::merge`]. Merging two stores appends the other store's frames,
//! so no information is destroyed, and because each frame carries the
//! exact `f64` bits of one recording's analysis, the merged aggregate is
//! **bit-identical** to folding the per-recording batch analyses
//! (`Analyzer::analyze_fused`) in the same canonical order — the property
//! pinned by `crates/store/tests/fleet.rs`. [`ProfileStore::compact`]
//! replaces the counts frames with their fold, which preserves the
//! aggregate bitwise while shrinking the log.

use crate::frame::{
    encode_frame, read_frame, CountsRecord, Frame, FrameOutcome, ModuleSpan, StoreIdentity,
    WindowRecord, HEADER_LEN, MAGIC, VERSION,
};
use hbbp_program::{Bbec, BlockMap};
use hbbp_workloads::Workload;
use std::collections::HashMap;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Source id used for the fold frame written by
/// [`ProfileStore::compact`]. `u32::MAX` sorts after every live source,
/// so post-compaction appends keep a deterministic fold order.
pub const COMPACTED_SOURCE: u32 = u32::MAX;

/// Errors opening or writing a profile store.
#[derive(Debug)]
pub enum StoreError {
    /// File I/O failed.
    Io(std::io::Error),
    /// The file exists but does not start with the store magic.
    NotAStore,
    /// The file is a store of an unsupported format version.
    BadVersion(u32),
    /// An append or merge was attempted before an identity was set.
    MissingIdentity,
    /// Two different program identities met (append to a foreign store,
    /// or a merge across programs).
    IdentityMismatch,
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store I/O error: {e}"),
            StoreError::NotAStore => write!(f, "not a profile store (bad magic)"),
            StoreError::BadVersion(v) => write!(f, "unsupported store version {v}"),
            StoreError::MissingIdentity => write!(f, "store has no program identity yet"),
            StoreError::IdentityMismatch => write!(f, "program identities differ"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> StoreError {
        StoreError::Io(e)
    }
}

/// What [`ProfileStore::open`] found and did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OpenReport {
    /// Frames recovered (all types, including skipped unknown ones).
    pub frames: usize,
    /// Bytes cut off the tail (torn write / corruption); 0 for a clean
    /// open.
    pub truncated_bytes: u64,
    /// Whether the file existed before this open.
    pub existed: bool,
}

/// An immutable, in-memory view of a store's contents — what queries,
/// merges and differential tests consume.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// The store's program identity, if one was ever written.
    pub identity: Option<StoreIdentity>,
    /// Every counts frame, in log order.
    pub counts: Vec<CountsRecord>,
    /// Every window timeline frame, in log order.
    pub windows: Vec<WindowRecord>,
}

impl Snapshot {
    /// The canonical aggregate: counts records sorted by `(source, seq)`,
    /// folded left to right with [`Bbec::merge`]. Deterministic for any
    /// arrival interleaving of the same recordings.
    pub fn aggregate(&self) -> Bbec {
        let mut order: Vec<&CountsRecord> = self.counts.iter().collect();
        order.sort_by_key(|r| (r.source, r.seq));
        let mut acc = Bbec::new();
        for rec in order {
            acc.merge(&rec.bbec);
        }
        acc
    }

    /// Total `(ebs, lbr)` samples over all counts records.
    pub fn total_samples(&self) -> (u64, u64) {
        self.counts
            .iter()
            .fold((0, 0), |(e, l), r| (e + r.ebs_samples, l + r.lbr_samples))
    }

    /// Distinct source ids across counts records.
    pub fn sources(&self) -> Vec<u32> {
        let mut v: Vec<u32> = self.counts.iter().map(|r| r.source).collect();
        v.sort_unstable();
        v.dedup();
        v
    }
}

/// An open, append-only profile store file. See the module docs for the
/// format and the merge semantics.
#[derive(Debug)]
pub struct ProfileStore {
    path: PathBuf,
    file: File,
    /// Byte length of the valid log (appends start here).
    len: u64,
    /// Encoded frames accepted by a `*_deferred` append but not yet
    /// written to the file — flushed as one write by
    /// [`ProfileStore::commit`] (group commit).
    pending: Vec<u8>,
    identity: Option<StoreIdentity>,
    counts: Vec<CountsRecord>,
    windows: Vec<WindowRecord>,
    next_seq: HashMap<u32, u32>,
    report: OpenReport,
}

impl ProfileStore {
    /// Open (or create) the store at `path`, recovering from a torn tail:
    /// the log is replayed frame by frame and truncated at the first
    /// frame whose checksum fails or that ends mid-frame. Every complete,
    /// checksum-valid frame before that point survives.
    ///
    /// # Errors
    ///
    /// I/O failures, a file that is not a store, or an unsupported
    /// version. Corruption is **not** an error — it is truncated away and
    /// reported in [`ProfileStore::open_report`].
    pub fn open(path: impl AsRef<Path>) -> Result<ProfileStore, StoreError> {
        let path = path.as_ref().to_path_buf();
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        let existed = !bytes.is_empty();

        let mut store = ProfileStore {
            path,
            file,
            len: 0,
            pending: Vec::new(),
            identity: None,
            counts: Vec::new(),
            windows: Vec::new(),
            next_seq: HashMap::new(),
            report: OpenReport {
                frames: 0,
                truncated_bytes: 0,
                existed,
            },
        };

        if !existed {
            store.file.write_all(MAGIC)?;
            store.file.write_all(&VERSION.to_le_bytes())?;
            store.file.flush()?;
            store.len = HEADER_LEN as u64;
            return Ok(store);
        }

        // Header: a short file that is a prefix of a valid header is a
        // torn header write — restart the file; anything else is foreign.
        if bytes.len() < HEADER_LEN {
            let n = bytes.len().min(MAGIC.len());
            if bytes[..n] != MAGIC[..n] {
                return Err(StoreError::NotAStore);
            }
            store.report.truncated_bytes = bytes.len() as u64;
            store.file.set_len(0)?;
            store.file.seek(SeekFrom::Start(0))?;
            store.file.write_all(MAGIC)?;
            store.file.write_all(&VERSION.to_le_bytes())?;
            store.file.flush()?;
            store.len = HEADER_LEN as u64;
            return Ok(store);
        }
        if &bytes[..MAGIC.len()] != MAGIC {
            return Err(StoreError::NotAStore);
        }
        let version = u32::from_le_bytes(
            bytes[MAGIC.len()..HEADER_LEN]
                .try_into()
                .expect("4 version bytes"),
        );
        if version != VERSION {
            return Err(StoreError::BadVersion(version));
        }

        // Replay frames; stop (and truncate) at the first bad one.
        let mut pos = HEADER_LEN;
        while pos < bytes.len() {
            match read_frame(&bytes[pos..]) {
                FrameOutcome::Frame { frame, consumed } => {
                    if let Some(frame) = frame {
                        if store.apply(frame).is_err() {
                            // An identity conflict mid-log is corruption in
                            // the same sense as a failed checksum: keep the
                            // consistent prefix.
                            break;
                        }
                    }
                    store.report.frames += 1;
                    pos += consumed;
                }
                FrameOutcome::Incomplete | FrameOutcome::Corrupt => break,
            }
        }
        store.report.truncated_bytes = (bytes.len() - pos) as u64;
        store.len = pos as u64;
        store.file.set_len(store.len)?;
        store.file.seek(SeekFrom::Start(store.len))?;
        Ok(store)
    }

    /// [`ProfileStore::open`], then set or verify the program identity:
    /// a fresh store adopts `identity`; an existing one must match it.
    ///
    /// # Errors
    ///
    /// Everything [`ProfileStore::open`] returns, plus
    /// [`StoreError::IdentityMismatch`] when the file already belongs to
    /// a different program.
    pub fn open_with_identity(
        path: impl AsRef<Path>,
        identity: StoreIdentity,
    ) -> Result<ProfileStore, StoreError> {
        let mut store = ProfileStore::open(path)?;
        match &store.identity {
            Some(existing) if *existing == identity => {}
            Some(_) => return Err(StoreError::IdentityMismatch),
            None => store.set_identity(identity)?,
        }
        Ok(store)
    }

    /// Apply a replayed frame to the in-memory mirror.
    fn apply(&mut self, frame: Frame) -> Result<(), StoreError> {
        match frame {
            Frame::Identity(id) => match &self.identity {
                Some(existing) if *existing != id => return Err(StoreError::IdentityMismatch),
                _ => self.identity = Some(id),
            },
            Frame::Counts(rec) => {
                let next = self.next_seq.entry(rec.source).or_insert(0);
                *next = (*next).max(rec.seq + 1);
                self.counts.push(rec);
            }
            Frame::Window(rec) => self.windows.push(rec),
        }
        Ok(())
    }

    /// Encode one frame into the pending buffer (not yet in the file).
    fn buffer_frame(&mut self, frame: &Frame) {
        self.pending.extend_from_slice(&encode_frame(frame));
    }

    /// Append one frame to the log. The frame is handed to the OS before
    /// returning, but **not fsynced** — a host crash can lose recently
    /// appended frames (they reappear as a clean or torn tail that
    /// [`ProfileStore::open`] recovers from; per-frame `sync_all` would
    /// dominate ingest cost). [`ProfileStore::compact`] is the fsync
    /// point.
    fn append_frame(&mut self, frame: &Frame) -> Result<(), StoreError> {
        self.buffer_frame(frame);
        self.commit()
    }

    /// Flush every deferred append to the file as **one** write (group
    /// commit). A no-op when nothing is pending. On success, everything
    /// accepted by a `*_deferred` call is in the log (still OS-buffered,
    /// not fsynced — see [`ProfileStore::compact`] for the fsync point);
    /// on failure the pending bytes are kept so a retry is possible, but
    /// the in-memory mirror already reflects the deferred frames, so
    /// callers that cannot retry should treat the store as poisoned.
    ///
    /// # Errors
    ///
    /// I/O failures writing the log.
    pub fn commit(&mut self) -> Result<(), StoreError> {
        if self.pending.is_empty() {
            return Ok(());
        }
        self.file.write_all(&self.pending)?;
        self.file.flush()?;
        self.len += self.pending.len() as u64;
        self.pending.clear();
        Ok(())
    }

    /// Bytes accepted by `*_deferred` appends but not yet committed.
    pub fn pending_bytes(&self) -> usize {
        self.pending.len()
    }

    /// The file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Byte length of the valid log.
    pub fn file_bytes(&self) -> u64 {
        self.len
    }

    /// What [`ProfileStore::open`] found and did.
    pub fn open_report(&self) -> &OpenReport {
        &self.report
    }

    /// The program identity, if one was written.
    pub fn identity(&self) -> Option<&StoreIdentity> {
        self.identity.as_ref()
    }

    /// Write the identity header. Only valid once per store.
    ///
    /// # Errors
    ///
    /// [`StoreError::IdentityMismatch`] if a different identity is
    /// already set; I/O errors from the append.
    pub fn set_identity(&mut self, identity: StoreIdentity) -> Result<(), StoreError> {
        match &self.identity {
            Some(existing) if *existing == identity => Ok(()),
            Some(_) => Err(StoreError::IdentityMismatch),
            None => {
                self.append_frame(&Frame::Identity(identity.clone()))?;
                self.identity = Some(identity);
                Ok(())
            }
        }
    }

    /// Append one recording's counts, assigning the next sequence number
    /// for `source`. Returns the assigned `seq`.
    ///
    /// # Errors
    ///
    /// [`StoreError::MissingIdentity`] before an identity is set; I/O
    /// errors from the append.
    pub fn append_counts(
        &mut self,
        source: u32,
        ebs_samples: u64,
        lbr_samples: u64,
        bbec: Bbec,
    ) -> Result<u32, StoreError> {
        let seq = self.append_counts_deferred(source, ebs_samples, lbr_samples, bbec)?;
        self.commit()?;
        Ok(seq)
    }

    /// [`ProfileStore::append_counts`] without the write: the frame is
    /// buffered until the next [`ProfileStore::commit`] (or any
    /// non-deferred append), so a writer can batch many appends into one
    /// file write. The assigned `seq` and the in-memory mirror (and thus
    /// [`ProfileStore::snapshot`]) reflect the frame immediately.
    ///
    /// # Errors
    ///
    /// [`StoreError::MissingIdentity`] before an identity is set.
    pub fn append_counts_deferred(
        &mut self,
        source: u32,
        ebs_samples: u64,
        lbr_samples: u64,
        bbec: Bbec,
    ) -> Result<u32, StoreError> {
        if self.identity.is_none() {
            return Err(StoreError::MissingIdentity);
        }
        let next = self.next_seq.entry(source).or_insert(0);
        let seq = *next;
        *next += 1;
        let rec = CountsRecord {
            source,
            seq,
            ebs_samples,
            lbr_samples,
            bbec,
        };
        self.buffer_frame(&Frame::Counts(rec.clone()));
        self.counts.push(rec);
        Ok(seq)
    }

    /// Append one window timeline record.
    ///
    /// # Errors
    ///
    /// [`StoreError::MissingIdentity`] before an identity is set; I/O
    /// errors from the append.
    pub fn append_window(&mut self, record: WindowRecord) -> Result<(), StoreError> {
        self.append_window_deferred(record)?;
        self.commit()
    }

    /// [`ProfileStore::append_window`] without the write — buffered until
    /// the next [`ProfileStore::commit`], like
    /// [`ProfileStore::append_counts_deferred`].
    ///
    /// # Errors
    ///
    /// [`StoreError::MissingIdentity`] before an identity is set.
    pub fn append_window_deferred(&mut self, record: WindowRecord) -> Result<(), StoreError> {
        if self.identity.is_none() {
            return Err(StoreError::MissingIdentity);
        }
        self.buffer_frame(&Frame::Window(record.clone()));
        self.windows.push(record);
        Ok(())
    }

    /// Counts frames in log order.
    pub fn counts(&self) -> &[CountsRecord] {
        &self.counts
    }

    /// Window timeline frames in log order.
    pub fn windows(&self) -> &[WindowRecord] {
        &self.windows
    }

    /// An immutable view of the current contents.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            identity: self.identity.clone(),
            counts: self.counts.clone(),
            windows: self.windows.clone(),
        }
    }

    /// The canonical aggregate profile (see [`Snapshot::aggregate`]).
    pub fn aggregate(&self) -> Bbec {
        self.snapshot().aggregate()
    }

    /// Merge another store's contents into this one — lossless: every
    /// counts and window frame of `other` is appended (counts are
    /// re-sequenced per source so per-source order is preserved without
    /// colliding with frames already present).
    ///
    /// ```
    /// use hbbp_program::{Bbec, Ring};
    /// use hbbp_store::{ModuleSpan, ProfileStore, StoreIdentity};
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let dir = std::env::temp_dir().join(format!("hbbp-merge-doc-{}", std::process::id()));
    /// std::fs::create_dir_all(&dir)?;
    /// let identity = StoreIdentity {
    ///     program: "demo".into(),
    ///     block_count: 1,
    ///     modules: vec![ModuleSpan { name: "demo.bin".into(), base: 0x1000, len: 0x100, ring: Ring::User }],
    /// };
    /// let mut a = ProfileStore::open_with_identity(dir.join("a.hbbp"), identity.clone())?;
    /// let mut b = ProfileStore::open_with_identity(dir.join("b.hbbp"), identity)?;
    /// a.append_counts(1, 10, 5, [(0x1000u64, 100.0)].into_iter().collect::<Bbec>())?;
    /// b.append_counts(2, 20, 9, [(0x1000u64, 50.0)].into_iter().collect::<Bbec>())?;
    ///
    /// // Lossless: both counts frames survive, and the aggregate is the
    /// // canonical (source, seq)-ordered fold over the union.
    /// a.merge_from(&b.snapshot())?;
    /// assert_eq!(a.counts().len(), 2);
    /// assert_eq!(a.aggregate().get(0x1000), 150.0);
    /// # std::fs::remove_dir_all(&dir)?;
    /// # Ok(())
    /// # }
    /// ```
    ///
    /// # Errors
    ///
    /// [`StoreError::IdentityMismatch`] when the identities differ (or
    /// [`StoreError::MissingIdentity`] when either side has none); I/O
    /// errors from the appends.
    pub fn merge_from(&mut self, other: &Snapshot) -> Result<(), StoreError> {
        let (Some(mine), Some(theirs)) = (&self.identity, &other.identity) else {
            return Err(StoreError::MissingIdentity);
        };
        if mine != theirs {
            return Err(StoreError::IdentityMismatch);
        }
        let mut in_order: Vec<&CountsRecord> = other.counts.iter().collect();
        in_order.sort_by_key(|r| (r.source, r.seq));
        for rec in in_order {
            self.append_counts_deferred(
                rec.source,
                rec.ebs_samples,
                rec.lbr_samples,
                rec.bbec.clone(),
            )?;
        }
        for w in &other.windows {
            self.append_window_deferred(w.clone())?;
        }
        // One group commit for the whole merge.
        self.commit()
    }

    /// Rewrite the log as identity + one folded counts frame + the window
    /// timeline, atomically (temp file + rename). The aggregate is
    /// preserved **bit-exactly** — the fold frame is the canonical
    /// aggregate itself, written under [`COMPACTED_SOURCE`] — but
    /// per-recording provenance of the folded frames is given up.
    ///
    /// # Errors
    ///
    /// [`StoreError::MissingIdentity`] on an identity-less store; I/O
    /// errors from writing or renaming the temp file.
    pub fn compact(&mut self) -> Result<(), StoreError> {
        let Some(identity) = self.identity.clone() else {
            return Err(StoreError::MissingIdentity);
        };
        let snapshot = self.snapshot();
        let (ebs, lbr) = snapshot.total_samples();
        let folded = CountsRecord {
            source: COMPACTED_SOURCE,
            seq: self.next_seq.get(&COMPACTED_SOURCE).copied().unwrap_or(0),
            ebs_samples: ebs,
            lbr_samples: lbr,
            bbec: snapshot.aggregate(),
        };

        let tmp_path = self.path.with_extension("tmp");
        let mut tmp = File::create(&tmp_path)?;
        tmp.write_all(MAGIC)?;
        tmp.write_all(&VERSION.to_le_bytes())?;
        let mut len = HEADER_LEN as u64;
        let write = |file: &mut File, frame: &Frame| -> Result<u64, StoreError> {
            let bytes = encode_frame(frame);
            file.write_all(&bytes)?;
            Ok(bytes.len() as u64)
        };
        len += write(&mut tmp, &Frame::Identity(identity))?;
        len += write(&mut tmp, &Frame::Counts(folded.clone()))?;
        for w in &self.windows {
            len += write(&mut tmp, &Frame::Window(w.clone()))?;
        }
        tmp.sync_all()?;
        drop(tmp);
        std::fs::rename(&tmp_path, &self.path)?;

        self.file = OpenOptions::new().read(true).write(true).open(&self.path)?;
        self.file.seek(SeekFrom::End(0))?;
        // Deferred frames are part of the snapshot just rewritten; the
        // buffered bytes must not be appended again.
        self.pending.clear();
        self.len = len;
        self.counts = vec![folded];
        self.next_seq = HashMap::from([(COMPACTED_SOURCE, 1)]);
        Ok(())
    }
}

impl StoreIdentity {
    /// The identity of a workload's address space: program name, block
    /// count of `map`, and every module's load span.
    pub fn of_workload(workload: &Workload, map: &BlockMap) -> StoreIdentity {
        StoreIdentity {
            program: workload.program().name().to_owned(),
            block_count: map.len() as u32,
            modules: workload
                .program()
                .modules()
                .iter()
                .map(|m| {
                    let (base, end) = workload.layout().module_range(m.id());
                    ModuleSpan {
                        name: m.name().to_owned(),
                        base,
                        len: end - base,
                        ring: m.ring(),
                    }
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbbp_program::Ring;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("hbbp-store-unit-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join(name);
        let _ = std::fs::remove_file(&path);
        path
    }

    fn identity() -> StoreIdentity {
        StoreIdentity {
            program: "p".into(),
            block_count: 3,
            modules: vec![ModuleSpan {
                name: "p.bin".into(),
                base: 0x400000,
                len: 0x1000,
                ring: Ring::User,
            }],
        }
    }

    fn bbec(entries: &[(u64, f64)]) -> Bbec {
        entries.iter().copied().collect()
    }

    #[test]
    fn append_reopen_roundtrip() {
        let path = tmp("roundtrip.hbbp");
        {
            let mut s = ProfileStore::open_with_identity(&path, identity()).unwrap();
            assert!(!s.open_report().existed);
            let seq0 = s
                .append_counts(1, 10, 5, bbec(&[(0x400000, 2.5), (0x400010, 1.0)]))
                .unwrap();
            let seq1 = s.append_counts(1, 4, 2, bbec(&[(0x400000, 0.5)])).unwrap();
            assert_eq!((seq0, seq1), (0, 1));
            s.append_window(WindowRecord {
                source: 1,
                index: 0,
                start_cycles: 0,
                end_cycles: 100,
                ebs_samples: 10,
                lbr_samples: 5,
                mix: MnemonicMix::new(),
            })
            .unwrap();
        }
        let s = ProfileStore::open(&path).unwrap();
        assert!(s.open_report().existed);
        assert_eq!(s.open_report().truncated_bytes, 0);
        assert_eq!(s.identity(), Some(&identity()));
        assert_eq!(s.counts().len(), 2);
        assert_eq!(s.windows().len(), 1);
        assert_eq!(s.aggregate().get(0x400000), 3.0);
        assert_eq!(s.snapshot().total_samples(), (14, 7));
    }

    use hbbp_program::MnemonicMix;

    #[test]
    fn torn_tail_is_truncated_and_appends_continue() {
        let path = tmp("torn.hbbp");
        {
            let mut s = ProfileStore::open_with_identity(&path, identity()).unwrap();
            s.append_counts(1, 1, 1, bbec(&[(0x400000, 1.0)])).unwrap();
            s.append_counts(2, 1, 1, bbec(&[(0x400010, 2.0)])).unwrap();
        }
        // Simulate a torn write: chop bytes off the tail.
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 7]).unwrap();
        let mut s = ProfileStore::open(&path).unwrap();
        assert!(s.open_report().truncated_bytes > 0);
        assert_eq!(s.counts().len(), 1, "only the intact frame survives");
        // The log is consistent again: appends work and a further reopen
        // is clean.
        s.append_counts(2, 1, 1, bbec(&[(0x400010, 4.0)])).unwrap();
        drop(s);
        let s = ProfileStore::open(&path).unwrap();
        assert_eq!(s.open_report().truncated_bytes, 0);
        assert_eq!(s.counts().len(), 2);
        assert_eq!(s.aggregate().get(0x400010), 4.0);
    }

    #[test]
    fn aggregate_fold_is_arrival_order_independent() {
        let a = CountsRecord {
            source: 1,
            seq: 0,
            ebs_samples: 0,
            lbr_samples: 0,
            bbec: bbec(&[(0x400000, 0.1), (0x400010, 7.0)]),
        };
        let b = CountsRecord {
            source: 2,
            seq: 0,
            ebs_samples: 0,
            lbr_samples: 0,
            bbec: bbec(&[(0x400000, 0.2)]),
        };
        let snap = |counts: Vec<CountsRecord>| Snapshot {
            identity: None,
            counts,
            windows: vec![],
        };
        let ab = snap(vec![a.clone(), b.clone()]).aggregate();
        let ba = snap(vec![b, a]).aggregate();
        assert_eq!(ab, ba);
        // Bitwise, not just approximately.
        assert_eq!(ab.get(0x400000).to_bits(), ba.get(0x400000).to_bits());
    }

    #[test]
    fn merge_is_lossless_and_identity_checked() {
        let pa = tmp("merge-a.hbbp");
        let pb = tmp("merge-b.hbbp");
        let mut a = ProfileStore::open_with_identity(&pa, identity()).unwrap();
        let mut b = ProfileStore::open_with_identity(&pb, identity()).unwrap();
        a.append_counts(1, 1, 0, bbec(&[(0x400000, 1.0)])).unwrap();
        b.append_counts(2, 2, 0, bbec(&[(0x400000, 2.0)])).unwrap();
        b.append_counts(2, 3, 0, bbec(&[(0x400020, 8.0)])).unwrap();
        a.merge_from(&b.snapshot()).unwrap();
        assert_eq!(a.counts().len(), 3);
        assert_eq!(a.aggregate().get(0x400000), 3.0);
        assert_eq!(a.snapshot().sources(), vec![1, 2]);

        let mut other = identity();
        other.program = "q".into();
        let pc = tmp("merge-c.hbbp");
        let c = ProfileStore::open_with_identity(&pc, other).unwrap();
        assert!(matches!(
            a.merge_from(&c.snapshot()),
            Err(StoreError::IdentityMismatch)
        ));
    }

    #[test]
    fn compact_preserves_aggregate_bitwise_and_shrinks() {
        let path = tmp("compact.hbbp");
        let mut s = ProfileStore::open_with_identity(&path, identity()).unwrap();
        for i in 0..20u32 {
            s.append_counts(
                i % 3,
                1,
                1,
                bbec(&[(0x400000 + u64::from(i) * 16, 1.0 / f64::from(i + 3))]),
            )
            .unwrap();
        }
        let before = s.aggregate();
        let bytes_before = s.file_bytes();
        s.compact().unwrap();
        assert_eq!(s.counts().len(), 1);
        assert_eq!(s.counts()[0].source, COMPACTED_SOURCE);
        assert!(s.file_bytes() < bytes_before);
        let after = s.aggregate();
        for (addr, count) in before.iter() {
            assert_eq!(after.get(addr).to_bits(), count.to_bits(), "addr {addr:#x}");
        }
        // Reopen sees the compacted log; appends still work.
        drop(s);
        let mut s = ProfileStore::open(&path).unwrap();
        assert_eq!(s.counts().len(), 1);
        s.append_counts(5, 1, 1, bbec(&[(0x400000, 1.0)])).unwrap();
        assert_eq!(s.counts().len(), 2);
    }

    #[test]
    fn deferred_appends_group_commit_in_one_write() {
        let path = tmp("deferred.hbbp");
        let mut s = ProfileStore::open_with_identity(&path, identity()).unwrap();
        let base = s.file_bytes();
        let seq0 = s
            .append_counts_deferred(1, 1, 1, bbec(&[(0x400000, 1.0)]))
            .unwrap();
        s.append_window_deferred(WindowRecord {
            source: 1,
            index: 0,
            start_cycles: 0,
            end_cycles: 10,
            ebs_samples: 1,
            lbr_samples: 1,
            mix: MnemonicMix::new(),
        })
        .unwrap();
        let seq1 = s
            .append_counts_deferred(1, 2, 2, bbec(&[(0x400010, 2.0)]))
            .unwrap();
        assert_eq!((seq0, seq1), (0, 1));
        // The mirror sees the frames immediately; the file only after
        // commit, as one write.
        assert_eq!(s.counts().len(), 2);
        assert_eq!(s.file_bytes(), base);
        assert!(s.pending_bytes() > 0);
        s.commit().unwrap();
        assert_eq!(s.pending_bytes(), 0);
        assert!(s.file_bytes() > base);
        drop(s);
        let s = ProfileStore::open(&path).unwrap();
        assert_eq!(s.open_report().truncated_bytes, 0);
        assert_eq!(s.counts().len(), 2);
        assert_eq!(s.windows().len(), 1);
        assert_eq!(s.aggregate().get(0x400000), 1.0);
    }

    #[test]
    fn uncommitted_deferred_frames_never_reach_the_file() {
        let path = tmp("deferred-drop.hbbp");
        let mut s = ProfileStore::open_with_identity(&path, identity()).unwrap();
        s.append_counts(1, 1, 1, bbec(&[(0x400000, 1.0)])).unwrap();
        s.append_counts_deferred(2, 1, 1, bbec(&[(0x400010, 9.0)]))
            .unwrap();
        drop(s); // no commit: the deferred frame is lost, the log stays clean
        let s = ProfileStore::open(&path).unwrap();
        assert_eq!(s.open_report().truncated_bytes, 0);
        assert_eq!(s.counts().len(), 1);
    }

    #[test]
    fn compact_absorbs_pending_deferred_frames_exactly_once() {
        let path = tmp("deferred-compact.hbbp");
        let mut s = ProfileStore::open_with_identity(&path, identity()).unwrap();
        s.append_counts(1, 1, 1, bbec(&[(0x400000, 1.0)])).unwrap();
        s.append_counts_deferred(2, 1, 1, bbec(&[(0x400010, 2.0)]))
            .unwrap();
        s.compact().unwrap();
        assert_eq!(s.pending_bytes(), 0);
        assert_eq!(s.aggregate().get(0x400010), 2.0);
        drop(s);
        let s = ProfileStore::open(&path).unwrap();
        assert_eq!(s.open_report().truncated_bytes, 0);
        assert_eq!(s.counts().len(), 1, "one fold frame");
        assert_eq!(s.aggregate().get(0x400000), 1.0);
        assert_eq!(s.aggregate().get(0x400010), 2.0);
    }

    #[test]
    fn foreign_files_are_rejected_not_clobbered() {
        let path = tmp("foreign.hbbp");
        std::fs::write(&path, b"definitely not a store file").unwrap();
        assert!(matches!(
            ProfileStore::open(&path),
            Err(StoreError::NotAStore)
        ));
        assert_eq!(
            std::fs::read(&path).unwrap(),
            b"definitely not a store file"
        );
    }

    #[test]
    fn appends_require_identity() {
        let path = tmp("noident.hbbp");
        let mut s = ProfileStore::open(&path).unwrap();
        assert!(matches!(
            s.append_counts(1, 0, 0, Bbec::new()),
            Err(StoreError::MissingIdentity)
        ));
    }
}

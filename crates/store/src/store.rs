//! The persistent profile store: an append-only, CRC-framed segment log.
//!
//! A [`ProfileStore`] is one file holding one program's profiles: an
//! identity header, any number of per-recording [`CountsRecord`] frames
//! and per-window [`WindowRecord`] timeline frames. Appends go straight
//! to the end of the file; nothing is ever rewritten in place, so a crash
//! can only damage the **tail**, and [`ProfileStore::open`] recovers by
//! truncating at the first frame that fails its checksum or ends early —
//! the file-layer version of the perf stream decoder's resilience.
//!
//! ## Merge semantics (what "lossless" means here)
//!
//! The aggregate profile of a store is a **deterministic fold**: within
//! each epoch, counts records sorted by `(source, seq)` and merged left
//! to right with [`Bbec::merge`] into that epoch's aggregate; the global
//! aggregate folds the per-epoch aggregates in epoch order. Merging two
//! stores appends the other store's frames, so no information is
//! destroyed, and because each frame carries the exact `f64` bits of one
//! recording's analysis, the merged aggregate is **bit-identical** to
//! folding the per-recording batch analyses (`Analyzer::analyze_fused`)
//! in the same canonical order — the property pinned by
//! `crates/store/tests/fleet.rs`.
//!
//! ## Epochs (the time dimension)
//!
//! Every counts/window append is stamped with the store's **current
//! epoch** — a monotonically assigned u32, recorded in the log as an
//! epoch-boundary frame and recovered on open. Epoch 0 is implicit;
//! boundary markers are written lazily, just before the first frame of a
//! new epoch. [`ProfileStore::compact`] is **tiered**: it collapses the
//! counts frames *within* each epoch into one fold frame per epoch
//! (under [`COMPACTED_SOURCE`]), preserving every per-epoch aggregate —
//! and therefore the global fold — bit-exactly, then **seals** the
//! current epoch so subsequent appends open a new one. History survives
//! compaction; only per-recording provenance inside an epoch is given
//! up. Drift queries ([`Snapshot::epoch_aggregate`]) compare epochs long
//! after their raw frames are gone.

use crate::frame::{
    encode_frame, read_frame, CountsRecord, Frame, FrameOutcome, ModuleSpan, StoreIdentity,
    WindowRecord, HEADER_LEN, MAGIC, VERSION,
};
use hbbp_program::{Bbec, BlockMap};
use hbbp_workloads::Workload;
use std::collections::HashMap;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Source id used for the fold frame written by
/// [`ProfileStore::compact`]. `u32::MAX` sorts after every live source,
/// so post-compaction appends keep a deterministic fold order.
pub const COMPACTED_SOURCE: u32 = u32::MAX;

/// Errors opening or writing a profile store.
#[derive(Debug)]
pub enum StoreError {
    /// File I/O failed.
    Io(std::io::Error),
    /// The file exists but does not start with the store magic.
    NotAStore,
    /// The file is a store of an unsupported format version.
    BadVersion(u32),
    /// An append or merge was attempted before an identity was set.
    MissingIdentity,
    /// Two different program identities met (append to a foreign store,
    /// or a merge across programs).
    IdentityMismatch,
    /// An append named the reserved [`COMPACTED_SOURCE`] id.
    ReservedSource,
    /// A sequence (or epoch) counter left u32 space — replaying such a
    /// log would reuse sequence numbers and corrupt the canonical fold
    /// order.
    SequenceOverflow(u32),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store I/O error: {e}"),
            StoreError::NotAStore => write!(f, "not a profile store (bad magic)"),
            StoreError::BadVersion(v) => write!(f, "unsupported store version {v}"),
            StoreError::MissingIdentity => write!(f, "store has no program identity yet"),
            StoreError::IdentityMismatch => write!(f, "program identities differ"),
            StoreError::ReservedSource => write!(
                f,
                "source id {COMPACTED_SOURCE} is reserved for compacted records"
            ),
            StoreError::SequenceOverflow(source) => {
                write!(f, "corrupt store: sequence overflow for source {source}")
            }
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> StoreError {
        StoreError::Io(e)
    }
}

/// What [`ProfileStore::open`] found and did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OpenReport {
    /// Frames recovered (all types, including skipped unknown ones).
    pub frames: usize,
    /// Bytes cut off the tail (torn write / corruption); 0 for a clean
    /// open.
    pub truncated_bytes: u64,
    /// Whether the file existed before this open.
    pub existed: bool,
}

/// Per-epoch accounting, as listed by the daemon's `EPOCHS` op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpochStats {
    /// The epoch id.
    pub epoch: u32,
    /// Counts frames stamped with this epoch.
    pub counts_frames: u32,
    /// EBS samples the epoch's counts frames contributed.
    pub ebs_samples: u64,
    /// LBR samples the epoch's counts frames contributed.
    pub lbr_samples: u64,
}

/// An immutable, in-memory view of a store's contents — what queries,
/// merges and differential tests consume.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// The store's program identity, if one was ever written.
    pub identity: Option<StoreIdentity>,
    /// Every counts frame, in log order.
    pub counts: Vec<CountsRecord>,
    /// Every window timeline frame, in log order.
    pub windows: Vec<WindowRecord>,
    /// Epoch stamp of each counts frame (parallel to `counts`).
    pub counts_epochs: Vec<u32>,
    /// Epoch stamp of each window frame (parallel to `windows`).
    pub window_epochs: Vec<u32>,
}

impl Snapshot {
    /// The canonical aggregate: each epoch's records sorted by
    /// `(source, seq)` and folded left to right with [`Bbec::merge`],
    /// then the per-epoch aggregates folded in epoch order.
    /// Deterministic for any arrival interleaving of the same
    /// recordings, and — because tiered compaction replaces an epoch's
    /// records with exactly its fold — bit-identical before and after
    /// [`ProfileStore::compact`].
    pub fn aggregate(&self) -> Bbec {
        let mut acc = Bbec::new();
        for epoch in self.epochs() {
            acc.merge(&self.epoch_aggregate(epoch));
        }
        acc
    }

    /// Distinct epochs with at least one counts or window frame,
    /// ascending.
    pub fn epochs(&self) -> Vec<u32> {
        let mut v: Vec<u32> = self
            .counts_epochs
            .iter()
            .chain(self.window_epochs.iter())
            .copied()
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// One epoch's aggregate: its counts records sorted by
    /// `(source, seq)`, folded left to right. Empty for an unknown
    /// epoch.
    pub fn epoch_aggregate(&self, epoch: u32) -> Bbec {
        let mut order: Vec<&CountsRecord> = self
            .counts
            .iter()
            .zip(&self.counts_epochs)
            .filter(|(_, e)| **e == epoch)
            .map(|(r, _)| r)
            .collect();
        order.sort_by_key(|r| (r.source, r.seq));
        let mut acc = Bbec::new();
        for rec in order {
            acc.merge(&rec.bbec);
        }
        acc
    }

    /// Per-epoch frame/sample accounting, ascending by epoch.
    pub fn epoch_stats(&self) -> Vec<EpochStats> {
        let mut stats: Vec<EpochStats> = self
            .epochs()
            .into_iter()
            .map(|epoch| EpochStats {
                epoch,
                counts_frames: 0,
                ebs_samples: 0,
                lbr_samples: 0,
            })
            .collect();
        for (rec, epoch) in self.counts.iter().zip(&self.counts_epochs) {
            let s = stats
                .iter_mut()
                .find(|s| s.epoch == *epoch)
                .expect("epochs() covers every stamp");
            s.counts_frames += 1;
            s.ebs_samples += rec.ebs_samples;
            s.lbr_samples += rec.lbr_samples;
        }
        stats
    }

    /// Total `(ebs, lbr)` samples over all counts records.
    pub fn total_samples(&self) -> (u64, u64) {
        self.counts
            .iter()
            .fold((0, 0), |(e, l), r| (e + r.ebs_samples, l + r.lbr_samples))
    }

    /// Distinct source ids across counts records.
    pub fn sources(&self) -> Vec<u32> {
        let mut v: Vec<u32> = self.counts.iter().map(|r| r.source).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Window frames in canonical `(source, index)` order — the stable
    /// timeline positions that `hbbp synth --window` selects from,
    /// independent of arrival interleaving. Log order is preserved
    /// among duplicates of the same `(source, index)` pair.
    pub fn ordered_windows(&self) -> Vec<&WindowRecord> {
        let mut v: Vec<&WindowRecord> = self.windows.iter().collect();
        v.sort_by_key(|w| (w.source, w.index));
        v
    }

    /// Number of window timeline frames in the snapshot.
    pub fn window_count(&self) -> usize {
        self.windows.len()
    }

    /// The `n`-th window in canonical `(source, index)` order, or
    /// `None` past the end. This is the indexing contract behind
    /// `hbbp synth --window N`.
    pub fn nth_window(&self, n: usize) -> Option<&WindowRecord> {
        self.ordered_windows().get(n).copied()
    }
}

/// An open, append-only profile store file. See the module docs for the
/// format and the merge semantics.
#[derive(Debug)]
pub struct ProfileStore {
    path: PathBuf,
    file: File,
    /// Byte length of the valid log (appends start here).
    len: u64,
    /// Encoded frames accepted by a `*_deferred` append but not yet
    /// written to the file — flushed as one write by
    /// [`ProfileStore::commit`] (group commit).
    pending: Vec<u8>,
    identity: Option<StoreIdentity>,
    counts: Vec<CountsRecord>,
    windows: Vec<WindowRecord>,
    counts_epochs: Vec<u32>,
    window_epochs: Vec<u32>,
    next_seq: HashMap<u32, u32>,
    /// Epoch stamped onto the next counts/window append.
    current_epoch: u32,
    /// Highest epoch whose boundary marker is in the log (or pending
    /// buffer); epoch 0 is implicit. Markers are written lazily, just
    /// before the first frame of a new epoch, so advancing past an
    /// epoch that never receives a frame leaves no trace.
    marked_epoch: u32,
    report: OpenReport,
}

impl ProfileStore {
    /// Open (or create) the store at `path`, recovering from a torn tail:
    /// the log is replayed frame by frame and truncated at the first
    /// frame whose checksum fails or that ends mid-frame. Every complete,
    /// checksum-valid frame before that point survives.
    ///
    /// # Errors
    ///
    /// I/O failures, a file that is not a store, or an unsupported
    /// version. Corruption is **not** an error — it is truncated away and
    /// reported in [`ProfileStore::open_report`].
    pub fn open(path: impl AsRef<Path>) -> Result<ProfileStore, StoreError> {
        let path = path.as_ref().to_path_buf();
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        let existed = !bytes.is_empty();

        let mut store = ProfileStore {
            path,
            file,
            len: 0,
            pending: Vec::new(),
            identity: None,
            counts: Vec::new(),
            windows: Vec::new(),
            counts_epochs: Vec::new(),
            window_epochs: Vec::new(),
            next_seq: HashMap::new(),
            current_epoch: 0,
            marked_epoch: 0,
            report: OpenReport {
                frames: 0,
                truncated_bytes: 0,
                existed,
            },
        };

        if !existed {
            store.file.write_all(MAGIC)?;
            store.file.write_all(&VERSION.to_le_bytes())?;
            store.file.flush()?;
            store.len = HEADER_LEN as u64;
            return Ok(store);
        }

        // Header: a short file that is a prefix of a valid header is a
        // torn header write — restart the file; anything else is foreign.
        if bytes.len() < HEADER_LEN {
            let n = bytes.len().min(MAGIC.len());
            if bytes[..n] != MAGIC[..n] {
                return Err(StoreError::NotAStore);
            }
            store.report.truncated_bytes = bytes.len() as u64;
            store.file.set_len(0)?;
            store.file.seek(SeekFrom::Start(0))?;
            store.file.write_all(MAGIC)?;
            store.file.write_all(&VERSION.to_le_bytes())?;
            store.file.flush()?;
            store.len = HEADER_LEN as u64;
            return Ok(store);
        }
        if &bytes[..MAGIC.len()] != MAGIC {
            return Err(StoreError::NotAStore);
        }
        let version = u32::from_le_bytes(
            bytes[MAGIC.len()..HEADER_LEN]
                .try_into()
                .expect("4 version bytes"),
        );
        if version != VERSION {
            return Err(StoreError::BadVersion(version));
        }

        // Replay frames; stop (and truncate) at the first bad one.
        let mut pos = HEADER_LEN;
        'replay: while pos < bytes.len() {
            match read_frame(&bytes[pos..]) {
                FrameOutcome::Frame { frame, consumed } => {
                    if let Some(frame) = frame {
                        match store.apply(frame) {
                            Ok(()) => {}
                            // A sequence counter leaving u32 space means
                            // the fold order can no longer be trusted:
                            // surface the corruption instead of silently
                            // discarding a checksum-valid frame.
                            Err(e @ StoreError::SequenceOverflow(_)) => return Err(e),
                            // An identity conflict or a non-ascending
                            // epoch marker mid-log is corruption in the
                            // same sense as a failed checksum: keep the
                            // consistent prefix.
                            Err(_) => break 'replay,
                        }
                    }
                    store.report.frames += 1;
                    pos += consumed;
                }
                FrameOutcome::Incomplete | FrameOutcome::Corrupt => break,
            }
        }
        store.report.truncated_bytes = (bytes.len() - pos) as u64;
        store.len = pos as u64;
        store.file.set_len(store.len)?;
        store.file.seek(SeekFrom::Start(store.len))?;
        Ok(store)
    }

    /// [`ProfileStore::open`], then set or verify the program identity:
    /// a fresh store adopts `identity`; an existing one must match it.
    ///
    /// # Errors
    ///
    /// Everything [`ProfileStore::open`] returns, plus
    /// [`StoreError::IdentityMismatch`] when the file already belongs to
    /// a different program.
    pub fn open_with_identity(
        path: impl AsRef<Path>,
        identity: StoreIdentity,
    ) -> Result<ProfileStore, StoreError> {
        let mut store = ProfileStore::open(path)?;
        match &store.identity {
            Some(existing) if *existing == identity => {}
            Some(_) => return Err(StoreError::IdentityMismatch),
            None => store.set_identity(identity)?,
        }
        Ok(store)
    }

    /// Apply a replayed frame to the in-memory mirror.
    fn apply(&mut self, frame: Frame) -> Result<(), StoreError> {
        match frame {
            Frame::Identity(id) => match &self.identity {
                Some(existing) if *existing != id => return Err(StoreError::IdentityMismatch),
                _ => self.identity = Some(id),
            },
            Frame::Counts(rec) => {
                let follower = rec
                    .seq
                    .checked_add(1)
                    .ok_or(StoreError::SequenceOverflow(rec.source))?;
                let next = self.next_seq.entry(rec.source).or_insert(0);
                *next = (*next).max(follower);
                self.counts.push(rec);
                self.counts_epochs.push(self.current_epoch);
            }
            Frame::Window(rec) => {
                self.windows.push(rec);
                self.window_epochs.push(self.current_epoch);
            }
            Frame::Epoch(epoch) => {
                // Markers must ascend; a regressing marker is treated as
                // corruption by the replay loop (identity-mismatch
                // semantics).
                if epoch <= self.marked_epoch && !(epoch == 0 && self.marked_epoch == 0) {
                    return Err(StoreError::IdentityMismatch);
                }
                self.current_epoch = epoch;
                self.marked_epoch = epoch;
            }
        }
        Ok(())
    }

    /// Encode one frame into the pending buffer (not yet in the file).
    fn buffer_frame(&mut self, frame: &Frame) {
        self.pending.extend_from_slice(&encode_frame(frame));
    }

    /// Append one frame to the log. The frame is handed to the OS before
    /// returning, but **not fsynced** — a host crash can lose recently
    /// appended frames (they reappear as a clean or torn tail that
    /// [`ProfileStore::open`] recovers from; per-frame `sync_all` would
    /// dominate ingest cost). [`ProfileStore::compact`] is the fsync
    /// point.
    fn append_frame(&mut self, frame: &Frame) -> Result<(), StoreError> {
        self.buffer_frame(frame);
        self.commit()
    }

    /// Flush every deferred append to the file as **one** write (group
    /// commit). A no-op when nothing is pending. On success, everything
    /// accepted by a `*_deferred` call is in the log (still OS-buffered,
    /// not fsynced — see [`ProfileStore::compact`] for the fsync point);
    /// on failure the pending bytes are kept so a retry is possible, but
    /// the in-memory mirror already reflects the deferred frames, so
    /// callers that cannot retry should treat the store as poisoned.
    ///
    /// # Errors
    ///
    /// I/O failures writing the log.
    pub fn commit(&mut self) -> Result<(), StoreError> {
        if self.pending.is_empty() {
            return Ok(());
        }
        self.file.write_all(&self.pending)?;
        self.file.flush()?;
        self.len += self.pending.len() as u64;
        self.pending.clear();
        Ok(())
    }

    /// Bytes accepted by `*_deferred` appends but not yet committed.
    pub fn pending_bytes(&self) -> usize {
        self.pending.len()
    }

    /// The file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Byte length of the valid log.
    pub fn file_bytes(&self) -> u64 {
        self.len
    }

    /// What [`ProfileStore::open`] found and did.
    pub fn open_report(&self) -> &OpenReport {
        &self.report
    }

    /// The program identity, if one was written.
    pub fn identity(&self) -> Option<&StoreIdentity> {
        self.identity.as_ref()
    }

    /// Write the identity header. Only valid once per store.
    ///
    /// # Errors
    ///
    /// [`StoreError::IdentityMismatch`] if a different identity is
    /// already set; I/O errors from the append.
    pub fn set_identity(&mut self, identity: StoreIdentity) -> Result<(), StoreError> {
        match &self.identity {
            Some(existing) if *existing == identity => Ok(()),
            Some(_) => Err(StoreError::IdentityMismatch),
            None => {
                self.append_frame(&Frame::Identity(identity.clone()))?;
                self.identity = Some(identity);
                Ok(())
            }
        }
    }

    /// Append one recording's counts, assigning the next sequence number
    /// for `source`. Returns the assigned `seq`.
    ///
    /// # Errors
    ///
    /// [`StoreError::MissingIdentity`] before an identity is set;
    /// [`StoreError::ReservedSource`] for [`COMPACTED_SOURCE`]; I/O
    /// errors from the append.
    pub fn append_counts(
        &mut self,
        source: u32,
        ebs_samples: u64,
        lbr_samples: u64,
        bbec: Bbec,
    ) -> Result<u32, StoreError> {
        let seq = self.append_counts_deferred(source, ebs_samples, lbr_samples, bbec)?;
        self.commit()?;
        Ok(seq)
    }

    /// [`ProfileStore::append_counts`] without the write: the frame is
    /// buffered until the next [`ProfileStore::commit`] (or any
    /// non-deferred append), so a writer can batch many appends into one
    /// file write. The assigned `seq` and the in-memory mirror (and thus
    /// [`ProfileStore::snapshot`]) reflect the frame immediately.
    ///
    /// # Errors
    ///
    /// [`StoreError::MissingIdentity`] before an identity is set;
    /// [`StoreError::ReservedSource`] for [`COMPACTED_SOURCE`].
    pub fn append_counts_deferred(
        &mut self,
        source: u32,
        ebs_samples: u64,
        lbr_samples: u64,
        bbec: Bbec,
    ) -> Result<u32, StoreError> {
        if source == COMPACTED_SOURCE {
            return Err(StoreError::ReservedSource);
        }
        self.push_counts(source, ebs_samples, lbr_samples, bbec)
    }

    /// The append path shared with [`ProfileStore::merge_from`] and
    /// [`ProfileStore::compact`], which legitimately carry
    /// [`COMPACTED_SOURCE`] fold frames.
    fn push_counts(
        &mut self,
        source: u32,
        ebs_samples: u64,
        lbr_samples: u64,
        bbec: Bbec,
    ) -> Result<u32, StoreError> {
        if self.identity.is_none() {
            return Err(StoreError::MissingIdentity);
        }
        let next = self.next_seq.entry(source).or_insert(0);
        let seq = *next;
        *next = seq
            .checked_add(1)
            .ok_or(StoreError::SequenceOverflow(source))?;
        let epoch = self.current_epoch;
        self.mark_epoch();
        let rec = CountsRecord {
            source,
            seq,
            ebs_samples,
            lbr_samples,
            bbec,
        };
        self.buffer_frame(&Frame::Counts(rec.clone()));
        self.counts.push(rec);
        self.counts_epochs.push(epoch);
        Ok(seq)
    }

    /// Buffer the current epoch's boundary marker if the log does not
    /// carry it yet (lazy: an epoch that never receives a frame leaves
    /// no trace).
    fn mark_epoch(&mut self) {
        if self.current_epoch > self.marked_epoch {
            let frame = Frame::Epoch(self.current_epoch);
            self.buffer_frame(&frame);
            self.marked_epoch = self.current_epoch;
        }
    }

    /// Append one window timeline record.
    ///
    /// # Errors
    ///
    /// [`StoreError::MissingIdentity`] before an identity is set; I/O
    /// errors from the append.
    pub fn append_window(&mut self, record: WindowRecord) -> Result<(), StoreError> {
        self.append_window_deferred(record)?;
        self.commit()
    }

    /// [`ProfileStore::append_window`] without the write — buffered until
    /// the next [`ProfileStore::commit`], like
    /// [`ProfileStore::append_counts_deferred`].
    ///
    /// # Errors
    ///
    /// [`StoreError::MissingIdentity`] before an identity is set.
    pub fn append_window_deferred(&mut self, record: WindowRecord) -> Result<(), StoreError> {
        if self.identity.is_none() {
            return Err(StoreError::MissingIdentity);
        }
        let epoch = self.current_epoch;
        self.mark_epoch();
        self.buffer_frame(&Frame::Window(record.clone()));
        self.windows.push(record);
        self.window_epochs.push(epoch);
        Ok(())
    }

    /// Counts frames in log order.
    pub fn counts(&self) -> &[CountsRecord] {
        &self.counts
    }

    /// Window timeline frames in log order.
    pub fn windows(&self) -> &[WindowRecord] {
        &self.windows
    }

    /// The epoch stamped onto the next append. Starts at 0; advanced by
    /// [`ProfileStore::advance_epoch`] and sealed by
    /// [`ProfileStore::compact`]; recovered from the log's boundary
    /// markers on open.
    pub fn current_epoch(&self) -> u32 {
        self.current_epoch
    }

    /// Open a new epoch: every subsequent append is stamped with the
    /// returned id. The boundary marker is written lazily with the
    /// epoch's first frame, so an advance that is never followed by an
    /// append does not survive a reopen.
    ///
    /// # Errors
    ///
    /// [`StoreError::SequenceOverflow`] if the epoch counter would leave
    /// u32 space.
    pub fn advance_epoch(&mut self) -> Result<u32, StoreError> {
        self.current_epoch = self
            .current_epoch
            .checked_add(1)
            .ok_or(StoreError::SequenceOverflow(COMPACTED_SOURCE))?;
        Ok(self.current_epoch)
    }

    /// An immutable view of the current contents.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            identity: self.identity.clone(),
            counts: self.counts.clone(),
            windows: self.windows.clone(),
            counts_epochs: self.counts_epochs.clone(),
            window_epochs: self.window_epochs.clone(),
        }
    }

    /// The canonical aggregate profile (see [`Snapshot::aggregate`]).
    pub fn aggregate(&self) -> Bbec {
        self.snapshot().aggregate()
    }

    /// Merge another store's contents into this one — lossless: every
    /// counts and window frame of `other` is appended (counts are
    /// re-sequenced per source so per-source order is preserved without
    /// colliding with frames already present).
    ///
    /// ```
    /// use hbbp_program::{Bbec, Ring};
    /// use hbbp_store::{ModuleSpan, ProfileStore, StoreIdentity};
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let dir = std::env::temp_dir().join(format!("hbbp-merge-doc-{}", std::process::id()));
    /// std::fs::create_dir_all(&dir)?;
    /// let identity = StoreIdentity {
    ///     program: "demo".into(),
    ///     block_count: 1,
    ///     modules: vec![ModuleSpan { name: "demo.bin".into(), base: 0x1000, len: 0x100, ring: Ring::User }],
    /// };
    /// let mut a = ProfileStore::open_with_identity(dir.join("a.hbbp"), identity.clone())?;
    /// let mut b = ProfileStore::open_with_identity(dir.join("b.hbbp"), identity)?;
    /// a.append_counts(1, 10, 5, [(0x1000u64, 100.0)].into_iter().collect::<Bbec>())?;
    /// b.append_counts(2, 20, 9, [(0x1000u64, 50.0)].into_iter().collect::<Bbec>())?;
    ///
    /// // Lossless: both counts frames survive, and the aggregate is the
    /// // canonical (source, seq)-ordered fold over the union.
    /// a.merge_from(&b.snapshot())?;
    /// assert_eq!(a.counts().len(), 2);
    /// assert_eq!(a.aggregate().get(0x1000), 150.0);
    /// # std::fs::remove_dir_all(&dir)?;
    /// # Ok(())
    /// # }
    /// ```
    ///
    /// # Errors
    ///
    /// [`StoreError::IdentityMismatch`] when the identities differ (or
    /// [`StoreError::MissingIdentity`] when either side has none); I/O
    /// errors from the appends.
    pub fn merge_from(&mut self, other: &Snapshot) -> Result<(), StoreError> {
        let (Some(mine), Some(theirs)) = (&self.identity, &other.identity) else {
            return Err(StoreError::MissingIdentity);
        };
        if mine != theirs {
            return Err(StoreError::IdentityMismatch);
        }
        let mut in_order: Vec<&CountsRecord> = other.counts.iter().collect();
        in_order.sort_by_key(|r| (r.source, r.seq));
        for rec in in_order {
            // `push_counts`, not the public append: the other store may
            // legitimately carry `COMPACTED_SOURCE` fold frames. Merged
            // frames are re-sequenced and land in **this** store's
            // current epoch — a merge is an ingest event of the target's
            // timeline.
            self.push_counts(
                rec.source,
                rec.ebs_samples,
                rec.lbr_samples,
                rec.bbec.clone(),
            )?;
        }
        for w in &other.windows {
            self.append_window_deferred(w.clone())?;
        }
        // One group commit for the whole merge.
        self.commit()
    }

    /// Tiered compaction: rewrite the log as identity + **one folded
    /// counts frame per epoch** + the window timeline (grouped under its
    /// epoch markers), atomically (temp file + rename; this is also the
    /// store's fsync point). Every per-epoch aggregate — and therefore
    /// the global fold — is preserved **bit-exactly**: each fold frame
    /// is exactly its epoch's canonical aggregate, written under
    /// [`COMPACTED_SOURCE`]. Only per-recording provenance *inside* an
    /// epoch is given up; history across epochs survives.
    ///
    /// Compaction **seals** the current epoch *unconditionally*:
    /// subsequent appends are stamped with a fresh epoch, so each
    /// compact→ingest cycle adds one tier instead of erasing the last.
    /// An idle store seals too — the empty epoch costs one marker frame
    /// and never shows up in [`Snapshot::epochs`] — because a daemon
    /// fans `COMPACT` out to every shard, and a shard that happened to
    /// be empty must advance in lockstep or the shards' epoch numbering
    /// diverges (post-compact ingest on the idle shard would land in the
    /// epoch its siblings just sealed).
    ///
    /// The per-source sequence map survives compaction unchanged (a
    /// source re-appending afterwards continues its sequence instead of
    /// restarting at 0, which would violate per-source ordering under a
    /// later [`ProfileStore::merge_from`]).
    ///
    /// # Errors
    ///
    /// [`StoreError::MissingIdentity`] on an identity-less store; I/O
    /// errors from writing or renaming the temp file.
    pub fn compact(&mut self) -> Result<(), StoreError> {
        let Some(identity) = self.identity.clone() else {
            return Err(StoreError::MissingIdentity);
        };
        let snapshot = self.snapshot();
        let epochs = snapshot.epochs();
        // Seal: the compacted epoch becomes closed history; appends after
        // this compact open a fresh tier. Sealing is durable — the new
        // epoch's boundary marker is written at the tail of the rewritten
        // log (the one eager marker; ordinary advances stay lazy).
        let sealed = self
            .current_epoch
            .checked_add(1)
            .ok_or(StoreError::SequenceOverflow(COMPACTED_SOURCE))?;

        // One fold frame per epoch with counts, seqs assigned in epoch
        // order so the folds keep a deterministic (source, seq) order
        // under the shared COMPACTED_SOURCE id.
        let mut next_fold = self.next_seq.get(&COMPACTED_SOURCE).copied().unwrap_or(0);
        let mut folds: Vec<(u32, CountsRecord)> = Vec::new();
        for stats in snapshot.epoch_stats() {
            if stats.counts_frames == 0 {
                continue; // window-only epoch: nothing to fold
            }
            let seq = next_fold;
            next_fold = seq
                .checked_add(1)
                .ok_or(StoreError::SequenceOverflow(COMPACTED_SOURCE))?;
            folds.push((
                stats.epoch,
                CountsRecord {
                    source: COMPACTED_SOURCE,
                    seq,
                    ebs_samples: stats.ebs_samples,
                    lbr_samples: stats.lbr_samples,
                    bbec: snapshot.epoch_aggregate(stats.epoch),
                },
            ));
        }

        let tmp_path = self.path.with_extension("tmp");
        let mut tmp = File::create(&tmp_path)?;
        tmp.write_all(MAGIC)?;
        tmp.write_all(&VERSION.to_le_bytes())?;
        let mut len = HEADER_LEN as u64;
        let write = |file: &mut File, frame: &Frame| -> Result<u64, StoreError> {
            let bytes = encode_frame(frame);
            file.write_all(&bytes)?;
            Ok(bytes.len() as u64)
        };
        len += write(&mut tmp, &Frame::Identity(identity))?;
        let mut marked = 0u32;
        let mut windows = Vec::with_capacity(snapshot.windows.len());
        let mut window_epochs = Vec::with_capacity(snapshot.windows.len());
        for &epoch in &epochs {
            if epoch > marked {
                len += write(&mut tmp, &Frame::Epoch(epoch))?;
                marked = epoch;
            }
            if let Some((_, fold)) = folds.iter().find(|(e, _)| *e == epoch) {
                len += write(&mut tmp, &Frame::Counts(fold.clone()))?;
            }
            for (w, we) in snapshot.windows.iter().zip(&snapshot.window_epochs) {
                if *we == epoch {
                    len += write(&mut tmp, &Frame::Window(w.clone()))?;
                    windows.push(w.clone());
                    window_epochs.push(epoch);
                }
            }
        }
        if sealed > marked {
            len += write(&mut tmp, &Frame::Epoch(sealed))?;
            marked = sealed;
        }
        tmp.sync_all()?;
        drop(tmp);
        std::fs::rename(&tmp_path, &self.path)?;

        self.file = OpenOptions::new().read(true).write(true).open(&self.path)?;
        self.file.seek(SeekFrom::End(0))?;
        // Deferred frames are part of the snapshot just rewritten; the
        // buffered bytes must not be appended again.
        self.pending.clear();
        self.len = len;
        self.counts_epochs = folds.iter().map(|(e, _)| *e).collect();
        self.counts = folds.into_iter().map(|(_, f)| f).collect();
        self.windows = windows;
        self.window_epochs = window_epochs;
        self.next_seq.insert(COMPACTED_SOURCE, next_fold);
        self.marked_epoch = marked;
        self.current_epoch = sealed;
        Ok(())
    }
}

impl StoreIdentity {
    /// The identity of a workload's address space: program name, block
    /// count of `map`, and every module's load span.
    pub fn of_workload(workload: &Workload, map: &BlockMap) -> StoreIdentity {
        StoreIdentity {
            program: workload.program().name().to_owned(),
            block_count: map.len() as u32,
            modules: workload
                .program()
                .modules()
                .iter()
                .map(|m| {
                    let (base, end) = workload.layout().module_range(m.id());
                    ModuleSpan {
                        name: m.name().to_owned(),
                        base,
                        len: end - base,
                        ring: m.ring(),
                    }
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbbp_program::Ring;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("hbbp-store-unit-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join(name);
        let _ = std::fs::remove_file(&path);
        path
    }

    fn identity() -> StoreIdentity {
        StoreIdentity {
            program: "p".into(),
            block_count: 3,
            modules: vec![ModuleSpan {
                name: "p.bin".into(),
                base: 0x400000,
                len: 0x1000,
                ring: Ring::User,
            }],
        }
    }

    fn bbec(entries: &[(u64, f64)]) -> Bbec {
        entries.iter().copied().collect()
    }

    #[test]
    fn append_reopen_roundtrip() {
        let path = tmp("roundtrip.hbbp");
        {
            let mut s = ProfileStore::open_with_identity(&path, identity()).unwrap();
            assert!(!s.open_report().existed);
            let seq0 = s
                .append_counts(1, 10, 5, bbec(&[(0x400000, 2.5), (0x400010, 1.0)]))
                .unwrap();
            let seq1 = s.append_counts(1, 4, 2, bbec(&[(0x400000, 0.5)])).unwrap();
            assert_eq!((seq0, seq1), (0, 1));
            s.append_window(WindowRecord {
                source: 1,
                index: 0,
                start_cycles: 0,
                end_cycles: 100,
                ebs_samples: 10,
                lbr_samples: 5,
                mix: MnemonicMix::new(),
            })
            .unwrap();
        }
        let s = ProfileStore::open(&path).unwrap();
        assert!(s.open_report().existed);
        assert_eq!(s.open_report().truncated_bytes, 0);
        assert_eq!(s.identity(), Some(&identity()));
        assert_eq!(s.counts().len(), 2);
        assert_eq!(s.windows().len(), 1);
        assert_eq!(s.aggregate().get(0x400000), 3.0);
        assert_eq!(s.snapshot().total_samples(), (14, 7));
    }

    use hbbp_program::MnemonicMix;

    #[test]
    fn torn_tail_is_truncated_and_appends_continue() {
        let path = tmp("torn.hbbp");
        {
            let mut s = ProfileStore::open_with_identity(&path, identity()).unwrap();
            s.append_counts(1, 1, 1, bbec(&[(0x400000, 1.0)])).unwrap();
            s.append_counts(2, 1, 1, bbec(&[(0x400010, 2.0)])).unwrap();
        }
        // Simulate a torn write: chop bytes off the tail.
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 7]).unwrap();
        let mut s = ProfileStore::open(&path).unwrap();
        assert!(s.open_report().truncated_bytes > 0);
        assert_eq!(s.counts().len(), 1, "only the intact frame survives");
        // The log is consistent again: appends work and a further reopen
        // is clean.
        s.append_counts(2, 1, 1, bbec(&[(0x400010, 4.0)])).unwrap();
        drop(s);
        let s = ProfileStore::open(&path).unwrap();
        assert_eq!(s.open_report().truncated_bytes, 0);
        assert_eq!(s.counts().len(), 2);
        assert_eq!(s.aggregate().get(0x400010), 4.0);
    }

    #[test]
    fn aggregate_fold_is_arrival_order_independent() {
        let a = CountsRecord {
            source: 1,
            seq: 0,
            ebs_samples: 0,
            lbr_samples: 0,
            bbec: bbec(&[(0x400000, 0.1), (0x400010, 7.0)]),
        };
        let b = CountsRecord {
            source: 2,
            seq: 0,
            ebs_samples: 0,
            lbr_samples: 0,
            bbec: bbec(&[(0x400000, 0.2)]),
        };
        let snap = |counts: Vec<CountsRecord>| {
            let epochs = vec![0; counts.len()];
            Snapshot {
                identity: None,
                counts,
                windows: vec![],
                counts_epochs: epochs,
                window_epochs: vec![],
            }
        };
        let ab = snap(vec![a.clone(), b.clone()]).aggregate();
        let ba = snap(vec![b, a]).aggregate();
        assert_eq!(ab, ba);
        // Bitwise, not just approximately.
        assert_eq!(ab.get(0x400000).to_bits(), ba.get(0x400000).to_bits());
    }

    #[test]
    fn merge_is_lossless_and_identity_checked() {
        let pa = tmp("merge-a.hbbp");
        let pb = tmp("merge-b.hbbp");
        let mut a = ProfileStore::open_with_identity(&pa, identity()).unwrap();
        let mut b = ProfileStore::open_with_identity(&pb, identity()).unwrap();
        a.append_counts(1, 1, 0, bbec(&[(0x400000, 1.0)])).unwrap();
        b.append_counts(2, 2, 0, bbec(&[(0x400000, 2.0)])).unwrap();
        b.append_counts(2, 3, 0, bbec(&[(0x400020, 8.0)])).unwrap();
        a.merge_from(&b.snapshot()).unwrap();
        assert_eq!(a.counts().len(), 3);
        assert_eq!(a.aggregate().get(0x400000), 3.0);
        assert_eq!(a.snapshot().sources(), vec![1, 2]);

        let mut other = identity();
        other.program = "q".into();
        let pc = tmp("merge-c.hbbp");
        let c = ProfileStore::open_with_identity(&pc, other).unwrap();
        assert!(matches!(
            a.merge_from(&c.snapshot()),
            Err(StoreError::IdentityMismatch)
        ));
    }

    #[test]
    fn compact_preserves_aggregate_bitwise_and_shrinks() {
        let path = tmp("compact.hbbp");
        let mut s = ProfileStore::open_with_identity(&path, identity()).unwrap();
        for i in 0..20u32 {
            s.append_counts(
                i % 3,
                1,
                1,
                bbec(&[(0x400000 + u64::from(i) * 16, 1.0 / f64::from(i + 3))]),
            )
            .unwrap();
        }
        let before = s.aggregate();
        let bytes_before = s.file_bytes();
        s.compact().unwrap();
        assert_eq!(s.counts().len(), 1);
        assert_eq!(s.counts()[0].source, COMPACTED_SOURCE);
        assert!(s.file_bytes() < bytes_before);
        let after = s.aggregate();
        for (addr, count) in before.iter() {
            assert_eq!(after.get(addr).to_bits(), count.to_bits(), "addr {addr:#x}");
        }
        // Reopen sees the compacted log; appends still work.
        drop(s);
        let mut s = ProfileStore::open(&path).unwrap();
        assert_eq!(s.counts().len(), 1);
        s.append_counts(5, 1, 1, bbec(&[(0x400000, 1.0)])).unwrap();
        assert_eq!(s.counts().len(), 2);
    }

    #[test]
    fn deferred_appends_group_commit_in_one_write() {
        let path = tmp("deferred.hbbp");
        let mut s = ProfileStore::open_with_identity(&path, identity()).unwrap();
        let base = s.file_bytes();
        let seq0 = s
            .append_counts_deferred(1, 1, 1, bbec(&[(0x400000, 1.0)]))
            .unwrap();
        s.append_window_deferred(WindowRecord {
            source: 1,
            index: 0,
            start_cycles: 0,
            end_cycles: 10,
            ebs_samples: 1,
            lbr_samples: 1,
            mix: MnemonicMix::new(),
        })
        .unwrap();
        let seq1 = s
            .append_counts_deferred(1, 2, 2, bbec(&[(0x400010, 2.0)]))
            .unwrap();
        assert_eq!((seq0, seq1), (0, 1));
        // The mirror sees the frames immediately; the file only after
        // commit, as one write.
        assert_eq!(s.counts().len(), 2);
        assert_eq!(s.file_bytes(), base);
        assert!(s.pending_bytes() > 0);
        s.commit().unwrap();
        assert_eq!(s.pending_bytes(), 0);
        assert!(s.file_bytes() > base);
        drop(s);
        let s = ProfileStore::open(&path).unwrap();
        assert_eq!(s.open_report().truncated_bytes, 0);
        assert_eq!(s.counts().len(), 2);
        assert_eq!(s.windows().len(), 1);
        assert_eq!(s.aggregate().get(0x400000), 1.0);
    }

    #[test]
    fn uncommitted_deferred_frames_never_reach_the_file() {
        let path = tmp("deferred-drop.hbbp");
        let mut s = ProfileStore::open_with_identity(&path, identity()).unwrap();
        s.append_counts(1, 1, 1, bbec(&[(0x400000, 1.0)])).unwrap();
        s.append_counts_deferred(2, 1, 1, bbec(&[(0x400010, 9.0)]))
            .unwrap();
        drop(s); // no commit: the deferred frame is lost, the log stays clean
        let s = ProfileStore::open(&path).unwrap();
        assert_eq!(s.open_report().truncated_bytes, 0);
        assert_eq!(s.counts().len(), 1);
    }

    #[test]
    fn compact_absorbs_pending_deferred_frames_exactly_once() {
        let path = tmp("deferred-compact.hbbp");
        let mut s = ProfileStore::open_with_identity(&path, identity()).unwrap();
        s.append_counts(1, 1, 1, bbec(&[(0x400000, 1.0)])).unwrap();
        s.append_counts_deferred(2, 1, 1, bbec(&[(0x400010, 2.0)]))
            .unwrap();
        s.compact().unwrap();
        assert_eq!(s.pending_bytes(), 0);
        assert_eq!(s.aggregate().get(0x400010), 2.0);
        drop(s);
        let s = ProfileStore::open(&path).unwrap();
        assert_eq!(s.open_report().truncated_bytes, 0);
        assert_eq!(s.counts().len(), 1, "one fold frame");
        assert_eq!(s.aggregate().get(0x400000), 1.0);
        assert_eq!(s.aggregate().get(0x400010), 2.0);
    }

    #[test]
    fn foreign_files_are_rejected_not_clobbered() {
        let path = tmp("foreign.hbbp");
        std::fs::write(&path, b"definitely not a store file").unwrap();
        assert!(matches!(
            ProfileStore::open(&path),
            Err(StoreError::NotAStore)
        ));
        assert_eq!(
            std::fs::read(&path).unwrap(),
            b"definitely not a store file"
        );
    }

    #[test]
    fn appends_require_identity() {
        let path = tmp("noident.hbbp");
        let mut s = ProfileStore::open(&path).unwrap();
        assert!(matches!(
            s.append_counts(1, 0, 0, Bbec::new()),
            Err(StoreError::MissingIdentity)
        ));
    }

    #[test]
    fn reserved_source_is_rejected_on_append() {
        // Bug regression: a client picking source id u32::MAX used to
        // merge silently into compacted fold records.
        let path = tmp("reserved.hbbp");
        let mut s = ProfileStore::open_with_identity(&path, identity()).unwrap();
        for append in [
            s.append_counts(COMPACTED_SOURCE, 1, 1, bbec(&[(0x400000, 1.0)])),
            s.append_counts_deferred(COMPACTED_SOURCE, 1, 1, bbec(&[(0x400000, 1.0)])),
        ] {
            let err = append.unwrap_err();
            assert!(matches!(err, StoreError::ReservedSource));
            assert_eq!(
                err.to_string(),
                "source id 4294967295 is reserved for compacted records"
            );
        }
        assert!(s.counts().is_empty());
        assert_eq!(s.pending_bytes(), 0);
    }

    #[test]
    fn seq_overflow_in_replay_is_a_corrupt_store_error() {
        // Bug regression: recovery computed `rec.seq + 1` unchecked — a
        // checksum-valid frame with seq u32::MAX panicked the open in
        // debug builds and silently reused sequence numbers in release.
        let path = tmp("seq-overflow.hbbp");
        {
            let mut s = ProfileStore::open_with_identity(&path, identity()).unwrap();
            s.append_counts(1, 1, 1, bbec(&[(0x400000, 1.0)])).unwrap();
        }
        let mut bytes = std::fs::read(&path).unwrap();
        let poisoned = encode_frame(&Frame::Counts(CountsRecord {
            source: 9,
            seq: u32::MAX,
            ebs_samples: 1,
            lbr_samples: 1,
            bbec: bbec(&[(0x400000, 1.0)]),
        }));
        bytes.extend_from_slice(&poisoned);
        std::fs::write(&path, &bytes).unwrap();
        let err = ProfileStore::open(&path).unwrap_err();
        assert!(matches!(err, StoreError::SequenceOverflow(9)));
        assert_eq!(
            err.to_string(),
            "corrupt store: sequence overflow for source 9"
        );
    }

    #[test]
    fn compact_preserves_per_source_sequencing() {
        // Bug regression: compact() used to reset `next_seq` to
        // {COMPACTED_SOURCE: 1}, so a source re-appending afterwards
        // restarted at seq 0 and violated per-source ordering under a
        // later merge_from.
        let path = tmp("seq-preserved.hbbp");
        let mut s = ProfileStore::open_with_identity(&path, identity()).unwrap();
        s.append_counts(1, 1, 1, bbec(&[(0x400000, 1.0)])).unwrap();
        s.append_counts(1, 1, 1, bbec(&[(0x400010, 2.0)])).unwrap();
        s.compact().unwrap();
        let seq = s.append_counts(1, 1, 1, bbec(&[(0x400020, 3.0)])).unwrap();
        assert_eq!(seq, 2, "source 1 continues its sequence after compact");
    }

    #[test]
    fn epochs_stamp_appends_and_survive_reopen() {
        let path = tmp("epochs.hbbp");
        {
            let mut s = ProfileStore::open_with_identity(&path, identity()).unwrap();
            assert_eq!(s.current_epoch(), 0);
            s.append_counts(1, 1, 0, bbec(&[(0x400000, 1.0)])).unwrap();
            assert_eq!(s.advance_epoch().unwrap(), 1);
            s.append_counts(1, 2, 0, bbec(&[(0x400000, 2.0)])).unwrap();
            s.append_counts(2, 4, 0, bbec(&[(0x400010, 8.0)])).unwrap();
            let snap = s.snapshot();
            assert_eq!(snap.counts_epochs, vec![0, 1, 1]);
            assert_eq!(snap.epochs(), vec![0, 1]);
        }
        let s = ProfileStore::open(&path).unwrap();
        assert_eq!(s.open_report().truncated_bytes, 0);
        assert_eq!(s.current_epoch(), 1);
        let snap = s.snapshot();
        assert_eq!(snap.counts_epochs, vec![0, 1, 1]);
        assert_eq!(snap.epoch_aggregate(0).get(0x400000), 1.0);
        assert_eq!(snap.epoch_aggregate(1).get(0x400000), 2.0);
        let stats = snap.epoch_stats();
        assert_eq!(stats.len(), 2);
        assert_eq!((stats[0].epoch, stats[0].counts_frames), (0, 1));
        assert_eq!((stats[1].epoch, stats[1].counts_frames), (1, 2));
        assert_eq!(stats[1].ebs_samples, 6);
    }

    #[test]
    fn advance_without_appends_leaves_no_trace() {
        let path = tmp("epoch-lazy.hbbp");
        {
            let mut s = ProfileStore::open_with_identity(&path, identity()).unwrap();
            s.advance_epoch().unwrap();
            s.advance_epoch().unwrap();
            assert_eq!(s.current_epoch(), 2);
        }
        let s = ProfileStore::open(&path).unwrap();
        assert_eq!(s.current_epoch(), 0, "lazy markers: no frame, no epoch");
    }

    /// Sealing must not depend on the store holding frames: a daemon
    /// fans COMPACT out to every shard, and a shard that was idle during
    /// the epoch has to advance in lockstep with its siblings — otherwise
    /// its next append lands in the epoch the others just sealed.
    #[test]
    fn compact_seals_even_an_idle_store() {
        let path = tmp("idle-seal.hbbp");
        let mut s = ProfileStore::open_with_identity(&path, identity()).unwrap();
        s.compact().unwrap();
        assert_eq!(s.current_epoch(), 1, "empty store still seals");
        s.append_counts(1, 1, 1, bbec(&[(0x400000, 1.0)])).unwrap();
        assert_eq!(s.snapshot().counts_epochs, vec![1]);
        drop(s);
        // The seal marker is eager, so the epoch survives reopen.
        let s = ProfileStore::open(&path).unwrap();
        assert_eq!(s.current_epoch(), 1);
        assert_eq!(s.snapshot().counts_epochs, vec![1]);
    }

    #[test]
    fn tiered_compact_preserves_per_epoch_aggregates_and_seals() {
        let path = tmp("tiered.hbbp");
        let mut s = ProfileStore::open_with_identity(&path, identity()).unwrap();
        for i in 0..6u32 {
            s.append_counts(
                i % 2,
                1,
                1,
                bbec(&[(0x400000 + u64::from(i) * 16, 1.0 / f64::from(i + 3))]),
            )
            .unwrap();
        }
        s.advance_epoch().unwrap();
        for i in 6..10u32 {
            s.append_counts(
                i % 3,
                1,
                1,
                bbec(&[(0x400000 + u64::from(i) * 16, 1.0 / f64::from(i + 3))]),
            )
            .unwrap();
        }
        let snap_before = s.snapshot();
        let global_before = snap_before.aggregate();
        s.compact().unwrap();
        assert_eq!(s.counts().len(), 2, "one fold frame per epoch");
        assert_eq!(s.current_epoch(), 2, "compaction seals the tier");
        let snap_after = s.snapshot();
        assert_eq!(snap_after.epochs(), vec![0, 1]);
        for epoch in [0, 1] {
            let before = snap_before.epoch_aggregate(epoch);
            let after = snap_after.epoch_aggregate(epoch);
            for (addr, count) in before.iter() {
                assert_eq!(
                    after.get(addr).to_bits(),
                    count.to_bits(),
                    "epoch {epoch} addr {addr:#x}"
                );
            }
            assert_eq!(before.len(), after.len());
        }
        for (addr, count) in global_before.iter() {
            assert_eq!(snap_after.aggregate().get(addr).to_bits(), count.to_bits());
        }
        // Reopen: the tiers, the seal and the aggregates all survive.
        drop(s);
        let mut s = ProfileStore::open(&path).unwrap();
        assert_eq!(s.open_report().truncated_bytes, 0);
        assert_eq!(s.current_epoch(), 2);
        let reopened = s.snapshot();
        assert_eq!(reopened.epochs(), vec![0, 1]);
        for (addr, count) in global_before.iter() {
            assert_eq!(reopened.aggregate().get(addr).to_bits(), count.to_bits());
        }
        // A second compact re-folds each single-record epoch onto itself.
        s.append_counts(7, 1, 1, bbec(&[(0x400000, 0.25)])).unwrap();
        assert_eq!(s.snapshot().counts_epochs.last(), Some(&2));
        s.compact().unwrap();
        assert_eq!(s.counts().len(), 3);
        assert_eq!(s.snapshot().epochs(), vec![0, 1, 2]);
        for epoch in [0, 1] {
            let before = snap_before.epoch_aggregate(epoch);
            let after = s.snapshot().epoch_aggregate(epoch);
            for (addr, count) in before.iter() {
                assert_eq!(after.get(addr).to_bits(), count.to_bits());
            }
        }
    }

    #[test]
    fn windows_keep_their_epoch_through_compact() {
        let path = tmp("window-epochs.hbbp");
        let window = |source: u32, index: u32| WindowRecord {
            source,
            index,
            start_cycles: u64::from(index) * 100,
            end_cycles: u64::from(index + 1) * 100,
            ebs_samples: 1,
            lbr_samples: 1,
            mix: MnemonicMix::new(),
        };
        let mut s = ProfileStore::open_with_identity(&path, identity()).unwrap();
        s.append_counts(1, 1, 1, bbec(&[(0x400000, 1.0)])).unwrap();
        s.append_window(window(1, 0)).unwrap();
        s.advance_epoch().unwrap();
        s.append_window(window(1, 1)).unwrap();
        s.append_counts(1, 1, 1, bbec(&[(0x400010, 2.0)])).unwrap();
        s.compact().unwrap();
        drop(s);
        let s = ProfileStore::open(&path).unwrap();
        let snap = s.snapshot();
        assert_eq!(snap.windows.len(), 2);
        assert_eq!(snap.window_epochs, vec![0, 1]);
        assert_eq!(
            (snap.windows[0].index, snap.windows[1].index),
            (0, 1),
            "window order preserved within epochs"
        );
    }

    #[test]
    fn window_selection_is_canonical_across_arrival_order() {
        let path = tmp("window-select.hbbp");
        let window = |source: u32, index: u32, weight: f64| {
            let mut mix = MnemonicMix::new();
            mix.add(hbbp_isa::Mnemonic::Add, weight);
            WindowRecord {
                source,
                index,
                start_cycles: u64::from(index) * 100,
                end_cycles: u64::from(index + 1) * 100,
                ebs_samples: 1,
                lbr_samples: 1,
                mix,
            }
        };
        let mut s = ProfileStore::open_with_identity(&path, identity()).unwrap();
        // Interleaved arrival from two sources, out of index order.
        s.append_window(window(2, 0, 20.0)).unwrap();
        s.append_window(window(1, 1, 11.0)).unwrap();
        s.append_window(window(1, 0, 10.0)).unwrap();
        s.append_window(window(2, 1, 21.0)).unwrap();
        let snap = s.snapshot();
        assert_eq!(snap.window_count(), 4);
        // Canonical order is (source, index), not arrival order.
        let keys: Vec<(u32, u32)> = snap
            .ordered_windows()
            .iter()
            .map(|w| (w.source, w.index))
            .collect();
        assert_eq!(keys, vec![(1, 0), (1, 1), (2, 0), (2, 1)]);
        // nth_window follows the same contract (the `--window N` index).
        let third = snap.nth_window(2).expect("in range");
        assert_eq!((third.source, third.index), (2, 0));
        assert_eq!(
            third.mix.get(hbbp_isa::Mnemonic::Add).to_bits(),
            20.0f64.to_bits()
        );
        assert!(snap.nth_window(4).is_none());
        // The selection survives a reopen byte-for-byte.
        drop(s);
        let s = ProfileStore::open(&path).unwrap();
        let reopened = s.snapshot();
        let third = reopened.nth_window(2).expect("in range");
        assert_eq!(
            third.mix.get(hbbp_isa::Mnemonic::Add).to_bits(),
            20.0f64.to_bits()
        );
    }
}

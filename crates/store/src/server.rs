//! The event-driven connection engine behind `hbbpd`.
//!
//! A small pool of workers, each multiplexing many **nonblocking**
//! connections through a poll loop (std-only readiness: try the socket,
//! treat `WouldBlock` as "not ready"). Every connection is a state
//! machine ([`ConnState`]) that tolerates partial reads and writes at
//! any byte boundary — a client trickling one byte per tick just keeps
//! its own state machine warm without costing anyone else more than a
//! failed `read` per tick.
//!
//! Fairness and backpressure:
//!
//! * each connection gets at most [`READ_BUDGET`] bytes per tick, so a
//!   fire-hose stream yields to its peers;
//! * parsed results are handed to the shard writers with non-blocking
//!   sends; when a shard's bounded queue is full, the connection keeps
//!   its batch locally and — above [`WINDOW_HIGH_WATER`] — stops
//!   reading until the queue drains (backpressure propagates to the
//!   client's socket, never to other streams);
//! * a client that never reads its response parks in [`ConnState::Flush`]
//!   with the bytes buffered; the worker moves on.
//!
//! Shutdown: once the acceptor closes the inbox, a worker keeps ticking
//! until its connections finish, force-dropping stragglers after
//! [`DRAIN_GRACE_TICKS`] ticks without global progress, then drops its
//! writer senders so the shard writers drain and exit.

use crate::daemon::Shared;
use crate::frame::WindowRecord;
use crate::store::{Snapshot, COMPACTED_SOURCE};
use crate::wire::{
    encode_epochs, encode_ingest, encode_mix, encode_stats, DaemonStats, IngestReply,
    ShardQueueDepth, MAX_MSG_LEN, OP_COMPACT, OP_DRIFT, OP_EPOCHS, OP_METRICS, OP_QUERY_MIX,
    OP_QUERY_TOP, OP_SHUTDOWN, OP_STATS, OP_STREAM, RESP_EPOCHS, RESP_ERR, RESP_INGESTED,
    RESP_METRICS, RESP_MIX, RESP_OK, RESP_STATS,
};
use crate::writer::{ShardStats, WriterMsg};
use hbbp_core::{MixDrift, OnlineAnalyzer, OnlineOutcome};
use hbbp_obs::{Counter, Gauge, Histogram, Metrics};
use hbbp_perf::{RecordView, StreamDecoder, StreamStats, ViewSink};
use hbbp_program::Bbec;
use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::sync::mpsc::{Receiver, SyncSender, TryRecvError, TrySendError};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Per-connection, per-tick read budget (bytes): fairness between
/// streams multiplexed on one worker.
const READ_BUDGET: usize = 64 * 1024;

/// Window records a connection may buffer locally while its shard queue
/// is full before its reads are deprioritized (backpressure).
const WINDOW_HIGH_WATER: usize = 1024;

/// Ticks without any progress before a *draining* worker force-drops
/// its remaining connections (with the idle sleep this is ≥ ~200 ms of
/// real time — enough for any live peer to make a byte of progress).
const DRAIN_GRACE_TICKS: u32 = 2000;

/// Sleep between ticks when a full pass over every connection made no
/// progress (nothing readable, writable, or received).
const IDLE_SLEEP: Duration = Duration::from_micros(100);

/// Everything a worker needs to drive its connections.
struct WorkerCtx<'a> {
    shared: &'a Shared,
    shards: &'a [SyncSender<WriterMsg>],
}

impl WorkerCtx<'_> {
    fn shard_of(&self, source: u32) -> usize {
        source as usize % self.shards.len()
    }

    fn metrics(&self) -> &Metrics {
        &self.shared.metrics
    }

    /// Offer one message to a shard writer without blocking, keeping the
    /// queue-depth gauge in step: the gauge rises here per offered
    /// message (settled back if the queue rejects it) and falls in the
    /// writer as the batch leaves the queue. The increment must precede
    /// the send — the channel's internal synchronization then orders it
    /// before the writer's matching decrement, so the gauge can never
    /// underflow (the reverse order races the writer and wraps).
    fn try_send_shard(&self, shard: usize, msg: WriterMsg) -> Result<(), TrySendError<WriterMsg>> {
        self.metrics()
            .gauge_shard_inc(Gauge::WriterQueueDepth, shard);
        match self.shards[shard].try_send(msg) {
            Ok(()) => Ok(()),
            Err(e) => {
                self.metrics()
                    .gauge_shard_dec(Gauge::WriterQueueDepth, shard);
                Err(e)
            }
        }
    }

    /// Fan a control message out to every shard writer (the closure gets
    /// the shard index). Blocking sends: control traffic is rare and a
    /// writer never blocks on its consumers, so this cannot deadlock —
    /// at worst it waits for one queue drain. Same inc-before-send
    /// protocol as [`WorkerCtx::try_send_shard`].
    fn fan_out(&self, mut make: impl FnMut(usize) -> WriterMsg) {
        for (i, tx) in self.shards.iter().enumerate() {
            self.metrics().gauge_shard_inc(Gauge::WriterQueueDepth, i);
            if tx.send(make(i)).is_err() {
                self.metrics().gauge_shard_dec(Gauge::WriterQueueDepth, i);
            }
        }
    }
}

/// What a snapshot-shaped query renders once all shard snapshots arrive.
enum SnapQuery {
    Mix,
    Top(u32),
    Epochs,
    Drift { from: u32, to: u32, k: u32 },
}

/// An `OP_STREAM` connection mid-decode.
struct Ingest<'a> {
    source: u32,
    decoder: StreamDecoder,
    whole: OnlineAnalyzer<'a>,
    windowed: Option<OnlineAnalyzer<'a>>,
    /// Closed windows not yet accepted by the shard writer.
    pending_windows: Vec<WindowRecord>,
    windows_flushed: u32,
    /// Reads are deprioritized under shard-queue backpressure (see
    /// [`Conn::tick_ingest`]); tracked so the park/unpark counters see
    /// each transition exactly once.
    parked: bool,
}

/// A completed stream handing its results to the shard writer and
/// waiting for the committed sequence number.
struct CommitState {
    windows: Vec<WindowRecord>,
    counts: Option<(u32, u64, u64, Bbec)>,
    shard: usize,
    rx: Option<Receiver<Result<u32, String>>>,
    records: u64,
    samples: u64,
    windows_flushed: u32,
}

/// The per-connection protocol state machine.
enum ConnState<'a> {
    /// Accumulating the `op | len | payload` request message.
    ReadRequest,
    /// `OP_STREAM`: decoding the embedded perf byte stream.
    Ingest(Box<Ingest<'a>>),
    /// Stream complete: submitting results, awaiting the committed seq.
    Commit(Box<CommitState>),
    /// Mix/top query: awaiting one indexed snapshot per shard.
    Gather {
        rx: Receiver<(usize, Snapshot)>,
        want: usize,
        got: Vec<(usize, Snapshot)>,
        query: SnapQuery,
    },
    /// `OP_STATS`: awaiting one [`ShardStats`] per shard.
    GatherStats {
        rx: Receiver<ShardStats>,
        want: usize,
        got: Vec<ShardStats>,
    },
    /// `OP_COMPACT`: awaiting one ack per shard.
    GatherCompact {
        rx: Receiver<Result<(), String>>,
        want: usize,
        seen: usize,
        failed: Option<String>,
    },
    /// Response queued; writing it out, then closing.
    Flush,
    /// Finished or failed: the connection is dropped by the worker.
    Done,
}

/// One multiplexed connection.
struct Conn<'a> {
    stream: TcpStream,
    /// Unparsed request bytes (header + payload accumulate here).
    inbuf: Vec<u8>,
    /// Response bytes not yet written.
    out: Vec<u8>,
    out_pos: usize,
    state: ConnState<'a>,
}

/// What one read pass produced.
struct ReadPass {
    bytes: usize,
    eof: bool,
    failed: bool,
}

impl<'a> Conn<'a> {
    fn new(stream: TcpStream) -> Conn<'a> {
        Conn {
            stream,
            inbuf: Vec::new(),
            out: Vec::new(),
            out_pos: 0,
            state: ConnState::ReadRequest,
        }
    }

    fn done(&self) -> bool {
        matches!(self.state, ConnState::Done)
    }

    /// Read up to [`READ_BUDGET`] bytes into `inbuf`.
    fn read_pass(&mut self, scratch: &mut [u8]) -> ReadPass {
        let mut pass = ReadPass {
            bytes: 0,
            eof: false,
            failed: false,
        };
        while pass.bytes < READ_BUDGET {
            match self.stream.read(scratch) {
                Ok(0) => {
                    pass.eof = true;
                    break;
                }
                Ok(n) => {
                    self.inbuf.extend_from_slice(&scratch[..n]);
                    pass.bytes += n;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => {
                    pass.failed = true;
                    break;
                }
            }
        }
        pass
    }

    /// Queue a response message and move to [`ConnState::Flush`].
    fn respond(&mut self, op: u8, payload: &[u8]) {
        self.out.clear();
        self.out_pos = 0;
        self.out.push(op);
        self.out
            .extend_from_slice(&(payload.len() as u32).to_le_bytes());
        self.out.extend_from_slice(payload);
        self.state = ConnState::Flush;
    }

    fn respond_err(&mut self, message: &str) {
        self.respond(RESP_ERR, message.as_bytes());
    }

    /// Drive the connection one step. Returns whether anything moved.
    fn tick(&mut self, ctx: &WorkerCtx<'a>, scratch: &mut [u8]) -> bool {
        match &mut self.state {
            ConnState::ReadRequest => self.tick_read_request(ctx, scratch),
            ConnState::Ingest(_) => self.tick_ingest(ctx, scratch),
            ConnState::Commit(_) => self.tick_commit(ctx),
            ConnState::Gather { .. } => self.tick_gather(ctx),
            ConnState::GatherStats { .. } => self.tick_gather_stats(ctx),
            ConnState::GatherCompact { .. } => self.tick_gather_compact(),
            ConnState::Flush => self.tick_flush(),
            ConnState::Done => false,
        }
    }

    fn tick_read_request(&mut self, ctx: &WorkerCtx<'a>, scratch: &mut [u8]) -> bool {
        let pass = self.read_pass(scratch);
        if pass.bytes >= READ_BUDGET {
            ctx.metrics().inc(Counter::WorkerReadBudgetExhausted);
        }
        if pass.failed {
            self.state = ConnState::Done;
            return true;
        }
        if self.inbuf.len() >= 5 {
            let op = self.inbuf[0];
            let len =
                u32::from_le_bytes(self.inbuf[1..5].try_into().expect("4 length bytes")) as usize;
            if len > MAX_MSG_LEN {
                self.respond_err(&format!("message of {len} bytes"));
                return true;
            }
            if self.inbuf.len() >= 5 + len {
                let payload: Vec<u8> = self.inbuf[5..5 + len].to_vec();
                let leftover: Vec<u8> = self.inbuf[5 + len..].to_vec();
                self.inbuf.clear();
                self.dispatch(ctx, op, &payload, leftover, pass.eof);
                return true;
            }
        }
        if pass.eof {
            // Clean close before a request, or a header cut short —
            // either way there is nobody to answer.
            self.state = ConnState::Done;
            return true;
        }
        pass.bytes > 0
    }

    /// A complete request message arrived: enter the op's state.
    fn dispatch(
        &mut self,
        ctx: &WorkerCtx<'a>,
        op: u8,
        payload: &[u8],
        leftover: Vec<u8>,
        eof: bool,
    ) {
        match op {
            OP_STREAM => {
                let Ok(source) = <[u8; 4]>::try_from(payload) else {
                    self.respond_err("STREAM payload must be a u32 source id");
                    return;
                };
                let source = u32::from_le_bytes(source);
                if source == COMPACTED_SOURCE {
                    self.respond_err(&format!(
                        "source id {COMPACTED_SOURCE} is reserved for compacted records"
                    ));
                    return;
                }
                let shared = ctx.shared;
                let mut ingest = Box::new(Ingest {
                    source,
                    decoder: StreamDecoder::new(),
                    whole: OnlineAnalyzer::new(
                        &shared.analyzer,
                        shared.periods,
                        shared.rule.clone(),
                    ),
                    windowed: shared.window.map(|w| {
                        OnlineAnalyzer::new(&shared.analyzer, shared.periods, shared.rule.clone())
                            .with_window(w)
                    }),
                    pending_windows: Vec::new(),
                    windows_flushed: 0,
                    parked: false,
                });
                // Stream bytes pipelined behind the request message.
                if !leftover.is_empty() {
                    ingest.decoder.feed(&leftover);
                }
                self.state = ConnState::Ingest(ingest);
                if let Err(message) = self.pump_decoder(ctx) {
                    self.respond_err(&message);
                    return;
                }
                if eof {
                    self.finish_ingest(ctx);
                }
            }
            OP_QUERY_MIX => self.start_gather(ctx, SnapQuery::Mix),
            OP_QUERY_TOP => {
                let Ok(k) = <[u8; 4]>::try_from(payload) else {
                    self.respond_err("TOP payload must be a u32 k");
                    return;
                };
                self.start_gather(ctx, SnapQuery::Top(u32::from_le_bytes(k)));
            }
            OP_EPOCHS => self.start_gather(ctx, SnapQuery::Epochs),
            OP_DRIFT => {
                let Ok(raw) = <[u8; 12]>::try_from(payload) else {
                    self.respond_err("DRIFT payload must be epoch_a, epoch_b, k (u32 LE each)");
                    return;
                };
                let word = |i: usize| {
                    u32::from_le_bytes(raw[i * 4..i * 4 + 4].try_into().expect("4 bytes"))
                };
                self.start_gather(
                    ctx,
                    SnapQuery::Drift {
                        from: word(0),
                        to: word(1),
                        k: word(2),
                    },
                );
            }
            OP_STATS => {
                let (tx, rx) = std::sync::mpsc::channel();
                ctx.fan_out(|_| WriterMsg::Stats(tx.clone()));
                self.state = ConnState::GatherStats {
                    rx,
                    want: ctx.shards.len(),
                    got: Vec::new(),
                };
            }
            OP_COMPACT => {
                let (tx, rx) = std::sync::mpsc::channel();
                ctx.fan_out(|_| WriterMsg::Compact(tx.clone()));
                self.state = ConnState::GatherCompact {
                    rx,
                    want: ctx.shards.len(),
                    seen: 0,
                    failed: None,
                };
            }
            OP_METRICS => {
                let payload = ctx.metrics().snapshot().encode();
                self.respond(RESP_METRICS, &payload);
            }
            OP_SHUTDOWN => {
                ctx.shared.shutdown.store(true, Ordering::SeqCst);
                self.respond(RESP_OK, &[]);
                // Unblock the acceptor so it observes the flag.
                let _ = TcpStream::connect(ctx.shared.addr);
            }
            other => self.respond_err(&format!("unknown op {other}")),
        }
    }

    fn start_gather(&mut self, ctx: &WorkerCtx<'a>, query: SnapQuery) {
        let (tx, rx) = std::sync::mpsc::channel();
        ctx.fan_out(|i| WriterMsg::Snapshot(i, tx.clone()));
        self.state = ConnState::Gather {
            rx,
            want: ctx.shards.len(),
            got: Vec::new(),
            query,
        };
    }

    /// Decode everything buffered in the stream decoder into the online
    /// analyzers and collect any windows that closed.
    ///
    /// Ingest goes through the fused zero-copy path: the decoder drives
    /// both analyzers with borrowed [`RecordView`]s, so sample records —
    /// the bulk of any stream — are never materialized as owned
    /// `PerfRecord`s. Results are pinned bit-identical to the owned
    /// `next_record` → `push_owned` path by the core property suite.
    fn pump_decoder(&mut self, ctx: &WorkerCtx<'a>) -> Result<(), String> {
        let ConnState::Ingest(ingest) = &mut self.state else {
            unreachable!("pump_decoder outside Ingest");
        };
        /// Fans each view to the windowed analyzer (when present), then
        /// the whole-stream one — same order as the owned path did.
        struct Fanout<'s, 'a> {
            whole: &'s mut OnlineAnalyzer<'a>,
            windowed: Option<&'s mut OnlineAnalyzer<'a>>,
        }
        impl ViewSink for Fanout<'_, '_> {
            fn view(&mut self, view: &RecordView<'_>) {
                if let Some(w) = self.windowed.as_deref_mut() {
                    w.push_view(view);
                }
                self.whole.push_view(view);
            }
        }
        let mut sink = Fanout {
            whole: &mut ingest.whole,
            windowed: ingest.windowed.as_mut(),
        };
        ingest
            .decoder
            .decode_into(&mut sink)
            .map_err(|e| format!("perf stream: {e}"))?;
        if let Some(w) = &mut ingest.windowed {
            for closed in w.take_closed_windows() {
                ingest.pending_windows.push(WindowRecord {
                    source: ingest.source,
                    index: closed.index as u32,
                    start_cycles: closed.start_cycles,
                    end_cycles: closed.end_cycles,
                    ebs_samples: closed.ebs_samples,
                    lbr_samples: closed.lbr_samples,
                    mix: closed.mix,
                });
            }
        }
        self.flush_windows(ctx);
        Ok(())
    }

    /// Offer pending windows to the shard writer without blocking.
    /// Returns whether anything was accepted.
    fn flush_windows(&mut self, ctx: &WorkerCtx<'a>) -> bool {
        let ConnState::Ingest(ingest) = &mut self.state else {
            return false;
        };
        if ingest.pending_windows.is_empty() {
            return false;
        }
        let batch = std::mem::take(&mut ingest.pending_windows);
        let n = batch.len() as u32;
        match ctx.try_send_shard(ctx.shard_of(ingest.source), WriterMsg::Windows(batch)) {
            Ok(()) => {
                ingest.windows_flushed += n;
                true
            }
            Err(TrySendError::Full(WriterMsg::Windows(batch)))
            | Err(TrySendError::Disconnected(WriterMsg::Windows(batch))) => {
                // Keep the batch; backpressure deprioritizes our reads.
                ingest.pending_windows = batch;
                false
            }
            Err(_) => unreachable!("windows come back as windows"),
        }
    }

    fn tick_ingest(&mut self, ctx: &WorkerCtx<'a>, scratch: &mut [u8]) -> bool {
        // Backpressure: while the shard queue rejects our windows and the
        // local buffer is over the high-water mark, do not read — the
        // client's socket fills up and TCP pushes back, without delaying
        // any other stream on this worker.
        let mut progress = self.flush_windows(ctx);
        let over_high_water = match &mut self.state {
            ConnState::Ingest(i) => {
                let over = i.pending_windows.len() >= WINDOW_HIGH_WATER;
                if over != i.parked {
                    i.parked = over;
                    let m = ctx.metrics();
                    if over {
                        m.inc(Counter::WorkerParks);
                        m.gauge_inc(Gauge::WorkerParkedConnections);
                    } else {
                        m.inc(Counter::WorkerUnparks);
                        m.gauge_dec(Gauge::WorkerParkedConnections);
                    }
                }
                over
            }
            _ => return true,
        };
        if over_high_water {
            return progress;
        }
        let pass = self.read_pass(scratch);
        progress |= pass.bytes > 0;
        if pass.bytes >= READ_BUDGET {
            ctx.metrics().inc(Counter::WorkerReadBudgetExhausted);
        }
        if pass.failed {
            self.state = ConnState::Done;
            return true;
        }
        if pass.bytes > 0 {
            if let ConnState::Ingest(ingest) = &mut self.state {
                // `read_pass` appended raw stream bytes to `inbuf`; they
                // belong to the decoder.
                ingest.decoder.feed(&self.inbuf);
            }
            self.inbuf.clear();
            if let Err(message) = self.pump_decoder(ctx) {
                self.respond_err(&message);
                return true;
            }
        }
        if pass.eof {
            self.finish_ingest(ctx);
            return true;
        }
        progress
    }

    /// Fold one finished stream's decoder counters into the registry —
    /// the hot path never touches an atomic per record; the decoder's
    /// existing local counters are harvested once per stream here.
    fn harvest_stream(metrics: &Metrics, stats: &StreamStats) {
        metrics.add(Counter::DecoderRecords, stats.records);
        metrics.add(Counter::DecoderCompactions, stats.compactions);
        metrics.add(Counter::DecoderResyncBytes, stats.resync_bytes);
        metrics.add(Counter::DecoderCorruptSkipped, stats.corrupt_skipped);
        metrics.add(Counter::DecoderUnknownSkipped, stats.unknown_skipped);
    }

    /// Fold one analyzer's outcome into the registry. Window closes are
    /// only counted for the windowed analyzer — the unwindowed one
    /// "closes" a single whole-stream pseudo-window that is not a
    /// timeline event.
    fn harvest_analyzer(metrics: &Metrics, outcome: &OnlineOutcome, windowed: bool) {
        metrics.add(Counter::AnalyzerPoolHits, outcome.pool_hits);
        metrics.add(Counter::AnalyzerPoolMisses, outcome.pool_misses);
        if windowed {
            metrics.add(Counter::AnalyzerWindowCloses, outcome.windows_closed as u64);
        }
    }

    /// End of stream: close the analyzers and hand everything to the
    /// shard writer via [`ConnState::Commit`].
    fn finish_ingest(&mut self, ctx: &WorkerCtx<'a>) {
        let ConnState::Ingest(ingest) = std::mem::replace(&mut self.state, ConnState::Done) else {
            unreachable!("finish_ingest outside Ingest");
        };
        let Ingest {
            source,
            decoder,
            whole,
            windowed,
            mut pending_windows,
            windows_flushed,
            parked: _,
        } = *ingest;
        let metrics = ctx.metrics().clone();
        // Read the counters before `finish` consumes the decoder, so a
        // stream that fails its end-of-stream verdict still accounts for
        // everything it decoded (only `dropped_tail_bytes` is settled by
        // `finish`, and that is a resilient-mode field unused here).
        let partial = decoder.stats().clone();
        match decoder.finish() {
            Ok(stats) => Self::harvest_stream(&metrics, &stats),
            Err(e) => {
                // Already-flushed timeline windows remain (that is the
                // point of flush-as-you-go); the counts frame is never
                // written, so the aggregate cannot see a partial
                // recording. The registry still accounts for the work.
                Self::harvest_stream(&metrics, &partial);
                Self::harvest_analyzer(&metrics, &whole.finish(), false);
                if let Some(w) = windowed {
                    Self::harvest_analyzer(&metrics, &w.finish(), true);
                }
                self.respond_err(&format!("perf stream: {e}"));
                return;
            }
        }
        let outcome = whole.finish();
        Self::harvest_analyzer(&metrics, &outcome, false);
        let records = outcome.records_seen;
        let samples = outcome.samples_seen;
        let mut windows = outcome.windows;
        let whole_window = windows.pop().expect("unwindowed run emits one window");
        if let Some(w) = windowed {
            let windowed_outcome = w.finish();
            Self::harvest_analyzer(&metrics, &windowed_outcome, true);
            for closed in windowed_outcome.windows {
                pending_windows.push(WindowRecord {
                    source,
                    index: closed.index as u32,
                    start_cycles: closed.start_cycles,
                    end_cycles: closed.end_cycles,
                    ebs_samples: closed.ebs_samples,
                    lbr_samples: closed.lbr_samples,
                    mix: closed.mix,
                });
            }
        }
        self.state = ConnState::Commit(Box::new(CommitState {
            windows: pending_windows,
            counts: Some((
                source,
                whole_window.ebs_samples,
                whole_window.lbr_samples,
                whole_window.analysis.hbbp.bbec,
            )),
            shard: ctx.shard_of(source),
            rx: None,
            records,
            samples,
            windows_flushed,
        }));
        self.tick_commit(ctx);
    }

    /// Submit remaining windows, then the counts frame, then collect the
    /// committed sequence number — all without blocking (a full shard
    /// queue just means this connection retries next tick).
    fn tick_commit(&mut self, ctx: &WorkerCtx<'a>) -> bool {
        let ConnState::Commit(commit) = &mut self.state else {
            return false;
        };
        let mut progress = false;
        if !commit.windows.is_empty() {
            let batch = std::mem::take(&mut commit.windows);
            let n = batch.len() as u32;
            match ctx.try_send_shard(commit.shard, WriterMsg::Windows(batch)) {
                Ok(()) => {
                    commit.windows_flushed += n;
                    progress = true;
                }
                Err(TrySendError::Full(WriterMsg::Windows(batch))) => {
                    commit.windows = batch;
                    return false;
                }
                Err(TrySendError::Disconnected(_)) => {
                    self.respond_err("shard writer gone");
                    return true;
                }
                Err(_) => unreachable!("windows come back as windows"),
            }
        }
        if let Some((source, ebs, lbr, bbec)) = commit.counts.take() {
            let (tx, rx) = std::sync::mpsc::channel();
            match ctx.try_send_shard(
                commit.shard,
                WriterMsg::Counts {
                    source,
                    ebs_samples: ebs,
                    lbr_samples: lbr,
                    bbec,
                    reply: tx,
                },
            ) {
                Ok(()) => {
                    commit.rx = Some(rx);
                    progress = true;
                }
                Err(TrySendError::Full(WriterMsg::Counts {
                    source,
                    ebs_samples,
                    lbr_samples,
                    bbec,
                    ..
                })) => {
                    commit.counts = Some((source, ebs_samples, lbr_samples, bbec));
                    return progress;
                }
                Err(TrySendError::Disconnected(_)) => {
                    self.respond_err("shard writer gone");
                    return true;
                }
                Err(_) => unreachable!("counts come back as counts"),
            }
        }
        if let Some(rx) = &commit.rx {
            match rx.try_recv() {
                Ok(Ok(seq)) => {
                    let payload = encode_ingest(&IngestReply {
                        records: commit.records,
                        samples: commit.samples,
                        windows_flushed: commit.windows_flushed,
                        counts_seq: seq,
                    });
                    self.respond(RESP_INGESTED, &payload);
                    return true;
                }
                Ok(Err(m)) => {
                    self.respond_err(&m);
                    return true;
                }
                Err(TryRecvError::Empty) => {}
                Err(TryRecvError::Disconnected) => {
                    self.respond_err("shard writer gone");
                    return true;
                }
            }
        }
        progress
    }

    fn tick_gather(&mut self, ctx: &WorkerCtx<'a>) -> bool {
        let ConnState::Gather {
            rx,
            want,
            got,
            query,
        } = &mut self.state
        else {
            return false;
        };
        let mut progress = false;
        let mut dead = false;
        loop {
            match rx.try_recv() {
                Ok(snapshot) => {
                    got.push(snapshot);
                    progress = true;
                }
                Err(TryRecvError::Empty) => break,
                // All repliers dropped their senders — expected once every
                // shard has answered; fatal only if one never did.
                Err(TryRecvError::Disconnected) => {
                    dead = true;
                    break;
                }
            }
        }
        if dead && got.len() < *want {
            self.respond_err("shard writer gone");
            return true;
        }
        if got.len() == *want {
            // Shard-index order, not reply-arrival order: compacted fold
            // frames share one `(source, seq)` key, so the stable
            // canonical sort would otherwise preserve a racy interleaving.
            got.sort_by_key(|(i, _)| *i);
            let mut counts = Vec::new();
            let mut counts_epochs = Vec::new();
            for (_, snap) in got.drain(..) {
                counts.extend(snap.counts);
                counts_epochs.extend(snap.counts_epochs);
            }
            let combined = Snapshot {
                identity: None,
                counts,
                counts_epochs,
                windows: Vec::new(),
                window_epochs: Vec::new(),
            };
            let (code, payload) = match query {
                SnapQuery::Mix => {
                    let mix = ctx.shared.analyzer.mix(&combined.aggregate());
                    let entries: Vec<_> = mix.iter().collect();
                    (RESP_MIX, encode_mix(&entries))
                }
                SnapQuery::Top(k) => {
                    let mix = ctx.shared.analyzer.mix(&combined.aggregate());
                    (RESP_MIX, encode_mix(&mix.top(*k as usize)))
                }
                SnapQuery::Epochs => (RESP_EPOCHS, encode_epochs(&combined.epoch_stats())),
                SnapQuery::Drift { from, to, k } => {
                    let epochs = combined.epochs();
                    for e in [*from, *to] {
                        if !epochs.contains(&e) {
                            self.respond_err(&format!("store has no epoch {e}"));
                            return true;
                        }
                    }
                    let baseline = ctx.shared.analyzer.mix(&combined.epoch_aggregate(*from));
                    let current = ctx.shared.analyzer.mix(&combined.epoch_aggregate(*to));
                    let movers: Vec<_> = MixDrift::between(&baseline, &current)
                        .top_movers(*k as usize)
                        .into_iter()
                        .map(|row| (row.mnemonic, row.delta))
                        .collect();
                    (RESP_MIX, encode_mix(&movers))
                }
            };
            self.respond(code, &payload);
            return true;
        }
        progress
    }

    fn tick_gather_stats(&mut self, ctx: &WorkerCtx<'a>) -> bool {
        let ConnState::GatherStats { rx, want, got } = &mut self.state else {
            return false;
        };
        let mut progress = false;
        let mut dead = false;
        loop {
            match rx.try_recv() {
                Ok(stats) => {
                    got.push(stats);
                    progress = true;
                }
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => {
                    dead = true;
                    break;
                }
            }
        }
        if dead && got.len() < *want {
            self.respond_err("shard writer gone");
            return true;
        }
        if got.len() == *want {
            let m = ctx.metrics();
            let mut stats = DaemonStats {
                shards: ctx.shards.len() as u32,
                counts_frames: 0,
                window_frames: 0,
                sources: 0,
                store_bytes: 0,
                parked_connections: m.gauge_value(Gauge::WorkerParkedConnections, 0).0 as u32,
                writer_queues: (0..ctx.shards.len())
                    .map(|i| {
                        let (current, high_water) = m.gauge_value(Gauge::WriterQueueDepth, i);
                        ShardQueueDepth {
                            current: current as u32,
                            high_water: high_water as u32,
                        }
                    })
                    .collect(),
            };
            let mut sources: Vec<u32> = Vec::new();
            for shard in got.drain(..) {
                stats.counts_frames += shard.counts_frames;
                stats.window_frames += shard.window_frames;
                stats.store_bytes += shard.bytes;
                sources.extend(shard.sources);
            }
            sources.sort_unstable();
            sources.dedup();
            stats.sources = sources.len() as u32;
            self.respond(RESP_STATS, &encode_stats(&stats));
            return true;
        }
        progress
    }

    fn tick_gather_compact(&mut self) -> bool {
        let ConnState::GatherCompact {
            rx,
            want,
            seen,
            failed,
        } = &mut self.state
        else {
            return false;
        };
        let mut progress = false;
        let mut dead = false;
        loop {
            match rx.try_recv() {
                Ok(result) => {
                    *seen += 1;
                    progress = true;
                    if let Err(m) = result {
                        failed.get_or_insert(m);
                    }
                }
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => {
                    dead = true;
                    break;
                }
            }
        }
        if dead && *seen < *want {
            self.respond_err("shard writer gone");
            return true;
        }
        if *seen == *want {
            match failed.take() {
                Some(m) => self.respond_err(&m),
                None => self.respond(RESP_OK, &[]),
            }
            return true;
        }
        progress
    }

    fn tick_flush(&mut self) -> bool {
        let mut progress = false;
        while self.out_pos < self.out.len() {
            match self.stream.write(&self.out[self.out_pos..]) {
                Ok(0) => {
                    self.state = ConnState::Done;
                    return true;
                }
                Ok(n) => {
                    self.out_pos += n;
                    progress = true;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return progress,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => {
                    self.state = ConnState::Done;
                    return true;
                }
            }
        }
        let _ = self.stream.flush();
        self.state = ConnState::Done;
        true
    }
}

/// Ticks between flushes of a worker's locally batched tick counters
/// into the registry — the poll loop never pays an atomic per tick.
const TICK_FLUSH_EVERY: u64 = 1024;

/// Connection-scan ticks between `worker.tick_scan_us` observations
/// (must divide [`TICK_FLUSH_EVERY`] so the sampling phase survives
/// tick-counter resets).
const SCAN_SAMPLE_EVERY: u64 = 64;

/// A worker's locally batched tick counters (flushed every
/// [`TICK_FLUSH_EVERY`] ticks and at exit, so an idle-spinning pool
/// costs the registry nothing per tick).
#[derive(Default)]
struct TickCounters {
    ticks: u64,
    conn_ticks: u64,
    sleeps: u64,
}

impl TickCounters {
    fn flush(&mut self, metrics: &Metrics) {
        metrics.add(Counter::WorkerTicks, self.ticks);
        metrics.add(Counter::WorkerConnTicks, self.conn_ticks);
        metrics.add(Counter::WorkerSleeps, self.sleeps);
        *self = TickCounters::default();
    }
}

/// One worker: adopt connections from the inbox, tick them all, sleep
/// when idle, drain on shutdown.
pub(crate) fn worker_loop(
    shared: Arc<Shared>,
    inbox: Receiver<TcpStream>,
    shards: Vec<SyncSender<WriterMsg>>,
) {
    let shared: &Shared = &shared;
    let ctx = WorkerCtx {
        shared,
        shards: &shards,
    };
    let metrics = shared.metrics.clone();
    let mut conns: Vec<Conn<'_>> = Vec::new();
    let mut scratch = vec![0u8; READ_BUDGET];
    let mut draining = false;
    let mut idle_ticks = 0u32;
    let mut tallies = TickCounters::default();
    loop {
        tallies.ticks += 1;
        if tallies.ticks >= TICK_FLUSH_EVERY {
            tallies.flush(&metrics);
        }
        let mut progress = false;
        if !draining {
            loop {
                match inbox.try_recv() {
                    Ok(stream) => {
                        conns.push(Conn::new(stream));
                        metrics.gauge_inc(Gauge::WorkerConnections);
                        progress = true;
                    }
                    Err(TryRecvError::Empty) => break,
                    Err(TryRecvError::Disconnected) => {
                        draining = true;
                        break;
                    }
                }
            }
        }
        // Scan time is sampled 1 tick in 64: a busy pool ticks every
        // microsecond or so, and paying two clock reads plus a shared
        // histogram cache line per tick per worker is measurable at
        // that rate. Busy-tick durations vary slowly, so the sampled
        // distribution stays representative.
        let scan_start =
            (!conns.is_empty() && tallies.ticks % SCAN_SAMPLE_EVERY == 0 && metrics.enabled())
                .then(Instant::now);
        for conn in &mut conns {
            tallies.conn_ticks += 1;
            progress |= conn.tick(&ctx, &mut scratch);
        }
        if let Some(start) = scan_start {
            metrics.observe(
                Histogram::WorkerTickScanUs,
                start.elapsed().as_micros() as u64,
            );
        }
        let before = conns.len();
        conns.retain(|c| !c.done());
        for _ in conns.len()..before {
            metrics.gauge_dec(Gauge::WorkerConnections);
        }
        if draining {
            if conns.is_empty() {
                break;
            }
            if progress {
                idle_ticks = 0;
            } else {
                idle_ticks += 1;
                if idle_ticks >= DRAIN_GRACE_TICKS {
                    // Stragglers (stalled clients, never-reading peers)
                    // are dropped; everything they completed is already
                    // with the writers.
                    break;
                }
            }
        }
        if !progress {
            tallies.sleeps += 1;
            std::thread::sleep(IDLE_SLEEP);
        }
    }
    // Force-dropped stragglers: settle the gauges they still hold so a
    // restart-free observer never sees phantom connections.
    for conn in &conns {
        metrics.gauge_dec(Gauge::WorkerConnections);
        if let ConnState::Ingest(i) = &conn.state {
            if i.parked {
                metrics.gauge_dec(Gauge::WorkerParkedConnections);
            }
        }
    }
    tallies.flush(&metrics);
    // `shards` drops here: when the last worker exits, the writers see
    // their queues disconnect, commit their tails, and exit.
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbbp_core::{Analyzer, HybridRule, SamplingPeriods, Window};
    use hbbp_program::{ImageView, MnemonicMix};
    use hbbp_workloads::{phased_client, Scale};
    use std::net::TcpListener;
    use std::sync::atomic::AtomicBool;

    fn window_record(index: u32) -> WindowRecord {
        WindowRecord {
            source: 0,
            index,
            start_cycles: 0,
            end_cycles: 0,
            ebs_samples: 0,
            lbr_samples: 0,
            mix: MnemonicMix::new(),
        }
    }

    /// Backpressure parking is observable, and each transition counts
    /// exactly once: a connection over [`WINDOW_HIGH_WATER`] against a
    /// full shard queue parks (counter +1, gauge up) and stays parked
    /// across further ticks without re-counting; draining the queue
    /// unparks it symmetrically.
    #[test]
    fn park_unpark_transitions_count_exactly_once() {
        let w = phased_client(Scale::Tiny, 0);
        let analyzer = Analyzer::from_images(&w.images(ImageView::Disk), w.layout().symbols())
            .expect("discovery");
        let metrics = Metrics::new(1);
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let shared = Shared {
            analyzer,
            periods: SamplingPeriods {
                ebs: 1009,
                lbr: 211,
            },
            rule: HybridRule::paper_default(),
            window: Some(Window::Samples(64)),
            addr,
            shutdown: AtomicBool::new(false),
            metrics: metrics.clone(),
        };
        // One shard, one queue slot, pre-stuffed: every flush sees Full
        // until the test drains the receiver.
        let (tx, rx) = std::sync::mpsc::sync_channel(1);
        tx.send(WriterMsg::Windows(Vec::new()))
            .expect("stuff queue");
        let shards = vec![tx];
        let ctx = WorkerCtx {
            shared: &shared,
            shards: &shards,
        };

        // Keep the client end alive so reads yield WouldBlock, not EOF.
        let _client = TcpStream::connect(addr).expect("connect");
        let (stream, _) = listener.accept().expect("accept");
        stream.set_nonblocking(true).expect("nonblocking");
        let mut conn = Conn::new(stream);
        conn.state = ConnState::Ingest(Box::new(Ingest {
            source: 0,
            decoder: StreamDecoder::new(),
            whole: OnlineAnalyzer::new(&shared.analyzer, shared.periods, shared.rule.clone()),
            windowed: None,
            pending_windows: (0..WINDOW_HIGH_WATER as u32).map(window_record).collect(),
            windows_flushed: 0,
            parked: false,
        }));
        let mut scratch = vec![0u8; READ_BUDGET];

        conn.tick(&ctx, &mut scratch);
        assert_eq!(metrics.counter_value(Counter::WorkerParks), 1, "parked");
        assert_eq!(metrics.counter_value(Counter::WorkerUnparks), 0);
        assert_eq!(
            metrics.gauge_value(Gauge::WorkerParkedConnections, 0),
            (1, 1)
        );

        // Still over the high-water mark: no re-count.
        conn.tick(&ctx, &mut scratch);
        assert_eq!(metrics.counter_value(Counter::WorkerParks), 1);
        assert_eq!(metrics.counter_value(Counter::WorkerUnparks), 0);

        // Drain the stuffed message; the next flush succeeds and the
        // connection unparks.
        drop(rx.recv().expect("drain stuffed message"));
        conn.tick(&ctx, &mut scratch);
        assert_eq!(metrics.counter_value(Counter::WorkerParks), 1);
        assert_eq!(metrics.counter_value(Counter::WorkerUnparks), 1, "unparked");
        assert_eq!(
            metrics.gauge_value(Gauge::WorkerParkedConnections, 0),
            (0, 1),
            "gauge settled, high-water remembers the park"
        );
        // The accepted flush raised the queue-depth gauge in step.
        assert_eq!(metrics.gauge_value(Gauge::WriterQueueDepth, 0), (1, 1));
        match rx.recv().expect("flushed batch") {
            WriterMsg::Windows(batch) => assert_eq!(batch.len(), WINDOW_HIGH_WATER),
            _ => panic!("expected the window batch"),
        }
    }
}

//! # hbbp-store — persistent mergeable profile store + collection daemon
//!
//! HBBP profiles become fleet-scale infrastructure only once they outlive
//! a single process: production profile-guided systems aggregate hardware
//! profiles from many runs and machines before acting on them. This crate
//! adds the two missing layers:
//!
//! * **[`ProfileStore`]** — an append-only, CRC-framed segment log on
//!   disk holding per-recording execution counts ([`CountsRecord`],
//!   varint/delta-encoded, `f64` bits preserved exactly) and per-window
//!   instruction-mix timeline records ([`WindowRecord`]), keyed by a
//!   program/module [`StoreIdentity`]. A torn write or bit flip is caught
//!   by the frame checksums and truncated away on
//!   [`open`](ProfileStore::open); merge
//!   ([`merge_from`](ProfileStore::merge_from)) is lossless, and the
//!   aggregate profile is a canonical `(source, seq)`-ordered fold that
//!   is **bit-identical** to folding per-recording batch analyses;
//! * **`hbbpd`** (the [`daemon`] module and the binary of the same name)
//!   — an event-driven TCP daemon: a poll-loop worker pool multiplexes
//!   many nonblocking connections per thread, and each store shard is
//!   owned by a single writer thread that group-commits batched appends
//!   (no locks on the ingest path). Collectors stream perf records in
//!   the `hbbp-perf` wire codec ([`StoreClient::stream_session`] collects
//!   straight onto the socket); each connection is analyzed online
//!   ([`hbbp_core::OnlineAnalyzer`]) with closed windows flushed into the
//!   store mid-stream, and mix/top-K queries answer from the canonical
//!   aggregate. `docs/PROTOCOL.md` specifies the wire protocol,
//!   `docs/DAEMON.md` the concurrency model.
//!
//! ## Quickstart: a store on disk, written, merged, recovered
//!
//! ```
//! use hbbp_program::Bbec;
//! use hbbp_store::{ModuleSpan, ProfileStore, StoreIdentity};
//! use hbbp_program::Ring;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let dir = std::env::temp_dir().join(format!("hbbp-store-doc-{}", std::process::id()));
//! std::fs::create_dir_all(&dir)?;
//! let path = dir.join("quickstart.hbbp");
//! # let _ = std::fs::remove_file(&path);
//!
//! let identity = StoreIdentity {
//!     program: "phased".into(),
//!     block_count: 2,
//!     modules: vec![ModuleSpan {
//!         name: "phased.bin".into(),
//!         base: 0x400000,
//!         len: 0x1000,
//!         ring: Ring::User,
//!     }],
//! };
//!
//! // Two recordings of the same binary append their analyzed counts.
//! let mut store = ProfileStore::open_with_identity(&path, identity)?;
//! let run1: Bbec = [(0x400000u64, 1000.0), (0x400040u64, 10.0)].into_iter().collect();
//! let run2: Bbec = [(0x400000u64, 500.0)].into_iter().collect();
//! store.append_counts(1, 120, 80, run1)?;
//! store.append_counts(2, 60, 40, run2)?;
//!
//! // The aggregate is the canonical (source, seq)-ordered fold.
//! assert_eq!(store.aggregate().get(0x400000), 1500.0);
//!
//! // Reopening replays the log; a torn tail would be truncated here.
//! drop(store);
//! let store = ProfileStore::open(&path)?;
//! assert_eq!(store.counts().len(), 2);
//! assert_eq!(store.aggregate().get(0x400040), 10.0);
//! # std::fs::remove_file(&path)?;
//! # Ok(())
//! # }
//! ```
//!
//! The on-disk format is documented on the frame codec (see the
//! repository's `docs/ARCHITECTURE.md` for the framing diagram), the
//! wire protocol in [`wire`].

#![deny(missing_docs)]
// `deny`, not `forbid`: the daemon needs exactly one unsafe call — the
// `listen(2)` re-arm that widens the accept backlog beyond std's
// hard-coded 128 (see `daemon::widen_accept_backlog`, the only
// `#[allow(unsafe_code)]` in the crate).
#![deny(unsafe_code)]

pub mod daemon;
mod frame;
mod server;
mod store;
pub mod wire;
mod writer;

pub use daemon::{spawn, DaemonConfig, DaemonHandle, DEFAULT_QUEUE_DEPTH};
pub use frame::{CountsRecord, Frame, ModuleSpan, StoreIdentity, WindowRecord};
pub use store::{EpochStats, OpenReport, ProfileStore, Snapshot, StoreError, COMPACTED_SOURCE};
pub use wire::{DaemonStats, IngestReply, StoreClient, WireError};

//! The `hbbpd` collection daemon binary.
//!
//! Serves the store/daemon stack for one workload's address space:
//! clients stream perf recordings of that workload over loopback TCP and
//! query the aggregate mix back. The simulated-world equivalent of
//! running a fleet profile collector.

use hbbp_core::{Analyzer, HybridRule, SamplingPeriods, Window};
use hbbp_program::ImageView;
use hbbp_store::{DaemonConfig, StoreIdentity};
use hbbp_workloads::{phased, test40, Scale, Workload};
use std::path::PathBuf;

fn usage() -> ! {
    eprintln!(
        "usage: hbbpd [--workload phased|test40] [--scale tiny|small|full]\n\
         \x20            [--shards N] [--dir PATH] [--window-samples N]\n\
         \x20            [--ebs-period N] [--lbr-period N]\n\
         Serves on a loopback ephemeral port (printed on stdout). Stop it\n\
         with an OP_SHUTDOWN message (StoreClient::shutdown)."
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut workload_name = "phased".to_owned();
    let mut scale = Scale::Tiny;
    let mut shards = 4usize;
    let mut dir = PathBuf::from("hbbpd-store");
    let mut window_samples = Some(512u64);
    let mut periods = SamplingPeriods {
        ebs: 1009,
        lbr: 211,
    };
    let mut i = 0;
    while i < args.len() {
        let value = |i: &mut usize| -> String {
            *i += 1;
            args.get(*i).cloned().unwrap_or_else(|| usage())
        };
        match args[i].as_str() {
            "--workload" => workload_name = value(&mut i),
            "--scale" => {
                scale = match value(&mut i).as_str() {
                    "tiny" => Scale::Tiny,
                    "small" => Scale::Small,
                    "full" => Scale::Full,
                    _ => usage(),
                }
            }
            "--shards" => shards = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--dir" => dir = PathBuf::from(value(&mut i)),
            "--window-samples" => {
                let n: u64 = value(&mut i).parse().unwrap_or_else(|_| usage());
                window_samples = (n > 0).then_some(n);
            }
            "--ebs-period" => periods.ebs = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--lbr-period" => periods.lbr = value(&mut i).parse().unwrap_or_else(|_| usage()),
            _ => usage(),
        }
        i += 1;
    }

    let workload: Workload = match workload_name.as_str() {
        "phased" => phased(scale),
        "test40" => test40(scale),
        _ => usage(),
    };
    let analyzer = Analyzer::from_images(
        &workload.images(ImageView::Disk),
        workload.layout().symbols(),
    )
    .expect("static discovery");
    let identity = StoreIdentity::of_workload(&workload, analyzer.map());
    let handle = hbbp_store::spawn(DaemonConfig {
        analyzer,
        identity,
        periods,
        rule: HybridRule::paper_default(),
        window: window_samples.map(Window::Samples),
        shards,
        dir,
    })
    .expect("daemon spawn");
    println!("hbbpd listening on {}", handle.addr());
    println!(
        "workload={} scale={:?} shards={} periods=ebs:{}/lbr:{}",
        workload.name(),
        scale,
        shards,
        periods.ebs,
        periods.lbr
    );
    // Serve until a client sends OP_SHUTDOWN.
    handle.wait();
    println!("hbbpd stopped");
}

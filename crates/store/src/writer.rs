//! Per-shard single-writer ingest queues.
//!
//! Each store shard is owned outright by one writer thread — no
//! `Mutex<ProfileStore>` anywhere. Workers parse and analyze streams,
//! then hand *completed* results (window batches, counts frames) over a
//! **bounded** queue; the writer drains whatever has accumulated and
//! group-commits the whole batch as a single file write
//! ([`ProfileStore::commit`]). An ingest reply (the assigned `seq`) is
//! released only after the commit that made its frame durable, so a
//! client that has its `INGESTED` reply knows the counts frame is in
//! the log.
//!
//! Queries are serialized through the same queue, which gives them
//! read-your-writes consistency per shard for free: the writer commits
//! everything buffered before serving a snapshot.
//!
//! Shutdown: the writer exits when every sender is gone (workers drop
//! their clones as they drain), after committing its tail — the
//! drain-on-shutdown path.

use crate::frame::WindowRecord;
use crate::store::{ProfileStore, Snapshot};
use hbbp_obs::{Counter, Gauge, Histogram, Metrics};
use hbbp_program::Bbec;
use std::sync::mpsc::{Receiver, Sender};
use std::time::Instant;

/// Messages a shard writer consumes, in arrival order.
pub(crate) enum WriterMsg {
    /// Closed timeline windows from an in-flight stream (fire and
    /// forget: the timeline is an observability stream).
    Windows(Vec<WindowRecord>),
    /// A completed stream's counts frame; `reply` carries the assigned
    /// `seq`, sent only after the group commit that durably wrote it.
    Counts {
        /// Collector source id.
        source: u32,
        /// EBS samples the stream contributed.
        ebs_samples: u64,
        /// LBR samples the stream contributed.
        lbr_samples: u64,
        /// The whole-stream analysis (bit-exact `f64` counts).
        bbec: Bbec,
        /// Where the committed `seq` (or error) goes.
        reply: Sender<Result<u32, String>>,
    },
    /// A consistent view of the shard (pending appends committed first).
    /// The shard index is echoed back so gathering workers can fold
    /// partitions in index order — compacted fold frames all share the
    /// same `(source, seq)` key, so arrival order must not leak into the
    /// canonical aggregate.
    Snapshot(usize, Sender<(usize, Snapshot)>),
    /// Shard statistics (pending appends committed first).
    Stats(Sender<ShardStats>),
    /// Compact the shard's log (pending appends absorbed by the rewrite).
    Compact(Sender<Result<(), String>>),
}

/// One shard's contribution to [`crate::wire::DaemonStats`].
pub(crate) struct ShardStats {
    pub counts_frames: u64,
    pub window_frames: u64,
    pub bytes: u64,
    /// Source ids in this shard's counts frames (deduped globally by the
    /// gathering worker).
    pub sources: Vec<u32>,
}

/// Upper bound on messages folded into one group commit — bounds reply
/// latency under a sustained ingest firehose.
const MAX_BATCH: usize = 512;

/// The shard writer: drain the queue, apply appends deferred, group
/// commit, release replies. Runs until every sender is dropped.
pub(crate) fn writer_loop(
    mut store: ProfileStore,
    rx: Receiver<WriterMsg>,
    metrics: Metrics,
    shard: usize,
) {
    // Ingest replies withheld until the commit that makes them true.
    let mut uncommitted: Vec<(Sender<Result<u32, String>>, u32)> = Vec::new();
    let mut batch: Vec<WriterMsg> = Vec::new();
    // Deferred appends are pending (the commit will actually write).
    let mut dirty = false;
    while let Ok(first) = rx.recv() {
        batch.push(first);
        while batch.len() < MAX_BATCH {
            match rx.try_recv() {
                Ok(msg) => batch.push(msg),
                Err(_) => break,
            }
        }
        // The sending worker raised the queue-depth gauge per message;
        // lower it as the batch leaves the queue.
        for _ in 0..batch.len() {
            metrics.gauge_shard_dec(Gauge::WriterQueueDepth, shard);
        }
        metrics.observe(Histogram::WriterBatchMessages, batch.len() as u64);
        for msg in batch.drain(..) {
            match msg {
                WriterMsg::Windows(records) => {
                    metrics.add(Counter::WriterWindowsAppended, records.len() as u64);
                    dirty = true;
                    for w in records {
                        // Cannot fail: the store was opened with an
                        // identity; I/O is deferred to the commit.
                        let _ = store.append_window_deferred(w);
                    }
                }
                WriterMsg::Counts {
                    source,
                    ebs_samples,
                    lbr_samples,
                    bbec,
                    reply,
                } => match store.append_counts_deferred(source, ebs_samples, lbr_samples, bbec) {
                    Ok(seq) => {
                        metrics.inc(Counter::WriterCountsAppended);
                        dirty = true;
                        uncommitted.push((reply, seq));
                    }
                    Err(e) => {
                        let _ = reply.send(Err(e.to_string()));
                    }
                },
                WriterMsg::Snapshot(shard, reply) => {
                    commit(&mut store, &mut uncommitted, &metrics, &mut dirty);
                    let _ = reply.send((shard, store.snapshot()));
                }
                WriterMsg::Stats(reply) => {
                    commit(&mut store, &mut uncommitted, &metrics, &mut dirty);
                    let _ = reply.send(ShardStats {
                        counts_frames: store.counts().len() as u64,
                        window_frames: store.windows().len() as u64,
                        bytes: store.file_bytes(),
                        sources: store.counts().iter().map(|c| c.source).collect(),
                    });
                }
                WriterMsg::Compact(reply) => {
                    commit(&mut store, &mut uncommitted, &metrics, &mut dirty);
                    let _ = reply.send(store.compact().map_err(|e| e.to_string()));
                }
            }
        }
        // Group commit: one file write for every append in the batch,
        // then release the ingest replies it covers.
        commit(&mut store, &mut uncommitted, &metrics, &mut dirty);
    }
    // Drain on shutdown: all senders gone, every queued message already
    // consumed by the loop above — just make sure the tail is written.
    let _ = store.commit();
}

fn commit(
    store: &mut ProfileStore,
    uncommitted: &mut Vec<(Sender<Result<u32, String>>, u32)>,
    metrics: &Metrics,
    dirty: &mut bool,
) {
    let result = if *dirty {
        *dirty = false;
        let bytes_before = store.file_bytes();
        let started = Instant::now();
        let result = store.commit().map_err(|e| e.to_string());
        metrics.inc(Counter::WriterCommits);
        metrics.observe(
            Histogram::WriterCommitUs,
            started.elapsed().as_micros() as u64,
        );
        metrics.add(
            Counter::WriterBytesCommitted,
            store.file_bytes().saturating_sub(bytes_before),
        );
        result
    } else {
        // Nothing deferred: the commit is a no-op and not worth a
        // latency observation.
        store.commit().map_err(|e| e.to_string())
    };
    for (reply, seq) in uncommitted.drain(..) {
        let _ = reply.send(result.clone().map(|()| seq));
    }
}

//! `hbbpd` — the concurrent collection daemon.
//!
//! Thread-per-connection over `std::net::TcpListener`, with the store
//! sharded into `Mutex<ProfileStore>` partitions (partition =
//! `source % shards`) so concurrent collectors contend only when they
//! hash to the same partition file.
//!
//! Each [`OP_STREAM`] connection is decoded
//! incrementally (strict [`StreamDecoder`]) and fed through **two**
//! online analyzers:
//!
//! * an unwindowed [`OnlineAnalyzer`] — its whole-stream analysis is
//!   bit-identical to `Analyzer::analyze_fused` over the same recording
//!   (pinned in `hbbp-core`), and becomes the connection's counts frame
//!   at end of stream. This is what makes a queried aggregate
//!   bit-identical to folding single-process batch analyses;
//! * optionally a windowed one, whose closed windows are drained through
//!   [`OnlineAnalyzer::take_closed_windows`] and flushed into the store
//!   **while the stream is still running** — the timeline survives even
//!   if the daemon is killed mid-connection.
//!
//! A connection that errors (corrupt stream, truncated tail from a dying
//! client) contributes no **counts**: the COUNTS frame is written only
//! after its stream decoded completely, so the aggregate profile never
//! sees a partial recording. WINDOW timeline frames flushed before the
//! failure do remain — that is the point of flush-as-you-go (the
//! timeline survives daemon and client crashes), and timeline consumers
//! should treat it as an observability stream, not as proof of a
//! complete recording.

use crate::frame::{StoreIdentity, WindowRecord};
use crate::store::{ProfileStore, Snapshot, StoreError};
use crate::wire::{
    encode_ingest, encode_mix, encode_stats, read_msg, write_msg, DaemonStats, IngestReply,
    StoreClient, WireError, OP_COMPACT, OP_QUERY_MIX, OP_QUERY_TOP, OP_SHUTDOWN, OP_STATS,
    OP_STREAM, RESP_ERR, RESP_INGESTED, RESP_MIX, RESP_OK, RESP_STATS,
};
use hbbp_core::{Analyzer, HybridRule, OnlineAnalyzer, SamplingPeriods, Window};
use hbbp_perf::StreamDecoder;
use hbbp_program::Bbec;
use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// Configuration of a daemon instance.
#[derive(Debug)]
pub struct DaemonConfig {
    /// The analysis engine (owns the static block map all clients'
    /// streams resolve against).
    pub analyzer: Analyzer,
    /// The program identity every partition store is keyed by.
    pub identity: StoreIdentity,
    /// Sampling periods the collectors used.
    pub periods: SamplingPeriods,
    /// The HBBP decision rule to apply.
    pub rule: HybridRule,
    /// When set, each connection also runs a windowed analyzer and
    /// flushes closed windows into the store as timeline records.
    pub window: Option<Window>,
    /// Store partitions (files `part-<i>.hbbp` under `dir`).
    pub shards: usize,
    /// Directory holding the partition files (created if absent).
    pub dir: PathBuf,
}

struct Shared {
    analyzer: Analyzer,
    periods: SamplingPeriods,
    rule: HybridRule,
    window: Option<Window>,
    partitions: Vec<Mutex<ProfileStore>>,
    addr: SocketAddr,
    shutdown: AtomicBool,
}

impl Shared {
    fn partition(&self, source: u32) -> &Mutex<ProfileStore> {
        &self.partitions[source as usize % self.partitions.len()]
    }

    /// Snapshot every partition (locked one at a time) and fold the
    /// combined counts canonically. Arrival interleaving across
    /// partitions does not matter: the fold sorts by `(source, seq)`.
    fn combined(&self) -> Snapshot {
        let mut counts = Vec::new();
        let mut windows = Vec::new();
        let mut identity = None;
        for p in &self.partitions {
            let store = p.lock().expect("partition lock");
            let snap = store.snapshot();
            identity = identity.or(snap.identity);
            counts.extend(snap.counts);
            windows.extend(snap.windows);
        }
        Snapshot {
            identity,
            counts,
            windows,
        }
    }

    fn aggregate(&self) -> Bbec {
        self.combined().aggregate()
    }

    fn stats(&self) -> DaemonStats {
        let mut counts_frames = 0u64;
        let mut window_frames = 0u64;
        let mut store_bytes = 0u64;
        let mut sources: Vec<u32> = Vec::new();
        for p in &self.partitions {
            let store = p.lock().expect("partition lock");
            counts_frames += store.counts().len() as u64;
            window_frames += store.windows().len() as u64;
            store_bytes += store.file_bytes();
            sources.extend(store.counts().iter().map(|c| c.source));
        }
        sources.sort_unstable();
        sources.dedup();
        DaemonStats {
            shards: self.partitions.len() as u32,
            counts_frames,
            window_frames,
            sources: sources.len() as u32,
            store_bytes,
        }
    }
}

/// A running daemon: join handle plus the bound address.
#[derive(Debug)]
pub struct DaemonHandle {
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
}

impl DaemonHandle {
    /// The address the daemon is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A client speaking to this daemon.
    pub fn client(&self) -> StoreClient {
        StoreClient::new(self.addr)
    }

    /// Block until the daemon shuts down (a client sends
    /// [`OP_SHUTDOWN`]), joining the accept loop and every connection
    /// thread.
    pub fn wait(mut self) {
        if let Some(h) = self.accept.take() {
            h.join().expect("accept loop panicked");
        }
    }

    /// Send [`OP_SHUTDOWN`] and join the accept loop (which in turn joins
    /// every connection thread).
    ///
    /// # Errors
    ///
    /// Propagates the shutdown request's wire errors; the join itself
    /// cannot fail (a panicked accept loop panics here).
    pub fn shutdown(mut self) -> Result<(), WireError> {
        self.client().shutdown()?;
        if let Some(h) = self.accept.take() {
            h.join().expect("accept loop panicked");
        }
        Ok(())
    }
}

/// Spawn a daemon on a loopback ephemeral port.
///
/// # Errors
///
/// Store-opening failures for any partition, or the listener bind.
pub fn spawn(config: DaemonConfig) -> Result<DaemonHandle, StoreError> {
    std::fs::create_dir_all(&config.dir)?;
    let mut partitions = Vec::with_capacity(config.shards.max(1));
    for i in 0..config.shards.max(1) {
        let path = config.dir.join(format!("part-{i}.hbbp"));
        partitions.push(Mutex::new(ProfileStore::open_with_identity(
            path,
            config.identity.clone(),
        )?));
    }
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let addr = listener.local_addr()?;
    let shared = Arc::new(Shared {
        analyzer: config.analyzer,
        periods: config.periods,
        rule: config.rule,
        window: config.window,
        partitions,
        addr,
        shutdown: AtomicBool::new(false),
    });

    let accept = std::thread::spawn(move || {
        let mut conns: Vec<JoinHandle<()>> = Vec::new();
        for stream in listener.incoming() {
            if shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = stream else { continue };
            let shared = Arc::clone(&shared);
            conns.push(std::thread::spawn(move || {
                // A connection failing (I/O, protocol) only drops that
                // connection; the daemon keeps serving.
                let _ = handle_connection(&shared, stream);
            }));
        }
        for c in conns {
            let _ = c.join();
        }
    });

    Ok(DaemonHandle {
        addr,
        accept: Some(accept),
    })
}

fn respond_err(stream: &mut TcpStream, message: &str) -> Result<(), WireError> {
    write_msg(stream, RESP_ERR, message.as_bytes())?;
    Ok(())
}

fn handle_connection(shared: &Shared, mut stream: TcpStream) -> Result<(), WireError> {
    let Some((op, payload)) = read_msg(&mut stream)? else {
        return Ok(());
    };
    match op {
        OP_STREAM => {
            if payload.len() != 4 {
                return respond_err(&mut stream, "STREAM payload must be a u32 source id");
            }
            let source = u32::from_le_bytes(payload.try_into().expect("4 bytes"));
            match ingest(shared, source, &mut stream) {
                Ok(reply) => write_msg(&mut stream, RESP_INGESTED, &encode_ingest(&reply))?,
                Err(e) => respond_err(&mut stream, &e.to_string())?,
            }
        }
        OP_QUERY_MIX => {
            let mix = shared.analyzer.mix(&shared.aggregate());
            let entries: Vec<_> = mix.iter().collect();
            write_msg(&mut stream, RESP_MIX, &encode_mix(&entries))?;
        }
        OP_QUERY_TOP => {
            if payload.len() != 4 {
                return respond_err(&mut stream, "TOP payload must be a u32 k");
            }
            let k = u32::from_le_bytes(payload.try_into().expect("4 bytes"));
            let mix = shared.analyzer.mix(&shared.aggregate());
            write_msg(&mut stream, RESP_MIX, &encode_mix(&mix.top(k as usize)))?;
        }
        OP_STATS => {
            write_msg(&mut stream, RESP_STATS, &encode_stats(&shared.stats()))?;
        }
        OP_COMPACT => {
            let mut failed = None;
            for p in &shared.partitions {
                if let Err(e) = p.lock().expect("partition lock").compact() {
                    failed = Some(e.to_string());
                    break;
                }
            }
            match failed {
                None => write_msg(&mut stream, RESP_OK, &[])?,
                Some(m) => respond_err(&mut stream, &m)?,
            }
        }
        OP_SHUTDOWN => {
            shared.shutdown.store(true, Ordering::SeqCst);
            write_msg(&mut stream, RESP_OK, &[])?;
            // Unblock the accept loop so it observes the flag.
            let _ = TcpStream::connect(shared.addr);
        }
        other => respond_err(&mut stream, &format!("unknown op {other}"))?,
    }
    Ok(())
}

/// Decode one client's perf stream and analyze it online; on a complete,
/// valid stream, flush the results into the client's partition.
fn ingest(shared: &Shared, source: u32, stream: &mut TcpStream) -> Result<IngestReply, WireError> {
    let mut whole = OnlineAnalyzer::new(&shared.analyzer, shared.periods, shared.rule.clone());
    let mut windowed = shared.window.map(|w| {
        OnlineAnalyzer::new(&shared.analyzer, shared.periods, shared.rule.clone()).with_window(w)
    });
    let mut decoder = StreamDecoder::new();
    let mut pending_windows: Vec<WindowRecord> = Vec::new();
    let mut windows_flushed = 0u32;
    let mut buf = [0u8; 8192];
    loop {
        let n = stream.read(&mut buf)?;
        if n == 0 {
            break;
        }
        decoder.feed(&buf[..n]);
        loop {
            match decoder.next_record() {
                Ok(Some(record)) => {
                    if let Some(w) = &mut windowed {
                        w.push_record(&record);
                    }
                    whole.push_owned(record);
                }
                Ok(None) => break,
                Err(e) => return Err(WireError::Daemon(format!("perf stream: {e}"))),
            }
        }
        if let Some(w) = &mut windowed {
            // Flush-as-you-go: closed windows land in the store while the
            // stream is still being collected.
            for closed in w.take_closed_windows() {
                pending_windows.push(WindowRecord {
                    source,
                    index: closed.index as u32,
                    start_cycles: closed.start_cycles,
                    end_cycles: closed.end_cycles,
                    ebs_samples: closed.ebs_samples,
                    lbr_samples: closed.lbr_samples,
                    mix: closed.mix,
                });
            }
            if !pending_windows.is_empty() {
                let mut store = shared.partition(source).lock().expect("partition lock");
                windows_flushed += pending_windows.len() as u32;
                for w in pending_windows.drain(..) {
                    store.append_window(w).map_err(store_err)?;
                }
            }
        }
    }
    decoder
        .finish()
        .map_err(|e| WireError::Daemon(format!("perf stream: {e}")))?;

    let outcome = whole.finish();
    let records = outcome.records_seen;
    let samples = outcome.samples_seen;
    let mut windows = outcome.windows;
    let whole_window = windows.pop().expect("unwindowed run emits one window");

    let mut store = shared.partition(source).lock().expect("partition lock");
    if let Some(w) = windowed {
        for closed in w.finish().windows {
            store
                .append_window(WindowRecord {
                    source,
                    index: closed.index as u32,
                    start_cycles: closed.start_cycles,
                    end_cycles: closed.end_cycles,
                    ebs_samples: closed.ebs_samples,
                    lbr_samples: closed.lbr_samples,
                    mix: closed.mix,
                })
                .map_err(store_err)?;
            windows_flushed += 1;
        }
    }
    let counts_seq = store
        .append_counts(
            source,
            whole_window.ebs_samples,
            whole_window.lbr_samples,
            whole_window.analysis.hbbp.bbec,
        )
        .map_err(store_err)?;
    Ok(IngestReply {
        records,
        samples,
        windows_flushed,
        counts_seq,
    })
}

fn store_err(e: StoreError) -> WireError {
    WireError::Daemon(e.to_string())
}

//! `hbbpd` — the concurrent collection daemon.
//!
//! Event-driven: one acceptor thread, a small pool of poll-loop workers
//! (the `server` module) each multiplexing many **nonblocking**
//! connections, and one single-writer thread per store shard (the
//! `writer` module). There is no `Mutex<ProfileStore>` anywhere —
//! each shard file (`part-<i>.hbbp`, shard = `source % shards`) is
//! owned outright by its writer, which drains a bounded queue and
//! group-commits batched appends as single file writes.
//! `docs/DAEMON.md` is the spec for this concurrency model.
//!
//! Each [`OP_STREAM`](crate::wire::OP_STREAM) connection is decoded
//! incrementally (strict [`hbbp_perf::StreamDecoder`], tolerant of
//! partial reads at any byte boundary) and fed through **two** online
//! analyzers:
//!
//! * an unwindowed [`hbbp_core::OnlineAnalyzer`] — its whole-stream
//!   analysis is bit-identical to `Analyzer::analyze_fused` over the
//!   same recording (pinned in `hbbp-core`), and becomes the
//!   connection's counts frame at end of stream. This is what makes a
//!   queried aggregate bit-identical to folding single-process batch
//!   analyses;
//! * optionally a windowed one, whose closed windows are drained through
//!   [`hbbp_core::OnlineAnalyzer::take_closed_windows`] and flushed into
//!   the store **while the stream is still running** — the timeline
//!   survives even if the daemon is killed mid-connection.
//!
//! A connection that errors (corrupt stream, truncated tail from a dying
//! client) contributes no **counts**: the COUNTS frame is written only
//! after its stream decoded completely, so the aggregate profile never
//! sees a partial recording. WINDOW timeline frames flushed before the
//! failure do remain — that is the point of flush-as-you-go (the
//! timeline survives daemon and client crashes), and timeline consumers
//! should treat it as an observability stream, not as proof of a
//! complete recording.
//!
//! Shutdown ordering (each arrow is "unblocks / joins"): a client's
//! SHUTDOWN sets the flag and pokes the acceptor → the acceptor stops
//! accepting and drops the worker inboxes → workers drain their live
//! connections (force-dropping stragglers after a grace period) and
//! drop their writer senders → writers drain their queues, commit their
//! tails and exit → the acceptor joins workers, then writers → the
//! [`DaemonHandle`] joins the acceptor.

use crate::frame::StoreIdentity;
use crate::server::worker_loop;
use crate::store::{ProfileStore, StoreError};
use crate::wire::{StoreClient, WireError};
use crate::writer::{writer_loop, WriterMsg};
use hbbp_core::{Analyzer, HybridRule, SamplingPeriods, Window};
use hbbp_obs::{Counter, Metrics};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Sender, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Default bound of each shard writer's ingest queue (messages).
pub const DEFAULT_QUEUE_DEPTH: usize = 256;

/// Cap on the auto-sized worker pool (`workers: 0`).
const MAX_AUTO_WORKERS: usize = 8;

/// Configuration of a daemon instance.
#[derive(Debug)]
pub struct DaemonConfig {
    /// The analysis engine (owns the static block map all clients'
    /// streams resolve against).
    pub analyzer: Analyzer,
    /// The program identity every partition store is keyed by.
    pub identity: StoreIdentity,
    /// Sampling periods the collectors used.
    pub periods: SamplingPeriods,
    /// The HBBP decision rule to apply.
    pub rule: HybridRule,
    /// When set, each connection also runs a windowed analyzer and
    /// flushes closed windows into the store as timeline records.
    pub window: Option<Window>,
    /// Store partitions (files `part-<i>.hbbp` under `dir`), each owned
    /// by one writer thread.
    pub shards: usize,
    /// Directory holding the partition files (created if absent).
    pub dir: PathBuf,
    /// Poll-loop worker threads multiplexing connections; `0` sizes the
    /// pool automatically (available parallelism, capped at 8).
    pub workers: usize,
    /// Bound of each shard writer's ingest queue, in messages; `0`
    /// means [`DEFAULT_QUEUE_DEPTH`]. A full queue exerts backpressure
    /// on the streams writing to that shard only.
    pub queue_depth: usize,
    /// Run the self-observability registry (`hbbp-obs`): every serving
    /// layer counts into it, [`OP_METRICS`](crate::wire::OP_METRICS)
    /// snapshots it, and STATS gains backpressure fields. When `false`
    /// the daemon carries a no-op handle (one predicted branch per
    /// would-be update) and METRICS returns an empty snapshot.
    pub metrics: bool,
}

/// What the connection state machines need from the daemon.
pub(crate) struct Shared {
    pub(crate) analyzer: Analyzer,
    pub(crate) periods: SamplingPeriods,
    pub(crate) rule: HybridRule,
    pub(crate) window: Option<Window>,
    pub(crate) addr: SocketAddr,
    pub(crate) shutdown: AtomicBool,
    pub(crate) metrics: Metrics,
}

/// A running daemon: join handle plus the bound address.
#[derive(Debug)]
pub struct DaemonHandle {
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    metrics: Metrics,
}

impl DaemonHandle {
    /// The address the daemon is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The daemon's metrics handle (a no-op handle when the daemon was
    /// spawned with `metrics: false`) — e.g. for wiring a scrape
    /// endpoint via [`hbbp_obs::serve_text_endpoint`].
    pub fn metrics(&self) -> Metrics {
        self.metrics.clone()
    }

    /// A client speaking to this daemon.
    pub fn client(&self) -> StoreClient {
        StoreClient::new(self.addr)
    }

    /// Block until the daemon shuts down (a client sends
    /// [`OP_SHUTDOWN`](crate::wire::OP_SHUTDOWN)), joining the acceptor
    /// (which joins the workers and writers).
    pub fn wait(mut self) {
        if let Some(h) = self.accept.take() {
            h.join().expect("accept loop panicked");
        }
    }

    /// Send [`OP_SHUTDOWN`](crate::wire::OP_SHUTDOWN) and join the
    /// acceptor (which in turn joins every worker and shard writer).
    ///
    /// # Errors
    ///
    /// Propagates the shutdown request's wire errors; the join itself
    /// cannot fail (a panicked accept loop panics here).
    pub fn shutdown(mut self) -> Result<(), WireError> {
        self.client().shutdown()?;
        if let Some(h) = self.accept.take() {
            h.join().expect("accept loop panicked");
        }
        Ok(())
    }
}

/// Accept backlog requested for the daemon's listener (clamped by the
/// kernel to `net.core.somaxconn`). `TcpListener::bind` hard-codes a
/// backlog of 128, which a fleet of collectors connecting at once
/// overflows — dropped SYNs then cost each affected client a ~1 s
/// retransmission timeout.
const ACCEPT_BACKLOG: i32 = 1024;

/// Widen the accept backlog of an already-listening socket.
///
/// POSIX allows calling `listen(2)` again on a listening socket, and on
/// Linux this simply updates the backlog. std offers no way to pass a
/// backlog, hence the single raw syscall; it cannot create UB (the fd is
/// valid and owned for the call's duration) and a failure merely leaves
/// the default backlog in place.
#[cfg(unix)]
#[allow(unsafe_code)]
fn widen_accept_backlog(listener: &TcpListener) -> bool {
    use std::os::fd::AsRawFd;
    extern "C" {
        fn listen(fd: std::os::raw::c_int, backlog: std::os::raw::c_int) -> std::os::raw::c_int;
    }
    // SAFETY: `listen` neither reads nor writes user memory; the fd is
    // kept alive by the borrow.
    unsafe { listen(listener.as_raw_fd(), ACCEPT_BACKLOG) == 0 }
}

#[cfg(not(unix))]
fn widen_accept_backlog(_listener: &TcpListener) -> bool {
    false
}

/// Resolve `workers: 0` to the machine's available parallelism, capped.
fn auto_workers(configured: usize) -> usize {
    if configured > 0 {
        return configured;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(MAX_AUTO_WORKERS)
}

/// Spawn a daemon on a loopback ephemeral port.
///
/// # Errors
///
/// Store-opening failures for any partition, or the listener bind.
pub fn spawn(config: DaemonConfig) -> Result<DaemonHandle, StoreError> {
    std::fs::create_dir_all(&config.dir)?;
    let queue_depth = if config.queue_depth == 0 {
        DEFAULT_QUEUE_DEPTH
    } else {
        config.queue_depth
    };
    let metrics = if config.metrics {
        Metrics::new(config.shards.max(1))
    } else {
        Metrics::disabled()
    };
    let mut shard_txs: Vec<SyncSender<WriterMsg>> = Vec::new();
    let mut writers: Vec<JoinHandle<()>> = Vec::new();
    for i in 0..config.shards.max(1) {
        let path = config.dir.join(format!("part-{i}.hbbp"));
        let store = ProfileStore::open_with_identity(path, config.identity.clone())?;
        let (tx, rx) = std::sync::mpsc::sync_channel(queue_depth);
        shard_txs.push(tx);
        let writer_metrics = metrics.clone();
        writers.push(std::thread::spawn(move || {
            writer_loop(store, rx, writer_metrics, i)
        }));
    }

    let listener = TcpListener::bind("127.0.0.1:0")?;
    if widen_accept_backlog(&listener) {
        metrics.inc(Counter::AcceptorBacklogRearms);
    }
    let addr = listener.local_addr()?;
    let shared = Arc::new(Shared {
        analyzer: config.analyzer,
        periods: config.periods,
        rule: config.rule,
        window: config.window,
        addr,
        shutdown: AtomicBool::new(false),
        metrics: metrics.clone(),
    });

    let mut worker_txs: Vec<Sender<TcpStream>> = Vec::new();
    let mut workers: Vec<JoinHandle<()>> = Vec::new();
    for _ in 0..auto_workers(config.workers) {
        let (tx, rx) = std::sync::mpsc::channel();
        worker_txs.push(tx);
        let shared = Arc::clone(&shared);
        let shards = shard_txs.clone();
        workers.push(std::thread::spawn(move || worker_loop(shared, rx, shards)));
    }
    // The workers hold the only long-lived writer senders: when the last
    // worker drains and exits, the writers see disconnect and exit too.
    drop(shard_txs);

    let accept = std::thread::spawn(move || {
        let mut next = 0usize;
        for stream in listener.incoming() {
            if shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = stream else { continue };
            // The poll-loop workers require readiness semantics; nodelay
            // keeps small replies from waiting on Nagle.
            if stream.set_nonblocking(true).is_err() {
                continue;
            }
            let _ = stream.set_nodelay(true);
            shared.metrics.inc(Counter::AcceptorAccepts);
            // Round-robin connection placement across the pool.
            let _ = worker_txs[next % worker_txs.len()].send(stream);
            next += 1;
        }
        // Shutdown ordering: close the inboxes so workers drain...
        drop(worker_txs);
        for w in workers {
            let _ = w.join();
        }
        // ...then the writers (their queues disconnect once the last
        // worker drops its senders).
        for w in writers {
            let _ = w.join();
        }
    });

    Ok(DaemonHandle {
        addr,
        accept: Some(accept),
        metrics,
    })
}

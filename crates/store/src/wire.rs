//! The daemon wire protocol and the collector-side client.
//!
//! Everything on the wire is a length-prefixed message:
//!
//! ```text
//! message   op u8 | payload_len u32 LE | payload
//! ```
//!
//! A connection performs one operation. The interesting one is
//! [`OP_STREAM`]: after the message (whose payload is the collector's
//! `source` id), the client sends a **perf stream in the `hbbp-perf`
//! binary codec** — exactly the bytes `codec::write` / `StreamEncoder`
//! produce — and half-closes the socket; end-of-stream is the frame
//! boundary. The daemon decodes it incrementally with a strict
//! [`hbbp_perf::StreamDecoder`], so a client that dies mid-frame is
//! detected (truncated stream) and contributes no counts to the
//! aggregate (window timeline records already flushed mid-stream
//! remain — see the daemon docs).
//!
//! Query responses carry mix counts as raw `f64` bits so that a queried
//! aggregate compares bit-identically against a local analysis.

use crate::store::EpochStats;
use bytes::{Buf, BufMut, BytesMut};
use hbbp_isa::Mnemonic;
use hbbp_perf::{PerfData, PerfSession, RecordError};
use hbbp_program::MnemonicMix;
use hbbp_workloads::Workload;
use std::fmt;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};

/// Stream a recording into the daemon (payload: `source` u32).
pub const OP_STREAM: u8 = 1;
/// Query the full aggregate instruction mix.
pub const OP_QUERY_MIX: u8 = 2;
/// Query the top-K mnemonics of the aggregate mix (payload: `k` u32).
pub const OP_QUERY_TOP: u8 = 3;
/// Query daemon/store statistics.
pub const OP_STATS: u8 = 4;
/// Ask every partition to tier-compact its log (one fold per epoch,
/// per-epoch aggregates preserved bit-exactly) and seal the current
/// epoch: appends after the reply land in a fresh epoch.
pub const OP_COMPACT: u8 = 5;
/// List the store's epochs with per-epoch frame/sample accounting.
pub const OP_EPOCHS: u8 = 6;
/// Query the top-K mix movers between two epochs (payload: `epoch_a`,
/// `epoch_b`, `k`, all u32). The reply reuses the `MIX` encoding with
/// **signed** `current − baseline` deltas as the `f64` bits.
pub const OP_DRIFT: u8 = 7;
/// Query the daemon's self-observability metrics: a full snapshot of the
/// lock-free registry (counters, gauges with high-water marks, log2
/// histograms) covering the acceptor, workers, writers and the streaming
/// decode/analyze hot path.
pub const OP_METRICS: u8 = 8;
/// Stop accepting connections and shut down.
pub const OP_SHUTDOWN: u8 = 255;

/// Generic acknowledgement.
pub const RESP_OK: u8 = 100;
/// Reply to [`OP_STREAM`]: ingestion accounting.
pub const RESP_INGESTED: u8 = 101;
/// Reply to the mix queries: `(mnemonic, count)` entries.
pub const RESP_MIX: u8 = 102;
/// Reply to [`OP_STATS`].
pub const RESP_STATS: u8 = 104;
/// Reply to [`OP_EPOCHS`]: per-epoch accounting entries.
pub const RESP_EPOCHS: u8 = 105;
/// Reply to [`OP_METRICS`]: a self-describing
/// [`hbbp_obs::Snapshot`] encoding.
pub const RESP_METRICS: u8 = 106;
/// The daemon rejected the operation; payload is a message string.
pub const RESP_ERR: u8 = 199;

/// Upper bound on a single message payload (a mix over the full mnemonic
/// set is a few KiB; this is generous headroom, not a real limit).
pub(crate) const MAX_MSG_LEN: usize = 16 << 20;

/// One operation of the daemon wire protocol — the single source of
/// truth behind `hbbp serve --help`, the `hbbpd` shim, and the
/// generated sections of `docs/PROTOCOL.md` (golden-pinned by
/// `crates/store/tests/protocol_doc.rs`), so the listing cannot drift
/// between surfaces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpSpec {
    /// The `op` byte on the wire.
    pub code: u8,
    /// Protocol name, as printed in help text and docs.
    pub name: &'static str,
    /// Request payload (and any trailing byte stream), human-readable.
    pub request: &'static str,
    /// The reply message the daemon sends on success.
    pub reply: &'static str,
    /// One-line summary.
    pub summary: &'static str,
}

/// Every operation of the protocol, in op-code order (the shutdown op
/// last, mirroring its out-of-band code).
pub const PROTOCOL_OPS: &[OpSpec] = &[
    OpSpec {
        code: OP_STREAM,
        name: "STREAM",
        request: "source u32 LE, then a perf byte stream + half-close",
        reply: "INGESTED",
        summary: "ingest one collector's recording",
    },
    OpSpec {
        code: OP_QUERY_MIX,
        name: "QUERY_MIX",
        request: "empty",
        reply: "MIX",
        summary: "aggregate mix (canonical fold)",
    },
    OpSpec {
        code: OP_QUERY_TOP,
        name: "QUERY_TOP",
        request: "k u32 LE",
        reply: "MIX",
        summary: "k most-executed mnemonics",
    },
    OpSpec {
        code: OP_STATS,
        name: "STATS",
        request: "empty",
        reply: "STATS",
        summary: "shards/frames/sources/bytes",
    },
    OpSpec {
        code: OP_COMPACT,
        name: "COMPACT",
        request: "empty",
        reply: "OK",
        summary: "tier-compact logs, seal the epoch",
    },
    OpSpec {
        code: OP_EPOCHS,
        name: "EPOCHS",
        request: "empty",
        reply: "EPOCHS",
        summary: "list epochs with accounting",
    },
    OpSpec {
        code: OP_DRIFT,
        name: "DRIFT",
        request: "epoch_a u32, epoch_b u32, k u32 (all LE)",
        reply: "MIX",
        summary: "top-k mix movers a -> b (signed deltas)",
    },
    OpSpec {
        code: OP_METRICS,
        name: "METRICS",
        request: "empty",
        reply: "METRICS",
        summary: "self-observability registry snapshot",
    },
    OpSpec {
        code: OP_SHUTDOWN,
        name: "SHUTDOWN",
        request: "empty",
        reply: "OK",
        summary: "stop accepting, drain, exit",
    },
];

/// The reply codes, `(code, name, payload)` — same pinning story as
/// [`PROTOCOL_OPS`].
pub const PROTOCOL_REPLIES: &[(u8, &str, &str)] = &[
    (RESP_OK, "OK", "empty"),
    (
        RESP_INGESTED,
        "INGESTED",
        "records u64, samples u64, windows_flushed u32, counts_seq u32 (all LE)",
    ),
    (
        RESP_MIX,
        "MIX",
        "n u32, then n x (opcode u16, count f64 bits) (all LE)",
    ),
    (
        RESP_STATS,
        "STATS",
        "shards u32, counts_frames u64, window_frames u64, sources u32, store_bytes u64, \
         parked_conns u32, n u32, then n x (queue_depth u32, queue_high_water u32) (all LE)",
    ),
    (
        RESP_EPOCHS,
        "EPOCHS",
        "n u32, then n x (epoch u32, counts_frames u32, ebs_samples u64, lbr_samples u64) (all LE)",
    ),
    (
        RESP_METRICS,
        "METRICS",
        "self-describing metrics snapshot (see docs/OBSERVABILITY.md)",
    ),
    (RESP_ERR, "ERR", "UTF-8 error message"),
];

/// The op listing as printed by `hbbp serve --help` and `hbbpd --help`
/// (one aligned line per op), generated from [`PROTOCOL_OPS`].
pub fn protocol_listing() -> String {
    let line = |left: &str, mid: &str, right: &str| format!("  {left:<19} {mid:<35} -> {right}\n");
    let mut out = String::new();
    for op in PROTOCOL_OPS {
        let left = match op.request {
            "empty" => op.name.to_owned(),
            _ if op.code == OP_STREAM => format!("{}(source u32)", op.name),
            _ if op.code == OP_QUERY_TOP => format!("{}(k u32)", op.name),
            _ if op.code == OP_DRIFT => format!("{}(a, b, k u32)", op.name),
            _ => op.name.to_owned(),
        };
        let mid = match op.code {
            OP_STREAM => "+ perf byte stream, then half-close".to_owned(),
            _ => op.summary.to_owned(),
        };
        out.push_str(&line(&left, &mid, op.reply));
    }
    out
}

/// The request/reply tables of `docs/PROTOCOL.md`, as markdown —
/// generated here and pinned against the document by
/// `crates/store/tests/protocol_doc.rs`.
pub fn protocol_tables() -> String {
    let mut out = String::new();
    out.push_str("| op | code | request payload | reply | summary |\n");
    out.push_str("|---|---|---|---|---|\n");
    for op in PROTOCOL_OPS {
        out.push_str(&format!(
            "| `{}` | {} | {} | `{}` | {} |\n",
            op.name, op.code, op.request, op.reply, op.summary
        ));
    }
    out.push('\n');
    out.push_str("| reply | code | payload |\n");
    out.push_str("|---|---|---|\n");
    for (code, name, payload) in PROTOCOL_REPLIES {
        out.push_str(&format!("| `{name}` | {code} | {payload} |\n"));
    }
    out
}

/// Errors speaking the daemon protocol.
#[derive(Debug)]
pub enum WireError {
    /// Socket I/O failed.
    Io(std::io::Error),
    /// The peer sent something that is not protocol.
    Protocol(String),
    /// The daemon refused the operation ([`RESP_ERR`]).
    Daemon(String),
    /// Collection failed while streaming a live session.
    Record(RecordError),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "wire I/O error: {e}"),
            WireError::Protocol(m) => write!(f, "protocol violation: {m}"),
            WireError::Daemon(m) => write!(f, "daemon error: {m}"),
            WireError::Record(e) => write!(f, "collection failed: {e}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> WireError {
        WireError::Io(e)
    }
}

impl From<RecordError> for WireError {
    fn from(e: RecordError) -> WireError {
        WireError::Record(e)
    }
}

/// Write one `op | len | payload` message.
pub(crate) fn write_msg(w: &mut impl Write, op: u8, payload: &[u8]) -> std::io::Result<()> {
    w.write_all(&[op])?;
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Read one `op | len | payload` message. `Ok(None)` on a clean EOF
/// before any header byte.
pub(crate) fn read_msg(r: &mut impl Read) -> Result<Option<(u8, Vec<u8>)>, WireError> {
    let mut header = [0u8; 5];
    let mut got = 0;
    while got < header.len() {
        let n = r.read(&mut header[got..])?;
        if n == 0 {
            if got == 0 {
                return Ok(None);
            }
            return Err(WireError::Protocol("message header cut short".into()));
        }
        got += n;
    }
    let op = header[0];
    let len = u32::from_le_bytes(header[1..5].try_into().expect("4 length bytes")) as usize;
    if len > MAX_MSG_LEN {
        return Err(WireError::Protocol(format!("message of {len} bytes")));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)
        .map_err(|e| WireError::Protocol(format!("message payload cut short: {e}")))?;
    Ok(Some((op, payload)))
}

/// Encode a mix as `(opcode u16, f64 bits)` entries.
pub(crate) fn encode_mix(entries: &[(Mnemonic, f64)]) -> Vec<u8> {
    let mut buf = BytesMut::new();
    buf.put_u32_le(entries.len() as u32);
    for (m, c) in entries {
        buf.put_u16_le(m.opcode());
        buf.put_u64_le(c.to_bits());
    }
    buf.to_vec()
}

pub(crate) fn decode_mix_entries(mut p: &[u8]) -> Result<Vec<(Mnemonic, f64)>, WireError> {
    let bad = |m: &str| WireError::Protocol(m.into());
    if p.remaining() < 4 {
        return Err(bad("mix reply too short"));
    }
    let n = p.get_u32_le() as usize;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        if p.remaining() < 10 {
            return Err(bad("mix entry cut short"));
        }
        let opcode = p.get_u16_le();
        let mnemonic = Mnemonic::from_opcode(opcode)
            .ok_or_else(|| bad(&format!("unknown mnemonic opcode {opcode}")))?;
        out.push((mnemonic, f64::from_bits(p.get_u64_le())));
    }
    Ok(out)
}

/// What the daemon reports after ingesting one stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngestReply {
    /// Records decoded from the wire.
    pub records: u64,
    /// Profiled samples analyzed.
    pub samples: u64,
    /// Window timeline records this stream flushed into the store.
    pub windows_flushed: u32,
    /// Sequence number the recording's counts frame received.
    pub counts_seq: u32,
}

/// One shard's writer-queue occupancy, as reported by [`OP_STATS`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardQueueDepth {
    /// Messages currently queued for the shard's writer thread.
    pub current: u32,
    /// Deepest the queue has ever been.
    pub high_water: u32,
}

/// Daemon/store statistics ([`OP_STATS`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DaemonStats {
    /// Store partitions (shards).
    pub shards: u32,
    /// Counts frames across all partitions.
    pub counts_frames: u64,
    /// Window timeline frames across all partitions.
    pub window_frames: u64,
    /// Distinct source ids seen.
    pub sources: u32,
    /// Total bytes across all partition logs.
    pub store_bytes: u64,
    /// Connections currently parked on writer-queue backpressure (see
    /// `docs/DAEMON.md`); zero when the daemon runs without metrics.
    pub parked_connections: u32,
    /// Per-shard writer queue occupancy, one entry per shard in shard
    /// order; zeros when the daemon runs without metrics.
    pub writer_queues: Vec<ShardQueueDepth>,
}

pub(crate) fn encode_ingest(reply: &IngestReply) -> Vec<u8> {
    let mut buf = BytesMut::new();
    buf.put_u64_le(reply.records);
    buf.put_u64_le(reply.samples);
    buf.put_u32_le(reply.windows_flushed);
    buf.put_u32_le(reply.counts_seq);
    buf.to_vec()
}

/// Encode an `EPOCHS` reply from per-epoch accounting (ascending epoch).
pub(crate) fn encode_epochs(entries: &[EpochStats]) -> Vec<u8> {
    let mut buf = BytesMut::new();
    buf.put_u32_le(entries.len() as u32);
    for e in entries {
        buf.put_u32_le(e.epoch);
        buf.put_u32_le(e.counts_frames);
        buf.put_u64_le(e.ebs_samples);
        buf.put_u64_le(e.lbr_samples);
    }
    buf.to_vec()
}

pub(crate) fn decode_epoch_entries(mut p: &[u8]) -> Result<Vec<EpochStats>, WireError> {
    let bad = |m: &str| WireError::Protocol(m.into());
    if p.remaining() < 4 {
        return Err(bad("epochs reply too short"));
    }
    let n = p.get_u32_le() as usize;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        if p.remaining() < 24 {
            return Err(bad("epoch entry cut short"));
        }
        out.push(EpochStats {
            epoch: p.get_u32_le(),
            counts_frames: p.get_u32_le(),
            ebs_samples: p.get_u64_le(),
            lbr_samples: p.get_u64_le(),
        });
    }
    Ok(out)
}

pub(crate) fn encode_stats(stats: &DaemonStats) -> Vec<u8> {
    let mut buf = BytesMut::new();
    buf.put_u32_le(stats.shards);
    buf.put_u64_le(stats.counts_frames);
    buf.put_u64_le(stats.window_frames);
    buf.put_u32_le(stats.sources);
    buf.put_u64_le(stats.store_bytes);
    buf.put_u32_le(stats.parked_connections);
    buf.put_u32_le(stats.writer_queues.len() as u32);
    for q in &stats.writer_queues {
        buf.put_u32_le(q.current);
        buf.put_u32_le(q.high_water);
    }
    buf.to_vec()
}

/// A client of a running `hbbpd` daemon. Stateless: every operation opens
/// its own connection, so one client value can be shared across threads.
#[derive(Debug, Clone, Copy)]
pub struct StoreClient {
    addr: SocketAddr,
}

impl StoreClient {
    /// A client of the daemon at `addr`.
    pub fn new(addr: SocketAddr) -> StoreClient {
        StoreClient { addr }
    }

    /// The daemon address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    fn request(&self, op: u8, payload: &[u8]) -> Result<(u8, Vec<u8>), WireError> {
        let mut stream = TcpStream::connect(self.addr)?;
        write_msg(&mut stream, op, payload)?;
        stream.shutdown(Shutdown::Write)?;
        self.reply(&mut stream)
    }

    fn reply(&self, stream: &mut TcpStream) -> Result<(u8, Vec<u8>), WireError> {
        let (op, payload) =
            read_msg(stream)?.ok_or_else(|| WireError::Protocol("daemon closed early".into()))?;
        if op == RESP_ERR {
            return Err(WireError::Daemon(
                String::from_utf8_lossy(&payload).into_owned(),
            ));
        }
        Ok((op, payload))
    }

    fn expect(&self, got: u8, want: u8) -> Result<(), WireError> {
        if got == want {
            Ok(())
        } else {
            Err(WireError::Protocol(format!(
                "expected reply {want}, got {got}"
            )))
        }
    }

    fn decode_ingest(&self, op: u8, mut p: &[u8]) -> Result<IngestReply, WireError> {
        self.expect(op, RESP_INGESTED)?;
        if p.remaining() < 24 {
            return Err(WireError::Protocol("ingest reply too short".into()));
        }
        Ok(IngestReply {
            records: p.get_u64_le(),
            samples: p.get_u64_le(),
            windows_flushed: p.get_u32_le(),
            counts_seq: p.get_u32_le(),
        })
    }

    /// Stream pre-encoded perf bytes (the `codec::write` format) as
    /// `source`.
    ///
    /// # Errors
    ///
    /// Socket failures, protocol violations, or a daemon-side rejection
    /// (e.g. a corrupt stream).
    pub fn stream_bytes(&self, source: u32, bytes: &[u8]) -> Result<IngestReply, WireError> {
        let mut stream = TcpStream::connect(self.addr)?;
        write_msg(&mut stream, OP_STREAM, &source.to_le_bytes())?;
        stream.write_all(bytes)?;
        stream.flush()?;
        stream.shutdown(Shutdown::Write)?;
        let (op, payload) = self.reply(&mut stream)?;
        self.decode_ingest(op, &payload)
    }

    /// Encode and stream an in-memory recording as `source`.
    ///
    /// # Errors
    ///
    /// Same as [`StoreClient::stream_bytes`].
    pub fn stream_data(&self, source: u32, data: &PerfData) -> Result<IngestReply, WireError> {
        self.stream_bytes(source, &hbbp_perf::codec::write(data))
    }

    /// Collect a live session straight onto the daemon socket — no
    /// in-memory recording at any point: the session encodes each record
    /// onto the wire as it is produced
    /// ([`PerfSession::record_to_sink`]).
    ///
    /// # Errors
    ///
    /// Collection errors ([`RecordError`]) plus everything
    /// [`StoreClient::stream_bytes`] can return.
    pub fn stream_session(
        &self,
        source: u32,
        session: &PerfSession,
        workload: &Workload,
    ) -> Result<(hbbp_sim::RunResult, IngestReply), WireError> {
        let mut stream = TcpStream::connect(self.addr)?;
        write_msg(&mut stream, OP_STREAM, &source.to_le_bytes())?;
        let (run, _) = session.record_to_sink(
            workload.program(),
            workload.layout(),
            workload.oracle(),
            &mut stream,
        )?;
        stream.shutdown(Shutdown::Write)?;
        let (op, payload) = self.reply(&mut stream)?;
        Ok((run, self.decode_ingest(op, &payload)?))
    }

    /// The aggregate instruction mix over everything the daemon has
    /// stored, derived from the canonical fold of all counts frames.
    ///
    /// # Errors
    ///
    /// Socket failures, protocol violations, or a daemon-side rejection.
    pub fn query_mix(&self) -> Result<MnemonicMix, WireError> {
        let (op, payload) = self.request(OP_QUERY_MIX, &[])?;
        self.expect(op, RESP_MIX)?;
        Ok(decode_mix_entries(&payload)?.into_iter().collect())
    }

    /// The `k` most-executed mnemonics of the aggregate mix, descending.
    ///
    /// # Errors
    ///
    /// Socket failures, protocol violations, or a daemon-side rejection.
    pub fn query_top(&self, k: u32) -> Result<Vec<(Mnemonic, f64)>, WireError> {
        let (op, payload) = self.request(OP_QUERY_TOP, &k.to_le_bytes())?;
        self.expect(op, RESP_MIX)?;
        decode_mix_entries(&payload)
    }

    /// The store's epochs with per-epoch accounting, ascending, combined
    /// across all partitions.
    ///
    /// # Errors
    ///
    /// Socket failures, protocol violations, or a daemon-side rejection.
    pub fn query_epochs(&self) -> Result<Vec<EpochStats>, WireError> {
        let (op, payload) = self.request(OP_EPOCHS, &[])?;
        self.expect(op, RESP_EPOCHS)?;
        decode_epoch_entries(&payload)
    }

    /// The `k` largest mix movers from epoch `from` to epoch `to`,
    /// descending by `|delta|` (ties: ascending opcode). Each count is
    /// the **signed** `current − baseline` delta of the two epochs'
    /// canonical folds, bit-identical to an offline
    /// [`hbbp_core::MixDrift`] recompute over the same counts.
    ///
    /// # Errors
    ///
    /// Socket failures, protocol violations, or a daemon-side rejection
    /// (e.g. an epoch the store does not hold).
    pub fn query_drift(
        &self,
        from: u32,
        to: u32,
        k: u32,
    ) -> Result<Vec<(Mnemonic, f64)>, WireError> {
        let mut payload = Vec::with_capacity(12);
        payload.extend_from_slice(&from.to_le_bytes());
        payload.extend_from_slice(&to.to_le_bytes());
        payload.extend_from_slice(&k.to_le_bytes());
        let (op, payload) = self.request(OP_DRIFT, &payload)?;
        self.expect(op, RESP_MIX)?;
        decode_mix_entries(&payload)
    }

    /// Daemon/store statistics.
    ///
    /// # Errors
    ///
    /// Socket failures, protocol violations, or a daemon-side rejection.
    pub fn stats(&self) -> Result<DaemonStats, WireError> {
        let (op, payload) = self.request(OP_STATS, &[])?;
        self.expect(op, RESP_STATS)?;
        let p = &mut payload.as_slice();
        if p.remaining() < 40 {
            return Err(WireError::Protocol("stats reply too short".into()));
        }
        let mut stats = DaemonStats {
            shards: p.get_u32_le(),
            counts_frames: p.get_u64_le(),
            window_frames: p.get_u64_le(),
            sources: p.get_u32_le(),
            store_bytes: p.get_u64_le(),
            parked_connections: p.get_u32_le(),
            writer_queues: Vec::new(),
        };
        let n = p.get_u32_le() as usize;
        if p.remaining() < n * 8 {
            return Err(WireError::Protocol("stats queue entries cut short".into()));
        }
        for _ in 0..n {
            stats.writer_queues.push(ShardQueueDepth {
                current: p.get_u32_le(),
                high_water: p.get_u32_le(),
            });
        }
        Ok(stats)
    }

    /// The daemon's full self-observability snapshot ([`OP_METRICS`]).
    ///
    /// # Errors
    ///
    /// Socket failures, protocol violations (including a malformed
    /// snapshot payload), or a daemon-side rejection.
    pub fn query_metrics(&self) -> Result<hbbp_obs::Snapshot, WireError> {
        let (op, payload) = self.request(OP_METRICS, &[])?;
        self.expect(op, RESP_METRICS)?;
        hbbp_obs::Snapshot::decode(&payload).map_err(|e| WireError::Protocol(e.to_string()))
    }

    /// Ask every partition to compact its log.
    ///
    /// # Errors
    ///
    /// Socket failures, protocol violations, or a daemon-side rejection.
    pub fn compact(&self) -> Result<(), WireError> {
        let (op, _) = self.request(OP_COMPACT, &[])?;
        self.expect(op, RESP_OK)
    }

    /// Ask the daemon to stop accepting connections and exit.
    ///
    /// # Errors
    ///
    /// Socket failures or protocol violations.
    pub fn shutdown(&self) -> Result<(), WireError> {
        let (op, _) = self.request(OP_SHUTDOWN, &[])?;
        self.expect(op, RESP_OK)
    }
}

//! Fleet-scale differential tests: store merge vs batch analysis, and the
//! `hbbpd` loopback acceptance scenario — N concurrent clients streaming
//! phased workloads into one daemon, whose queried aggregate mix must be
//! **bit-identical** to the single-process batch analysis of the union
//! (the canonical `(source, seq)`-ordered fold of per-recording
//! `Analyzer::analyze_fused` results).

use hbbp_core::{Analyzer, HybridRule, SamplingPeriods, Window};
use hbbp_perf::{PerfData, PerfSession, Recording};
use hbbp_program::{Bbec, ImageView};
use hbbp_sim::Cpu;
use hbbp_store::{DaemonConfig, ProfileStore, StoreIdentity};
use hbbp_workloads::{phased_client, Scale, Workload};
use std::path::PathBuf;

const PERIODS: SamplingPeriods = SamplingPeriods {
    ebs: 1009,
    lbr: 211,
};

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hbbp-fleet-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("tmp dir");
    dir
}

/// One fleet client: the shared phased binary run under this client's
/// shape and hardware seed.
fn client_recording(client: u32) -> (Workload, Recording) {
    let w = phased_client(Scale::Tiny, client);
    let session = PerfSession::hbbp(
        Cpu::with_seed(100 + u64::from(client)),
        PERIODS.ebs,
        PERIODS.lbr,
    )
    .with_pid(1000 + client);
    let rec = session
        .record(w.program(), w.layout(), w.oracle())
        .expect("recording");
    (w, rec)
}

fn analyzer_for(w: &Workload) -> Analyzer {
    Analyzer::from_images(&w.images(ImageView::Disk), w.layout().symbols()).expect("discovery")
}

/// The single-process reference: fold per-recording batch analyses in
/// source order.
fn batch_fold(analyzer: &Analyzer, recordings: &[&PerfData]) -> Bbec {
    let rule = HybridRule::paper_default();
    let mut acc = Bbec::new();
    for data in recordings {
        let analysis = analyzer.analyze_fused(data, PERIODS, &rule);
        acc.merge(&analysis.hbbp.bbec);
    }
    acc
}

fn assert_bbec_bit_identical(got: &Bbec, want: &Bbec, what: &str) {
    assert_eq!(got.len(), want.len(), "{what}: entry counts differ");
    for (addr, count) in want.iter() {
        assert_eq!(
            got.get(addr).to_bits(),
            count.to_bits(),
            "{what}: block {addr:#x} differs"
        );
    }
}

#[test]
fn merged_stores_match_the_batch_fold_bit_identically() {
    let dir = tmp_dir("merge");
    let (w0, rec0) = client_recording(0);
    let (_w1, rec1) = client_recording(1);
    let analyzer = analyzer_for(&w0);
    let identity = StoreIdentity::of_workload(&w0, analyzer.map());
    let rule = HybridRule::paper_default();

    // Each store ingests one client's batch analysis.
    let mut store_a =
        ProfileStore::open_with_identity(dir.join("a.hbbp"), identity.clone()).unwrap();
    let mut store_b = ProfileStore::open_with_identity(dir.join("b.hbbp"), identity).unwrap();
    let a0 = analyzer.analyze_fused(&rec0.data, PERIODS, &rule);
    let a1 = analyzer.analyze_fused(&rec1.data, PERIODS, &rule);
    store_a
        .append_counts(0, 0, 0, a0.hbbp.bbec.clone())
        .unwrap();
    store_b
        .append_counts(1, 0, 0, a1.hbbp.bbec.clone())
        .unwrap();

    // merge(store_a, store_b) aggregates bit-identically to the fold of
    // the batch analyses over the individual recordings.
    store_a.merge_from(&store_b.snapshot()).unwrap();
    let want = batch_fold(&analyzer, &[&rec0.data, &rec1.data]);
    assert_bbec_bit_identical(&store_a.aggregate(), &want, "merged aggregate");

    // ... and the derived mixes agree bitwise too.
    assert_eq!(analyzer.mix(&store_a.aggregate()), analyzer.mix(&want));

    // Reopening the merged store from disk preserves the property: the
    // fold crossed the file bit-exactly.
    drop(store_a);
    let reopened = ProfileStore::open(dir.join("a.hbbp")).unwrap();
    assert_bbec_bit_identical(&reopened.aggregate(), &want, "reopened aggregate");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn profile_fold_agrees_with_concatenated_recording_analysis_on_ebs() {
    // Semantic sanity for the fold: the EBS estimator is linear in its
    // integer sample tallies, so analyzing the literal concatenation of
    // two recordings must agree with the fold of per-recording analyses
    // to float tolerance (the hybrid combine then only reroutes those
    // values per block).
    let (w0, rec0) = client_recording(0);
    let (_w1, rec1) = client_recording(1);
    let analyzer = analyzer_for(&w0);
    let rule = HybridRule::paper_default();
    let mut concat = PerfData::new();
    for r in rec0.data.records().iter().chain(rec1.data.records()) {
        concat.push(r.clone());
    }
    let whole = analyzer.analyze_fused(&concat, PERIODS, &rule);
    let a0 = analyzer.analyze_fused(&rec0.data, PERIODS, &rule);
    let a1 = analyzer.analyze_fused(&rec1.data, PERIODS, &rule);
    let mut fold = a0.ebs.bbec.clone();
    fold.merge(&a1.ebs.bbec);
    assert_eq!(fold.len(), whole.ebs.bbec.len());
    for (addr, count) in whole.ebs.bbec.iter() {
        let got = fold.get(addr);
        assert!(
            (got - count).abs() <= count.abs() * 1e-12,
            "EBS at {addr:#x}: fold {got} vs concat {count}"
        );
    }
}

#[test]
fn daemon_loopback_four_concurrent_clients_bit_identical_aggregate() {
    const CLIENTS: u32 = 5;
    let dir = tmp_dir("daemon");
    let clients: Vec<(Workload, Recording)> = (0..CLIENTS).map(client_recording).collect();
    let analyzer = analyzer_for(&clients[0].0);
    let identity = StoreIdentity::of_workload(&clients[0].0, analyzer.map());

    let handle = hbbp_store::spawn(DaemonConfig {
        analyzer: analyzer_for(&clients[0].0),
        identity,
        periods: PERIODS,
        rule: HybridRule::paper_default(),
        window: Some(Window::Samples(256)),
        shards: 4,
        dir: dir.clone(),
        workers: 0,
        queue_depth: 0,
        metrics: true,
    })
    .expect("daemon");
    let client = handle.client();

    // All clients stream concurrently: odd sources collect LIVE onto the
    // socket (record_to_sink), even sources replay their recording bytes.
    std::thread::scope(|scope| {
        let mut joins = Vec::new();
        for (source, (w, rec)) in clients.iter().enumerate() {
            let source = source as u32;
            joins.push(scope.spawn(move || {
                let reply = if source % 2 == 1 {
                    let session = PerfSession::hbbp(
                        Cpu::with_seed(100 + u64::from(source)),
                        PERIODS.ebs,
                        PERIODS.lbr,
                    )
                    .with_pid(1000 + source);
                    client
                        .stream_session(source, &session, w)
                        .expect("live stream")
                        .1
                } else {
                    client
                        .stream_data(source, &rec.data)
                        .expect("replay stream")
                };
                assert_eq!(reply.records, rec.data.len() as u64, "source {source}");
                assert_eq!(reply.counts_seq, 0, "source {source}");
                assert!(reply.windows_flushed > 0, "source {source}");
            }));
        }
        for j in joins {
            j.join().expect("client thread");
        }
    });

    // The acceptance check: queried aggregate mix ≡ single-process batch
    // analysis of the union, bit for bit.
    let recordings: Vec<&PerfData> = clients.iter().map(|(_, r)| &r.data).collect();
    let want_bbec = batch_fold(&analyzer, &recordings);
    let want_mix = analyzer.mix(&want_bbec);
    let got_mix = client.query_mix().expect("mix query");
    assert_eq!(got_mix, want_mix, "aggregate mix must be bit-identical");

    let got_top = client.query_top(5).expect("top query");
    assert_eq!(got_top, want_mix.top(5));

    let stats = client.stats().expect("stats");
    assert_eq!(stats.shards, 4);
    assert_eq!(stats.counts_frames, u64::from(CLIENTS));
    assert_eq!(stats.sources, CLIENTS);
    assert!(stats.window_frames > 0, "timeline records were flushed");
    assert!(stats.store_bytes > 0);

    // Compaction folds **per partition** (each partition's fold is
    // preserved bit-exactly), so the post-compact global aggregate is the
    // deterministic partition-grouped regrouping of the same sum: fold
    // each partition's sources in (source, seq) order, then fold the
    // partition results in partition order.
    client.compact().expect("compact");
    let mut want_after = Bbec::new();
    for part in 0..4u32 {
        let mut part_fold = Bbec::new();
        for source in 0..CLIENTS {
            if source % 4 == part {
                let analysis = analyzer.analyze_fused(
                    &clients[source as usize].1.data,
                    PERIODS,
                    &HybridRule::paper_default(),
                );
                part_fold.merge(&analysis.hbbp.bbec);
            }
        }
        want_after.merge(&part_fold);
    }
    assert_eq!(
        client.query_mix().expect("mix after compact"),
        analyzer.mix(&want_after),
        "compacted aggregate is the partition-grouped fold, bit for bit"
    );
    let after = client.stats().expect("stats after compact");
    assert_eq!(after.counts_frames, 4, "one fold frame per partition");
    assert!(after.store_bytes <= stats.store_bytes);

    handle.shutdown().expect("shutdown");

    // The partition files survive the daemon: a cold re-open (with a torn
    // tail simulated on one of them) recovers every complete frame.
    let part0 = dir.join("part-0.hbbp");
    let before = ProfileStore::open(&part0).unwrap();
    let frames_before = before.counts().len() + before.windows().len();
    assert!(frames_before > 0);
    drop(before);
    // The compacted log ends in a 13-byte EPOCH seal marker; tear through
    // it into the last data frame so exactly one data frame is clipped.
    let mut bytes = std::fs::read(&part0).unwrap();
    let torn = bytes.len() - 16;
    bytes.truncate(torn);
    bytes.extend_from_slice(&[0xAB; 2]); // torn rewrite: garbage tail
    std::fs::write(&part0, &bytes).unwrap();
    let recovered = ProfileStore::open(&part0).unwrap();
    assert!(recovered.open_report().truncated_bytes > 0);
    assert_eq!(
        recovered.counts().len() + recovered.windows().len(),
        frames_before - 1,
        "exactly the torn frame is lost"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn daemon_rejects_garbage_streams_without_storing_anything() {
    let dir = tmp_dir("garbage");
    let (w, rec) = client_recording(0);
    let analyzer = analyzer_for(&w);
    let identity = StoreIdentity::of_workload(&w, analyzer.map());
    let handle = hbbp_store::spawn(DaemonConfig {
        analyzer,
        identity,
        periods: PERIODS,
        rule: HybridRule::paper_default(),
        window: None,
        shards: 2,
        dir: dir.clone(),
        workers: 0,
        queue_depth: 0,
        metrics: true,
    })
    .expect("daemon");
    let client = handle.client();

    // Not a perf stream at all.
    let err = client.stream_bytes(9, b"NOT A PERF STREAM").unwrap_err();
    assert!(matches!(err, hbbp_store::WireError::Daemon(_)), "{err}");
    // A truncated valid stream (client died mid-frame).
    let bytes = hbbp_perf::codec::write(&rec.data);
    let err = client
        .stream_bytes(9, &bytes[..bytes.len() - 5])
        .unwrap_err();
    assert!(matches!(err, hbbp_store::WireError::Daemon(_)), "{err}");
    let stats = client.stats().expect("stats");
    assert_eq!(stats.counts_frames, 0, "failed streams contribute nothing");

    // The daemon still serves: a valid stream goes through afterwards.
    let reply = client.stream_bytes(9, &bytes).expect("valid stream");
    assert_eq!(reply.records, rec.data.len() as u64);
    handle.shutdown().expect("shutdown");
    let _ = std::fs::remove_dir_all(&dir);
}

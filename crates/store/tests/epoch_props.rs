//! Tiered-compaction properties: whatever the epoch structure, and
//! whatever happens to the file afterwards, the per-epoch aggregates and
//! the global fold survive `compact()` **bit-exactly** — compaction may
//! regroup segments, but only within an epoch, never across one.

use hbbp_program::Bbec;
use hbbp_program::Ring;
use hbbp_store::{ModuleSpan, ProfileStore, Snapshot, StoreIdentity};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

static NEXT_FILE: AtomicU64 = AtomicU64::new(0);

fn tmp() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hbbp-epoch-props-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    dir.join(format!(
        "case-{}.hbbp",
        NEXT_FILE.fetch_add(1, Ordering::Relaxed)
    ))
}

fn identity() -> StoreIdentity {
    StoreIdentity {
        program: "epochs".into(),
        block_count: 64,
        modules: vec![ModuleSpan {
            name: "epochs.bin".into(),
            base: 0x400000,
            len: 0x4000,
            ring: Ring::User,
        }],
    }
}

/// One counts frame: source + (addr step, count bits) entries. Counts
/// use bit patterns with no short decimal form so that equality implies
/// bit-exact folding.
type CountsSpec = (u8, Vec<(u8, u64)>);

fn bbec_from(entries: &[(u8, u64)]) -> Bbec {
    let mut bbec = Bbec::new();
    for &(addr_step, count_bits) in entries {
        let addr = 0x400000 + u64::from(addr_step) * 4;
        bbec.set(
            addr,
            f64::from_bits(0x3FF0_0000_0000_0000 | (count_bits >> 12)),
        );
    }
    bbec
}

/// Epoch groups: each inner vec is one epoch's appends, separated by
/// `advance_epoch`. Overlapping addr steps across epochs are the point —
/// they expose any cross-epoch refolding.
fn arb_epochs() -> impl Strategy<Value = Vec<Vec<CountsSpec>>> {
    proptest::collection::vec(
        proptest::collection::vec(
            (
                0u8..5,
                proptest::collection::vec((0u8..24, any::<u64>()), 1..6),
            ),
            0..5,
        ),
        1..5,
    )
}

/// Build a multi-epoch store; the final epoch is left open (no trailing
/// `advance_epoch`), matching how a live store looks.
fn build(groups: &[Vec<CountsSpec>]) -> (PathBuf, ProfileStore) {
    let path = tmp();
    let _ = std::fs::remove_file(&path);
    let mut store = ProfileStore::open_with_identity(&path, identity()).expect("create");
    for (i, group) in groups.iter().enumerate() {
        if i > 0 {
            store.advance_epoch().expect("advance");
        }
        for (source, entries) in group {
            store
                .append_counts(u32::from(*source), 3, 2, bbec_from(entries))
                .expect("append");
        }
    }
    (path, store)
}

/// Every epoch's canonical fold, bit-tagged for exact comparison.
fn epoch_folds(snap: &Snapshot) -> BTreeMap<u32, Vec<(u64, u64)>> {
    snap.epochs()
        .into_iter()
        .map(|e| {
            let fold = snap.epoch_aggregate(e);
            let mut entries: Vec<(u64, u64)> = fold.iter().map(|(a, c)| (a, c.to_bits())).collect();
            entries.sort_unstable();
            (e, entries)
        })
        .collect()
}

fn global_fold(snap: &Snapshot) -> Vec<(u64, u64)> {
    let fold = snap.aggregate();
    let mut entries: Vec<(u64, u64)> = fold.iter().map(|(a, c)| (a, c.to_bits())).collect();
    entries.sort_unstable();
    entries
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Tiered compaction preserves every per-epoch aggregate and the
    /// global fold bit-exactly, through the rewrite and a reopen.
    #[test]
    fn tiered_compaction_preserves_per_epoch_folds(groups in arb_epochs()) {
        let (path, mut store) = build(&groups);
        let before = store.snapshot();
        let want_epochs = epoch_folds(&before);
        let want_global = global_fold(&before);

        store.compact().expect("compact");
        let after = store.snapshot();
        prop_assert_eq!(&epoch_folds(&after), &want_epochs);
        prop_assert_eq!(&global_fold(&after), &want_global);
        // One fold frame per epoch that had counts.
        prop_assert_eq!(store.counts().len(), want_epochs.len());
        // Compaction seals: if anything was stored, the live epoch is new.
        if !want_epochs.is_empty() {
            prop_assert!(
                !after.epochs().contains(&store.current_epoch()),
                "current epoch {} must be freshly sealed",
                store.current_epoch()
            );
        }

        drop(store);
        let reopened = ProfileStore::open(&path).expect("reopen");
        prop_assert_eq!(reopened.open_report().truncated_bytes, 0);
        let snap = reopened.snapshot();
        prop_assert_eq!(&epoch_folds(&snap), &want_epochs);
        prop_assert_eq!(&global_fold(&snap), &want_global);
        std::fs::remove_file(&path).ok();
    }

    /// Compact twice (with appends in between): still bit-stable per
    /// epoch — re-folding a fold is the identity.
    #[test]
    fn recompaction_is_bit_stable(groups in arb_epochs(), extra in proptest::collection::vec((0u8..5, proptest::collection::vec((0u8..24, any::<u64>()), 1..4)), 0..4)) {
        let (path, mut store) = build(&groups);
        store.compact().expect("compact");
        for (source, entries) in &extra {
            store
                .append_counts(u32::from(*source), 3, 2, bbec_from(entries))
                .expect("append after seal");
        }
        let want_epochs = epoch_folds(&store.snapshot());
        let want_global = global_fold(&store.snapshot());
        store.compact().expect("recompact");
        prop_assert_eq!(&epoch_folds(&store.snapshot()), &want_epochs);
        prop_assert_eq!(&global_fold(&store.snapshot()), &want_global);
        std::fs::remove_file(&path).ok();
    }

    /// Truncate a compacted log anywhere: recovery keeps an intact frame
    /// prefix, and every epoch fold that survives is bit-identical to the
    /// pre-damage fold of that epoch.
    #[test]
    fn truncated_compacted_logs_keep_exact_epoch_prefixes(
        groups in arb_epochs(),
        cut_frac in 0.0f64..1.0,
    ) {
        let (path, mut store) = build(&groups);
        let want_epochs = epoch_folds(&store.snapshot());
        store.compact().expect("compact");
        drop(store);

        let bytes = std::fs::read(&path).expect("read back");
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        std::fs::write(&path, &bytes[..cut.min(bytes.len())]).expect("truncate");

        let recovered = ProfileStore::open(&path).expect("recovery never errors");
        let snap = recovered.snapshot();
        // Fold frames are written in ascending epoch order, so the
        // surviving epochs are a prefix of the originals — each one
        // bit-identical.
        let survived = epoch_folds(&snap);
        let mut originals = want_epochs.iter();
        for (epoch, fold) in &survived {
            let (want_epoch, want_fold) = originals.next().expect("prefix");
            prop_assert_eq!(epoch, want_epoch);
            prop_assert_eq!(fold, want_fold);
        }
        std::fs::remove_file(&path).ok();
    }
}

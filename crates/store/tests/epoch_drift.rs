//! Epoch-history loopback acceptance: two epochs with shifted
//! instruction mixes are ingested through a live daemon, and the `DRIFT`
//! reply must be **bit-identical** to an offline [`MixDrift`] recompute
//! over the two epochs' `analyze_fused` folds. Also pins the `EPOCHS`
//! listing, the unknown-epoch rejection, and the daemon-side reservation
//! of the compacted source id.

use hbbp_core::{Analyzer, HybridRule, MixDrift, SamplingPeriods, Window};
use hbbp_perf::{PerfSession, Recording};
use hbbp_program::{Bbec, ImageView};
use hbbp_sim::Cpu;
use hbbp_store::{DaemonConfig, StoreIdentity, WireError};
use hbbp_workloads::{phased_client, Scale, Workload};
use std::path::PathBuf;

const PERIODS: SamplingPeriods = SamplingPeriods {
    ebs: 1009,
    lbr: 211,
};

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hbbp-epoch-drift-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("tmp dir");
    dir
}

/// One client recording: the shared phased binary under this client's
/// shape and hardware seed — different clients exercise visibly
/// different phase mixtures, which is exactly the "shifted mix" the
/// drift query exists to expose.
fn client_recording(client: u32) -> (Workload, Recording) {
    let w = phased_client(Scale::Tiny, client);
    let session = PerfSession::hbbp(
        Cpu::with_seed(100 + u64::from(client)),
        PERIODS.ebs,
        PERIODS.lbr,
    )
    .with_pid(1000 + client);
    let rec = session
        .record(w.program(), w.layout(), w.oracle())
        .expect("recording");
    (w, rec)
}

fn analyzer_for(w: &Workload) -> Analyzer {
    Analyzer::from_images(&w.images(ImageView::Disk), w.layout().symbols()).expect("discovery")
}

#[test]
fn drift_reply_is_bit_identical_to_the_offline_fold_diff() {
    let dir = tmp_dir("loopback");
    // Sources 0,1 are epoch 0; sources 2,3 (different phase shapes) are
    // epoch 1. With 2 shards and `shard = source % shards`, shard order
    // equals source order within each epoch, so the offline reference is
    // the plain source-ordered fold.
    let clients: Vec<(Workload, Recording)> = (0..4).map(client_recording).collect();
    let analyzer = analyzer_for(&clients[0].0);
    let identity = StoreIdentity::of_workload(&clients[0].0, analyzer.map());
    let rule = HybridRule::paper_default();

    let handle = hbbp_store::spawn(DaemonConfig {
        analyzer: analyzer_for(&clients[0].0),
        identity,
        periods: PERIODS,
        rule: rule.clone(),
        window: Some(Window::Samples(256)),
        shards: 2,
        dir: dir.clone(),
        workers: 0,
        queue_depth: 0,
        metrics: false,
    })
    .expect("daemon");
    let client = handle.client();

    // A client picking the reserved compacted source id is refused at
    // ingest, before any bytes reach a shard writer.
    let err = client
        .stream_data(u32::MAX, &clients[0].1.data)
        .expect_err("reserved source must be rejected");
    assert_eq!(
        err.to_string(),
        "daemon error: source id 4294967295 is reserved for compacted records"
    );

    // Epoch 0: ingest, then COMPACT — which folds the tier and seals it.
    for source in 0..2u32 {
        client
            .stream_data(source, &clients[source as usize].1.data)
            .expect("epoch 0 ingest");
    }
    client.compact().expect("compact seals epoch 0");

    // Epoch 1: the shifted mix.
    for source in 2..4u32 {
        client
            .stream_data(source, &clients[source as usize].1.data)
            .expect("epoch 1 ingest");
    }

    // EPOCHS: both epochs listed, ascending, with sane accounting (one
    // fold frame per shard for the compacted epoch, one raw counts frame
    // per source for the live one).
    let epochs = client.query_epochs().expect("epochs");
    assert_eq!(epochs.len(), 2);
    assert_eq!((epochs[0].epoch, epochs[1].epoch), (0, 1));
    assert_eq!(epochs[0].counts_frames, 2, "one fold per shard");
    assert_eq!(epochs[1].counts_frames, 2, "one counts frame per source");
    assert!(epochs[0].ebs_samples > 0 && epochs[0].lbr_samples > 0);
    assert!(epochs[1].ebs_samples > 0 && epochs[1].lbr_samples > 0);

    // Offline reference: per-epoch canonical folds of the recordings'
    // batch analyses, diffed with the same MixDrift the daemon uses.
    let fold = |range: std::ops::Range<usize>| {
        let mut acc = Bbec::new();
        for i in range {
            acc.merge(
                &analyzer
                    .analyze_fused(&clients[i].1.data, PERIODS, &rule)
                    .hbbp
                    .bbec,
            );
        }
        acc
    };
    let baseline = analyzer.mix(&fold(0..2));
    let current = analyzer.mix(&fold(2..4));
    let offline = MixDrift::between(&baseline, &current);
    assert!(
        offline.divergence() > 0.0,
        "the two epochs must actually differ for this test to bite"
    );

    for k in [1u32, 5, 1000] {
        let got = client.query_drift(0, 1, k).expect("drift");
        let want = offline.top_movers(k as usize);
        assert_eq!(got.len(), want.len(), "k={k}");
        for ((gm, gd), row) in got.iter().zip(&want) {
            assert_eq!(*gm, row.mnemonic, "k={k}");
            assert_eq!(
                gd.to_bits(),
                row.delta.to_bits(),
                "k={k} {gm}: daemon delta must be bit-identical to offline"
            );
        }
    }

    // An epoch the store does not hold is a pinned daemon-side error.
    let err = client.query_drift(0, 9, 5).expect_err("unknown epoch");
    assert!(
        matches!(&err, WireError::Daemon(m) if m == "store has no epoch 9"),
        "{err}"
    );

    handle.shutdown().expect("shutdown");
    let _ = std::fs::remove_dir_all(&dir);
}

/// COMPACT must advance *every* shard's epoch, including shards that
/// were idle during the sealed epoch: epoch 0 here only ever touches
/// shard 1 (source 1 with 2 shards), and epoch 1 only shard 0
/// (source 2). If the idle shard didn't seal in lockstep, source 2's
/// frame would land in epoch 0 and the drift query would have nothing
/// to compare.
#[test]
fn sealing_advances_idle_shards_in_lockstep() {
    let dir = tmp_dir("idle-shard");
    let clients: Vec<(Workload, Recording)> = (0..3).map(client_recording).collect();
    let analyzer = analyzer_for(&clients[0].0);
    let identity = StoreIdentity::of_workload(&clients[0].0, analyzer.map());

    let handle = hbbp_store::spawn(DaemonConfig {
        analyzer: analyzer_for(&clients[0].0),
        identity,
        periods: PERIODS,
        rule: HybridRule::paper_default(),
        window: None,
        shards: 2,
        dir: dir.clone(),
        workers: 0,
        queue_depth: 0,
        metrics: false,
    })
    .expect("daemon");
    let client = handle.client();

    client
        .stream_data(1, &clients[1].1.data)
        .expect("epoch 0, shard 1 only");
    client.compact().expect("seal epoch 0");
    client
        .stream_data(2, &clients[2].1.data)
        .expect("epoch 1, shard 0 only");

    let epochs = client.query_epochs().expect("epochs");
    assert_eq!(
        epochs.iter().map(|e| e.epoch).collect::<Vec<_>>(),
        vec![0, 1],
        "the idle shard must seal with its siblings"
    );
    assert_eq!((epochs[0].counts_frames, epochs[1].counts_frames), (1, 1));
    let movers = client.query_drift(0, 1, 3).expect("drift across the seal");
    assert_eq!(movers.len(), 3);

    handle.shutdown().expect("shutdown");
    let _ = std::fs::remove_dir_all(&dir);
}

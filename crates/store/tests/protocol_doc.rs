//! Pins the generated section of `docs/PROTOCOL.md` to the protocol
//! tables in `hbbp_store::wire` (`PROTOCOL_OPS` / `PROTOCOL_REPLIES`),
//! so the spec cannot drift from the code — the same golden mechanism
//! as `docs/CLI.md`. Re-bless the section with
//! `BLESS=1 cargo test -p hbbp-store --test protocol_doc`.

use std::path::PathBuf;

const BEGIN: &str = "<!-- generated:protocol-tables:begin -->";
const END: &str = "<!-- generated:protocol-tables:end -->";

fn docs_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../docs/PROTOCOL.md")
}

#[test]
fn protocol_md_tables_match_the_wire_module() {
    let path = docs_path();
    let on_disk =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("missing docs/PROTOCOL.md ({e})"));
    let begin = on_disk
        .find(BEGIN)
        .expect("docs/PROTOCOL.md lost its generated-section begin marker");
    let end = on_disk
        .find(END)
        .expect("docs/PROTOCOL.md lost its generated-section end marker");
    assert!(begin < end, "markers out of order");
    let expected = hbbp_store::wire::protocol_tables();

    if std::env::var("BLESS").is_ok_and(|v| !v.is_empty() && v != "0") {
        let mut blessed = String::new();
        blessed.push_str(&on_disk[..begin + BEGIN.len()]);
        blessed.push('\n');
        blessed.push_str(&expected);
        blessed.push_str(&on_disk[end..]);
        std::fs::write(&path, blessed).unwrap();
        return;
    }

    let section = &on_disk[begin + BEGIN.len()..end];
    assert_eq!(
        section.trim_start_matches('\n'),
        expected,
        "docs/PROTOCOL.md tables drifted from wire::PROTOCOL_OPS/PROTOCOL_REPLIES; \
         regenerate with BLESS=1 cargo test -p hbbp-store --test protocol_doc"
    );
}

#[test]
fn protocol_md_documents_every_op_and_reply() {
    let on_disk = std::fs::read_to_string(docs_path()).expect("docs/PROTOCOL.md");
    for op in hbbp_store::wire::PROTOCOL_OPS {
        assert!(
            on_disk.contains(op.name),
            "docs/PROTOCOL.md must document op {}",
            op.name
        );
    }
}

//! Adversarial-client scenarios for the event-driven daemon: a slow
//! trickler, a client that dies mid-frame, clients that never read
//! their responses, and a stalled client held across shutdown. None of
//! them may delay other streams, and the queried aggregate must stay
//! bit-identical to the single-process batch fold.

use hbbp_core::{Analyzer, HybridRule, SamplingPeriods, Window};
use hbbp_perf::{PerfData, PerfSession, Recording};
use hbbp_program::{Bbec, ImageView};
use hbbp_sim::Cpu;
use hbbp_store::wire::{OP_QUERY_MIX, OP_STREAM};
use hbbp_store::{DaemonConfig, DaemonHandle, ProfileStore, StoreIdentity};
use hbbp_workloads::{phased_client, Scale, Workload};
use std::io::{Read, Write};
use std::net::{Shutdown, TcpStream};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

const PERIODS: SamplingPeriods = SamplingPeriods {
    ebs: 1009,
    lbr: 211,
};

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hbbp-adversarial-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("tmp dir");
    dir
}

fn client_recording(client: u32) -> (Workload, Recording) {
    let w = phased_client(Scale::Tiny, client);
    let session = PerfSession::hbbp(
        Cpu::with_seed(100 + u64::from(client)),
        PERIODS.ebs,
        PERIODS.lbr,
    )
    .with_pid(1000 + client);
    let rec = session
        .record(w.program(), w.layout(), w.oracle())
        .expect("recording");
    (w, rec)
}

fn analyzer_for(w: &Workload) -> Analyzer {
    Analyzer::from_images(&w.images(ImageView::Disk), w.layout().symbols()).expect("discovery")
}

fn batch_fold(analyzer: &Analyzer, recordings: &[&PerfData]) -> Bbec {
    let rule = HybridRule::paper_default();
    let mut acc = Bbec::new();
    for data in recordings {
        let analysis = analyzer.analyze_fused(data, PERIODS, &rule);
        acc.merge(&analysis.hbbp.bbec);
    }
    acc
}

fn spawn_daemon(dir: &Path, w: &Workload, window: Option<Window>) -> DaemonHandle {
    let analyzer = analyzer_for(w);
    let identity = StoreIdentity::of_workload(w, analyzer.map());
    hbbp_store::spawn(DaemonConfig {
        analyzer,
        identity,
        periods: PERIODS,
        rule: HybridRule::paper_default(),
        window,
        shards: 2,
        dir: dir.to_path_buf(),
        // One worker on purpose: every scenario below shares a single
        // poll loop with its adversary, so any blocking would show up as
        // a stall, not get masked by a spare thread.
        workers: 1,
        // A tiny queue bound so the backpressure paths (try_send Full,
        // deprioritized reads) actually run.
        queue_depth: 2,
        metrics: true,
    })
    .expect("daemon")
}

/// Write the `STREAM(source)` request message on a raw socket.
fn write_stream_header(sock: &mut TcpStream, source: u32) {
    let mut msg = vec![OP_STREAM];
    msg.extend_from_slice(&4u32.to_le_bytes());
    msg.extend_from_slice(&source.to_le_bytes());
    sock.write_all(&msg).expect("stream header");
}

/// Read one reply message off a raw socket, returning `(op, payload)`.
fn read_reply(sock: &mut TcpStream) -> (u8, Vec<u8>) {
    let mut header = [0u8; 5];
    sock.read_exact(&mut header).expect("reply header");
    let len = u32::from_le_bytes(header[1..5].try_into().expect("4 bytes")) as usize;
    let mut payload = vec![0u8; len];
    sock.read_exact(&mut payload).expect("reply payload");
    (header[0], payload)
}

#[test]
fn slow_trickler_does_not_delay_fast_clients_and_still_counts() {
    const FAST: u32 = 4;
    const SLOW: u32 = FAST;
    let dir = tmp_dir("trickle");
    let clients: Vec<(Workload, Recording)> = (0..=FAST).map(client_recording).collect();
    let handle = spawn_daemon(&dir, &clients[0].0, Some(Window::Samples(128)));
    let client = handle.client();

    let (fast_done, slow_done) = std::thread::scope(|scope| {
        let slow = scope.spawn(|| {
            // One small chunk at a time, sleeping between chunks — the
            // poll loop must keep every other stream flowing while this
            // connection stays warm for seconds.
            let bytes = hbbp_perf::codec::write(&clients[SLOW as usize].1.data);
            let mut sock = TcpStream::connect(client.addr()).expect("connect");
            write_stream_header(&mut sock, SLOW);
            let chunk = (bytes.len() / 100).max(1);
            for piece in bytes.chunks(chunk) {
                sock.write_all(piece).expect("trickle chunk");
                std::thread::sleep(Duration::from_millis(5));
            }
            sock.shutdown(Shutdown::Write).expect("half-close");
            let (op, _) = read_reply(&mut sock);
            assert_eq!(op, hbbp_store::wire::RESP_INGESTED, "slow stream ingested");
            Instant::now()
        });
        let fast: Vec<_> = (0..FAST)
            .map(|source| {
                let clients = &clients;
                let client = &client;
                scope.spawn(move || {
                    let reply = client
                        .stream_bytes(
                            source,
                            &hbbp_perf::codec::write(&clients[source as usize].1.data),
                        )
                        .expect("fast stream");
                    assert_eq!(reply.counts_seq, 0, "source {source}");
                    Instant::now()
                })
            })
            .collect();
        let fast_done: Vec<Instant> = fast.into_iter().map(|j| j.join().expect("fast")).collect();
        (fast_done, slow.join().expect("slow"))
    });
    for (source, done) in fast_done.iter().enumerate() {
        assert!(
            *done < slow_done,
            "fast client {source} finished only after the trickler — it was delayed"
        );
    }

    // The aggregate includes the trickled stream, bit for bit.
    let analyzer = analyzer_for(&clients[0].0);
    let recordings: Vec<&PerfData> = clients.iter().map(|(_, r)| &r.data).collect();
    let want = analyzer.mix(&batch_fold(&analyzer, &recordings));
    assert_eq!(
        client.query_mix().expect("mix"),
        want,
        "aggregate with the trickler must be bit-identical to the batch fold"
    );
    handle.shutdown().expect("shutdown");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn client_dying_mid_frame_does_not_disturb_a_concurrent_stream() {
    let dir = tmp_dir("midframe");
    let (w, rec) = client_recording(0);
    let (_w1, rec1) = client_recording(1);
    let handle = spawn_daemon(&dir, &w, None);
    let client = handle.client();

    std::thread::scope(|scope| {
        let dying = scope.spawn(|| {
            let bytes = hbbp_perf::codec::write(&rec1.data);
            let mut sock = TcpStream::connect(client.addr()).expect("connect");
            write_stream_header(&mut sock, 7);
            // Half a stream, then the process "dies": the socket closes
            // without a clean frame boundary.
            sock.write_all(&bytes[..bytes.len() / 2]).expect("partial");
            drop(sock);
        });
        let good = scope.spawn(|| {
            client
                .stream_bytes(0, &hbbp_perf::codec::write(&rec.data))
                .expect("good stream")
        });
        dying.join().expect("dying client");
        let reply = good.join().expect("good client");
        assert_eq!(reply.records, rec.data.len() as u64);
    });

    let stats = client.stats().expect("stats");
    assert_eq!(
        stats.counts_frames, 1,
        "the dead client contributed no counts"
    );
    let analyzer = analyzer_for(&w);
    assert_eq!(
        client.query_mix().expect("mix"),
        analyzer.mix(&batch_fold(&analyzer, &[&rec.data])),
        "aggregate sees exactly the completed stream"
    );
    handle.shutdown().expect("shutdown");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn clients_that_never_read_responses_do_not_stall_the_daemon() {
    let dir = tmp_dir("unread");
    let (w, rec) = client_recording(0);
    let handle = spawn_daemon(&dir, &w, None);
    let client = handle.client();
    let bytes = hbbp_perf::codec::write(&rec.data);

    // Three queries and one full stream whose responses nobody ever
    // reads; the sockets stay open for the daemon's whole life.
    let mut parked: Vec<TcpStream> = Vec::new();
    for _ in 0..3 {
        let mut sock = TcpStream::connect(client.addr()).expect("connect");
        let mut msg = vec![OP_QUERY_MIX];
        msg.extend_from_slice(&0u32.to_le_bytes());
        sock.write_all(&msg).expect("query");
        sock.shutdown(Shutdown::Write).expect("half-close");
        parked.push(sock);
    }
    let mut sock = TcpStream::connect(client.addr()).expect("connect");
    write_stream_header(&mut sock, 3);
    sock.write_all(&bytes).expect("stream");
    sock.shutdown(Shutdown::Write).expect("half-close");
    parked.push(sock);

    // The daemon keeps serving normally around the parked connections.
    let reply = client.stream_bytes(0, &bytes).expect("live stream");
    assert_eq!(reply.records, rec.data.len() as u64);
    let stats = client.stats().expect("stats");
    assert!(stats.counts_frames >= 1);

    // Shutdown completes even though the parked sockets never read their
    // replies (the worker drains or force-drops them).
    handle.shutdown().expect("shutdown with parked connections");
    drop(parked);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn registry_accounts_for_every_frame_under_backpressure() {
    let dir = tmp_dir("metrics");
    let clients: Vec<(Workload, Recording)> = (0..4).map(client_recording).collect();
    // Tiny windows against the 2-slot writer queues: plenty of WINDOW
    // traffic to exercise the backpressure (and possibly parking) paths.
    let handle = spawn_daemon(&dir, &clients[0].0, Some(Window::Samples(16)));
    let metrics = handle.metrics();
    let client = handle.client();

    std::thread::scope(|scope| {
        for (source, (_, rec)) in clients.iter().enumerate() {
            let client = &client;
            scope.spawn(move || {
                client
                    .stream_bytes(source as u32, &hbbp_perf::codec::write(&rec.data))
                    .expect("stream");
            });
        }
    });

    let stats = client.stats().expect("stats");
    let snap = client.query_metrics().expect("metrics snapshot");
    assert!(!snap.is_empty(), "live daemon must expose a snapshot");
    for family in ["acceptor", "worker", "writer", "decoder", "analyzer"] {
        assert!(
            snap.families().contains(&family),
            "snapshot must cover the {family} family"
        );
    }

    // Conservation: the registry agrees with the store's own accounting
    // frame-for-frame — nothing double-counted, nothing lost.
    assert_eq!(
        snap.counter("writer.counts_appended"),
        Some(stats.counts_frames),
        "every committed counts frame was counted exactly once"
    );
    assert_eq!(
        snap.counter("writer.windows_appended"),
        Some(stats.window_frames),
        "every committed window frame was counted exactly once"
    );
    assert!(
        snap.counter("acceptor.accepts").expect("accepts") >= 4,
        "the acceptor counted the fleet's connections"
    );

    // Every park has a matching unpark once all streams completed, and
    // no phantom parked connection lingers.
    let parks = metrics.counter_value(hbbp_obs::Counter::WorkerParks);
    let unparks = metrics.counter_value(hbbp_obs::Counter::WorkerUnparks);
    assert_eq!(parks, unparks, "completed streams must have unparked");
    assert_eq!(stats.parked_connections, 0, "no parked connection remains");

    // The writer queues saw real traffic: some shard's depth high-water
    // is nonzero, and the queues are empty now.
    assert_eq!(stats.writer_queues.len(), 2);
    assert!(
        stats.writer_queues.iter().any(|q| q.high_water >= 1),
        "window/counts traffic must have queued at least once"
    );
    assert!(stats.writer_queues.iter().all(|q| q.current == 0));

    handle.shutdown().expect("shutdown");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn shutdown_drains_inflight_work_and_force_drops_stalled_streams() {
    let dir = tmp_dir("drain");
    let (w, rec) = client_recording(0);
    let handle = spawn_daemon(&dir, &w, None);
    let client = handle.client();
    let bytes = hbbp_perf::codec::write(&rec.data);

    // A stalled stream: header plus a few bytes, then silence — never
    // half-closed, never finished.
    let mut stalled = TcpStream::connect(client.addr()).expect("connect");
    write_stream_header(&mut stalled, 9);
    stalled.write_all(&bytes[..64]).expect("stall prefix");

    // Completed work lands before shutdown...
    let reply = client.stream_bytes(0, &bytes).expect("completed stream");
    assert_eq!(reply.counts_seq, 0);

    // ...and shutdown returns despite the stalled connection: the worker
    // waits its grace period for progress, then drops it.
    let started = Instant::now();
    handle.shutdown().expect("shutdown");
    assert!(
        started.elapsed() < Duration::from_secs(30),
        "shutdown took implausibly long: {:?}",
        started.elapsed()
    );
    drop(stalled);

    // The completed stream's counts frame was drained to disk; the
    // stalled one contributed nothing.
    let mut counts = 0;
    for part in 0..2 {
        let store = ProfileStore::open(dir.join(format!("part-{part}.hbbp"))).expect("reopen");
        counts += store.counts().len();
        assert!(store.counts().iter().all(|c| c.source == 0));
    }
    assert_eq!(counts, 1, "exactly the completed stream persisted");
    let _ = std::fs::remove_dir_all(&dir);
}

//! Segment-codec robustness properties (mirroring
//! `crates/perf/tests/stream_props.rs` at the file layer): whatever
//! happens to the tail of a store file — truncation at any byte, a bit
//! flip anywhere after the header, garbage appended — reopening recovers
//! exactly the intact frame prefix, and the recovered file accepts
//! further appends.

use hbbp_program::{Bbec, MnemonicMix, Ring};
use hbbp_store::{CountsRecord, ModuleSpan, ProfileStore, StoreIdentity, WindowRecord};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

static NEXT_FILE: AtomicU64 = AtomicU64::new(0);

/// A unique temp path per proptest case (cases run in one process).
fn tmp() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hbbp-store-props-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    dir.join(format!(
        "case-{}.hbbp",
        NEXT_FILE.fetch_add(1, Ordering::Relaxed)
    ))
}

fn identity() -> StoreIdentity {
    StoreIdentity {
        program: "props".into(),
        block_count: 64,
        modules: vec![ModuleSpan {
            name: "props.bin".into(),
            base: 0x400000,
            len: 0x4000,
            ring: Ring::User,
        }],
    }
}

/// One synthetic counts record from compact generator parameters. Counts
/// use bit patterns with no short decimal form so that survival implies
/// bit-exact storage.
fn counts_from(source: u8, entries: &[(u16, u64)]) -> (u32, u64, u64, Bbec) {
    let mut bbec = Bbec::new();
    for &(addr_step, count_bits) in entries {
        let addr = 0x400000 + u64::from(addr_step) * 4;
        let count = f64::from_bits(0x3FF0_0000_0000_0000 | (count_bits >> 12));
        bbec.set(addr, count);
    }
    (u32::from(source), entries.len() as u64, 7, bbec)
}

fn window_from(source: u8, index: u8, mix_counts: &[(u8, u64)]) -> WindowRecord {
    let mut mix = MnemonicMix::new();
    for &(op, bits) in mix_counts {
        let mnemonic = hbbp_isa::Mnemonic::ALL[op as usize % hbbp_isa::Mnemonic::ALL.len()];
        mix.add(
            mnemonic,
            f64::from_bits(0x4000_0000_0000_0000 | (bits >> 12)),
        );
    }
    WindowRecord {
        source: u32::from(source),
        index: u32::from(index),
        start_cycles: u64::from(index) * 1000,
        end_cycles: (u64::from(index) + 1) * 1000,
        ebs_samples: 5,
        lbr_samples: 3,
        mix,
    }
}

/// Generator parameters of one counts frame: source + (addr step, count
/// bits) entries.
type CountsSpec = (u8, Vec<(u16, u64)>);
/// Generator parameters of one window frame: source, index, mix entries.
type WindowSpec = (u8, u8, Vec<(u8, u64)>);

/// Write a store of the given synthetic records; return its bytes and
/// the expected surviving record count per frame-prefix length.
fn build_store(
    counts: &[CountsSpec],
    windows: &[WindowSpec],
) -> (PathBuf, Vec<CountsRecord>, Vec<WindowRecord>) {
    let path = tmp();
    let _ = std::fs::remove_file(&path);
    let mut store = ProfileStore::open_with_identity(&path, identity()).expect("create");
    for (source, entries) in counts {
        let (source, ebs, lbr, bbec) = counts_from(*source, entries);
        store.append_counts(source, ebs, lbr, bbec).expect("append");
    }
    for (source, index, mix) in windows {
        store
            .append_window(window_from(*source, *index, mix))
            .expect("append window");
    }
    let c = store.counts().to_vec();
    let w = store.windows().to_vec();
    (path, c, w)
}

fn arb_counts() -> impl Strategy<Value = Vec<CountsSpec>> {
    proptest::collection::vec(
        (
            0u8..6,
            proptest::collection::vec((any::<u16>(), any::<u64>()), 0..12),
        ),
        0..8,
    )
}

fn arb_windows() -> impl Strategy<Value = Vec<WindowSpec>> {
    proptest::collection::vec(
        (
            0u8..6,
            any::<u8>(),
            proptest::collection::vec((any::<u8>(), any::<u64>()), 0..6),
        ),
        0..6,
    )
}

/// Reopen after damage and check the recovered contents are a prefix of
/// the originals (in log order) and that the store still works.
fn check_recovery(
    path: &PathBuf,
    original_counts: &[CountsRecord],
    original_windows: &[WindowRecord],
) {
    let mut store = ProfileStore::open(path).expect("recovery never errors on damage");
    let got_counts = store.counts();
    assert!(got_counts.len() <= original_counts.len());
    assert_eq!(got_counts, &original_counts[..got_counts.len()]);
    let got_windows = store.windows();
    assert!(got_windows.len() <= original_windows.len());
    assert_eq!(got_windows, &original_windows[..got_windows.len()]);
    // The recovered log accepts appends and a further reopen is clean.
    if store.identity().is_some() {
        store
            .append_counts(99, 1, 1, [(0x400000u64, 1.0)].into_iter().collect())
            .expect("append after recovery");
        let n = store.counts().len();
        drop(store);
        let back = ProfileStore::open(path).expect("clean reopen");
        assert_eq!(back.open_report().truncated_bytes, 0);
        assert_eq!(back.counts().len(), n);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Clean write → reopen is lossless and bit-exact.
    #[test]
    fn reopen_roundtrips_all_frames(
        counts in arb_counts(),
        windows in arb_windows(),
    ) {
        let (path, want_counts, want_windows) = build_store(&counts, &windows);
        let store = ProfileStore::open(&path).expect("reopen");
        prop_assert_eq!(store.open_report().truncated_bytes, 0);
        prop_assert_eq!(store.counts(), &want_counts[..]);
        prop_assert_eq!(store.windows(), &want_windows[..]);
        // Bit-exactness of every count.
        for (got, want) in store.counts().iter().zip(&want_counts) {
            for (addr, count) in want.bbec.iter() {
                prop_assert_eq!(got.bbec.get(addr).to_bits(), count.to_bits());
            }
        }
        std::fs::remove_file(&path).ok();
    }

    /// Truncate anywhere: recovery keeps exactly the intact frame prefix.
    #[test]
    fn truncation_recovers_the_intact_prefix(
        counts in arb_counts(),
        windows in arb_windows(),
        cut_frac in 0.0f64..1.0,
    ) {
        let (path, want_counts, want_windows) = build_store(&counts, &windows);
        let bytes = std::fs::read(&path).expect("read back");
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        std::fs::write(&path, &bytes[..cut.min(bytes.len())]).expect("truncate");
        check_recovery(&path, &want_counts, &want_windows);
        std::fs::remove_file(&path).ok();
    }

    /// Flip one bit after the header: the damaged frame and everything
    /// after it are dropped; frames before it survive bit-exactly.
    #[test]
    fn bit_flip_truncates_at_the_damaged_frame(
        counts in arb_counts(),
        windows in arb_windows(),
        flip_pos in any::<u64>(),
        flip_bit in 0u8..8,
    ) {
        let (path, want_counts, want_windows) = build_store(&counts, &windows);
        let mut bytes = std::fs::read(&path).expect("read back");
        if bytes.len() > 12 {
            let at = 12 + (flip_pos as usize) % (bytes.len() - 12);
            bytes[at] ^= 1 << flip_bit;
            std::fs::write(&path, &bytes).expect("damage");
            check_recovery(&path, &want_counts, &want_windows);
        }
        std::fs::remove_file(&path).ok();
    }

    /// Random garbage appended after the valid log: everything real
    /// survives; the garbage is truncated away.
    #[test]
    fn appended_garbage_is_cut_off(
        counts in arb_counts(),
        garbage in proptest::collection::vec(any::<u8>(), 1..64),
    ) {
        let (path, want_counts, _) = build_store(&counts, &[]);
        let mut bytes = std::fs::read(&path).expect("read back");
        let valid = bytes.len();
        bytes.extend_from_slice(&garbage);
        std::fs::write(&path, &bytes).expect("append garbage");
        let store = ProfileStore::open(&path).expect("recover");
        prop_assert_eq!(store.counts(), &want_counts[..]);
        // Either the garbage happened to decode as frames (possible only
        // if it forms a checksum-valid frame — astronomically unlikely
        // but legal) or it was truncated.
        prop_assert!(store.open_report().truncated_bytes as usize <= garbage.len());
        prop_assert!(store.file_bytes() as usize <= valid + garbage.len());
        std::fs::remove_file(&path).ok();
    }
}

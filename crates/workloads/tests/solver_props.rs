//! Property tests for the mix-distance metric and the solver/calibrator.
//!
//! The metric properties (zero iff equal, symmetric, bounded by 1) pin
//! `MnemonicMix::tv_distance` — the one comparison every consumer
//! (`MixDrift::divergence`, `hbbp watch`, the `hbbp synth` calibrator)
//! shares. The solver properties pin the loop's contract: it always
//! terminates within its iteration cap, and the accepted-step distance
//! sequence is non-increasing (strictly improving, by construction).

use hbbp_isa::Mnemonic;
use hbbp_program::MnemonicMix;
use hbbp_workloads::{
    calibrate, compile, true_mix, CalibratorConfig, EmissionModel, InstrClass, SynthSpec,
};
use proptest::prelude::*;

/// A random mix over a bounded mnemonic pool: `(index, weight)` pairs.
fn arb_mix_entries() -> impl Strategy<Value = Vec<(u8, f64)>> {
    proptest::collection::vec((0u8..48, 0.5f64..100.0), 1..12)
}

fn mix_from(entries: &[(u8, f64)]) -> MnemonicMix {
    let mut m = MnemonicMix::new();
    for &(i, w) in entries {
        m.add(Mnemonic::ALL[i as usize % Mnemonic::ALL.len()], w);
    }
    m
}

/// A random synthesizable target: an emission mixture over a few classes
/// plus structural branch/jump/call shares.
fn arb_target() -> impl Strategy<Value = MnemonicMix> {
    (
        proptest::collection::vec((0u8..26, 0.2f64..10.0), 1..4),
        0.04f64..0.2, // conditional-branch share
        0.0f64..0.03, // jump share
        0.0f64..0.02, // call share
    )
        .prop_map(|(classes, s_jcc, s_jmp, s_call)| {
            let em = EmissionModel::standard();
            let mut target = MnemonicMix::new();
            let s_fill = (1.0 - s_jcc - s_jmp - s_call * 2.0).max(0.3);
            let wsum: f64 = classes.iter().map(|&(_, w)| w).sum();
            for &(ci, w) in &classes {
                let class = InstrClass::ALL[ci as usize % InstrClass::ALL.len()];
                for &(m, p) in em.class_dist(class) {
                    target.add(m, 10_000.0 * s_fill * (w / wsum) * p);
                }
            }
            target.add(Mnemonic::Jnz, 10_000.0 * s_jcc * 0.7);
            target.add(Mnemonic::Jle, 10_000.0 * s_jcc * 0.3);
            if s_jmp > 0.0 {
                target.add(Mnemonic::Jmp, 10_000.0 * s_jmp);
            }
            if s_call > 0.0 {
                target.add(Mnemonic::CallNear, 10_000.0 * s_call);
                target.add(Mnemonic::RetNear, 10_000.0 * s_call);
            }
            target
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn tv_distance_is_zero_iff_equal(entries in arb_mix_entries()) {
        let a = mix_from(&entries);
        // Identical mixes: exactly zero.
        assert_eq!(a.tv_distance(&a), 0.0);
        // Equal shares at a power-of-two scale (exact in FP): still zero.
        let mut scaled = a.clone();
        scaled.scale(4.0);
        assert_eq!(a.tv_distance(&scaled), 0.0);
        // Shifting weight onto a mnemonic absent from `a`: strictly positive.
        let absent = Mnemonic::ALL
            .iter()
            .copied()
            .find(|&m| a.get(m) == 0.0)
            .expect("pool is larger than any generated mix");
        let mut perturbed = a.clone();
        perturbed.add(absent, 1.0);
        assert!(a.tv_distance(&perturbed) > 0.0);
    }

    #[test]
    fn tv_distance_is_symmetric_and_bounded(
        ea in arb_mix_entries(),
        eb in arb_mix_entries(),
    ) {
        let (a, b) = (mix_from(&ea), mix_from(&eb));
        let d = a.tv_distance(&b);
        // Symmetric to the bit, not just approximately.
        assert_eq!(d.to_bits(), b.tv_distance(&a).to_bits());
        assert!((0.0..=1.0 + 1e-9).contains(&d), "d = {d}");
        // Empty sides carry no evidence.
        assert_eq!(a.tv_distance(&MnemonicMix::new()), 0.0);
    }

    #[test]
    fn calibrator_terminates_and_accepted_steps_improve(
        target in arb_target(),
        seed in 1u64..u64::MAX,
    ) {
        let cfg = CalibratorConfig {
            name: "prop".to_string(),
            seed,
            tolerance: 0.015,
            max_iters: 5,
            blocks: 24,
            inner_trips: 8,
            target_dynamic: 30_000,
        };
        let mut measure = |spec: &SynthSpec| -> Result<MnemonicMix, String> {
            Ok(true_mix(&compile(spec).map_err(|e| e.to_string())?))
        };
        let cal = calibrate(&target, &cfg, &mut measure).expect("random targets calibrate");
        // Terminates within the cap, always.
        assert!(cal.iterations >= 1 && cal.iterations <= cfg.max_iters);
        assert_eq!(cal.steps.len(), cal.iterations);
        // Accepted distances are strictly decreasing; the reported best
        // is the last accepted one.
        let accepted: Vec<f64> = cal
            .steps
            .iter()
            .filter(|s| s.accepted)
            .map(|s| s.distance)
            .collect();
        assert!(!accepted.is_empty(), "first step is always accepted");
        assert!(
            accepted.windows(2).all(|w| w[1] < w[0]),
            "accepted distances must improve: {accepted:?}"
        );
        assert_eq!(cal.distance.to_bits(), accepted.last().unwrap().to_bits());
        assert_eq!(cal.converged, cal.distance <= cfg.tolerance);
        // The winning spec replays deterministically: re-measuring it
        // reproduces the recorded best distance bit for bit.
        let again = measure(&cal.spec).unwrap();
        assert_eq!(
            target.tv_distance(&again).to_bits(),
            cal.distance.to_bits()
        );
    }
}

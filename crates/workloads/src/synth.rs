//! The workload synthesis kit: instruction flavours, mix profiles,
//! CFG segment builders and the seeded execution oracle.
//!
//! Every benchmark in this crate is generated from a compact spec through
//! these primitives, so block-length distributions, branch structure and
//! instruction mixes — the properties that drive EBS/LBR error behaviour —
//! are controlled per workload.

use hbbp_isa::{instruction::build, Instruction, MemRef, Mnemonic, Reg};
use hbbp_program::{BlockId, ExecutionOracle, FunctionId, ProgramBuilder};
use rand::rngs::SmallRng;
use rand::seq::IndexedRandom;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// A coarse instruction flavour used by the generators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InstrClass {
    /// Integer ALU (`ADD`, `SUB`, `AND`, …) on registers.
    IntAlu,
    /// Integer multiply.
    IntMul,
    /// Integer divide (long latency).
    IntDiv,
    /// Memory load.
    Load,
    /// Memory store.
    Store,
    /// Address generation (`LEA`).
    Lea,
    /// Compare/test.
    Compare,
    /// Sign extensions and width conversions (`CDQE`, `MOVSXD`, …).
    IntConvert,
    /// Bit scans / popcounts.
    BitOps,
    /// Stack push/pop.
    Stack,
    /// Scalar SSE FP arithmetic.
    SseScalar,
    /// Packed SSE FP arithmetic.
    SsePacked,
    /// Packed SSE FP divide/sqrt (long latency).
    SseDivSqrt,
    /// SSE register moves.
    SseMove,
    /// SSE int↔FP conversions (`CVTSI2SD`, …).
    SseConvert,
    /// Packed SSE integer ops.
    SseInt,
    /// Scalar AVX FP arithmetic.
    AvxScalar,
    /// Packed AVX FP arithmetic.
    AvxPacked,
    /// Packed AVX FP divide/sqrt (long latency).
    AvxDivSqrt,
    /// AVX FMA.
    AvxFma,
    /// AVX register moves / broadcasts.
    AvxMove,
    /// x87 arithmetic.
    X87Arith,
    /// x87 divide/sqrt/transcendental (long latency).
    X87Long,
    /// x87 stack moves.
    X87Move,
    /// Atomic/synchronizing ops.
    Sync,
    /// Plain NOPs.
    Nop,
    /// Packed SSE FP bitwise logic (`ANDPS`, `ORPS`, `XORPS`).
    SseLogic,
    /// Packed SSE FP shuffles/unpacks (`UNPCKLPS`, `UNPCKHPS`).
    SseShuffle,
    /// Scalar SSE FP compares (`UCOMISS`, `COMISS`).
    SseCompare,
}

impl InstrClass {
    /// Every flavour, in declaration order — the canonical iteration
    /// order for emission models and spec serialization.
    pub const ALL: [InstrClass; 29] = [
        InstrClass::IntAlu,
        InstrClass::IntMul,
        InstrClass::IntDiv,
        InstrClass::Load,
        InstrClass::Store,
        InstrClass::Lea,
        InstrClass::Compare,
        InstrClass::IntConvert,
        InstrClass::BitOps,
        InstrClass::Stack,
        InstrClass::SseScalar,
        InstrClass::SsePacked,
        InstrClass::SseDivSqrt,
        InstrClass::SseMove,
        InstrClass::SseConvert,
        InstrClass::SseInt,
        InstrClass::AvxScalar,
        InstrClass::AvxPacked,
        InstrClass::AvxDivSqrt,
        InstrClass::AvxFma,
        InstrClass::AvxMove,
        InstrClass::X87Arith,
        InstrClass::X87Long,
        InstrClass::X87Move,
        InstrClass::Sync,
        InstrClass::Nop,
        InstrClass::SseLogic,
        InstrClass::SseShuffle,
        InstrClass::SseCompare,
    ];

    /// Position in [`InstrClass::ALL`].
    pub fn index(self) -> usize {
        InstrClass::ALL
            .iter()
            .position(|&c| c == self)
            .expect("every class is in ALL")
    }

    /// Stable textual name (the variant name), used by spec JSON.
    pub fn name(self) -> &'static str {
        match self {
            InstrClass::IntAlu => "IntAlu",
            InstrClass::IntMul => "IntMul",
            InstrClass::IntDiv => "IntDiv",
            InstrClass::Load => "Load",
            InstrClass::Store => "Store",
            InstrClass::Lea => "Lea",
            InstrClass::Compare => "Compare",
            InstrClass::IntConvert => "IntConvert",
            InstrClass::BitOps => "BitOps",
            InstrClass::Stack => "Stack",
            InstrClass::SseScalar => "SseScalar",
            InstrClass::SsePacked => "SsePacked",
            InstrClass::SseDivSqrt => "SseDivSqrt",
            InstrClass::SseMove => "SseMove",
            InstrClass::SseConvert => "SseConvert",
            InstrClass::SseInt => "SseInt",
            InstrClass::AvxScalar => "AvxScalar",
            InstrClass::AvxPacked => "AvxPacked",
            InstrClass::AvxDivSqrt => "AvxDivSqrt",
            InstrClass::AvxFma => "AvxFma",
            InstrClass::AvxMove => "AvxMove",
            InstrClass::X87Arith => "X87Arith",
            InstrClass::X87Long => "X87Long",
            InstrClass::X87Move => "X87Move",
            InstrClass::Sync => "Sync",
            InstrClass::Nop => "Nop",
            InstrClass::SseLogic => "SseLogic",
            InstrClass::SseShuffle => "SseShuffle",
            InstrClass::SseCompare => "SseCompare",
        }
    }

    /// Inverse of [`InstrClass::name`].
    pub fn from_name(name: &str) -> Option<InstrClass> {
        InstrClass::ALL.iter().copied().find(|c| c.name() == name)
    }
}

/// Generate one instruction of the given flavour.
pub fn gen_instr(class: InstrClass, rng: &mut SmallRng) -> Instruction {
    let g = |rng: &mut SmallRng| Reg::gpr(rng.random_range(0..14));
    let x = |rng: &mut SmallRng| Reg::xmm(rng.random_range(0..14));
    let y = |rng: &mut SmallRng| Reg::ymm(rng.random_range(0..14));
    let st = |rng: &mut SmallRng| Reg::st(rng.random_range(0..7));
    let mem = |rng: &mut SmallRng| {
        MemRef::base_disp(
            Reg::gpr(rng.random_range(0..14)),
            rng.random_range(-512..512),
        )
    };
    let pick = |rng: &mut SmallRng, options: &[Mnemonic]| *options.choose(rng).expect("non-empty");
    match class {
        InstrClass::IntAlu => build::rr(
            pick(
                rng,
                &[
                    Mnemonic::Add,
                    Mnemonic::Sub,
                    Mnemonic::And,
                    Mnemonic::Or,
                    Mnemonic::Xor,
                    Mnemonic::Shl,
                    Mnemonic::Sar,
                ],
            ),
            g(rng),
            g(rng),
        ),
        InstrClass::IntMul => build::rr(Mnemonic::Imul, g(rng), g(rng)),
        InstrClass::IntDiv => build::r(pick(rng, &[Mnemonic::Idiv, Mnemonic::Div]), g(rng)),
        InstrClass::Load => build::rm(Mnemonic::Mov, g(rng), mem(rng)),
        InstrClass::Store => build::mr(Mnemonic::Mov, mem(rng), g(rng)),
        InstrClass::Lea => build::rm(Mnemonic::Lea, g(rng), mem(rng)),
        InstrClass::Compare => {
            build::rr(pick(rng, &[Mnemonic::Cmp, Mnemonic::Test]), g(rng), g(rng))
        }
        InstrClass::IntConvert => match rng.random_range(0..3) {
            0 => build::bare(Mnemonic::Cdqe),
            1 => build::rr(Mnemonic::Movsxd, g(rng), g(rng)),
            _ => build::rr(Mnemonic::Movzx, g(rng), g(rng)),
        },
        InstrClass::BitOps => build::rr(
            pick(rng, &[Mnemonic::Popcnt, Mnemonic::Bsf, Mnemonic::Tzcnt]),
            g(rng),
            g(rng),
        ),
        InstrClass::Stack => {
            if rng.random_bool(0.5) {
                build::r(Mnemonic::Push, g(rng))
            } else {
                build::r(Mnemonic::Pop, g(rng))
            }
        }
        InstrClass::SseScalar => build::rr(
            pick(
                rng,
                &[
                    Mnemonic::Addss,
                    Mnemonic::Mulss,
                    Mnemonic::Subss,
                    Mnemonic::Addsd,
                    Mnemonic::Mulsd,
                    Mnemonic::Maxss,
                ],
            ),
            x(rng),
            x(rng),
        ),
        InstrClass::SsePacked => build::rr(
            pick(
                rng,
                &[
                    Mnemonic::Addps,
                    Mnemonic::Mulps,
                    Mnemonic::Subps,
                    Mnemonic::Maxps,
                    Mnemonic::Minps,
                    Mnemonic::Addpd,
                    Mnemonic::Mulpd,
                    Mnemonic::Shufps,
                ],
            ),
            x(rng),
            x(rng),
        ),
        InstrClass::SseDivSqrt => build::rr(
            pick(
                rng,
                &[
                    Mnemonic::Divps,
                    Mnemonic::Divss,
                    Mnemonic::Sqrtps,
                    Mnemonic::Sqrtsd,
                    Mnemonic::Divpd,
                ],
            ),
            x(rng),
            x(rng),
        ),
        InstrClass::SseMove => {
            if rng.random_bool(0.4) {
                build::rm(
                    pick(rng, &[Mnemonic::Movaps, Mnemonic::Movups]),
                    x(rng),
                    mem(rng),
                )
            } else {
                build::rr(
                    pick(
                        rng,
                        &[Mnemonic::Movaps, Mnemonic::Movss, Mnemonic::MovsdXmm],
                    ),
                    x(rng),
                    x(rng),
                )
            }
        }
        InstrClass::SseConvert => build::rr(
            pick(
                rng,
                &[
                    Mnemonic::Cvtsi2sd,
                    Mnemonic::Cvtsi2ss,
                    Mnemonic::Cvtss2sd,
                    Mnemonic::Cvttsd2si,
                ],
            ),
            x(rng),
            g(rng),
        ),
        InstrClass::SseInt => build::rr(
            pick(
                rng,
                &[
                    Mnemonic::Paddd,
                    Mnemonic::Pmulld,
                    Mnemonic::Pand,
                    Mnemonic::Pxor,
                    Mnemonic::Pcmpeqd,
                ],
            ),
            x(rng),
            x(rng),
        ),
        InstrClass::AvxScalar => build::rr(
            pick(rng, &[Mnemonic::Vaddss, Mnemonic::Vmulss]),
            x(rng),
            x(rng),
        ),
        InstrClass::AvxPacked => build::rr(
            pick(
                rng,
                &[
                    Mnemonic::Vaddps,
                    Mnemonic::Vmulps,
                    Mnemonic::Vsubps,
                    Mnemonic::Vmaxps,
                    Mnemonic::Vminps,
                    Mnemonic::Vshufps,
                ],
            ),
            y(rng),
            y(rng),
        ),
        InstrClass::AvxDivSqrt => build::rr(
            pick(rng, &[Mnemonic::Vdivps, Mnemonic::Vsqrtps]),
            y(rng),
            y(rng),
        ),
        InstrClass::AvxFma => build::rr(
            pick(
                rng,
                &[
                    Mnemonic::Vfmadd132ps,
                    Mnemonic::Vfmadd213ps,
                    Mnemonic::Vfmadd231ps,
                ],
            ),
            y(rng),
            y(rng),
        ),
        InstrClass::AvxMove => {
            if rng.random_bool(0.3) {
                build::rr(Mnemonic::Vbroadcastss, y(rng), x(rng))
            } else if rng.random_bool(0.4) {
                build::rm(
                    pick(rng, &[Mnemonic::Vmovaps, Mnemonic::Vmovups]),
                    y(rng),
                    mem(rng),
                )
            } else {
                build::rr(Mnemonic::Vmovaps, y(rng), y(rng))
            }
        }
        InstrClass::X87Arith => build::rr(
            pick(
                rng,
                &[
                    Mnemonic::Fadd,
                    Mnemonic::Fmul,
                    Mnemonic::Fsub,
                    Mnemonic::Fsubr,
                ],
            ),
            st(rng),
            st(rng),
        ),
        InstrClass::X87Long => build::rr(
            pick(
                rng,
                &[
                    Mnemonic::Fdiv,
                    Mnemonic::Fsqrt,
                    Mnemonic::Fsin,
                    Mnemonic::Fptan,
                ],
            ),
            st(rng),
            st(rng),
        ),
        InstrClass::X87Move => match rng.random_range(0..3) {
            0 => build::rm(Mnemonic::Fld, st(rng), mem(rng)),
            1 => build::mr(Mnemonic::Fstp, mem(rng), st(rng)),
            _ => build::rr(Mnemonic::Fxch, st(rng), st(rng)),
        },
        InstrClass::Sync => {
            build::ri(pick(rng, &[Mnemonic::Xadd, Mnemonic::Cmpxchg]), g(rng), 1).locked()
        }
        InstrClass::Nop => build::bare(Mnemonic::Nop),
        InstrClass::SseLogic => build::rr(
            pick(rng, &[Mnemonic::Andps, Mnemonic::Orps, Mnemonic::Xorps]),
            x(rng),
            x(rng),
        ),
        InstrClass::SseShuffle => build::rr(
            pick(rng, &[Mnemonic::Unpcklps, Mnemonic::Unpckhps]),
            x(rng),
            x(rng),
        ),
        InstrClass::SseCompare => build::rr(
            pick(rng, &[Mnemonic::Ucomiss, Mnemonic::Comiss]),
            x(rng),
            x(rng),
        ),
    }
}

/// A weighted distribution over instruction flavours.
#[derive(Debug, Clone)]
pub struct MixProfile {
    classes: Vec<(InstrClass, f64)>,
    total: f64,
}

impl MixProfile {
    /// Build a profile from `(class, weight)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if no class has positive weight.
    pub fn new(classes: impl Into<Vec<(InstrClass, f64)>>) -> MixProfile {
        let classes = classes.into();
        let total: f64 = classes.iter().map(|(_, w)| w.max(0.0)).sum();
        assert!(total > 0.0, "mix profile needs positive weight");
        MixProfile { classes, total }
    }

    /// Draw one flavour.
    pub fn sample(&self, rng: &mut SmallRng) -> InstrClass {
        let mut t = rng.random::<f64>() * self.total;
        for (c, w) in &self.classes {
            t -= w.max(0.0);
            if t <= 0.0 {
                return *c;
            }
        }
        self.classes.last().expect("non-empty").0
    }

    /// Generate `n` filler instructions.
    pub fn gen_block_body(&self, n: usize, rng: &mut SmallRng) -> Vec<Instruction> {
        (0..n).map(|_| gen_instr(self.sample(rng), rng)).collect()
    }

    /// Integer-dominated profile (perlbench/gcc-ish).
    pub fn int_heavy() -> MixProfile {
        MixProfile::new(vec![
            (InstrClass::IntAlu, 30.0),
            (InstrClass::Load, 18.0),
            (InstrClass::Store, 8.0),
            (InstrClass::Compare, 14.0),
            (InstrClass::Lea, 6.0),
            (InstrClass::IntConvert, 4.0),
            (InstrClass::IntMul, 2.0),
            (InstrClass::Stack, 5.0),
            (InstrClass::BitOps, 2.0),
        ])
    }

    /// Memory-bound integer profile (mcf-ish).
    pub fn mem_heavy() -> MixProfile {
        MixProfile::new(vec![
            (InstrClass::Load, 32.0),
            (InstrClass::Store, 12.0),
            (InstrClass::IntAlu, 18.0),
            (InstrClass::Compare, 12.0),
            (InstrClass::Lea, 8.0),
            (InstrClass::IntConvert, 3.0),
        ])
    }

    /// Scalar SSE FP profile.
    pub fn fp_sse_scalar() -> MixProfile {
        MixProfile::new(vec![
            (InstrClass::SseScalar, 26.0),
            (InstrClass::SseMove, 16.0),
            (InstrClass::Load, 10.0),
            (InstrClass::Store, 5.0),
            (InstrClass::IntAlu, 10.0),
            (InstrClass::Compare, 6.0),
            (InstrClass::SseConvert, 3.0),
            (InstrClass::SseDivSqrt, 2.0),
        ])
    }

    /// Packed SSE FP profile (povray/milc-ish).
    pub fn fp_sse_packed() -> MixProfile {
        MixProfile::new(vec![
            (InstrClass::SsePacked, 28.0),
            (InstrClass::SseMove, 16.0),
            (InstrClass::Load, 8.0),
            (InstrClass::IntAlu, 9.0),
            (InstrClass::Compare, 5.0),
            (InstrClass::SseDivSqrt, 3.0),
            (InstrClass::SseInt, 3.0),
        ])
    }

    /// Packed AVX FP profile.
    pub fn fp_avx() -> MixProfile {
        MixProfile::new(vec![
            (InstrClass::AvxPacked, 26.0),
            (InstrClass::AvxFma, 10.0),
            (InstrClass::AvxMove, 14.0),
            (InstrClass::Load, 7.0),
            (InstrClass::IntAlu, 8.0),
            (InstrClass::Compare, 5.0),
            (InstrClass::AvxDivSqrt, 3.0),
        ])
    }

    /// x87-dominated profile (legacy scalar FP).
    pub fn x87() -> MixProfile {
        MixProfile::new(vec![
            (InstrClass::X87Arith, 24.0),
            (InstrClass::X87Move, 18.0),
            (InstrClass::X87Long, 4.0),
            (InstrClass::Load, 10.0),
            (InstrClass::IntAlu, 10.0),
            (InstrClass::Compare, 6.0),
        ])
    }

    /// A profile dominated by a single flavour (nine parts `class`, one
    /// part loads for realism) — maximally distinguishable phases for
    /// windowed/streaming timeline workloads.
    pub fn dominated_by(class: InstrClass) -> MixProfile {
        MixProfile::new(vec![(class, 9.0), (InstrClass::Load, 1.0)])
    }

    /// Branch-heavy object-oriented profile (omnetpp/xalancbmk-ish bodies:
    /// the branchiness itself comes from short blocks, not from the mix).
    pub fn oo_code() -> MixProfile {
        MixProfile::new(vec![
            (InstrClass::Load, 22.0),
            (InstrClass::IntAlu, 16.0),
            (InstrClass::Compare, 14.0),
            (InstrClass::Store, 9.0),
            (InstrClass::Stack, 9.0),
            (InstrClass::Lea, 7.0),
            (InstrClass::IntConvert, 4.0),
        ])
    }
}

/// Branch behaviour of a conditional block.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Behavior {
    /// A counted loop: taken `trips - 1` times, then falls through, then
    /// the counter resets (per loop entry).
    Trips(u64),
    /// Independently random: taken with probability `p`.
    Prob(f64),
}

/// Deterministic, seeded oracle for generated workloads.
///
/// Fresh instances with the same seed replay the identical branch-decision
/// sequence, which is how the CPU simulator and the instrumenter observe
/// the same execution.
#[derive(Debug, Clone)]
pub struct SynthOracle {
    behaviors: HashMap<BlockId, Behavior>,
    default: Behavior,
    trip_state: HashMap<BlockId, u64>,
    rng: SmallRng,
}

impl SynthOracle {
    /// Create an oracle with a default behaviour for unlisted blocks.
    pub fn new(seed: u64, behaviors: HashMap<BlockId, Behavior>, default: Behavior) -> SynthOracle {
        SynthOracle {
            behaviors,
            default,
            trip_state: HashMap::new(),
            rng: SmallRng::seed_from_u64(seed),
        }
    }
}

impl ExecutionOracle for SynthOracle {
    fn branch_taken(&mut self, block: BlockId) -> bool {
        let behavior = self.behaviors.get(&block).copied().unwrap_or(self.default);
        match behavior {
            Behavior::Trips(trips) => {
                let count = self.trip_state.entry(block).or_insert(0);
                *count += 1;
                if *count >= trips.max(1) {
                    *count = 0;
                    false
                } else {
                    true
                }
            }
            Behavior::Prob(p) => self.rng.random_bool(p.clamp(0.0, 1.0)),
        }
    }
}

/// Builder-side recording of block behaviours while generating functions.
#[derive(Debug, Default, Clone)]
pub struct BehaviorMap {
    map: HashMap<BlockId, Behavior>,
}

impl BehaviorMap {
    /// Empty map.
    pub fn new() -> BehaviorMap {
        BehaviorMap::default()
    }

    /// Record a block's behaviour.
    pub fn set(&mut self, block: BlockId, behavior: Behavior) {
        self.map.insert(block, behavior);
    }

    /// Build an oracle over the recorded behaviours.
    pub fn oracle(&self, seed: u64) -> SynthOracle {
        SynthOracle::new(seed, self.map.clone(), Behavior::Prob(0.5))
    }

    /// Access the raw map.
    pub fn map(&self) -> &HashMap<BlockId, Behavior> {
        &self.map
    }
}

/// One structural segment of a generated function body.
#[derive(Debug, Clone)]
pub enum Segment {
    /// Straight-line code of the given length (merged into the next
    /// segment's entry block).
    Straight {
        /// Instruction count.
        len: usize,
    },
    /// A self-loop: `body_len` instructions + backward Jcc, `trips`
    /// iterations per entry.
    Loop {
        /// Body instruction count (excluding the branch).
        body_len: usize,
        /// Iterations per entry.
        trips: u64,
    },
    /// A long loop body split across `blocks` chained long blocks joined
    /// by rarely-taken fixup conditionals, closed by one backedge — the
    /// Table 3 regime where a single sticky backedge stream covers the
    /// whole chain.
    ChainLoop {
        /// Instruction count per chain block (excluding branches).
        body_len: usize,
        /// Iterations per entry.
        trips: u64,
        /// Number of chained blocks.
        blocks: usize,
    },
    /// An if/else diamond.
    Diamond {
        /// `then` arm length.
        then_len: usize,
        /// `else` arm length.
        else_len: usize,
        /// Probability the branch is taken (→ else arm).
        taken_prob: f64,
    },
    /// A call to another function.
    Call {
        /// Callee.
        callee: FunctionId,
    },
}

/// The "cold path" instruction flavour used for rarely-taken diamond arms
/// and loop fixup blocks: error handling and bookkeeping code looks the
/// same in every program (loads, stores, compares, stack traffic), which
/// is what makes blocks *heterogeneous* — the property that turns
/// per-block misattribution into per-mnemonic error.
pub fn cold_path_mix() -> MixProfile {
    MixProfile::new(vec![
        (InstrClass::Load, 18.0),
        (InstrClass::Store, 14.0),
        (InstrClass::Compare, 12.0),
        (InstrClass::IntAlu, 10.0),
        (InstrClass::Stack, 10.0),
        (InstrClass::Lea, 6.0),
    ])
}

/// Emit a function whose body is `segments`, with a PUSH prologue, a
/// matching POP epilogue and a final `RET` — the compiled-function shape
/// that concentrates stack mnemonics at block boundaries.
///
/// Returns the blocks created. Conditional behaviours are recorded in
/// `behaviors`.
pub fn emit_function(
    b: &mut ProgramBuilder,
    f: FunctionId,
    segments: &[Segment],
    mix: &MixProfile,
    behaviors: &mut BehaviorMap,
    rng: &mut SmallRng,
) -> Vec<BlockId> {
    let mut blocks = Vec::new();
    let mut current = b.block(f);
    blocks.push(current);
    let cold = cold_path_mix();
    // Prologue: callee-saved register spills.
    let saved = rng.random_range(1..=3u8);
    for i in 0..saved {
        b.push(current, build::r(Mnemonic::Push, Reg::gpr(10 + i)));
    }
    let jcc = |rng: &mut SmallRng| {
        *[
            Mnemonic::Jnz,
            Mnemonic::Jz,
            Mnemonic::Jle,
            Mnemonic::Jnle,
            Mnemonic::Jb,
            Mnemonic::Jnbe,
        ]
        .choose(rng)
        .expect("non-empty")
    };
    for seg in segments {
        match seg {
            Segment::Straight { len } => {
                b.push_all(current, mix.gen_block_body(*len, rng));
            }
            Segment::ChainLoop {
                body_len,
                trips,
                blocks: n_chain,
            } => {
                let head = if b.block_len(current) > 0 {
                    let head = b.block(f);
                    b.terminate_jump(current, head);
                    blocks.push(head);
                    head
                } else {
                    current
                };
                // Several long blocks joined by rarely-taken fixup
                // conditionals, closed by one backedge. The dominant LBR
                // stream runs from the backedge target across the whole
                // fallthrough chain to the backedge itself — when that
                // branch is alignment-sticky, every chain block loses
                // evidence together (the paper's Table 3 shape).
                let n_chain = (*n_chain).max(2);
                let chain: Vec<BlockId> = (1..n_chain).map(|_| b.block(f)).collect();
                let after = b.block(f);
                let fixups: Vec<BlockId> = (1..n_chain).map(|_| b.block(f)).collect();
                // Continuation created *last* so the next segment's
                // fallthrough targets stay adjacent in layout.
                let cont = b.block(f);
                let cold = cold_path_mix();
                let mut cur_blk = head;
                for k in 0..n_chain {
                    b.push_all(cur_blk, mix.gen_block_body(*body_len, rng));
                    if k + 1 < n_chain {
                        b.terminate_branch(cur_blk, jcc(rng), fixups[k], chain[k]);
                        behaviors.set(cur_blk, Behavior::Prob(0.5));
                        cur_blk = chain[k];
                    } else {
                        b.terminate_branch(cur_blk, jcc(rng), head, after);
                        behaviors.set(cur_blk, Behavior::Trips(*trips));
                    }
                }
                for (k, &fx) in fixups.iter().enumerate() {
                    b.push_all(fx, cold.gen_block_body(2, rng));
                    b.terminate_jump(fx, chain[k]);
                }
                b.push_all(after, mix.gen_block_body(1, rng));
                b.terminate_jump(after, cont);
                blocks.extend(chain);
                blocks.extend(fixups);
                blocks.extend([after, cont]);
                current = cont;
            }
            Segment::Loop { body_len, trips } => {
                // Close the current block by jumping into the loop head if
                // it already has content; otherwise reuse it as the head.
                let head = if b.block_len(current) > 0 {
                    let head = b.block(f);
                    b.terminate_jump(current, head);
                    blocks.push(head);
                    head
                } else {
                    current
                };
                if *body_len > 20 {
                    // Long bodies: a single unrolled/vectorized-style block
                    // with the backedge at its end (self-loop).
                    b.push_all(head, mix.gen_block_body(*body_len, rng));
                    let after = b.block(f);
                    b.terminate_branch(head, jcc(rng), head, after);
                    behaviors.set(head, Behavior::Trips(*trips));
                    blocks.push(after);
                    current = after;
                } else {
                    // Short bodies: the realistic compiled shape — a chain
                    // of small blocks with an uneven conditional diamond
                    // and a separate latch. The arm asymmetry makes EBS
                    // skid spill systematic (it cannot average out the way
                    // it does inside a self-loop).
                    let then_blk = b.block(f);
                    let else_blk = b.block(f);
                    let latch = b.block(f);
                    let after = b.block(f);
                    b.push_all(head, mix.gen_block_body((*body_len).max(1), rng));
                    b.terminate_branch(head, jcc(rng), else_blk, then_blk);
                    behaviors.set(head, Behavior::Prob(rng.random_range(0.10..0.40)));
                    b.push_all(then_blk, mix.gen_block_body((*body_len).max(2) - 1, rng));
                    b.terminate_jump(then_blk, latch);
                    // The rarely-taken arm is bookkeeping-flavoured code.
                    b.push_all(else_blk, cold.gen_block_body((*body_len / 2).max(1), rng));
                    b.terminate_jump(else_blk, latch);
                    b.push_all(latch, mix.gen_block_body(2, rng));
                    b.terminate_branch(latch, jcc(rng), head, after);
                    behaviors.set(latch, Behavior::Trips(*trips));
                    blocks.extend([then_blk, else_blk, latch, after]);
                    current = after;
                }
            }
            Segment::Diamond {
                then_len,
                else_len,
                taken_prob,
            } => {
                let then_blk = b.block(f);
                let else_blk = b.block(f);
                let join = b.block(f);
                b.terminate_branch(current, jcc(rng), else_blk, then_blk);
                behaviors.set(current, Behavior::Prob(*taken_prob));
                b.push_all(then_blk, mix.gen_block_body(*then_len, rng));
                b.terminate_jump(then_blk, join);
                b.push_all(else_blk, cold.gen_block_body(*else_len, rng));
                b.terminate_jump(else_blk, join);
                blocks.extend([then_blk, else_blk, join]);
                current = join;
            }
            Segment::Call { callee } => {
                if b.block_len(current) == 0 {
                    // A call block needs at least argument setup before the
                    // CALL so blocks stay non-trivial.
                    b.push_all(current, mix.gen_block_body(1, rng));
                }
                let ret_to = b.block(f);
                b.terminate_call(current, *callee, ret_to);
                blocks.push(ret_to);
                current = ret_to;
            }
        }
    }
    if b.block_len(current) == 0 {
        b.push_all(current, mix.gen_block_body(1, rng));
    }
    // Epilogue: restore callee-saved registers (reverse order) and return.
    for i in (0..saved).rev() {
        b.push(current, build::r(Mnemonic::Pop, Reg::gpr(10 + i)));
    }
    b.terminate_ret(current);
    blocks
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbbp_program::{Layout, Ring, Walker};

    #[test]
    fn gen_instr_produces_requested_flavour() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..50 {
            let i = gen_instr(InstrClass::SsePacked, &mut rng);
            assert_eq!(i.extension(), hbbp_isa::Extension::Sse);
            assert_eq!(i.packing(), hbbp_isa::Packing::Packed);
            let d = gen_instr(InstrClass::IntDiv, &mut rng);
            assert!(d.is_long_latency());
            let s = gen_instr(InstrClass::Sync, &mut rng);
            assert!(s.is_synchronizing());
        }
    }

    #[test]
    fn instr_class_names_round_trip() {
        for (i, c) in InstrClass::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
            assert_eq!(InstrClass::from_name(c.name()), Some(*c));
        }
        assert_eq!(InstrClass::from_name("NotAClass"), None);
    }

    #[test]
    fn mix_profile_sampling_tracks_weights() {
        let profile = MixProfile::new(vec![(InstrClass::IntAlu, 9.0), (InstrClass::Load, 1.0)]);
        let mut rng = SmallRng::seed_from_u64(2);
        let n = 10_000;
        let alu = (0..n)
            .filter(|_| profile.sample(&mut rng) == InstrClass::IntAlu)
            .count();
        let frac = alu as f64 / n as f64;
        assert!((frac - 0.9).abs() < 0.03, "frac={frac}");
    }

    #[test]
    fn oracle_replays_identically() {
        let mut behaviors = HashMap::new();
        behaviors.insert(BlockId::from_index(0), Behavior::Prob(0.5));
        behaviors.insert(BlockId::from_index(1), Behavior::Trips(5));
        let run = |seed| {
            let mut o = SynthOracle::new(seed, behaviors.clone(), Behavior::Prob(0.5));
            (0..200)
                .map(|i| o.branch_taken(BlockId::from_index(i % 3)))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    #[test]
    fn emit_function_builds_valid_programs() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut b = ProgramBuilder::new("synth");
        let m = b.module("synth.bin", Ring::User);
        let leaf = b.function(m, "leaf");
        let mut behaviors = BehaviorMap::new();
        emit_function(
            &mut b,
            leaf,
            &[Segment::Straight { len: 4 }],
            &MixProfile::int_heavy(),
            &mut behaviors,
            &mut rng,
        );
        let main = b.function(m, "main");
        let blocks = emit_function(
            &mut b,
            main,
            &[
                Segment::Straight { len: 3 },
                Segment::Loop {
                    body_len: 8,
                    trips: 10,
                },
                Segment::Diamond {
                    then_len: 4,
                    else_len: 6,
                    taken_prob: 0.3,
                },
                Segment::Call { callee: leaf },
            ],
            &MixProfile::int_heavy(),
            &mut behaviors,
            &mut rng,
        );
        assert!(blocks.len() >= 6);
        // Main must be a valid entry function once an exit path exists:
        // swap the final RET for an exit by building a driver instead.
        let p = b.build(main).expect("valid program");
        let mut layout_p = p.clone();
        let layout = Layout::compute(&mut layout_p).unwrap();
        let _ = layout;
        // Walk it: RET from main ends the walk.
        let mut walker = Walker::new(&p, behaviors.oracle(9));
        let mut count = 0u64;
        while walker.next_block().is_some() {
            count += 1;
        }
        // loop runs 10 times: at least 10 blocks executed.
        assert!(count > 12, "only {count} blocks executed");
    }

    #[test]
    fn trips_behavior_counts_loop_iterations() {
        let mut rng = SmallRng::seed_from_u64(4);
        let mut b = ProgramBuilder::new("trip");
        let m = b.module("trip.bin", Ring::User);
        let f = b.function(m, "main");
        let mut behaviors = BehaviorMap::new();
        let blocks = emit_function(
            &mut b,
            f,
            &[Segment::Loop {
                body_len: 3,
                trips: 7,
            }],
            &MixProfile::int_heavy(),
            &mut behaviors,
            &mut rng,
        );
        let p = b.build(f).unwrap();
        // The loop head is no longer blocks[0] (the entry holds the
        // prologue); instead verify that the loop body executed exactly
        // `trips` times by looking at the hottest block.
        let mut execs = vec![0u64; p.block_count()];
        let mut walker = Walker::new(&p, behaviors.oracle(1));
        while let Some(bid) = walker.next_block() {
            execs[bid.index()] += 1;
        }
        let max = execs.iter().copied().max().unwrap();
        assert_eq!(max, 7, "hottest block must run `trips` times: {execs:?}");
        let _ = blocks;
    }
}

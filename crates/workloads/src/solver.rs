//! The synthesis solver: target mix → initial [`SynthSpec`].
//!
//! Works in two layers, mirroring how a mix decomposes:
//!
//! * **Structure** (closed form): conditional-branch share fixes the
//!   filler-per-branch ratio and hence the mean block body length; the
//!   `JMP`/`Jcc` ratio fixes the hop-branch probability; the
//!   `CALL`/`Jcc` ratio fixes how many chain positions become call
//!   sites; the flavour split *within* the conditional-branch share is
//!   apportioned exactly (largest remainder) across the chain's branch
//!   sites, which all execute the same number of times.
//! * **Filler** (per-mnemonic quotas + an EM-fitted class mixture): the
//!   non-structural remainder of the target becomes exact per-mnemonic
//!   quota weights, and an expectation-maximization fit over the
//!   empirical [`EmissionModel`] recovers the [`InstrClass`] mixture
//!   whose emissions best explain them — used by the generator to draw
//!   operand shapes.
//!
//! The solver is deliberately *measurement-free*: it sees only the
//! target [`MnemonicMix`]. The calibrator then closes the loop against
//! real measurements.

use crate::calibrator::{CalibrateError, CalibratorConfig};
use crate::synth::{gen_instr, InstrClass};
use crate::synthspec::SynthSpec;
use hbbp_isa::{Category, Mnemonic};
use hbbp_program::MnemonicMix;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::collections::BTreeMap;
use std::sync::OnceLock;

/// Empirical per-class mnemonic emission distributions, estimated once
/// by sampling [`gen_instr`] with a fixed seed. Shared by the solver
/// (EM fit), the compiler (quota rejection sampling) and validation
/// (is a mnemonic synthesizable at all?).
#[derive(Debug, Clone)]
pub struct EmissionModel {
    /// Indexed by [`InstrClass::index`]; each entry is `(mnemonic,
    /// probability)` sorted by mnemonic, probabilities summing to 1.
    dist: Vec<Vec<(Mnemonic, f64)>>,
}

/// Draws per class for [`EmissionModel::standard`].
const STANDARD_DRAWS: u32 = 8192;
/// Seed for [`EmissionModel::standard`].
const STANDARD_SEED: u64 = 0xE111;

impl EmissionModel {
    /// Estimate the model with `draws` samples per class.
    pub fn sampled(draws: u32, seed: u64) -> EmissionModel {
        let mut dist = Vec::with_capacity(InstrClass::ALL.len());
        for (i, &class) in InstrClass::ALL.iter().enumerate() {
            let mut rng = SmallRng::seed_from_u64(seed ^ (i as u64).wrapping_mul(0x9E37_79B9));
            let mut counts: BTreeMap<Mnemonic, u32> = BTreeMap::new();
            for _ in 0..draws.max(1) {
                *counts
                    .entry(gen_instr(class, &mut rng).mnemonic())
                    .or_insert(0) += 1;
            }
            let total = f64::from(draws.max(1));
            dist.push(
                counts
                    .into_iter()
                    .map(|(m, c)| (m, f64::from(c) / total))
                    .collect(),
            );
        }
        EmissionModel { dist }
    }

    /// The shared model every caller uses (fixed draws and seed, so the
    /// whole pipeline agrees on what each class emits).
    pub fn standard() -> &'static EmissionModel {
        static MODEL: OnceLock<EmissionModel> = OnceLock::new();
        MODEL.get_or_init(|| EmissionModel::sampled(STANDARD_DRAWS, STANDARD_SEED))
    }

    /// The emission distribution of one class.
    pub fn class_dist(&self, class: InstrClass) -> &[(Mnemonic, f64)] {
        &self.dist[class.index()]
    }

    /// Probability that `class` emits `mnemonic`.
    pub fn emits(&self, class: InstrClass, mnemonic: Mnemonic) -> f64 {
        self.class_dist(class)
            .iter()
            .find(|&&(m, _)| m == mnemonic)
            .map_or(0.0, |&(_, p)| p)
    }

    /// Whether any class emits `mnemonic`.
    pub fn can_emit(&self, mnemonic: Mnemonic) -> bool {
        self.best_class(mnemonic).is_some()
    }

    /// The class most likely to emit `mnemonic` (ties break toward the
    /// earlier class in [`InstrClass::ALL`]).
    pub fn best_class(&self, mnemonic: Mnemonic) -> Option<InstrClass> {
        let mut best: Option<(InstrClass, f64)> = None;
        for &class in &InstrClass::ALL {
            let p = self.emits(class, mnemonic);
            if p > 0.0 && best.is_none_or(|(_, bp)| p > bp) {
                best = Some((class, p));
            }
        }
        best.map(|(c, _)| c)
    }

    /// Fit class weights to a per-mnemonic filler distribution by EM on
    /// the mixture `p(m) = Σ_c w_c · emits(c, m)`. Returns normalized
    /// `(class, weight)` pairs in [`InstrClass::ALL`] order, pruned of
    /// negligible classes.
    pub fn fit_classes(&self, target: &[(Mnemonic, f64)]) -> Vec<(InstrClass, f64)> {
        let total: f64 = target.iter().map(|&(_, w)| w.max(0.0)).sum();
        if total <= 0.0 {
            return vec![(InstrClass::Nop, 1.0)];
        }
        let t: Vec<f64> = target.iter().map(|&(_, w)| w.max(0.0) / total).collect();
        let n_classes = InstrClass::ALL.len();
        // a[c][m]: emission probability of target mnemonic m under class c.
        let a: Vec<Vec<f64>> = InstrClass::ALL
            .iter()
            .map(|&c| target.iter().map(|&(m, _)| self.emits(c, m)).collect())
            .collect();
        let mut w = vec![1.0 / n_classes as f64; n_classes];
        for _ in 0..300 {
            let mut next = vec![0.0; n_classes];
            for (mi, &tm) in t.iter().enumerate() {
                if tm <= 0.0 {
                    continue;
                }
                let p: f64 = (0..n_classes).map(|c| w[c] * a[c][mi]).sum();
                if p <= 0.0 {
                    continue;
                }
                for (c, nw) in next.iter_mut().enumerate() {
                    *nw += tm * w[c] * a[c][mi] / p;
                }
            }
            let norm: f64 = next.iter().sum();
            if norm <= 0.0 {
                break;
            }
            let mut delta = 0.0;
            for (c, nw) in next.iter().enumerate() {
                let v = nw / norm;
                delta += (v - w[c]).abs();
                w[c] = v;
            }
            if delta < 1e-12 {
                break;
            }
        }
        let kept: f64 = w.iter().filter(|&&x| x > 1e-4).sum();
        let mut out: Vec<(InstrClass, f64)> = InstrClass::ALL
            .iter()
            .zip(&w)
            .filter(|&(_, &x)| x > 1e-4)
            .map(|(&c, &x)| (c, x / kept))
            .collect();
        if out.is_empty() {
            out.push((InstrClass::Nop, 1.0));
        }
        out
    }
}

/// Largest-remainder apportionment of `total` integer units to weights:
/// the result sums to exactly `total`, each entry within one unit of its
/// exact share. Deterministic (remainder ties break toward lower index).
pub fn apportion(weights: &[f64], total: usize) -> Vec<usize> {
    let wsum: f64 = weights.iter().map(|w| w.max(0.0)).sum();
    if wsum <= 0.0 || weights.is_empty() {
        let mut out = vec![0; weights.len()];
        if let Some(first) = out.first_mut() {
            *first = total;
        }
        return out;
    }
    let exact: Vec<f64> = weights
        .iter()
        .map(|w| w.max(0.0) / wsum * total as f64)
        .collect();
    let mut out: Vec<usize> = exact.iter().map(|&e| e.floor() as usize).collect();
    let assigned: usize = out.iter().sum();
    let mut order: Vec<usize> = (0..weights.len()).collect();
    order.sort_by(|&i, &j| {
        let ri = exact[i] - exact[i].floor();
        let rj = exact[j] - exact[j].floor();
        rj.partial_cmp(&ri)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(i.cmp(&j))
    });
    for k in 0..total.saturating_sub(assigned) {
        out[order[k % order.len()]] += 1;
    }
    out
}

/// What [`solve`] produced: the initial spec plus the share of the
/// target that no instruction class can emit (it is excluded from the
/// filler quotas and becomes irreducible distance).
#[derive(Debug, Clone)]
pub struct SolveOutcome {
    /// The initial, un-calibrated spec.
    pub spec: SynthSpec,
    /// Target share carried by non-synthesizable mnemonics, in `[0, 1]`.
    pub unmatchable: f64,
}

/// Solve a target mix into an initial [`SynthSpec`] (closed-form
/// structure + EM class fit; no measurements).
///
/// # Errors
///
/// [`CalibrateError::EmptyTarget`] if the target has no weight.
pub fn solve(target: &MnemonicMix, cfg: &CalibratorConfig) -> Result<SolveOutcome, CalibrateError> {
    let total = target.total();
    if total <= 0.0 {
        return Err(CalibrateError::EmptyTarget);
    }
    let em = EmissionModel::standard();
    let mut s_jcc = 0.0;
    let mut s_jmp = 0.0;
    let mut s_call = 0.0;
    let mut jcc: Vec<(Mnemonic, f64)> = Vec::new();
    let mut fill: Vec<(Mnemonic, f64)> = Vec::new();
    let mut s_fill = 0.0;
    let mut unmatchable = 0.0;
    for (m, c) in target.iter() {
        let share = c / total;
        if share <= 0.0 {
            continue;
        }
        match m.category() {
            Category::CondBranch => {
                s_jcc += share;
                jcc.push((m, share));
            }
            Category::UncondBranch => s_jmp += share,
            Category::Call => s_call += share,
            // Returns are paired with calls; the exit syscall is one
            // instruction per run. Neither is an independent knob.
            Category::Ret | Category::System => {}
            _ if em.can_emit(m) => {
                s_fill += share;
                fill.push((m, share));
            }
            _ => unmatchable += share,
        }
    }
    if jcc.is_empty() {
        jcc.push((Mnemonic::Jnz, 1.0));
    } else {
        let jt: f64 = jcc.iter().map(|&(_, w)| w).sum();
        for (_, w) in &mut jcc {
            *w /= jt;
        }
    }
    if fill.is_empty() {
        fill.push((Mnemonic::Nop, 1.0));
    } else {
        for (_, w) in &mut fill {
            *w /= s_fill;
        }
    }

    let n = cfg.blocks.max(4);
    let r_call = if s_jcc > 0.0 { s_call / s_jcc } else { 0.0 };
    let call_blocks = (((n as f64) * r_call / (1.0 + r_call)).round() as usize).min(n / 2);
    let jcc_sites = (n - call_blocks) as f64;
    let hop_sites = (n - 1 - call_blocks) as f64;
    let jmp_prob = if s_jcc > 0.0 && hop_sites > 0.0 {
        ((s_jmp / s_jcc) * jcc_sites / hop_sites).clamp(0.0, 0.95)
    } else {
        0.0
    };
    // Instructions per chain iteration implied by the branch share, and
    // the filler budget left once branches, hops, calls and returns are
    // spent.
    let t_e = if s_jcc > 0.0 {
        jcc_sites / s_jcc
    } else {
        64.0 * n as f64
    };
    let struct_per_e = jcc_sites + 2.0 * call_blocks as f64 + jmp_prob * hop_sites;
    let fill_per_e = (t_e - struct_per_e).max(n as f64);
    let body_len = (fill_per_e / (n + call_blocks) as f64).clamp(1.0, 64.0);
    let leaf_len = (body_len.round() as usize).max(1);
    let inner_trips = cfg.inner_trips.max(2);
    let dynamic_per_e = t_e.max(n as f64);
    let outer_iterations = ((cfg.target_dynamic as f64 / (dynamic_per_e * inner_trips as f64))
        .round() as u64)
        .clamp(8, 100_000);

    let classes = em.fit_classes(&fill);
    let spec = SynthSpec {
        name: cfg.name.clone(),
        seed: cfg.seed,
        blocks: n,
        body_len,
        jmp_prob,
        call_blocks,
        leaf_len,
        inner_trips,
        outer_iterations,
        classes,
        jcc,
        fill,
    };
    Ok(SolveOutcome { spec, unmatchable })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emission_model_covers_every_class() {
        let em = EmissionModel::standard();
        for &c in &InstrClass::ALL {
            let dist = em.class_dist(c);
            assert!(!dist.is_empty(), "{c:?} emits nothing");
            let total: f64 = dist.iter().map(|&(_, p)| p).sum();
            assert!((total - 1.0).abs() < 1e-9, "{c:?} sums to {total}");
        }
        assert!(em.can_emit(Mnemonic::Add));
        assert!(em.can_emit(Mnemonic::Addps));
        assert!(!em.can_emit(Mnemonic::Jmp), "branches are structural");
        assert_eq!(em.best_class(Mnemonic::Nop), Some(InstrClass::Nop));
    }

    #[test]
    fn fit_classes_recovers_a_dominant_mixture() {
        let em = EmissionModel::standard();
        // A synthetic filler target: 80% IntAlu emissions, 20% Load.
        let mut target: Vec<(Mnemonic, f64)> = em
            .class_dist(InstrClass::IntAlu)
            .iter()
            .map(|&(m, p)| (m, 0.8 * p))
            .collect();
        target.push((Mnemonic::Mov, 0.2));
        let fit = em.fit_classes(&target);
        let alu = fit
            .iter()
            .find(|&&(c, _)| c == InstrClass::IntAlu)
            .map_or(0.0, |&(_, w)| w);
        assert!(alu > 0.6, "IntAlu weight {alu}, fit {fit:?}");
        let total: f64 = fit.iter().map(|&(_, w)| w).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn apportion_sums_exactly_and_stays_within_one_unit() {
        let w = [0.5, 0.25, 0.125, 0.125];
        let out = apportion(&w, 1003);
        assert_eq!(out.iter().sum::<usize>(), 1003);
        for (i, &c) in out.iter().enumerate() {
            let exact = w[i] / 1.0 * 1003.0;
            assert!((c as f64 - exact).abs() < 1.0, "entry {i}: {c} vs {exact}");
        }
        // Degenerate weights fall back to the first entry.
        assert_eq!(apportion(&[0.0, 0.0], 7), vec![7, 0]);
    }

    #[test]
    fn solve_decomposes_structure_from_shares() {
        // A hand-built target: 10% conditional branches of two flavours,
        // ~1% jumps, ~1% calls+rets, the rest integer filler.
        let mut target = MnemonicMix::new();
        target.add(Mnemonic::Jnz, 60.0);
        target.add(Mnemonic::Jle, 40.0);
        target.add(Mnemonic::Jmp, 10.0);
        target.add(Mnemonic::CallNear, 10.0);
        target.add(Mnemonic::RetNear, 10.0);
        target.add(Mnemonic::Add, 500.0);
        target.add(Mnemonic::Mov, 370.0);
        let cfg = CalibratorConfig::default();
        let out = solve(&target, &cfg).expect("solvable");
        let spec = &out.spec;
        assert_eq!(spec.blocks, cfg.blocks);
        assert!(spec.call_blocks > 0, "calls must map to call sites");
        assert!(spec.jmp_prob > 0.0 && spec.jmp_prob < 0.5);
        // body_len ≈ filler per branch: ~870/100 ≈ 8.7 minus structure.
        assert!(
            spec.body_len > 4.0 && spec.body_len < 12.0,
            "body_len {}",
            spec.body_len
        );
        assert_eq!(out.unmatchable, 0.0);
        assert_eq!(spec.jcc.len(), 2);
        spec.validate().expect("solver output validates");
    }

    #[test]
    fn solve_rejects_an_empty_target() {
        let cfg = CalibratorConfig::default();
        assert!(matches!(
            solve(&MnemonicMix::new(), &cfg),
            Err(CalibrateError::EmptyTarget)
        ));
    }
}

//! The calibrator: compile a [`SynthSpec`] into a [`Workload`] and close
//! the generate → measure → compare → adjust loop.
//!
//! [`compile`] is fully deterministic: the same spec (and its embedded
//! seed) reproduces the identical program, layout and branch oracle —
//! which is what makes a calibrated spec a *reproducibility contract*
//! rather than a description. Filler instructions are allocated by
//! largest-remainder quotas over the spec's per-mnemonic weights (every
//! quota slot executes the same number of times by construction), so the
//! realized dynamic filler mix matches the spec to within one slot per
//! mnemonic instead of drifting by sampling noise.
//!
//! [`calibrate`] is measurement-agnostic: it takes the measurement as a
//! closure (`spec → measured MnemonicMix`), because this crate sits
//! *below* the perf/analysis stack in the dependency graph. The CLI
//! injects the real pipeline (record via `PerfSession`, `analyze_fused`,
//! hybrid fold); tests and benches can inject [`true_mix`] — the exact
//! walked mix — to exercise solver/calibrator semantics hermetically.
//! Acceptance is best-so-far: a step that does not improve the measured
//! distance is rolled back and the adjustment step is damped, so the
//! accepted-distance sequence is non-increasing by construction and the
//! loop always terminates within its iteration cap.

use crate::solver::{apportion, solve, EmissionModel};
use crate::synth::{gen_instr, Behavior, BehaviorMap, MixProfile};
use crate::synthspec::{SpecError, SynthSpec};
use crate::workload::Workload;
use hbbp_instrument::CostModel;
use hbbp_isa::{instruction::build, Instruction, Mnemonic};
use hbbp_program::{MnemonicMix, ProgramBuilder, Ring, Walker};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::fmt;

/// Errors from solving or calibrating.
#[derive(Debug, Clone, PartialEq)]
pub enum CalibrateError {
    /// The target mix has no weight.
    EmptyTarget,
    /// The candidate spec was structurally invalid.
    Spec(SpecError),
    /// The injected measurement failed.
    Measure(String),
}

impl fmt::Display for CalibrateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CalibrateError::EmptyTarget => write!(f, "target mix is empty"),
            CalibrateError::Spec(e) => write!(f, "{e}"),
            CalibrateError::Measure(m) => write!(f, "measurement failed: {m}"),
        }
    }
}

impl std::error::Error for CalibrateError {}

impl From<SpecError> for CalibrateError {
    fn from(e: SpecError) -> CalibrateError {
        CalibrateError::Spec(e)
    }
}

/// Knobs of one calibration run.
#[derive(Debug, Clone)]
pub struct CalibratorConfig {
    /// Name given to the generated workload.
    pub name: String,
    /// Generation seed embedded in the spec.
    pub seed: u64,
    /// Convergence target: measured-vs-target total-variation distance.
    pub tolerance: f64,
    /// Maximum measurement iterations (including the first).
    pub max_iters: usize,
    /// Chain blocks in the generated hot loop.
    pub blocks: usize,
    /// Inner backedge trip count.
    pub inner_trips: u64,
    /// Approximate dynamic instructions per measurement run (sets the
    /// outer trip count; more instructions → denser sampling → lower
    /// measurement noise floor).
    pub target_dynamic: u64,
}

impl Default for CalibratorConfig {
    fn default() -> CalibratorConfig {
        CalibratorConfig {
            name: "synth".to_string(),
            seed: 0xC411B,
            tolerance: 0.02,
            max_iters: 24,
            blocks: 96,
            inner_trips: 32,
            target_dynamic: 1_200_000,
        }
    }
}

/// One measurement iteration of the calibrator.
#[derive(Debug, Clone, Copy)]
pub struct CalibrationStep {
    /// 1-based iteration number.
    pub iter: usize,
    /// Measured-vs-target total-variation distance of this candidate.
    pub distance: f64,
    /// Whether the candidate improved on the best so far.
    pub accepted: bool,
    /// Candidate body length.
    pub body_len: f64,
    /// Candidate hop probability.
    pub jmp_prob: f64,
}

/// The result of a calibration run.
#[derive(Debug, Clone)]
pub struct Calibration {
    /// The best spec found.
    pub spec: SynthSpec,
    /// Its measured-vs-target total-variation distance.
    pub distance: f64,
    /// Its measured mix.
    pub measured: MnemonicMix,
    /// Whether `distance <= tolerance`.
    pub converged: bool,
    /// Measurement iterations performed.
    pub iterations: usize,
    /// Every iteration, in order.
    pub steps: Vec<CalibrationStep>,
    /// Target share carried by non-synthesizable mnemonics.
    pub unmatchable: f64,
}

/// Compile a spec into a deterministic workload.
///
/// Program shape: an entry block jumps into a chain of `blocks` filler
/// blocks. Non-call chain blocks end in a conditional whose taken edge
/// continues the chain and whose fallthrough (probability `jmp_prob`)
/// detours through a one-`JMP` hop block; call positions end in a `CALL`
/// to a private leaf. The last chain block's conditional is the inner
/// backedge (`Trips(inner_trips)`); a latch block closes the outer loop
/// (`Trips(outer_iterations)`) and falls through to a `SYSCALL` exit.
///
/// # Errors
///
/// [`SpecError`] if the spec fails [`SynthSpec::validate`].
pub fn compile(spec: &SynthSpec) -> Result<Workload, SpecError> {
    spec.validate()?;
    let em = EmissionModel::standard();
    for &(m, _) in &spec.fill {
        if !em.can_emit(m) {
            return Err(SpecError::Invalid(format!(
                "fill mnemonic {} is not synthesizable by any instruction class",
                m.name()
            )));
        }
    }
    let mut rng = SmallRng::seed_from_u64(spec.seed);
    let n = spec.blocks;
    let cb = spec.call_blocks;
    // Filler budget: chain slots (largest-remainder split across blocks)
    // plus one private leaf body per call site. Every one of these slots
    // executes exactly inner_trips · outer_iterations times, so exact
    // slot quotas mean exact dynamic filler shares.
    let chain_total = ((spec.body_len * n as f64).round() as usize).max(n);
    let chain_lens = apportion(&vec![1.0; n], chain_total);
    let slot_total = chain_total + cb * spec.leaf_len;
    let fill_weights: Vec<f64> = spec.fill.iter().map(|&(_, w)| w).collect();
    let mut remaining: Vec<(Mnemonic, usize)> = spec
        .fill
        .iter()
        .map(|&(m, _)| m)
        .zip(apportion(&fill_weights, slot_total))
        .collect();
    let profile = MixProfile::new(spec.classes.clone());
    let quota_instr = |rng: &mut SmallRng, remaining: &mut Vec<(Mnemonic, usize)>| {
        for _ in 0..64 {
            let i = gen_instr(profile.sample(rng), rng);
            if let Some(slot) = remaining
                .iter_mut()
                .find(|(m, left)| *m == i.mnemonic() && *left > 0)
            {
                slot.1 -= 1;
                return i;
            }
        }
        // Rejection stalled: force the most-needed mnemonic through its
        // best-emitting class.
        let (want, _) = *remaining
            .iter()
            .filter(|&&(_, left)| left > 0)
            .max_by(|a, b| a.1.cmp(&b.1).then(b.0.opcode().cmp(&a.0.opcode())))
            .expect("quota slots remain while filling");
        let class = em.best_class(want).expect("fill mnemonics are emittable");
        loop {
            let i = gen_instr(class, rng);
            if i.mnemonic() == want {
                let slot = remaining
                    .iter_mut()
                    .find(|&&mut (m, _)| m == want)
                    .expect("mnemonic in quota table");
                slot.1 -= 1;
                return i;
            }
        }
    };

    let mut b = ProgramBuilder::new(spec.name.as_str());
    let module = b.module(format!("{}.bin", spec.name), Ring::User);
    let mut behaviors = BehaviorMap::new();
    // One private leaf per call site: every quota slot (chain or leaf)
    // then executes the same number of times.
    let mut leaves = Vec::with_capacity(cb);
    for k in 0..cb {
        let f = b.function(module, format!("leaf{k}"));
        let blk = b.block(f);
        let body: Vec<Instruction> = (0..spec.leaf_len)
            .map(|_| quota_instr(&mut rng, &mut remaining))
            .collect();
        b.push_all(blk, body);
        b.terminate_ret(blk);
        leaves.push(f);
    }
    let main = b.function(module, "main");
    let entry = b.block(main);
    let first = b.block(main);
    // Call positions spread evenly over the chain (never the last block,
    // which carries the inner backedge).
    let call_pos: Vec<usize> = (0..cb).map(|k| k * (n - 1) / cb.max(1)).collect();
    // Conditional flavours apportioned exactly across the branch sites
    // (non-call chain blocks + the latch), which execute uniformly.
    let jcc_weights: Vec<f64> = spec.jcc.iter().map(|&(_, w)| w).collect();
    let jcc_counts = apportion(&jcc_weights, n - cb + 1);
    let mut flavors: Vec<Mnemonic> = spec
        .jcc
        .iter()
        .zip(&jcc_counts)
        .flat_map(|(&(m, _), &c)| std::iter::repeat_n(m, c))
        .collect();
    flavors.reverse(); // consume via pop() in site order

    b.push_all(entry, profile.gen_block_body(2, &mut rng));
    b.terminate_jump(entry, first);
    // Blocks are created in layout order as the chain unrolls: each
    // site's successor (hop, then next chain block) directly follows it,
    // satisfying the builder's fallthrough-adjacency rule.
    let mut cur = first;
    for (i, &chain_len) in chain_lens.iter().enumerate().take(n) {
        let body: Vec<Instruction> = (0..chain_len)
            .map(|_| quota_instr(&mut rng, &mut remaining))
            .collect();
        b.push_all(cur, body);
        if i + 1 == n {
            break;
        }
        if let Some(k) = call_pos.iter().position(|&p| p == i) {
            let next = b.block(main);
            b.terminate_call(cur, leaves[k], next);
            cur = next;
        } else {
            let hop = b.block(main);
            let next = b.block(main);
            // Taken edge continues the chain (the common case — real code
            // takes a branch every handful of instructions, and the LBR
            // collector needs that density); the rarer fallthrough detours
            // through the one-JMP hop.
            b.terminate_branch(cur, flavors.pop().expect("site flavour"), next, hop);
            behaviors.set(cur, Behavior::Prob(1.0 - spec.jmp_prob));
            b.terminate_jump(hop, next);
            cur = next;
        }
    }
    debug_assert!(remaining.iter().all(|&(_, left)| left == 0));
    let latch = b.block(main);
    let exit = b.block(main);
    b.terminate_branch(cur, flavors.pop().expect("backedge flavour"), first, latch);
    behaviors.set(cur, Behavior::Trips(spec.inner_trips));
    b.push_all(latch, profile.gen_block_body(1, &mut rng));
    b.terminate_branch(latch, flavors.pop().expect("latch flavour"), first, exit);
    behaviors.set(latch, Behavior::Trips(spec.outer_iterations));
    b.push_all(exit, profile.gen_block_body(1, &mut rng));
    b.terminate_exit(exit, build::bare(Mnemonic::Syscall));
    let program = b
        .build(main)
        .map_err(|e| SpecError::Invalid(format!("generated program invalid: {e:?}")))?;
    Ok(Workload::from_program(
        spec.name.clone(),
        program,
        behaviors,
        spec.seed ^ 0x5EED,
        CostModel::default(),
    ))
}

/// The exact dynamic mix of a workload, by walking it to completion with
/// its own oracle — ground truth with no estimator in the loop. This is
/// the hermetic measurement used by solver/calibrator tests and benches;
/// the CLI injects the real record → analyze pipeline instead.
pub fn true_mix(workload: &Workload) -> MnemonicMix {
    let program = workload.program();
    let mut execs = vec![0u64; program.block_count()];
    let mut walker = Walker::new(program, workload.oracle());
    while let Some(bid) = walker.next_block() {
        execs[bid.index()] += 1;
    }
    let mut mix = MnemonicMix::new();
    for block in program.blocks() {
        let e = execs[block.id().index()];
        if e > 0 {
            mix.add_block(block.instrs(), e as f64);
        }
    }
    mix
}

/// Run the calibration loop: solve an initial spec, then repeatedly
/// measure, compare (total-variation distance) and adjust until the
/// distance reaches `cfg.tolerance` or `cfg.max_iters` measurements are
/// spent. See the module docs for acceptance semantics.
///
/// # Errors
///
/// [`CalibrateError::EmptyTarget`] for a weightless target;
/// [`CalibrateError::Measure`] if the injected measurement fails.
pub fn calibrate(
    target: &MnemonicMix,
    cfg: &CalibratorConfig,
    measure: &mut dyn FnMut(&SynthSpec) -> Result<MnemonicMix, String>,
) -> Result<Calibration, CalibrateError> {
    let outcome = solve(target, cfg)?;
    let unmatchable = outcome.unmatchable;
    let mut current = outcome.spec;
    let mut best: Option<(SynthSpec, f64, MnemonicMix)> = None;
    let mut eta = 1.0;
    let mut steps = Vec::new();
    let max_iters = cfg.max_iters.max(1);
    for iter in 1..=max_iters {
        let measured = measure(&current).map_err(CalibrateError::Measure)?;
        let distance = target.tv_distance(&measured);
        let accepted = best.as_ref().is_none_or(|&(_, bd, _)| distance < bd);
        steps.push(CalibrationStep {
            iter,
            distance,
            accepted,
            body_len: current.body_len,
            jmp_prob: current.jmp_prob,
        });
        if accepted {
            best = Some((current.clone(), distance, measured));
        } else {
            eta *= 0.5;
        }
        let (best_spec, best_distance, best_measured) =
            best.as_ref().expect("first iteration is always accepted");
        if *best_distance <= cfg.tolerance || iter == max_iters {
            break;
        }
        current = refine(best_spec, target, best_measured, eta);
    }
    let (spec, distance, measured) = best.expect("at least one measurement");
    Ok(Calibration {
        converged: distance <= cfg.tolerance,
        iterations: steps.len(),
        spec,
        distance,
        measured,
        steps,
        unmatchable,
    })
}

/// One damped multiplicative adjustment of a spec toward the target,
/// using the measured mix of that same spec as feedback. Deterministic.
fn refine(spec: &SynthSpec, target: &MnemonicMix, measured: &MnemonicMix, eta: f64) -> SynthSpec {
    let mut next = spec.clone();
    let (tt, mt) = (target.total(), measured.total());
    if tt <= 0.0 || mt <= 0.0 {
        return next;
    }
    let share_t = |m: Mnemonic| target.get(m) / tt;
    let share_m = |m: Mnemonic| measured.get(m) / mt;
    let sum_cat = |mix: &MnemonicMix, cat: hbbp_isa::Category| -> f64 {
        mix.iter()
            .filter(|&(m, _)| m.category() == cat)
            .map(|(_, c)| c)
            .sum()
    };
    // Structure: too much measured branch share means blocks are too
    // short — lengthen bodies (and vice versa).
    let t_jcc = sum_cat(target, hbbp_isa::Category::CondBranch) / tt;
    let m_jcc = sum_cat(measured, hbbp_isa::Category::CondBranch) / mt;
    if t_jcc > 1e-9 && m_jcc > 1e-9 {
        next.body_len = (spec.body_len * (m_jcc / t_jcc).powf(eta)).clamp(1.0, 64.0);
        next.leaf_len = (next.body_len.round() as usize).max(1);
    }
    let t_jmp = share_t(Mnemonic::Jmp);
    let m_jmp = share_m(Mnemonic::Jmp);
    if t_jmp > 1e-9 {
        let factor = if m_jmp > 1e-9 {
            (t_jmp / m_jmp).powf(eta).clamp(0.25, 4.0)
        } else {
            1.0 + eta
        };
        next.jmp_prob = (spec.jmp_prob.max(1e-4) * factor).clamp(0.0, 0.95);
    }
    // Filler: per-mnemonic multiplicative reweighting. Global-share
    // ratios are used; the common filler-total factor washes out in
    // renormalization.
    let mut total = 0.0;
    for (m, w) in &mut next.fill {
        let (t, me) = (share_t(*m), share_m(*m));
        let factor = if t > 1e-12 && me > 1e-12 {
            (t / me).powf(eta).clamp(0.25, 4.0)
        } else if t > 1e-12 {
            1.0 + eta
        } else {
            1.0 / (1.0 + eta)
        };
        *w *= factor;
        total += *w;
    }
    if total > 0.0 {
        for (_, w) in &mut next.fill {
            *w /= total;
        }
    }
    next
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::InstrClass;

    fn small_cfg(name: &str) -> CalibratorConfig {
        CalibratorConfig {
            name: name.to_string(),
            seed: 0xABCD,
            tolerance: 0.01,
            max_iters: 6,
            blocks: 24,
            inner_trips: 8,
            target_dynamic: 40_000,
        }
    }

    fn int_target() -> MnemonicMix {
        let mut t = MnemonicMix::new();
        t.add(Mnemonic::Jnz, 80.0);
        t.add(Mnemonic::Jle, 20.0);
        t.add(Mnemonic::Jmp, 12.0);
        t.add(Mnemonic::CallNear, 8.0);
        t.add(Mnemonic::RetNear, 8.0);
        t.add(Mnemonic::Add, 300.0);
        t.add(Mnemonic::Sub, 120.0);
        t.add(Mnemonic::Mov, 350.0);
        t.add(Mnemonic::Cmp, 100.0);
        t
    }

    #[test]
    fn compile_is_deterministic_and_respects_quotas() {
        let cfg = small_cfg("det");
        let spec = solve(&int_target(), &cfg).unwrap().spec;
        let w1 = compile(&spec).expect("compiles");
        let w2 = compile(&spec).expect("compiles");
        // Identical instruction streams, block by block.
        assert_eq!(w1.program().block_count(), w2.program().block_count());
        for (a, b) in w1.program().blocks().zip(w2.program().blocks()) {
            assert_eq!(a.instrs(), b.instrs());
        }
        // And identical walks.
        assert_eq!(
            true_mix(&w1).iter().collect::<Vec<_>>(),
            true_mix(&w2).iter().collect::<Vec<_>>()
        );
    }

    #[test]
    fn compiled_true_mix_tracks_the_solved_target() {
        let cfg = small_cfg("tracks");
        let target = int_target();
        let spec = solve(&target, &cfg).unwrap().spec;
        let mix = true_mix(&compile(&spec).expect("compiles"));
        let d = target.tv_distance(&mix);
        // Even before calibration the quota generator should land close:
        // structure is closed-form and filler slots are exact.
        assert!(d < 0.05, "first-shot distance {d}");
    }

    #[test]
    fn calibrate_with_true_mix_converges_and_is_monotonic() {
        let cfg = small_cfg("conv");
        let target = int_target();
        let mut measure = |spec: &SynthSpec| -> Result<MnemonicMix, String> {
            Ok(true_mix(&compile(spec).map_err(|e| e.to_string())?))
        };
        let cal = calibrate(&target, &cfg, &mut measure).expect("calibrates");
        assert!(cal.iterations <= cfg.max_iters);
        assert!(
            cal.converged,
            "distance {} > tolerance {}",
            cal.distance, cfg.tolerance
        );
        let accepted: Vec<f64> = cal
            .steps
            .iter()
            .filter(|s| s.accepted)
            .map(|s| s.distance)
            .collect();
        assert!(
            accepted.windows(2).all(|w| w[1] < w[0]),
            "accepted distances must strictly improve: {accepted:?}"
        );
        assert_eq!(cal.distance, *accepted.last().unwrap());
    }

    #[test]
    fn measurement_errors_surface() {
        let cfg = small_cfg("err");
        let mut measure =
            |_: &SynthSpec| -> Result<MnemonicMix, String> { Err("pmu on fire".to_string()) };
        match calibrate(&int_target(), &cfg, &mut measure) {
            Err(CalibrateError::Measure(m)) => assert!(m.contains("pmu on fire")),
            other => panic!("expected measure error, got {other:?}"),
        }
    }

    #[test]
    fn compile_rejects_unsynthesizable_fill() {
        let cfg = small_cfg("bad");
        let mut spec = solve(&int_target(), &cfg).unwrap().spec;
        spec.fill.push((Mnemonic::NopMulti, 0.1));
        match compile(&spec) {
            Err(SpecError::Invalid(m)) => assert!(m.contains("not synthesizable"), "{m}"),
            other => panic!("expected invalid, got {other:?}"),
        }
        let _ = InstrClass::ALL;
    }
}

//! The [`Workload`] type and the generic benchmark generator.

use crate::synth::{emit_function, Behavior, BehaviorMap, MixProfile, Segment, SynthOracle};
use hbbp_instrument::{CostModel, MiscountFault};
use hbbp_isa::instruction::build;
use hbbp_isa::Mnemonic;
use hbbp_program::{
    BlockMap, FunctionId, ImageView, Layout, Program, ProgramBuilder, Ring, TextImage,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// How big a workload run should be.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Scale {
    /// Minimal: for unit tests (≈10⁵ dynamic instructions).
    Tiny,
    /// Default for experiments (≈10⁶–10⁷ dynamic instructions).
    #[default]
    Small,
    /// Long runs (≈10⁸ dynamic instructions); closest to paper conditions.
    Full,
}

impl Scale {
    /// Multiplier applied to outer iteration counts.
    pub fn multiplier(self) -> u64 {
        match self {
            Scale::Tiny => 1,
            Scale::Small => 10,
            Scale::Full => 120,
        }
    }
}

/// A fully generated workload: program, layout, branch behaviours and the
/// instrumentation cost profile.
#[derive(Debug, Clone)]
pub struct Workload {
    name: String,
    program: Program,
    layout: Layout,
    behaviors: BehaviorMap,
    oracle_seed: u64,
    sde_cost: CostModel,
    sde_fault: Option<MiscountFault>,
}

impl Workload {
    /// Wrap a built (unlaid-out) program into a workload.
    ///
    /// # Panics
    ///
    /// Panics if layout fails (displacement overflow — generated programs
    /// never trigger it).
    pub fn from_program(
        name: impl Into<String>,
        mut program: Program,
        behaviors: BehaviorMap,
        oracle_seed: u64,
        sde_cost: CostModel,
    ) -> Workload {
        let layout = Layout::compute(&mut program).expect("layout");
        Workload {
            name: name.into(),
            program,
            layout,
            behaviors,
            oracle_seed,
            sde_cost,
            sde_fault: None,
        }
    }

    /// Attach an instrumentation defect (the x264ref SDE bug).
    pub fn with_sde_fault(mut self, fault: MiscountFault) -> Workload {
        self.sde_fault = Some(fault);
        self
    }

    /// Replay the same program under a different branch-oracle seed — one
    /// *binary*, many *runs*: the text images and block map stay
    /// identical while any probabilistic branch behaviours
    /// ([`Behavior`]s that draw from the oracle's RNG) diverge per seed.
    /// Purely trip-driven workloads are seed-invariant.
    pub fn with_oracle_seed(mut self, seed: u64) -> Workload {
        self.oracle_seed = seed;
        self
    }

    /// Workload name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The address layout.
    pub fn layout(&self) -> &Layout {
        &self.layout
    }

    /// Fresh oracle replaying this workload's execution.
    pub fn oracle(&self) -> SynthOracle {
        self.behaviors.oracle(self.oracle_seed)
    }

    /// Branch behaviour map (for inspection/tests).
    pub fn behaviors(&self) -> &BehaviorMap {
        &self.behaviors
    }

    /// Instrumentation cost profile for this workload.
    pub fn sde_cost(&self) -> &CostModel {
        &self.sde_cost
    }

    /// Injected instrumentation defect, if any.
    pub fn sde_fault(&self) -> Option<MiscountFault> {
        self.sde_fault
    }

    /// Encode all module text images in the given view.
    pub fn images(&self, view: ImageView) -> Vec<TextImage> {
        self.program
            .modules()
            .iter()
            .map(|m| TextImage::encode(&self.program, &self.layout, m.id(), view))
            .collect()
    }

    /// Discover the static block map from the given image view.
    ///
    /// # Panics
    ///
    /// Panics if the images fail to decode (impossible for generated
    /// programs).
    pub fn block_map(&self, view: ImageView) -> BlockMap {
        BlockMap::discover(&self.images(view), self.layout.symbols()).expect("discover")
    }
}

/// Spec for the generic benchmark generator.
#[derive(Debug, Clone)]
pub struct GenSpec {
    /// Benchmark name.
    pub name: &'static str,
    /// Instruction mix of generated bodies.
    pub mix: MixProfile,
    /// Inclusive range of loop/straight body lengths (instructions).
    pub block_len: (usize, usize),
    /// Number of hot functions.
    pub n_hot_fns: usize,
    /// Structural segments per hot function.
    pub segments_per_fn: usize,
    /// Inclusive range of loop trip counts.
    pub loop_trips: (u64, u64),
    /// Fraction of segments that are if/else diamonds.
    pub diamond_frac: f64,
    /// Fraction of segments that call a leaf function.
    pub call_frac: f64,
    /// Fraction of loop segments whose bodies are long (22–34
    /// instructions) regardless of `block_len` — math kernels inside
    /// otherwise short-block code.
    pub long_block_frac: f64,
    /// Fraction of long-bodied loops emitted as chained multi-block loops
    /// (the Table 3 shape) instead of single self-loops.
    pub chain_frac: f64,
    /// Inclusive range of chain lengths for chained loops.
    pub chain_blocks: (usize, usize),
    /// Number of leaf functions.
    pub n_leaf_fns: usize,
    /// Inclusive range of leaf body lengths.
    pub leaf_len: (usize, usize),
    /// Driver-loop iterations at Scale::Tiny.
    pub outer_iterations: u64,
    /// Instrumentation cost profile.
    pub sde_cost: CostModel,
    /// Generation seed (distinct per benchmark).
    pub seed: u64,
}

impl Default for GenSpec {
    fn default() -> GenSpec {
        GenSpec {
            name: "generic",
            mix: MixProfile::int_heavy(),
            block_len: (6, 18),
            n_hot_fns: 4,
            segments_per_fn: 5,
            loop_trips: (8, 64),
            diamond_frac: 0.25,
            call_frac: 0.15,
            long_block_frac: 0.0,
            chain_frac: 0.35,
            chain_blocks: (3, 5),
            n_leaf_fns: 3,
            leaf_len: (3, 10),
            outer_iterations: 120,
            sde_cost: CostModel::default(),
            seed: 0xABCD,
        }
    }
}

/// Generate a workload from a spec at a scale.
pub fn generate(spec: &GenSpec, scale: Scale) -> Workload {
    let mut rng = SmallRng::seed_from_u64(spec.seed);
    let mut b = ProgramBuilder::new(spec.name);
    let module = b.module(format!("{}.bin", spec.name), Ring::User);
    let mut behaviors = BehaviorMap::new();

    // Leaf functions.
    let leaves: Vec<FunctionId> = (0..spec.n_leaf_fns)
        .map(|i| {
            let f = b.function(module, format!("leaf_{i}"));
            let len = rng.random_range(spec.leaf_len.0..=spec.leaf_len.1);
            emit_function(
                &mut b,
                f,
                &[Segment::Straight { len }],
                &spec.mix,
                &mut behaviors,
                &mut rng,
            );
            f
        })
        .collect();

    // Hot functions.
    let hot: Vec<FunctionId> = (0..spec.n_hot_fns)
        .map(|i| {
            let f = b.function(module, format!("hot_{i}"));
            let segments: Vec<Segment> = (0..spec.segments_per_fn)
                .map(|_| {
                    let roll: f64 = rng.random();
                    let len = rng.random_range(spec.block_len.0..=spec.block_len.1);
                    if roll < spec.diamond_frac {
                        Segment::Diamond {
                            then_len: len,
                            else_len: rng.random_range(spec.block_len.0..=spec.block_len.1),
                            taken_prob: rng.random_range(0.15..0.85),
                        }
                    } else if roll < spec.diamond_frac + spec.call_frac && !leaves.is_empty() {
                        Segment::Call {
                            callee: leaves[rng.random_range(0..leaves.len())],
                        }
                    } else {
                        let body_len = if rng.random::<f64>() < spec.long_block_frac {
                            rng.random_range(22..=34)
                        } else {
                            len
                        };
                        let trips = rng.random_range(spec.loop_trips.0..=spec.loop_trips.1);
                        if body_len > 20 && rng.random::<f64>() < spec.chain_frac {
                            Segment::ChainLoop {
                                body_len,
                                trips,
                                blocks: rng.random_range(spec.chain_blocks.0..=spec.chain_blocks.1),
                            }
                        } else {
                            Segment::Loop { body_len, trips }
                        }
                    }
                })
                .collect();
            emit_function(&mut b, f, &segments, &spec.mix, &mut behaviors, &mut rng);
            f
        })
        .collect();

    // Driver: main calls every hot function per outer iteration.
    let main = b.function(module, "main");
    let entry = b.block(main);
    b.push_all(entry, spec.mix.gen_block_body(3, &mut rng));
    let loop_head = b.block(main);
    b.terminate_jump(entry, loop_head);
    b.push_all(loop_head, spec.mix.gen_block_body(2, &mut rng));
    let mut current = loop_head;
    for &f in &hot {
        let ret_to = b.block(main);
        b.terminate_call(current, f, ret_to);
        b.push_all(ret_to, spec.mix.gen_block_body(1, &mut rng));
        current = ret_to;
    }
    let exit = b.block(main);
    let trips = spec.outer_iterations * scale.multiplier();
    b.terminate_branch(current, Mnemonic::Jnz, loop_head, exit);
    behaviors.set(current, Behavior::Trips(trips.max(1)));
    b.terminate_exit(exit, build::bare(Mnemonic::Syscall));

    let program = b.build(main).expect("generated program is valid");
    Workload::from_program(
        spec.name,
        program,
        behaviors,
        spec.seed ^ 0x5eed,
        spec.sde_cost.clone(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbbp_instrument::Instrumenter;
    use hbbp_sim::Cpu;

    #[test]
    fn generated_workload_runs_and_matches_ground_truth() {
        let w = generate(&GenSpec::default(), Scale::Tiny);
        let truth = Instrumenter::new().with_cost(w.sde_cost().clone()).run(
            w.program(),
            w.layout(),
            w.oracle(),
        );
        let run = Cpu::with_seed(1)
            .run_clean(w.program(), w.layout(), w.oracle())
            .unwrap();
        assert_eq!(truth.instructions as u64, run.instructions);
        assert!(run.instructions > 50_000, "too small: {}", run.instructions);
        assert!(truth.slowdown() > 1.5);
    }

    #[test]
    fn scale_multiplies_work() {
        let tiny = generate(&GenSpec::default(), Scale::Tiny);
        let small = generate(&GenSpec::default(), Scale::Small);
        let rt = Cpu::with_seed(1)
            .run_clean(tiny.program(), tiny.layout(), tiny.oracle())
            .unwrap();
        let rs = Cpu::with_seed(1)
            .run_clean(small.program(), small.layout(), small.oracle())
            .unwrap();
        assert!(rs.instructions > 5 * rt.instructions);
    }

    #[test]
    fn workload_is_deterministic() {
        let a = generate(&GenSpec::default(), Scale::Tiny);
        let b = generate(&GenSpec::default(), Scale::Tiny);
        let ra = Cpu::with_seed(3)
            .run_clean(a.program(), a.layout(), a.oracle())
            .unwrap();
        let rb = Cpu::with_seed(3)
            .run_clean(b.program(), b.layout(), b.oracle())
            .unwrap();
        assert_eq!(ra.instructions, rb.instructions);
        assert_eq!(ra.cycles, rb.cycles);
    }

    #[test]
    fn block_map_discovery_round_trips() {
        let w = generate(&GenSpec::default(), Scale::Tiny);
        let map = w.block_map(ImageView::Disk);
        assert_eq!(map.len(), w.program().block_count());
    }
}

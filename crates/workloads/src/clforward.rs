//! CLForward — the online HPC code of paper §VIII.E / Table 8.
//!
//! HBBP flagged "a large number of scalar instructions"; after the
//! developers made the code compiler-friendly, "a large fraction of these
//! scalar instructions were replaced by a smaller number of packed
//! (vectorized) ones, and performance improved by 8%". The two variants
//! reproduce the before/after packing breakdown of Table 8: scalar-AVX
//! dominated before; packed-AVX dominated (with `VZEROUPPER` housekeeping
//! showing up under AVX/NONE) after, with fewer total instructions and a
//! better runtime.

use crate::synth::{Behavior, BehaviorMap};
use crate::workload::{Scale, Workload};
use hbbp_instrument::CostModel;
use hbbp_isa::{instruction::build, Instruction, MemRef, Mnemonic, Reg};
use hbbp_program::{ProgramBuilder, Ring};

/// Before/after vectorization variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ClVariant {
    /// Pre-fix: the `#omp simd` reduction fails to vectorize; the hot loop
    /// is scalar AVX.
    Before,
    /// Post-fix: packed 256-bit AVX with vzeroupper transitions.
    After,
}

impl ClVariant {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            ClVariant::Before => "before",
            ClVariant::After => "after",
        }
    }
}

/// Driver iterations at `Scale::Tiny`.
pub const BASE_EVENTS: u64 = 500;

fn scalar_loop_body() -> Vec<Instruction> {
    // 8 lanes processed one float at a time: the failed-vectorization shape.
    let mut body = Vec::new();
    for lane in 0..8u8 {
        body.push(build::rm(
            Mnemonic::Vmovss,
            Reg::xmm(lane),
            MemRef::base_disp(Reg::gpr(1), (lane as i16) * 4),
        ));
        body.push(build::rr(Mnemonic::Vmulss, Reg::xmm(lane), Reg::xmm(8)));
        body.push(build::rr(Mnemonic::Vaddss, Reg::xmm(9), Reg::xmm(lane)));
    }
    body.push(build::ri(Mnemonic::Add, Reg::gpr(1), 32));
    body.push(build::rr(Mnemonic::Cmp, Reg::gpr(1), Reg::gpr(3)));
    body // 26 + Jcc
}

fn packed_loop_body() -> Vec<Instruction> {
    // Same 8 lanes in one packed iteration.
    vec![
        build::rm(
            Mnemonic::Vmovaps,
            Reg::ymm(0),
            MemRef::base_disp(Reg::gpr(1), 0),
        ),
        build::rr(Mnemonic::Vmulps, Reg::ymm(0), Reg::ymm(2)),
        build::rr(Mnemonic::Vaddps, Reg::ymm(3), Reg::ymm(0)),
        build::ri(Mnemonic::Add, Reg::gpr(1), 32),
        build::rr(Mnemonic::Cmp, Reg::gpr(1), Reg::gpr(3)),
    ] // 5 + Jcc
}

/// Build a CLForward variant.
pub fn clforward(variant: ClVariant, scale: Scale) -> Workload {
    let mut b = ProgramBuilder::new(format!("clforward-{}", variant.name()));
    let m = b.module(format!("clforward_{}.bin", variant.name()), Ring::User);
    let mut behaviors = BehaviorMap::new();

    let kernel = b.function(m, "forward_kernel");
    let head = b.block(kernel);
    let tail = b.block(kernel);
    match variant {
        ClVariant::Before => {
            b.push_all(head, scalar_loop_body());
            b.terminate_branch(head, Mnemonic::Jnz, head, tail);
            behaviors.set(head, Behavior::Trips(32));
            b.push(tail, build::rr(Mnemonic::Vaddss, Reg::xmm(9), Reg::xmm(10)));
            b.push(tail, build::rr(Mnemonic::Mov, Reg::gpr(0), Reg::gpr(1)));
            b.terminate_ret(tail);
        }
        ClVariant::After => {
            b.push_all(head, packed_loop_body());
            b.terminate_branch(head, Mnemonic::Jnz, head, tail);
            behaviors.set(head, Behavior::Trips(32));
            // Horizontal reduction + ABI transition housekeeping.
            b.push(
                tail,
                build::rr(Mnemonic::Vextractf128, Reg::xmm(4), Reg::ymm(3)),
            );
            b.push(tail, build::rr(Mnemonic::Vaddps, Reg::ymm(3), Reg::ymm(4)));
            b.push(tail, build::bare(Mnemonic::Vzeroupper));
            b.push(tail, build::rr(Mnemonic::Mov, Reg::gpr(0), Reg::gpr(1)));
            b.terminate_ret(tail);
        }
    }

    let main = b.function(m, "main");
    let entry = b.block(main);
    b.push(entry, build::ri(Mnemonic::Mov, Reg::gpr(1), 0x100));
    let loop_head = b.block(main);
    b.terminate_jump(entry, loop_head);
    b.push(
        loop_head,
        build::rr(Mnemonic::Add, Reg::gpr(5), Reg::gpr(6)),
    );
    let r0 = b.block(main);
    b.terminate_call(loop_head, kernel, r0);
    b.push(r0, build::rr(Mnemonic::Cmp, Reg::gpr(5), Reg::gpr(7)));
    let exit = b.block(main);
    b.terminate_branch(r0, Mnemonic::Jnz, loop_head, exit);
    behaviors.set(r0, Behavior::Trips(BASE_EVENTS * scale.multiplier()));
    b.terminate_exit(exit, build::bare(Mnemonic::Syscall));

    let program = b.build(main).expect("clforward valid");
    Workload::from_program(
        format!("clforward-{}", variant.name()),
        program,
        behaviors,
        0xC1F0 + variant as u64,
        CostModel {
            per_fp_cycles: 10.0,
            emulation_multiplier: 2.0,
            ..CostModel::default()
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbbp_instrument::Instrumenter;
    use hbbp_isa::Taxonomy;

    fn packing_totals(variant: ClVariant) -> (f64, f64, f64, f64) {
        let w = clforward(variant, Scale::Tiny);
        let truth = Instrumenter::new().run(w.program(), w.layout(), w.oracle());
        let tax = Taxonomy::ext_packing();
        let mut avx_scalar = 0.0;
        let mut avx_packed = 0.0;
        let mut avx_none = 0.0;
        let mut total = 0.0;
        // Classify per mnemonic through a representative instruction.
        for (m, c) in truth.mix.iter() {
            total += c;
            let instr = Instruction::new(m);
            match tax.classify(&instr) {
                Some("AVX/SCALAR") => avx_scalar += c,
                Some("AVX/PACKED") => avx_packed += c,
                Some("AVX/NONE") => avx_none += c,
                _ => {}
            }
        }
        // VEXTRACTF128 on xmm dst still counts packed; fine for the test.
        let _ = avx_none;
        (avx_scalar, avx_packed, avx_none, total)
    }

    #[test]
    fn before_is_scalar_dominated_after_is_packed() {
        let (s_b, p_b, _, total_b) = packing_totals(ClVariant::Before);
        let (s_a, p_a, n_a, total_a) = packing_totals(ClVariant::After);
        assert!(s_b > 5.0 * p_b, "before: scalar {s_b} packed {p_b}");
        assert!(p_a > 5.0 * s_a, "after: scalar {s_a} packed {p_a}");
        assert!(n_a > 0.0, "after must show AVX/NONE (vzeroupper)");
        // Fewer total instructions after vectorization.
        assert!(
            total_a < 0.7 * total_b,
            "after {total_a} vs before {total_b}"
        );
    }

    #[test]
    fn performance_improves_after_fix() {
        let before = clforward(ClVariant::Before, Scale::Tiny);
        let after = clforward(ClVariant::After, Scale::Tiny);
        let tb = Instrumenter::new().run(before.program(), before.layout(), before.oracle());
        let ta = Instrumenter::new().run(after.program(), after.layout(), after.oracle());
        assert!(
            (ta.native_cycles as f64) < 0.97 * tb.native_cycles as f64,
            "after {} vs before {}",
            ta.native_cycles,
            tb.native_cycles
        );
    }
}

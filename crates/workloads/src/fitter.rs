//! Fitter — the track-fitting kernel of paper §VIII.C.
//!
//! A compact, CPU-intensive, vectorizable scientific code with three
//! builds (x87 scalar, SSE, AVX), plus the broken-inlining AVX build the
//! paper diagnosed with HBBP (CALL explosion, x87 spill explosion, 20×
//! slower) and its fix.
//!
//! The variants are constructed so the paper's error asymmetry reproduces
//! mechanistically:
//!
//! * **SSE**: unrolled packed loops → long blocks (> 18 instructions), and
//!   the hot loop branch is *alignment-padded onto the LBR sticky window*
//!   → LBR error ≈ 13%, EBS fine, HBBP picks EBS (Table 3, Table 6);
//! * **AVX**: packed 256-bit halves the instruction count → short blocks
//!   (≤ 18) with long-latency `VDIVPS`/`VSQRTPS` near block ends → EBS
//!   skid/shadow error ≈ 12%, LBR fine (padded *off* the sticky window),
//!   HBBP picks LBR;
//! * **x87**: medium blocks, no sticky alignment → everything accurate.

use crate::synth::{Behavior, BehaviorMap};
use crate::workload::{Scale, Workload};
use hbbp_instrument::CostModel;
use hbbp_isa::{instruction::build, Instruction, MemRef, Mnemonic, Reg};
use hbbp_program::{BlockId, ProgramBuilder, Ring};
use hbbp_sim::lbr::{is_sticky_branch, STICKY_ALIGN};

/// The Fitter build variants of §VIII.C.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FitterVariant {
    /// x87 scalar build.
    X87,
    /// SSE packed build (unrolled long blocks; LBR-hostile).
    Sse,
    /// AVX packed build (short blocks with trailing divides; EBS-hostile).
    Avx,
    /// The compiler-regression build: inlining broken, every vector op is
    /// an out-of-line call with x87 spills.
    AvxBroken,
    /// The fixed AVX build (identical code shape to [`FitterVariant::Avx`]).
    AvxFix,
}

impl FitterVariant {
    /// All variants in Table 6 column order.
    pub const ALL: [FitterVariant; 5] = [
        FitterVariant::X87,
        FitterVariant::Sse,
        FitterVariant::Avx,
        FitterVariant::AvxBroken,
        FitterVariant::AvxFix,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            FitterVariant::X87 => "x87",
            FitterVariant::Sse => "sse",
            FitterVariant::Avx => "avx",
            FitterVariant::AvxBroken => "avx-broken",
            FitterVariant::AvxFix => "avx-fix",
        }
    }

    fn wants_sticky_hot_branch(self) -> bool {
        matches!(self, FitterVariant::Sse)
    }
}

/// Number of tracks fitted at `Scale::Tiny`.
pub const BASE_TRACKS: u64 = 400;

/// Iterations of the per-track fitting loop.
const FIT_ITERS: u64 = 12;

/// Build the Fitter workload for a variant.
pub fn fitter(variant: FitterVariant, scale: Scale) -> Workload {
    // Two-pass alignment: build once, inspect the hot loop branch address,
    // then rebuild with NOP padding that moves it into (SSE) or out of
    // (others) the sticky alignment window. 3-byte NOPs and gcd(3,64)=1
    // make every residue reachable; 43 ≡ 3⁻¹ (mod 64).
    let (workload, hot) = build(variant, scale, 0);
    let term = workload.layout().terminator_addr(hot);
    let sticky_now = is_sticky_branch(term);
    let pad = if variant.wants_sticky_hot_branch() {
        if sticky_now {
            0
        } else {
            let want = 4i64; // middle of the sticky window
            let shift = (want - (term % STICKY_ALIGN) as i64).rem_euclid(STICKY_ALIGN as i64);
            (43 * shift).rem_euclid(STICKY_ALIGN as i64) as usize
        }
    } else if sticky_now {
        let want = 32i64; // safely outside the window
        let shift = (want - (term % STICKY_ALIGN) as i64).rem_euclid(STICKY_ALIGN as i64);
        (43 * shift).rem_euclid(STICKY_ALIGN as i64) as usize
    } else {
        0
    };
    if pad == 0 {
        return workload;
    }
    let (padded, hot) = build(variant, scale, pad);
    let term = padded.layout().terminator_addr(hot);
    debug_assert_eq!(
        is_sticky_branch(term),
        variant.wants_sticky_hot_branch(),
        "padding failed to (un)align the hot branch"
    );
    let _ = term;
    padded
}

/// One chain block of the SSE fit loop: an unrolled packed stanza
/// (~21 instructions), deterministic per chain position.
///
/// Chain positions have distinct *flavours* — loads, then multiplies, then
/// shuffles, then stores — like the pipeline stages of a real fitting
/// kernel. This matters for the evaluation: the LBR entry[0] bias
/// over-counts early chain blocks and under-counts late ones, and only
/// heterogeneous blocks turn that per-block distortion into the
/// per-mnemonic errors of Table 3/Table 6.
fn sse_chain_body(k: u8) -> Vec<Instruction> {
    let mut body = Vec::new();
    for u in 0..3u8 {
        let x0 = Reg::xmm((k + u * 3) % 12);
        let x1 = Reg::xmm((k + u * 3 + 1) % 12);
        let x2 = Reg::xmm((k + u * 3 + 2) % 12);
        let m_in = MemRef::base_disp(Reg::gpr(1), (u as i16) * 16 + k as i16);
        let m_out = MemRef::base_disp(Reg::gpr(2), (u as i16) * 16 + k as i16);
        // Stages are monotone along the chain (gather → math → permute →
        // scatter), so the bias gradient (early blocks over-counted, late
        // blocks under-counted) lands on *different* mnemonics instead of
        // cancelling.
        match (k as usize * 4) / SSE_CHAIN {
            // Gather stage: loads dominate.
            0 => {
                body.push(build::rm(Mnemonic::Movaps, x0, m_in));
                body.push(build::rm(Mnemonic::Movups, x1, m_out));
                body.push(build::rm(Mnemonic::Movss, x2, m_in));
                body.push(build::rr(Mnemonic::Unpcklps, x0, x1));
                body.push(build::rr(Mnemonic::Cvtsi2ss, x2, Reg::gpr(4)));
                body.push(build::rr(Mnemonic::Andps, x1, x2));
            }
            // Multiply/accumulate stage.
            1 => {
                body.push(build::rr(Mnemonic::Mulps, x0, x1));
                body.push(build::rr(Mnemonic::Addps, x2, x0));
                body.push(build::rr(Mnemonic::Mulps, x1, x2));
                body.push(build::rr(Mnemonic::Addps, x0, x1));
                body.push(build::rr(Mnemonic::Subps, x2, x0));
                body.push(build::rr(Mnemonic::Mulss, x1, x2));
            }
            // Permute/select stage.
            2 => {
                body.push(build::rr(Mnemonic::Shufps, x1, x2));
                body.push(build::rr(Mnemonic::Maxps, x2, x1));
                body.push(build::rr(Mnemonic::Minps, x0, x2));
                body.push(build::rr(Mnemonic::Unpckhps, x1, x0));
                body.push(build::rr(Mnemonic::Ucomiss, x2, x0));
                body.push(build::rr(Mnemonic::Xorps, x0, x1));
            }
            // Scatter/bookkeeping stage.
            _ => {
                body.push(build::mr(Mnemonic::Movaps, m_out, x2));
                body.push(build::mr(Mnemonic::Movups, m_in, x0));
                body.push(build::rm(Mnemonic::Lea, Reg::gpr(6), m_in));
                body.push(build::rr(Mnemonic::Orps, x1, x2));
                body.push(build::mr(Mnemonic::Movss, m_out, x1));
                body.push(build::rr(Mnemonic::Movsxd, Reg::gpr(7), Reg::gpr(6)));
            }
        }
    }
    // Loop bookkeeping.
    body.push(build::ri(Mnemonic::Add, Reg::gpr(1), 48));
    body.push(build::ri(Mnemonic::Add, Reg::gpr(2), 48));
    body.push(build::rr(Mnemonic::Cmp, Reg::gpr(1), Reg::gpr(3)));
    body // 21 instructions + branch = 22-instruction block (> 18 → EBS side)
}

/// Number of chained blocks in the SSE fit loop (≈ one LBR stack of taken
/// branches per couple of iterations, matching the Table 3 regime).
const SSE_CHAIN: usize = 24;

/// Body for the AVX main loop: half the work per instruction count, with
/// the long-latency divide near the block end (shadow/skid escape into
/// the next block — the EBS-hostile placement).
fn avx_body() -> Vec<Instruction> {
    vec![
        build::rm(
            Mnemonic::Vmovaps,
            Reg::ymm(0),
            MemRef::base_disp(Reg::gpr(1), 0),
        ),
        build::rr(Mnemonic::Vmulps, Reg::ymm(1), Reg::ymm(0)),
        build::rr(Mnemonic::Vfmadd231ps, Reg::ymm(2), Reg::ymm(1)),
        build::rr(Mnemonic::Vaddps, Reg::ymm(3), Reg::ymm(2)),
        build::rr(Mnemonic::Vmaxps, Reg::ymm(4), Reg::ymm(3)),
        build::mr(
            Mnemonic::Vmovaps,
            MemRef::base_disp(Reg::gpr(2), 0),
            Reg::ymm(5),
        ),
        build::ri(Mnemonic::Add, Reg::gpr(1), 32),
        build::ri(Mnemonic::Add, Reg::gpr(2), 32),
        build::rr(Mnemonic::Vdivps, Reg::ymm(5), Reg::ymm(4)),
        build::rr(Mnemonic::Cmp, Reg::gpr(1), Reg::gpr(3)),
    ] // 10 + Jcc = 11-instruction block (≤ 18 → LBR side)
}

/// Tiny loop preamble block. Its `JMP` into the main block mixes a second
/// taken branch into the LBR stacks, which is what lets the entry\[0\]
/// quirk actually distort stream weights (a single-branch self-loop fills
/// the stack with identical entries and is immune).
fn pre_body(sse: bool) -> Vec<Instruction> {
    if sse {
        vec![
            build::rm(
                Mnemonic::Movaps,
                Reg::xmm(14),
                MemRef::base_disp(Reg::gpr(1), -16),
            ),
            build::ri(Mnemonic::Add, Reg::gpr(4), 1),
            build::rr(Mnemonic::Test, Reg::gpr(4), Reg::gpr(4)),
        ]
    } else {
        vec![
            build::rm(
                Mnemonic::Vmovaps,
                Reg::ymm(14),
                MemRef::base_disp(Reg::gpr(1), -32),
            ),
            build::ri(Mnemonic::Add, Reg::gpr(4), 1),
            build::rr(Mnemonic::Test, Reg::gpr(4), Reg::gpr(4)),
        ]
    }
}

/// Body for the x87 fitting loop.
fn x87_body() -> Vec<Instruction> {
    vec![
        build::rm(Mnemonic::Fld, Reg::st(0), MemRef::base_disp(Reg::gpr(1), 0)),
        build::rr(Mnemonic::Fmul, Reg::st(0), Reg::st(1)),
        build::rr(Mnemonic::Fadd, Reg::st(0), Reg::st(2)),
        build::rr(Mnemonic::Fxch, Reg::st(0), Reg::st(1)),
        build::rr(Mnemonic::Fsub, Reg::st(0), Reg::st(3)),
        build::rr(Mnemonic::Fmul, Reg::st(0), Reg::st(2)),
        build::rr(Mnemonic::Fdiv, Reg::st(0), Reg::st(4)),
        build::mr(
            Mnemonic::Fstp,
            MemRef::base_disp(Reg::gpr(2), 0),
            Reg::st(0),
        ),
        build::rm(Mnemonic::Fld, Reg::st(0), MemRef::base_disp(Reg::gpr(1), 8)),
        build::rr(Mnemonic::Fadd, Reg::st(0), Reg::st(1)),
        build::rr(Mnemonic::Fmul, Reg::st(0), Reg::st(3)),
        build::mr(
            Mnemonic::Fstp,
            MemRef::base_disp(Reg::gpr(2), 8),
            Reg::st(0),
        ),
        build::ri(Mnemonic::Add, Reg::gpr(1), 16),
        build::ri(Mnemonic::Add, Reg::gpr(2), 16),
        build::rr(Mnemonic::Cmp, Reg::gpr(1), Reg::gpr(3)),
    ] // 15 + Jcc = 16-instruction block
}

fn build(variant: FitterVariant, scale: Scale, pad: usize) -> (Workload, BlockId) {
    let mut b = ProgramBuilder::new(format!("fitter-{}", variant.name()));
    let m = b.module(format!("fitter_{}.bin", variant.name()), Ring::User);
    let mut behaviors = BehaviorMap::new();

    // Alignment shim: laid out before everything else so its size shifts
    // all later code. Never executed.
    let pad_fn = b.function(m, "__alignment_pad");
    let pad_blk = b.block(pad_fn);
    for _ in 0..pad {
        b.push(pad_blk, build::bare(Mnemonic::Nop));
    }
    b.terminate_ret(pad_blk);

    // Out-of-line vector ops for the broken build: each carries a full
    // prologue/epilogue with x87 state spills — the shape the paper
    // diagnosed ("the instruction mix showed a high number of call
    // instructions, which in turn led us to trace the problem to the lack
    // of inlining").
    let vecops: Vec<_> = if variant == FitterVariant::AvxBroken {
        (0..8u8)
            .map(|i| {
                let f = b.function(m, format!("__vecop_{i}"));
                let blk = b.block(f);
                b.push(blk, build::r(Mnemonic::Push, Reg::gpr(5)));
                for s in 0..3i16 {
                    b.push(
                        blk,
                        build::mr(
                            Mnemonic::Fstp,
                            MemRef::base_disp(Reg::gpr(5), -16 - 8 * s),
                            Reg::st(s as u8),
                        ),
                    );
                }
                // One AVX op per out-of-line call — vector *emission* stays
                // unsuspicious (the paper's point); the packed VDIVPS of the
                // healthy build becomes a scalar divide.
                b.push(
                    blk,
                    match i {
                        5 => build::rr(Mnemonic::Vdivss, Reg::xmm(i), Reg::xmm(9)),
                        _ if i % 2 == 0 => build::rr(Mnemonic::Vaddss, Reg::xmm(i), Reg::xmm(7)),
                        _ => build::rr(Mnemonic::Vmulss, Reg::xmm(i), Reg::xmm(8)),
                    },
                );
                for s in 0..3i16 {
                    b.push(
                        blk,
                        build::rm(
                            Mnemonic::Fld,
                            Reg::st(s as u8),
                            MemRef::base_disp(Reg::gpr(5), -16 - 8 * s),
                        ),
                    );
                }
                b.push(blk, build::r(Mnemonic::Pop, Reg::gpr(5)));
                b.terminate_ret(blk);
                f
            })
            .collect()
    } else {
        Vec::new()
    };

    // fit_track().
    let fit = b.function(m, "fit_track");
    let hot: BlockId;
    match variant {
        FitterVariant::X87 => {
            let head = b.block(fit);
            let tail = b.block(fit);
            b.push_all(head, x87_body());
            b.terminate_branch(head, Mnemonic::Jnz, head, tail);
            behaviors.set(head, Behavior::Trips(FIT_ITERS * 2));
            hot = head;
            b.push(tail, build::rr(Mnemonic::Fcomi, Reg::st(0), Reg::st(1)));
            b.push(tail, build::bare(Mnemonic::Cdqe));
            b.terminate_ret(tail);
        }
        FitterVariant::Sse => {
            // A chain of long unrolled blocks joined by rarely-taken fixup
            // conditionals; the dominant LBR stream covers the whole chain
            // and terminates at the (alignment-sticky) backedge — the
            // structure behind Table 3's clustered LBR undercounts.
            let chain: Vec<_> = (0..SSE_CHAIN).map(|_| b.block(fit)).collect();
            let reduce = b.block(fit);
            let tail = b.block(fit);
            let fixups: Vec<_> = (0..SSE_CHAIN - 1).map(|_| b.block(fit)).collect();
            for k in 0..SSE_CHAIN {
                b.push_all(chain[k], sse_chain_body(k as u8));
                if k + 1 < SSE_CHAIN {
                    b.terminate_branch(chain[k], Mnemonic::Jnbe, fixups[k], chain[k + 1]);
                    behaviors.set(chain[k], Behavior::Prob(0.15));
                } else {
                    b.terminate_branch(chain[k], Mnemonic::Jnz, chain[0], reduce);
                    behaviors.set(chain[k], Behavior::Trips(FIT_ITERS));
                }
            }
            for (k, &fx) in fixups.iter().enumerate() {
                b.push(
                    fx,
                    build::rm(
                        Mnemonic::Movups,
                        Reg::xmm(13),
                        MemRef::base_disp(Reg::gpr(1), -32),
                    ),
                );
                b.push(fx, build::rr(Mnemonic::Minps, Reg::xmm(13), Reg::xmm(12)));
                b.terminate_jump(fx, chain[k + 1]);
            }
            hot = chain[SSE_CHAIN - 1];
            // Short reduction loop (stays on the LBR side of the rule).
            b.push(reduce, build::rr(Mnemonic::Addss, Reg::xmm(0), Reg::xmm(1)));
            b.push(reduce, build::rr(Mnemonic::Mulss, Reg::xmm(0), Reg::xmm(2)));
            b.push(
                reduce,
                build::rr(Mnemonic::Movaps, Reg::xmm(1), Reg::xmm(3)),
            );
            b.push(reduce, build::ri(Mnemonic::Add, Reg::gpr(4), 4));
            b.push(reduce, build::rr(Mnemonic::Cmp, Reg::gpr(4), Reg::gpr(3)));
            b.terminate_branch(reduce, Mnemonic::Jnz, reduce, tail);
            behaviors.set(reduce, Behavior::Trips(4));
            b.push(tail, build::rr(Mnemonic::Ucomiss, Reg::xmm(0), Reg::xmm(1)));
            b.terminate_ret(tail);
        }
        FitterVariant::Avx | FitterVariant::AvxFix => {
            let pre = b.block(fit);
            let main_blk = b.block(fit);
            let tail = b.block(fit);
            b.push_all(pre, pre_body(false));
            b.terminate_jump(pre, main_blk);
            b.push_all(main_blk, avx_body());
            b.terminate_branch(main_blk, Mnemonic::Jnz, pre, tail);
            // Same total work as SSE: half the per-iteration width budget
            // needs 2x fewer instructions, so keep iterations similar.
            behaviors.set(main_blk, Behavior::Trips(FIT_ITERS));
            hot = main_blk;
            b.push(
                tail,
                build::rr(Mnemonic::Vucomiss, Reg::xmm(0), Reg::xmm(1)),
            );
            b.push(tail, build::rr(Mnemonic::Fadd, Reg::st(0), Reg::st(1)));
            b.push(tail, build::bare(Mnemonic::Vzeroupper));
            b.terminate_ret(tail);
        }
        FitterVariant::AvxBroken => {
            let head = b.block(fit);
            b.push(head, build::ri(Mnemonic::Add, Reg::gpr(1), 32));
            b.push(head, build::rr(Mnemonic::Cmp, Reg::gpr(1), Reg::gpr(3)));
            hot = head;
            // Call chain: 16 out-of-line vector ops per iteration (the
            // scalarized per-lane work), each with caller-side x87 state
            // restore.
            let mut cur = head;
            for f in vecops.iter().chain(vecops.iter()) {
                let ret_to = b.block(fit);
                b.terminate_call(cur, *f, ret_to);
                b.push(
                    ret_to,
                    build::rm(
                        Mnemonic::Fld,
                        Reg::st(0),
                        MemRef::base_disp(Reg::gpr(5), -24),
                    ),
                );
                b.push(ret_to, build::rr(Mnemonic::Fxch, Reg::st(0), Reg::st(1)));
                cur = ret_to;
            }
            let tail = b.block(fit);
            b.push(cur, build::rr(Mnemonic::Test, Reg::gpr(1), Reg::gpr(1)));
            b.terminate_branch(cur, Mnemonic::Jnz, head, tail);
            behaviors.set(cur, Behavior::Trips(FIT_ITERS));
            b.push(tail, build::bare(Mnemonic::Vzeroupper));
            b.terminate_ret(tail);
        }
    }

    // main(): track loop.
    let main = b.function(m, "main");
    let entry = b.block(main);
    b.push(entry, build::ri(Mnemonic::Mov, Reg::gpr(1), 0x1000));
    b.push(entry, build::ri(Mnemonic::Mov, Reg::gpr(2), 0x2000));
    let track_head = b.block(main);
    b.terminate_jump(entry, track_head);
    b.push(track_head, build::ri(Mnemonic::Add, Reg::gpr(6), 1));
    let ret_to = b.block(main);
    b.terminate_call(track_head, fit, ret_to);
    let exit = b.block(main);
    b.push(ret_to, build::rr(Mnemonic::Cmp, Reg::gpr(6), Reg::gpr(7)));
    b.terminate_branch(ret_to, Mnemonic::Jnz, track_head, exit);
    behaviors.set(ret_to, Behavior::Trips(BASE_TRACKS * scale.multiplier()));
    b.terminate_exit(exit, build::bare(Mnemonic::Syscall));

    let program = b.build(main).expect("fitter program valid");
    // SDE cost: vector emulation is expensive; the broken build, being
    // call/x87-dominated, emulates even slower (the paper: 4–120× across
    // variants).
    let sde_cost = match variant {
        FitterVariant::X87 => CostModel {
            per_instr_cycles: 2.2,
            per_fp_cycles: 9.0,
            emulation_multiplier: 1.3,
            ..CostModel::default()
        },
        FitterVariant::Sse => CostModel {
            per_instr_cycles: 2.2,
            per_fp_cycles: 10.0,
            emulation_multiplier: 2.2,
            ..CostModel::default()
        },
        FitterVariant::Avx | FitterVariant::AvxFix => CostModel {
            per_instr_cycles: 2.4,
            per_fp_cycles: 12.0,
            emulation_multiplier: 5.0,
            ..CostModel::default()
        },
        FitterVariant::AvxBroken => CostModel {
            per_instr_cycles: 2.6,
            per_fp_cycles: 12.0,
            emulation_multiplier: 7.0,
            ..CostModel::default()
        },
    };
    let w = Workload::from_program(
        format!("fitter-{}", variant.name()),
        program,
        behaviors,
        0xF17E | (variant as u64) << 32,
        sde_cost,
    );
    (w, hot)
}

/// Number of tracks fitted at a scale (for time-per-track reporting).
pub fn tracks(scale: Scale) -> u64 {
    BASE_TRACKS * scale.multiplier()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbbp_program::ImageView;
    use hbbp_sim::Cpu;

    #[test]
    fn all_variants_run() {
        for v in FitterVariant::ALL {
            let w = fitter(v, Scale::Tiny);
            let r = Cpu::with_seed(1)
                .run_clean(w.program(), w.layout(), w.oracle())
                .unwrap_or_else(|e| panic!("{}: {e}", v.name()));
            assert!(r.instructions > 50_000, "{}: {}", v.name(), r.instructions);
        }
    }

    #[test]
    fn sse_hot_branch_is_sticky_and_avx_is_not() {
        // Rebuild the raw programs to identify hot blocks, then verify the
        // alignment contract the variants rely on.
        for (variant, want) in [
            (FitterVariant::Sse, true),
            (FitterVariant::Avx, false),
            (FitterVariant::AvxFix, false),
            (FitterVariant::X87, false),
        ] {
            let (w, hot) = build(variant, Scale::Tiny, 0);
            let term0 = w.layout().terminator_addr(hot);
            let aligned = fitter(variant, Scale::Tiny);
            // Find the same hot block in the padded build by name lookup:
            // it is the block whose taken target is itself (self loop) in
            // fit_track, except for AvxBroken.
            let (wp, hotp) = build(
                variant,
                Scale::Tiny,
                // reverse-engineer the pad that `fitter` chose by diffing
                // module sizes (3 bytes per NOP).
                {
                    let (b0, _) = w.layout().module_range(w.program().modules()[0].id());
                    let (b1, _) = aligned
                        .layout()
                        .module_range(aligned.program().modules()[0].id());
                    assert_eq!(b0, b1);
                    let s0 = w.layout().module_range(w.program().modules()[0].id()).1 - b0;
                    let s1 = aligned
                        .layout()
                        .module_range(aligned.program().modules()[0].id())
                        .1
                        - b1;
                    ((s1 - s0) / 3) as usize
                },
            );
            let term = wp.layout().terminator_addr(hotp);
            assert_eq!(
                is_sticky_branch(term),
                want,
                "{}: term {term:#x} (unpadded {term0:#x})",
                variant.name()
            );
        }
    }

    #[test]
    fn block_length_contract() {
        // SSE hot block > 18 instructions, AVX hot block <= 18.
        let (sse, sse_hot) = build(FitterVariant::Sse, Scale::Tiny, 0);
        assert!(sse.program().block(sse_hot).len() > 18);
        let (avx, avx_hot) = build(FitterVariant::Avx, Scale::Tiny, 0);
        assert!(avx.program().block(avx_hot).len() <= 18);
    }

    #[test]
    fn broken_build_explodes_calls_and_x87() {
        use hbbp_instrument::Instrumenter;
        let healthy = fitter(FitterVariant::Avx, Scale::Tiny);
        let broken = fitter(FitterVariant::AvxBroken, Scale::Tiny);
        let th = Instrumenter::new().run(healthy.program(), healthy.layout(), healthy.oracle());
        let tb = Instrumenter::new().run(broken.program(), broken.layout(), broken.oracle());
        let calls_h = th.mix.get(Mnemonic::CallNear);
        let calls_b = tb.mix.get(Mnemonic::CallNear);
        assert!(
            calls_b > 30.0 * calls_h,
            "calls: broken {calls_b} vs healthy {calls_h}"
        );
        let x87_h: f64 = th
            .mix
            .iter()
            .filter(|(m, _)| m.extension() == hbbp_isa::Extension::X87)
            .map(|(_, c)| c)
            .sum();
        let x87_b: f64 = tb
            .mix
            .iter()
            .filter(|(m, _)| m.extension() == hbbp_isa::Extension::X87)
            .map(|(_, c)| c)
            .sum();
        assert!(x87_b > 5.0 * x87_h.max(1.0), "x87: {x87_b} vs {x87_h}");
        // Time per track explodes too.
        assert!(
            tb.native_cycles > 4 * th.native_cycles,
            "cycles {} vs {}",
            tb.native_cycles,
            th.native_cycles
        );
    }

    #[test]
    fn discovery_works_for_all_variants() {
        for v in FitterVariant::ALL {
            let w = fitter(v, Scale::Tiny);
            let map = w.block_map(ImageView::Disk);
            assert_eq!(map.len(), w.program().block_count(), "{}", v.name());
        }
    }
}

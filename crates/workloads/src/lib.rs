//! # hbbp-workloads — the benchmark programs of the evaluation
//!
//! Deterministic synthetic equivalents of every workload in the paper's
//! evaluation (§VII-§VIII):
//!
//! * [`spec`] — 29 SPEC CPU2006-named benchmarks with per-benchmark
//!   block-length, loop and mix characters (Figure 2, Table 1);
//! * [`test40`](mod@test40) — the Geant4-like OO particle simulation (Table 5,
//!   Figures 3-4);
//! * [`fitter`](mod@fitter) — the track-fitting kernel in x87/SSE/AVX builds plus the
//!   broken-inlining AVX build and its fix (Tables 3 and 6);
//! * [`kernel`] — the prime-search kernel-module benchmark with
//!   tracepoints (Table 7);
//! * [`clforward`](mod@clforward) — the vectorization before/after pair (Table 8);
//! * [`hydro`] — the 76× instrumentation-slowdown extreme (Table 1);
//! * [`phased`](mod@phased) — a phase-switching workload (integer / SSE /
//!   AVX kernels in long dwells) for windowed streaming analysis;
//! * [`training`] — the ≈1,100-block non-SPEC training population for the
//!   HBBP rule (§IV.B, Figure 1).
//!
//! All are built from the [`synth`] toolkit and wrapped as [`Workload`]s:
//! program + layout + a seeded branch oracle replayable by both the CPU
//! simulator and the instrumentation ground truth.
//!
//! The crate also closes the loop in the other direction: [`solver`] and
//! [`calibrator`] compile a *target* [`hbbp_program::MnemonicMix`] into a
//! generated workload whose measured mix replicates it ([`SynthSpec`],
//! `hbbp synth`). The calibrator is measurement-agnostic — the perf
//! pipeline is injected as a closure by the CLI, keeping this crate below
//! the analysis stack in the dependency graph.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod calibrator;
pub mod clforward;
pub mod fitter;
pub mod hydro;
pub mod kernel;
pub mod phased;
pub mod solver;
pub mod spec;
pub mod synth;
pub mod synthspec;
pub mod test40;
pub mod training;
pub mod workload;

pub use calibrator::{
    calibrate, compile, true_mix, CalibrateError, Calibration, CalibrationStep, CalibratorConfig,
};
pub use clforward::{clforward, ClVariant};
pub use fitter::{fitter, FitterVariant};
pub use hydro::hydro_post;
pub use kernel::kernel_benchmark;
pub use phased::{phased, phased_client, phased_with};
pub use solver::{apportion, solve, EmissionModel, SolveOutcome};
pub use synth::{Behavior, BehaviorMap, InstrClass, MixProfile, Segment, SynthOracle};
pub use synthspec::{SpecError, SynthSpec, SPEC_FORMAT};
pub use test40::test40;
pub use training::training_suite;
pub use workload::{generate, GenSpec, Scale, Workload};

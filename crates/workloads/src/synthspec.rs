//! The calibrated synthetic-workload spec and its JSON wire form.
//!
//! A [`SynthSpec`] is the *output* of the `hbbp synth` calibrator and the
//! *input* of [`crate::calibrator::compile`]: every knob the solver turns
//! — structural shape (blocks, body length, hop probability, call sites,
//! loop trip counts), the conditional-branch flavour weights, the
//! instruction-class mixture used for operand shapes, and the exact
//! per-mnemonic filler quota weights — plus the generation seed. A spec
//! plus its seed reproduces the workload byte-for-byte without
//! re-solving, so the JSON form is the reproducibility contract: emit →
//! parse → emit is lossless (`f64`s are printed with Rust's
//! shortest-round-trip formatting).

use crate::synth::InstrClass;
use hbbp_isa::{Category, Mnemonic};
use std::fmt;
use std::fmt::Write as _;

/// Format tag pinned in the JSON so readers can reject foreign files.
pub const SPEC_FORMAT: &str = "hbbp-synth-spec-v1";

/// A calibrated synthetic-workload specification.
///
/// See the module docs; field invariants are enforced by
/// [`SynthSpec::validate`] (and checked again by `compile`).
#[derive(Debug, Clone, PartialEq)]
pub struct SynthSpec {
    /// Workload name (also the module name stem).
    pub name: String,
    /// Generation seed: drives instruction operand draws, the quota
    /// rejection sampler and the branch oracle.
    pub seed: u64,
    /// Number of chained hot-loop blocks.
    pub blocks: usize,
    /// Mean filler instructions per chain block (fractional: the total
    /// filler budget is `round(body_len · blocks)`).
    pub body_len: f64,
    /// Probability a chain conditional is taken into its `JMP` hop block.
    pub jmp_prob: f64,
    /// How many chain positions are call sites (each to its own leaf).
    pub call_blocks: usize,
    /// Filler instructions per leaf function body.
    pub leaf_len: usize,
    /// Chain iterations per outer-loop visit (inner backedge trip count).
    pub inner_trips: u64,
    /// Outer-loop trip count; total chain executions are
    /// `inner_trips · outer_iterations`.
    pub outer_iterations: u64,
    /// Instruction-class mixture used to draw operand shapes.
    pub classes: Vec<(InstrClass, f64)>,
    /// Conditional-branch flavour weights, apportioned exactly across
    /// the chain's branch sites.
    pub jcc: Vec<(Mnemonic, f64)>,
    /// Per-mnemonic filler quota weights — the calibrator's fine knob.
    pub fill: Vec<(Mnemonic, f64)>,
}

/// Errors from spec validation or JSON parsing.
#[derive(Debug, Clone, PartialEq)]
pub enum SpecError {
    /// JSON syntax error at a byte offset.
    Parse {
        /// Byte offset of the error.
        offset: usize,
        /// What went wrong.
        message: String,
    },
    /// The JSON parsed but does not describe a valid spec.
    Schema(String),
    /// The spec's values are out of range or inconsistent.
    Invalid(String),
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::Parse { offset, message } => {
                write!(f, "spec JSON syntax error at byte {offset}: {message}")
            }
            SpecError::Schema(m) => write!(f, "spec JSON schema error: {m}"),
            SpecError::Invalid(m) => write!(f, "invalid spec: {m}"),
        }
    }
}

impl std::error::Error for SpecError {}

impl SynthSpec {
    /// Check every field invariant `compile` relies on.
    ///
    /// # Errors
    ///
    /// [`SpecError::Invalid`] naming the first violated invariant.
    pub fn validate(&self) -> Result<(), SpecError> {
        let err = |m: String| Err(SpecError::Invalid(m));
        if self.name.is_empty() {
            return err("name must be non-empty".into());
        }
        if self.blocks < 4 {
            return err(format!("blocks must be >= 4, got {}", self.blocks));
        }
        if self.call_blocks > self.blocks / 2 {
            return err(format!(
                "call_blocks must be <= blocks/2 ({}), got {}",
                self.blocks / 2,
                self.call_blocks
            ));
        }
        if !self.body_len.is_finite() || !(1.0..=256.0).contains(&self.body_len) {
            return err(format!(
                "body_len must be in [1, 256], got {}",
                self.body_len
            ));
        }
        if !self.jmp_prob.is_finite() || !(0.0..1.0).contains(&self.jmp_prob) {
            return err(format!("jmp_prob must be in [0, 1), got {}", self.jmp_prob));
        }
        if self.leaf_len == 0 {
            return err("leaf_len must be >= 1".into());
        }
        if self.inner_trips < 2 {
            return err(format!(
                "inner_trips must be >= 2, got {}",
                self.inner_trips
            ));
        }
        if self.outer_iterations == 0 {
            return err("outer_iterations must be >= 1".into());
        }
        for (label, len) in [
            ("classes", self.classes.len()),
            ("jcc", self.jcc.len()),
            ("fill", self.fill.len()),
        ] {
            if len == 0 {
                return err(format!("{label} must be non-empty"));
            }
        }
        let check_weights = |label: &str, it: &mut dyn Iterator<Item = f64>| {
            let mut total = 0.0;
            for w in it {
                if !w.is_finite() || w < 0.0 {
                    return Err(SpecError::Invalid(format!(
                        "{label} weights must be finite and >= 0, got {w}"
                    )));
                }
                total += w;
            }
            if total <= 0.0 {
                return Err(SpecError::Invalid(format!("{label} weights must sum > 0")));
            }
            Ok(())
        };
        check_weights("classes", &mut self.classes.iter().map(|&(_, w)| w))?;
        check_weights("jcc", &mut self.jcc.iter().map(|&(_, w)| w))?;
        check_weights("fill", &mut self.fill.iter().map(|&(_, w)| w))?;
        for &(m, _) in &self.jcc {
            if m.category() != Category::CondBranch {
                return err(format!(
                    "jcc flavour {} is not a conditional branch",
                    m.name()
                ));
            }
        }
        Ok(())
    }

    /// Serialize to the pinned JSON wire form (pretty-printed,
    /// shortest-round-trip floats — emit → parse → emit is lossless).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "{{\n  \"format\": {},", json_str(SPEC_FORMAT));
        let _ = writeln!(s, "  \"name\": {},", json_str(&self.name));
        let _ = writeln!(s, "  \"seed\": {},", self.seed);
        let _ = writeln!(s, "  \"blocks\": {},", self.blocks);
        let _ = writeln!(s, "  \"body_len\": {},", self.body_len);
        let _ = writeln!(s, "  \"jmp_prob\": {},", self.jmp_prob);
        let _ = writeln!(s, "  \"call_blocks\": {},", self.call_blocks);
        let _ = writeln!(s, "  \"leaf_len\": {},", self.leaf_len);
        let _ = writeln!(s, "  \"inner_trips\": {},", self.inner_trips);
        let _ = writeln!(s, "  \"outer_iterations\": {},", self.outer_iterations);
        let pairs = |s: &mut String, key: &str, rows: Vec<(String, f64)>, last: bool| {
            let _ = write!(s, "  \"{key}\": [");
            for (i, (name, w)) in rows.iter().enumerate() {
                let sep = if i + 1 < rows.len() { "," } else { "" };
                let _ = write!(s, "\n    [{}, {}]{}", json_str(name), w, sep);
            }
            let _ = write!(s, "\n  ]{}\n", if last { "" } else { "," });
        };
        pairs(
            &mut s,
            "classes",
            self.classes
                .iter()
                .map(|&(c, w)| (c.name().to_string(), w))
                .collect(),
            false,
        );
        pairs(
            &mut s,
            "jcc",
            self.jcc
                .iter()
                .map(|&(m, w)| (m.name().to_string(), w))
                .collect(),
            false,
        );
        pairs(
            &mut s,
            "fill",
            self.fill
                .iter()
                .map(|&(m, w)| (m.name().to_string(), w))
                .collect(),
            true,
        );
        s.push('}');
        s.push('\n');
        s
    }

    /// Parse the JSON wire form.
    ///
    /// # Errors
    ///
    /// [`SpecError::Parse`] on malformed JSON, [`SpecError::Schema`] on a
    /// missing/mistyped field or unknown class/mnemonic name,
    /// [`SpecError::Invalid`] if the parsed spec fails
    /// [`SynthSpec::validate`].
    pub fn from_json(text: &str) -> Result<SynthSpec, SpecError> {
        let v = parse_json(text)?;
        let obj = v.as_obj("spec")?;
        let format = obj.field("format")?.as_str("format")?;
        if format != SPEC_FORMAT {
            return Err(SpecError::Schema(format!(
                "format must be {SPEC_FORMAT:?}, got {format:?}"
            )));
        }
        let spec = SynthSpec {
            name: obj.field("name")?.as_str("name")?.to_string(),
            seed: obj.field("seed")?.as_u64("seed")?,
            blocks: obj.field("blocks")?.as_u64("blocks")? as usize,
            body_len: obj.field("body_len")?.as_f64("body_len")?,
            jmp_prob: obj.field("jmp_prob")?.as_f64("jmp_prob")?,
            call_blocks: obj.field("call_blocks")?.as_u64("call_blocks")? as usize,
            leaf_len: obj.field("leaf_len")?.as_u64("leaf_len")? as usize,
            inner_trips: obj.field("inner_trips")?.as_u64("inner_trips")?,
            outer_iterations: obj.field("outer_iterations")?.as_u64("outer_iterations")?,
            classes: obj.field("classes")?.as_pairs("classes", &|name| {
                InstrClass::from_name(name)
                    .ok_or_else(|| SpecError::Schema(format!("unknown instruction class {name:?}")))
            })?,
            jcc: obj.field("jcc")?.as_pairs("jcc", &parse_mnemonic)?,
            fill: obj.field("fill")?.as_pairs("fill", &parse_mnemonic)?,
        };
        spec.validate()?;
        Ok(spec)
    }
}

fn parse_mnemonic(name: &str) -> Result<Mnemonic, SpecError> {
    Mnemonic::from_name(name).ok_or_else(|| SpecError::Schema(format!("unknown mnemonic {name:?}")))
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A parsed JSON value. Numbers keep their raw token so integer fields
/// parse at full `u64` precision and floats at full `f64` precision.
enum Json {
    Obj(Vec<(String, Json)>),
    Arr(Vec<Json>),
    Str(String),
    Num(String),
    // The payload is parsed for completeness but no spec field is boolean.
    #[allow(dead_code)]
    Bool(bool),
    Null,
}

impl Json {
    fn kind(&self) -> &'static str {
        match self {
            Json::Obj(_) => "object",
            Json::Arr(_) => "array",
            Json::Str(_) => "string",
            Json::Num(_) => "number",
            Json::Bool(_) => "boolean",
            Json::Null => "null",
        }
    }

    fn as_obj(&self, what: &str) -> Result<&Vec<(String, Json)>, SpecError> {
        match self {
            Json::Obj(fields) => Ok(fields),
            other => Err(SpecError::Schema(format!(
                "{what} must be an object, got {}",
                other.kind()
            ))),
        }
    }

    fn as_str(&self, what: &str) -> Result<&str, SpecError> {
        match self {
            Json::Str(s) => Ok(s),
            other => Err(SpecError::Schema(format!(
                "{what} must be a string, got {}",
                other.kind()
            ))),
        }
    }

    fn as_u64(&self, what: &str) -> Result<u64, SpecError> {
        match self {
            Json::Num(raw) => raw.parse::<u64>().map_err(|_| {
                SpecError::Schema(format!("{what} must be an unsigned integer, got {raw}"))
            }),
            other => Err(SpecError::Schema(format!(
                "{what} must be a number, got {}",
                other.kind()
            ))),
        }
    }

    fn as_f64(&self, what: &str) -> Result<f64, SpecError> {
        match self {
            Json::Num(raw) => raw
                .parse::<f64>()
                .map_err(|_| SpecError::Schema(format!("{what} must be a number, got {raw}"))),
            other => Err(SpecError::Schema(format!(
                "{what} must be a number, got {}",
                other.kind()
            ))),
        }
    }

    fn as_pairs<T>(
        &self,
        what: &str,
        parse_name: &dyn Fn(&str) -> Result<T, SpecError>,
    ) -> Result<Vec<(T, f64)>, SpecError> {
        let Json::Arr(items) = self else {
            return Err(SpecError::Schema(format!(
                "{what} must be an array, got {}",
                self.kind()
            )));
        };
        let mut out = Vec::with_capacity(items.len());
        for item in items {
            let pair = match item {
                Json::Arr(pair) if pair.len() == 2 => pair,
                _ => {
                    return Err(SpecError::Schema(format!(
                        "{what} entries must be [name, weight] pairs"
                    )))
                }
            };
            let name = pair[0].as_str(what)?;
            out.push((parse_name(name)?, pair[1].as_f64(what)?));
        }
        Ok(out)
    }
}

trait Fields {
    fn field(&self, key: &str) -> Result<&Json, SpecError>;
}

impl Fields for Vec<(String, Json)> {
    fn field(&self, key: &str) -> Result<&Json, SpecError> {
        self.iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .ok_or_else(|| SpecError::Schema(format!("missing field {key:?}")))
    }
}

fn parse_json(text: &str) -> Result<Json, SpecError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data after JSON value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> SpecError {
        SpecError::Parse {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), SpecError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json, SpecError> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, SpecError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected {word}")))
        }
    }

    fn object(&mut self) -> Result<Json, SpecError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, SpecError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, SpecError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code).ok_or_else(|| self.err("bad \\u escape"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let ch = s
                        .chars()
                        .next()
                        .ok_or_else(|| self.err("unterminated string"))?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, SpecError> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number token");
        if raw.parse::<f64>().is_err() {
            return Err(self.err(&format!("bad number {raw:?}")));
        }
        Ok(Json::Num(raw.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_spec() -> SynthSpec {
        SynthSpec {
            name: "roundtrip".to_string(),
            seed: u64::MAX - 3,
            blocks: 48,
            body_len: 11.0 / 3.0,
            jmp_prob: 0.021739130434782608,
            call_blocks: 3,
            leaf_len: 4,
            inner_trips: 32,
            outer_iterations: 77,
            classes: vec![(InstrClass::IntAlu, 0.7), (InstrClass::Load, 0.1 + 0.2)],
            jcc: vec![(Mnemonic::Jnz, 0.6), (Mnemonic::Jle, 0.4)],
            fill: vec![
                (Mnemonic::Add, 1.0 / 7.0),
                (Mnemonic::Mov, 2.0 / 7.0),
                (Mnemonic::Cmp, 4.0 / 7.0),
            ],
        }
    }

    #[test]
    fn json_round_trips_losslessly() {
        let spec = sample_spec();
        let json = spec.to_json();
        let back = SynthSpec::from_json(&json).expect("parse");
        assert_eq!(back, spec);
        // emit → parse → emit is byte-stable.
        assert_eq!(back.to_json(), json);
    }

    #[test]
    fn json_rejects_foreign_and_malformed_input() {
        assert!(matches!(
            SynthSpec::from_json("{"),
            Err(SpecError::Parse { .. })
        ));
        assert!(matches!(
            SynthSpec::from_json("{\"format\": \"nope\"}"),
            Err(SpecError::Schema(_))
        ));
        let mut spec = sample_spec();
        spec.jcc = vec![(Mnemonic::Add, 1.0)];
        assert!(matches!(
            SynthSpec::from_json(&spec.to_json()),
            Err(SpecError::Invalid(_))
        ));
        // Unknown names are schema errors with the name in the message.
        let json = sample_spec().to_json().replace("\"ADD\"", "\"NOT_AN_OP\"");
        match SynthSpec::from_json(&json) {
            Err(SpecError::Schema(m)) => assert!(m.contains("NOT_AN_OP"), "{m}"),
            other => panic!("expected schema error, got {other:?}"),
        }
    }

    #[test]
    fn validate_names_the_violated_invariant() {
        let mut spec = sample_spec();
        spec.jmp_prob = 1.5;
        match spec.validate() {
            Err(SpecError::Invalid(m)) => assert!(m.contains("jmp_prob"), "{m}"),
            other => panic!("expected invalid, got {other:?}"),
        }
        let mut spec = sample_spec();
        spec.fill.clear();
        assert!(spec.validate().is_err());
    }
}

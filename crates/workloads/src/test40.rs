//! Test40 — the Geant4-like particle simulation workload (paper §VIII.B).
//!
//! "It represents an important class of complex, object-oriented workloads
//! … It is also an appropriate test: it is difficult to deal with using
//! EBS, because its methods are short." The generator therefore produces
//! many small functions with short blocks (3–8 instructions), deep call
//! chains and a physics-flavoured FP sprinkle, with an SDE cost profile
//! targeting the paper's ≈9× slowdown (Table 5).

use crate::synth::{InstrClass, MixProfile};
use crate::workload::{generate, GenSpec, Scale, Workload};
use hbbp_instrument::CostModel;

/// Instruction mix of the simulated Geant4 stepping loop: pointer-chasing
/// OO code with scalar FP physics.
pub fn mix() -> MixProfile {
    MixProfile::new(vec![
        (InstrClass::Load, 20.0),
        (InstrClass::IntAlu, 14.0),
        (InstrClass::Compare, 12.0),
        (InstrClass::Store, 8.0),
        (InstrClass::Stack, 8.0),
        (InstrClass::Lea, 6.0),
        (InstrClass::SseScalar, 9.0),
        (InstrClass::SseMove, 6.0),
        (InstrClass::SseConvert, 2.0),
        (InstrClass::IntConvert, 4.0),
        (InstrClass::SseDivSqrt, 1.2),
    ])
}

/// Generate the Test40 workload.
pub fn test40(scale: Scale) -> Workload {
    generate(
        &GenSpec {
            name: "test40",
            mix: mix(),
            block_len: (3, 8),
            n_hot_fns: 14,
            segments_per_fn: 5,
            loop_trips: (4, 28),
            diamond_frac: 0.3,
            call_frac: 0.4,
            long_block_frac: 0.12,
            chain_frac: 0.3,
            chain_blocks: (3, 5),
            n_leaf_fns: 16,
            leaf_len: (2, 6),
            outer_iterations: 150,
            sde_cost: CostModel {
                per_block_cycles: 11.0,
                per_instr_cycles: 3.4,
                per_fp_cycles: 9.0,
                per_branch_cycles: 5.0,
                emulation_multiplier: 1.5,
            },
            seed: 0x6EA4_7400,
        },
        scale,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbbp_instrument::Instrumenter;
    use hbbp_sim::Cpu;

    #[test]
    fn blocks_are_short() {
        let w = test40(Scale::Tiny);
        let (_, mean, _) = w.program().block_length_stats();
        assert!(mean < 9.0, "Test40 mean block length {mean} too long");
    }

    #[test]
    fn sde_slowdown_near_nine_x() {
        let w = test40(Scale::Tiny);
        let truth = Instrumenter::new().with_cost(w.sde_cost().clone()).run(
            w.program(),
            w.layout(),
            w.oracle(),
        );
        let s = truth.slowdown();
        assert!(
            (6.0..14.0).contains(&s),
            "Test40 slowdown {s} not near 9-10x"
        );
    }

    #[test]
    fn runs_to_completion() {
        let w = test40(Scale::Tiny);
        let r = Cpu::with_seed(1)
            .run_clean(w.program(), w.layout(), w.oracle())
            .unwrap();
        assert!(r.instructions > 100_000);
        assert!(r.taken_branches > 10_000);
    }
}

//! The SPEC CPU2006-like benchmark suite.
//!
//! Twenty-nine synthetic benchmarks named after the SPEC CPU2006 programs
//! the paper evaluates (§VIII.A). Each spec controls the properties that
//! drive PMU-estimation error: block-length distribution (EBS skid
//! sensitivity), loop structure (LBR bias exposure), instruction mix
//! (shadowing, instrumentation cost) and SDE cost profile (Table 1 /
//! Figure 2 slowdowns). The absolute SPEC numbers are not reproducible
//! without the suite; these generators reproduce the *shape* of the
//! evaluation.

use crate::synth::{InstrClass, MixProfile};
use crate::workload::{generate, GenSpec, Scale, Workload};
use hbbp_instrument::{CostModel, MiscountFault};
use hbbp_isa::Mnemonic;

/// Names of all simulated SPEC benchmarks, in reporting order.
pub const SPEC_NAMES: [&str; 29] = [
    "perlbench",
    "bzip2",
    "gcc",
    "mcf",
    "gobmk",
    "hmmer",
    "sjeng",
    "libquantum",
    "x264ref",
    "omnetpp",
    "astar",
    "xalancbmk",
    "bwaves",
    "gamess",
    "milc",
    "zeusmp",
    "gromacs",
    "cactusADM",
    "leslie3d",
    "namd",
    "dealII",
    "soplex",
    "povray",
    "calculix",
    "GemsFDTD",
    "tonto",
    "lbm",
    "wrf",
    "sphinx3",
];

fn cost(per_instr: f64, per_fp: f64, mult: f64) -> CostModel {
    CostModel {
        per_instr_cycles: per_instr,
        per_fp_cycles: per_fp,
        emulation_multiplier: mult,
        ..CostModel::default()
    }
}

/// The generation spec for one named benchmark.
///
/// # Panics
///
/// Panics if `name` is not in [`SPEC_NAMES`].
pub fn spec_for(name: &str) -> GenSpec {
    let d = GenSpec::default;
    let mut s = match name {
        // ---- integer suite ----
        "perlbench" => GenSpec {
            mix: MixProfile::int_heavy(),
            block_len: (4, 14),
            n_hot_fns: 7,
            diamond_frac: 0.35,
            call_frac: 0.2,
            loop_trips: (4, 40),
            sde_cost: cost(2.2, 7.0, 1.0),
            ..d()
        },
        "bzip2" => GenSpec {
            mix: MixProfile::mem_heavy(),
            block_len: (8, 24),
            n_hot_fns: 4,
            loop_trips: (32, 200),
            diamond_frac: 0.2,
            sde_cost: cost(1.8, 7.0, 1.0),
            ..d()
        },
        "gcc" => GenSpec {
            mix: MixProfile::int_heavy(),
            block_len: (3, 12),
            n_hot_fns: 10,
            segments_per_fn: 6,
            diamond_frac: 0.4,
            call_frac: 0.25,
            n_leaf_fns: 6,
            loop_trips: (2, 24),
            sde_cost: cost(2.4, 7.0, 1.0),
            ..d()
        },
        "mcf" => GenSpec {
            mix: MixProfile::mem_heavy(),
            block_len: (4, 12),
            n_hot_fns: 3,
            loop_trips: (50, 400),
            sde_cost: cost(1.7, 7.0, 1.0),
            ..d()
        },
        "gobmk" => GenSpec {
            mix: MixProfile::int_heavy(),
            block_len: (4, 13),
            n_hot_fns: 8,
            diamond_frac: 0.45,
            call_frac: 0.25,
            loop_trips: (3, 30),
            sde_cost: cost(2.3, 7.0, 1.0),
            ..d()
        },
        // hmmer: tight short integer loops — the EBS-hostile case the
        // paper calls out (EBS 5.3× worse than HBBP).
        "hmmer" => GenSpec {
            mix: MixProfile::int_heavy(),
            block_len: (3, 7),
            n_hot_fns: 3,
            segments_per_fn: 7,
            loop_trips: (100, 600),
            diamond_frac: 0.1,
            sde_cost: cost(2.0, 7.0, 1.0),
            ..d()
        },
        "sjeng" => GenSpec {
            mix: MixProfile::int_heavy(),
            block_len: (4, 12),
            n_hot_fns: 6,
            diamond_frac: 0.4,
            call_frac: 0.2,
            loop_trips: (4, 40),
            sde_cost: cost(2.1, 7.0, 1.0),
            ..d()
        },
        "libquantum" => GenSpec {
            mix: MixProfile::new(vec![
                (InstrClass::IntAlu, 24.0),
                (InstrClass::Load, 16.0),
                (InstrClass::Store, 8.0),
                (InstrClass::BitOps, 10.0),
                (InstrClass::Compare, 10.0),
            ]),
            block_len: (8, 20),
            n_hot_fns: 2,
            loop_trips: (200, 1000),
            sde_cost: cost(1.8, 7.0, 1.0),
            ..d()
        },
        // x264ref: the benchmark whose SDE results the paper found buggy
        // (footnote 2). The fault is attached in `workload_for`.
        "x264ref" => GenSpec {
            mix: MixProfile::new(vec![
                (InstrClass::IntAlu, 20.0),
                (InstrClass::SseInt, 16.0),
                (InstrClass::Load, 14.0),
                (InstrClass::Store, 7.0),
                (InstrClass::Compare, 8.0),
                (InstrClass::SseMove, 8.0),
            ]),
            block_len: (8, 26),
            n_hot_fns: 5,
            loop_trips: (30, 250),
            sde_cost: cost(2.2, 7.0, 1.0),
            ..d()
        },
        // omnetpp: OO event simulation — short blocks, many calls; one of
        // the paper's worst SDE slowdowns among integer codes (7.56×).
        "omnetpp" => GenSpec {
            mix: MixProfile::oo_code(),
            block_len: (3, 8),
            n_hot_fns: 9,
            segments_per_fn: 5,
            diamond_frac: 0.3,
            call_frac: 0.35,
            n_leaf_fns: 8,
            leaf_len: (2, 6),
            loop_trips: (3, 24),
            sde_cost: cost(3.6, 7.0, 1.4),
            ..d()
        },
        "astar" => GenSpec {
            mix: MixProfile::mem_heavy(),
            block_len: (5, 14),
            n_hot_fns: 4,
            diamond_frac: 0.3,
            loop_trips: (20, 150),
            sde_cost: cost(1.9, 7.0, 1.0),
            ..d()
        },
        "xalancbmk" => GenSpec {
            mix: MixProfile::oo_code(),
            block_len: (3, 9),
            n_hot_fns: 10,
            diamond_frac: 0.4,
            call_frac: 0.3,
            n_leaf_fns: 8,
            leaf_len: (2, 6),
            loop_trips: (2, 20),
            sde_cost: cost(2.8, 7.0, 1.1),
            ..d()
        },
        // ---- floating point suite ----
        "bwaves" => GenSpec {
            mix: MixProfile::fp_sse_packed(),
            block_len: (18, 40),
            n_hot_fns: 3,
            loop_trips: (100, 500),
            diamond_frac: 0.08,
            sde_cost: cost(2.0, 8.0, 1.2),
            chain_frac: 0.6,
            chain_blocks: (5, 8),
            ..d()
        },
        // gamess: the paper's worst LBR case (8× worse than HBBP) — long
        // chained loop bodies whose full-fallthrough streams terminate at
        // alignment-sticky backedges, maximizing exposure to the entry[0]
        // bias (HBBP dodges by taking EBS on the long blocks).
        "gamess" => GenSpec {
            mix: MixProfile::fp_sse_scalar(),
            block_len: (21, 30),
            n_hot_fns: 6,
            segments_per_fn: 7,
            loop_trips: (60, 300),
            diamond_frac: 0.05,
            call_frac: 0.05,
            chain_frac: 1.0,
            chain_blocks: (6, 9),
            sde_cost: cost(2.2, 8.0, 1.1),
            seed: 0xA11CE5,
            ..d()
        },
        "milc" => GenSpec {
            mix: MixProfile::fp_sse_packed(),
            block_len: (12, 30),
            n_hot_fns: 4,
            loop_trips: (60, 300),
            sde_cost: cost(2.1, 8.0, 1.2),
            chain_frac: 0.6,
            chain_blocks: (5, 8),
            ..d()
        },
        "zeusmp" => GenSpec {
            mix: MixProfile::fp_sse_packed(),
            block_len: (16, 36),
            n_hot_fns: 4,
            loop_trips: (80, 400),
            diamond_frac: 0.1,
            sde_cost: cost(2.0, 8.0, 1.2),
            chain_frac: 0.6,
            chain_blocks: (5, 8),
            ..d()
        },
        "gromacs" => GenSpec {
            mix: MixProfile::fp_sse_scalar(),
            block_len: (10, 26),
            n_hot_fns: 5,
            loop_trips: (40, 250),
            sde_cost: cost(2.1, 8.0, 1.1),
            ..d()
        },
        "cactusADM" => GenSpec {
            mix: MixProfile::fp_sse_packed(),
            block_len: (24, 48),
            n_hot_fns: 2,
            loop_trips: (150, 600),
            diamond_frac: 0.05,
            sde_cost: cost(2.0, 8.0, 1.3),
            ..d()
        },
        "leslie3d" => GenSpec {
            mix: MixProfile::fp_sse_packed(),
            block_len: (14, 34),
            n_hot_fns: 3,
            loop_trips: (100, 400),
            sde_cost: cost(2.0, 8.0, 1.2),
            chain_frac: 0.6,
            chain_blocks: (5, 8),
            ..d()
        },
        "namd" => GenSpec {
            mix: MixProfile::fp_sse_packed(),
            block_len: (16, 38),
            n_hot_fns: 4,
            loop_trips: (80, 350),
            sde_cost: cost(2.0, 8.0, 1.1),
            chain_frac: 0.6,
            chain_blocks: (5, 8),
            ..d()
        },
        "dealII" => GenSpec {
            mix: MixProfile::fp_sse_scalar(),
            block_len: (5, 14),
            n_hot_fns: 8,
            call_frac: 0.3,
            n_leaf_fns: 6,
            diamond_frac: 0.25,
            loop_trips: (10, 80),
            sde_cost: cost(2.6, 8.0, 1.1),
            ..d()
        },
        "soplex" => GenSpec {
            mix: MixProfile::new(vec![
                (InstrClass::SseScalar, 14.0),
                (InstrClass::IntAlu, 16.0),
                (InstrClass::Load, 18.0),
                (InstrClass::Compare, 10.0),
                (InstrClass::Store, 7.0),
                (InstrClass::SseMove, 8.0),
            ]),
            block_len: (6, 16),
            n_hot_fns: 5,
            diamond_frac: 0.3,
            loop_trips: (20, 120),
            sde_cost: cost(2.2, 8.0, 1.0),
            ..d()
        },
        // povray: the paper's worst SDE slowdown in SPEC (12.1×) — dense
        // scalar FP with many small calls.
        "povray" => GenSpec {
            mix: MixProfile::fp_sse_scalar(),
            block_len: (5, 13),
            n_hot_fns: 8,
            segments_per_fn: 6,
            call_frac: 0.3,
            n_leaf_fns: 8,
            leaf_len: (3, 8),
            diamond_frac: 0.25,
            loop_trips: (8, 60),
            sde_cost: cost(3.2, 11.0, 1.8),
            ..d()
        },
        "calculix" => GenSpec {
            mix: MixProfile::fp_sse_packed(),
            block_len: (10, 28),
            n_hot_fns: 5,
            loop_trips: (40, 250),
            sde_cost: cost(2.1, 8.0, 1.1),
            chain_frac: 0.6,
            chain_blocks: (5, 8),
            ..d()
        },
        "GemsFDTD" => GenSpec {
            mix: MixProfile::fp_sse_packed(),
            block_len: (16, 40),
            n_hot_fns: 3,
            loop_trips: (100, 500),
            sde_cost: cost(2.0, 8.0, 1.2),
            chain_frac: 0.6,
            chain_blocks: (5, 8),
            ..d()
        },
        "tonto" => GenSpec {
            mix: MixProfile::fp_sse_scalar(),
            block_len: (8, 20),
            n_hot_fns: 6,
            call_frac: 0.2,
            loop_trips: (20, 150),
            sde_cost: cost(2.2, 8.0, 1.1),
            chain_frac: 0.6,
            chain_blocks: (5, 8),
            ..d()
        },
        // lbm: long FP blocks immediately preceded by long-latency
        // divides — the one case where the paper's HBBP (choosing EBS on
        // long blocks) loses narrowly to LBR.
        "lbm" => GenSpec {
            mix: MixProfile::new(vec![
                (InstrClass::SsePacked, 24.0),
                (InstrClass::SseDivSqrt, 7.0),
                (InstrClass::SseMove, 12.0),
                (InstrClass::Load, 8.0),
                (InstrClass::IntAlu, 6.0),
                (InstrClass::Compare, 3.0),
            ]),
            block_len: (22, 44),
            n_hot_fns: 2,
            loop_trips: (200, 800),
            diamond_frac: 0.05,
            sde_cost: cost(2.0, 8.0, 1.2),
            ..d()
        },
        "wrf" => GenSpec {
            mix: MixProfile::fp_sse_packed(),
            block_len: (10, 30),
            n_hot_fns: 6,
            loop_trips: (40, 200),
            diamond_frac: 0.15,
            sde_cost: cost(2.1, 8.0, 1.2),
            chain_frac: 0.6,
            chain_blocks: (5, 8),
            ..d()
        },
        "sphinx3" => GenSpec {
            mix: MixProfile::fp_sse_scalar(),
            block_len: (6, 16),
            n_hot_fns: 5,
            diamond_frac: 0.25,
            loop_trips: (30, 150),
            sde_cost: cost(2.2, 8.0, 1.1),
            ..d()
        },
        other => panic!("unknown SPEC benchmark `{other}`"),
    };
    s.name = SPEC_NAMES
        .iter()
        .find(|n| **n == name)
        .expect("name in SPEC_NAMES");
    // Give every benchmark its own generation seed.
    let idx = SPEC_NAMES.iter().position(|n| *n == name).expect("known") as u64;
    s.seed ^= 0x5bec_0000 + idx * 0x9e37;
    s
}

/// Generate one benchmark by name.
///
/// # Panics
///
/// Panics if `name` is not in [`SPEC_NAMES`].
pub fn workload_for(name: &str, scale: Scale) -> Workload {
    let w = generate(&spec_for(name), scale);
    if name == "x264ref" {
        // The paper's footnote 2: SDE mis-counts x264ref; PMU counting
        // verification catches it and the benchmark is excluded from the
        // error averages.
        w.with_sde_fault(MiscountFault {
            mnemonic: Mnemonic::Paddd,
            factor: 0.62,
        })
    } else {
        w
    }
}

/// Generate the whole suite.
pub fn all(scale: Scale) -> Vec<Workload> {
    SPEC_NAMES.iter().map(|n| workload_for(n, scale)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbbp_sim::Cpu;

    #[test]
    fn every_benchmark_generates_and_runs() {
        for name in SPEC_NAMES {
            let w = workload_for(name, Scale::Tiny);
            let r = Cpu::with_seed(1)
                .run_clean(w.program(), w.layout(), w.oracle())
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(
                r.instructions > 10_000,
                "{name} too small: {} instructions",
                r.instructions
            );
            assert_eq!(r.end, hbbp_program::WalkEnd::Exited, "{name}");
        }
    }

    #[test]
    fn block_length_characters_differ() {
        let hmmer = workload_for("hmmer", Scale::Tiny);
        let cactus = workload_for("cactusADM", Scale::Tiny);
        let (_, hmmer_mean, _) = hmmer.program().block_length_stats();
        let (_, cactus_mean, _) = cactus.program().block_length_stats();
        assert!(
            hmmer_mean + 8.0 < cactus_mean,
            "hmmer {hmmer_mean} vs cactusADM {cactus_mean}"
        );
    }

    #[test]
    fn only_x264ref_has_sde_fault() {
        for name in SPEC_NAMES {
            let w = workload_for(name, Scale::Tiny);
            assert_eq!(w.sde_fault().is_some(), name == "x264ref", "{name}");
        }
    }

    #[test]
    fn seeds_differ_across_benchmarks() {
        let a = spec_for("perlbench").seed;
        let b = spec_for("bzip2").seed;
        assert_ne!(a, b);
    }
}

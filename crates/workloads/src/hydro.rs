//! Hydro-post — the extreme-slowdown benchmark of Table 1 (76.6× under
//! SDE).
//!
//! A post-processing stage of a hydrodynamics simulation: dense packed FP
//! with gather-style memory access, which the emulator must interpret —
//! hence the enormous instrumentation cost and the paper's argument that
//! such codes cannot be profiled with SDE in production.

use crate::synth::{InstrClass, MixProfile};
use crate::workload::{generate, GenSpec, Scale, Workload};
use hbbp_instrument::CostModel;

/// Generate the Hydro-post workload.
pub fn hydro_post(scale: Scale) -> Workload {
    generate(
        &GenSpec {
            name: "hydro-post",
            mix: MixProfile::new(vec![
                (InstrClass::AvxPacked, 22.0),
                (InstrClass::AvxFma, 10.0),
                (InstrClass::AvxMove, 14.0),
                (InstrClass::AvxDivSqrt, 2.5),
                (InstrClass::Load, 9.0),
                (InstrClass::Store, 5.0),
                (InstrClass::IntAlu, 7.0),
                (InstrClass::Compare, 4.0),
            ]),
            block_len: (14, 34),
            n_hot_fns: 4,
            segments_per_fn: 6,
            loop_trips: (60, 400),
            diamond_frac: 0.1,
            call_frac: 0.1,
            outer_iterations: 100,
            sde_cost: CostModel {
                per_block_cycles: 12.0,
                per_instr_cycles: 3.0,
                per_fp_cycles: 14.0,
                per_branch_cycles: 5.0,
                // SDE interprets the wide-vector code path instruction by
                // instruction.
                emulation_multiplier: 6.5,
            },
            seed: 0x44D0_9057,
            ..GenSpec::default()
        },
        scale,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbbp_instrument::Instrumenter;

    #[test]
    fn slowdown_is_extreme() {
        let w = hydro_post(Scale::Tiny);
        let truth = Instrumenter::new().with_cost(w.sde_cost().clone()).run(
            w.program(),
            w.layout(),
            w.oracle(),
        );
        let s = truth.slowdown();
        assert!(s > 40.0, "Hydro-post slowdown {s} should be extreme");
        assert!(s < 150.0, "Hydro-post slowdown {s} implausibly high");
    }
}

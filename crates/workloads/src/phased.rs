//! A phase-switching workload for windowed/streaming analysis.
//!
//! Real long-running programs move through phases — an integer-heavy setup
//! loop, a vectorized math kernel, an AVX hot section — and a whole-run
//! instruction mix averages them away. This workload makes the phases
//! explicit: execution dwells in one kernel at a time and cycles through
//! all of them repeatedly, so a **windowed** online analysis
//! (`hbbp_core::OnlineAnalyzer` with a time window narrower than one
//! phase) resolves a mix *timeline* that a batch analysis cannot.

use crate::synth::{emit_function, Behavior, BehaviorMap, InstrClass, MixProfile, Segment};
use crate::workload::{Scale, Workload};
use hbbp_instrument::CostModel;
use hbbp_isa::instruction::build;
use hbbp_isa::Mnemonic;
use hbbp_program::{FunctionId, ProgramBuilder, Ring};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// How many distinct phases [`phased`] cycles through per outer round.
pub const PHASE_KINDS: usize = 3;

/// The phase-switching benchmark: three kernels with starkly different
/// mixes (integer ALU, packed SSE, packed AVX), each executed in a long
/// dwell loop, cycled `3 × phase_rounds` times. [`Scale`] multiplies the
/// dwell (phase *length*), not the phase count, so the timeline shape is
/// scale-invariant.
pub fn phased(scale: Scale) -> Workload {
    phased_with(scale, 2)
}

/// One client of a **fleet** running the phased binary: the same program
/// as [`phased`] — identical text images, layout and block map, which is
/// what lets a profile store merge the clients' profiles — but a
/// per-client run length: client `c` performs `1 + (c mod 3)` outer
/// rounds. Because every phased branch is trip-driven, the oracle seed
/// (also varied per client, for workloads that grow probabilistic
/// behaviours) does not change the execution: clients with equal
/// `c mod 3` replay the same run, and fleet scenarios differentiate them
/// further through the collection-time hardware seed (PMU skid/jitter
/// draws). Used by the multi-client daemon scenarios (`hbbp-store`
/// loopback tests, the `fleet-aggregation` experiment).
pub fn phased_client(scale: Scale, client: u32) -> Workload {
    phased_with(scale, 1 + u64::from(client) % 3)
        .with_oracle_seed(0x9A5E ^ 0x5eed ^ (u64::from(client) << 32))
}

/// [`phased`] with an explicit number of outer rounds (each round passes
/// through all [`PHASE_KINDS`] phases once).
pub fn phased_with(scale: Scale, phase_rounds: u64) -> Workload {
    let mut rng = SmallRng::seed_from_u64(0x9A5E);
    let mut b = ProgramBuilder::new("phased");
    let module = b.module("phased.bin", Ring::User);
    let mut behaviors = BehaviorMap::new();

    // One kernel function per phase: a long straight body inside a
    // self-loop (the long-block shape keeps each phase's mix pure).
    let kernels: [(&str, MixProfile); PHASE_KINDS] = [
        ("kernel_int", MixProfile::int_heavy()),
        ("kernel_sse", MixProfile::fp_sse_packed()),
        (
            "kernel_avx",
            MixProfile::dominated_by(InstrClass::AvxPacked),
        ),
    ];
    let kernel_fns: Vec<FunctionId> = kernels
        .iter()
        .map(|(name, mix)| {
            let f = b.function(module, *name);
            emit_function(
                &mut b,
                f,
                &[
                    Segment::Loop {
                        body_len: 24,
                        trips: 12,
                    },
                    Segment::Loop {
                        body_len: 28,
                        trips: 9,
                    },
                ],
                mix,
                &mut behaviors,
                &mut rng,
            );
            f
        })
        .collect();

    // Driver: per outer round, dwell in each kernel `dwell` calls before
    // moving to the next — long homogeneous stretches of machine time.
    let dwell = 24 * scale.multiplier();
    let main = b.function(module, "main");
    let entry = b.block(main);
    b.push_all(entry, MixProfile::int_heavy().gen_block_body(2, &mut rng));
    let round_head = b.block(main);
    b.terminate_jump(entry, round_head);
    b.push_all(
        round_head,
        MixProfile::int_heavy().gen_block_body(1, &mut rng),
    );
    let mut current = round_head;
    for &kernel in &kernel_fns {
        // Dwell loop: call the kernel, loop back `dwell` times.
        let call_site = current;
        let ret_to = b.block(main);
        b.terminate_call(call_site, kernel, ret_to);
        let next_phase = b.block(main);
        b.push_all(ret_to, MixProfile::int_heavy().gen_block_body(1, &mut rng));
        b.terminate_branch(ret_to, Mnemonic::Jnz, call_site, next_phase);
        behaviors.set(ret_to, Behavior::Trips(dwell.max(1)));
        b.push_all(
            next_phase,
            MixProfile::int_heavy().gen_block_body(1, &mut rng),
        );
        current = next_phase;
    }
    let exit = b.block(main);
    b.terminate_branch(current, Mnemonic::Jnz, round_head, exit);
    behaviors.set(current, Behavior::Trips(phase_rounds.max(1)));
    b.terminate_exit(exit, build::bare(Mnemonic::Syscall));

    let program = b.build(main).expect("phased program is valid");
    Workload::from_program(
        "phased",
        program,
        behaviors,
        0x9A5E ^ 0x5eed,
        CostModel::default(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbbp_isa::Extension;
    use hbbp_program::Walker;
    use hbbp_sim::Cpu;

    #[test]
    fn phased_runs_and_is_deterministic() {
        let a = phased(Scale::Tiny);
        let b = phased(Scale::Tiny);
        let ra = Cpu::with_seed(3)
            .run_clean(a.program(), a.layout(), a.oracle())
            .unwrap();
        let rb = Cpu::with_seed(3)
            .run_clean(b.program(), b.layout(), b.oracle())
            .unwrap();
        assert_eq!(ra.instructions, rb.instructions);
        assert_eq!(ra.cycles, rb.cycles);
        assert!(ra.instructions > 50_000, "too small: {}", ra.instructions);
    }

    #[test]
    fn execution_alternates_between_phase_kernels() {
        // Walk the program and record which kernel function owns each
        // executed block; phases must appear as long homogeneous runs.
        let w = phased_with(Scale::Tiny, 2);
        let p = w.program();
        let owner: Vec<Option<&str>> = (0..p.block_count())
            .map(|i| {
                let bid = hbbp_program::BlockId::from_index(i);
                p.functions()
                    .iter()
                    .find(|f| f.blocks().contains(&bid))
                    .map(|f| f.name())
            })
            .collect();
        let mut walker = Walker::new(p, w.oracle());
        let mut runs: Vec<(&str, u64)> = Vec::new();
        while let Some(bid) = walker.next_block() {
            let Some(name) = owner[bid.index()] else {
                continue;
            };
            if !name.starts_with("kernel_") {
                continue;
            }
            match runs.last_mut() {
                Some((last, n)) if *last == name => *n += 1,
                _ => runs.push((name, 1)),
            }
        }
        // 2 rounds × 3 phases = 6 homogeneous kernel runs.
        let names: Vec<&str> = runs.iter().map(|(n, _)| *n).collect();
        assert_eq!(
            names,
            vec![
                "kernel_int",
                "kernel_sse",
                "kernel_avx",
                "kernel_int",
                "kernel_sse",
                "kernel_avx"
            ]
        );
        // Each dwell is long: thousands of blocks per phase.
        assert!(runs.iter().all(|(_, n)| *n > 500), "runs: {runs:?}");
    }

    #[test]
    fn fleet_clients_share_the_binary_but_not_the_run() {
        use hbbp_program::ImageView;
        let a = phased_client(Scale::Tiny, 0);
        let b = phased_client(Scale::Tiny, 1);
        let c = phased_client(Scale::Tiny, 3);
        // Identical static side: same images byte for byte, same layout.
        let img = |w: &Workload| {
            w.images(ImageView::Disk)
                .iter()
                .map(|i| i.bytes().to_vec())
                .collect::<Vec<_>>()
        };
        assert_eq!(img(&a), img(&b));
        assert_eq!(img(&a), img(&c));
        // Different dynamic side: rounds differ between clients 0 and 1.
        let run = |w: &Workload| {
            Cpu::with_seed(3)
                .run_clean(w.program(), w.layout(), w.oracle())
                .unwrap()
                .instructions
        };
        let (ra, rb, rc) = (run(&a), run(&b), run(&c));
        assert!(rb > ra, "client 1 runs 2 rounds vs client 0's 1: {ra} {rb}");
        // Clients 0 and 3 share the round count but not the oracle seed.
        assert_eq!(a.behaviors().map(), c.behaviors().map());
        assert_eq!(ra, rc, "trip-driven phased runs are seed-invariant");
    }

    #[test]
    fn phase_kernels_have_distinct_static_mixes() {
        let w = phased(Scale::Tiny);
        let p = w.program();
        let ext_frac = |fn_name: &str, ext: Extension| -> f64 {
            let f = p
                .functions()
                .iter()
                .find(|f| f.name() == fn_name)
                .expect("kernel exists");
            let mut total = 0.0;
            let mut hit = 0.0;
            for &bid in f.blocks() {
                for instr in p.block(bid).instrs() {
                    total += 1.0;
                    if instr.extension() == ext {
                        hit += 1.0;
                    }
                }
            }
            hit / total
        };
        assert!(ext_frac("kernel_sse", Extension::Sse) > 0.3);
        assert!(ext_frac("kernel_avx", Extension::Avx) > 0.5);
        assert!(ext_frac("kernel_int", Extension::Sse) < 0.05);
        assert!(ext_frac("kernel_int", Extension::Avx) < 0.05);
    }
}

//! Non-SPEC training workloads for learning the HBBP rule.
//!
//! The paper: "We train our classification trees on approximately 1,100
//! basic blocks of training input from non-SPEC benchmarks" (§IV.B). This
//! module generates a deliberately diverse set of small programs — short
//! and long blocks, every ISA flavour, loopy and branchy shapes — whose
//! pooled blocks form that training population.

use crate::synth::{InstrClass, MixProfile};
use crate::workload::{generate, GenSpec, Scale, Workload};
use hbbp_instrument::CostModel;

/// Names of the training workloads.
pub const TRAINING_NAMES: [&str; 12] = [
    "train-int-short",
    "train-int-long",
    "train-sse-short",
    "train-sse-long",
    "train-avx-short",
    "train-avx-long",
    "train-x87",
    "train-mem",
    "train-oo",
    "train-branchy",
    "train-div-heavy",
    "train-mixed",
];

fn base(name: &'static str, seed_off: u64) -> GenSpec {
    GenSpec {
        name,
        n_hot_fns: 5,
        segments_per_fn: 5,
        n_leaf_fns: 3,
        outer_iterations: 80,
        sde_cost: CostModel::default(),
        seed: 0x7124_1000 + seed_off * 0x1357,
        ..GenSpec::default()
    }
}

/// The spec for one training workload.
///
/// # Panics
///
/// Panics if `name` is not in [`TRAINING_NAMES`].
pub fn training_spec(name: &str) -> GenSpec {
    let idx = TRAINING_NAMES
        .iter()
        .position(|n| *n == name)
        .unwrap_or_else(|| panic!("unknown training workload `{name}`"));
    let idx_u = idx as u64;
    match name {
        "train-int-short" => GenSpec {
            mix: MixProfile::int_heavy(),
            block_len: (3, 8),
            loop_trips: (30, 200),
            ..base("train-int-short", idx_u)
        },
        "train-int-long" => GenSpec {
            mix: MixProfile::int_heavy(),
            block_len: (20, 40),
            loop_trips: (30, 200),
            ..base("train-int-long", idx_u)
        },
        "train-sse-short" => GenSpec {
            mix: MixProfile::fp_sse_packed(),
            block_len: (4, 10),
            loop_trips: (40, 250),
            ..base("train-sse-short", idx_u)
        },
        "train-sse-long" => GenSpec {
            mix: MixProfile::fp_sse_packed(),
            block_len: (20, 44),
            loop_trips: (40, 250),
            ..base("train-sse-long", idx_u)
        },
        "train-avx-short" => GenSpec {
            mix: MixProfile::fp_avx(),
            block_len: (4, 12),
            loop_trips: (40, 200),
            ..base("train-avx-short", idx_u)
        },
        "train-avx-long" => GenSpec {
            mix: MixProfile::fp_avx(),
            block_len: (19, 40),
            loop_trips: (40, 200),
            ..base("train-avx-long", idx_u)
        },
        "train-x87" => GenSpec {
            mix: MixProfile::x87(),
            block_len: (8, 24),
            loop_trips: (30, 150),
            ..base("train-x87", idx_u)
        },
        "train-mem" => GenSpec {
            mix: MixProfile::mem_heavy(),
            block_len: (6, 18),
            loop_trips: (50, 300),
            ..base("train-mem", idx_u)
        },
        "train-oo" => GenSpec {
            mix: MixProfile::oo_code(),
            block_len: (3, 7),
            call_frac: 0.4,
            n_leaf_fns: 8,
            leaf_len: (2, 6),
            loop_trips: (4, 30),
            ..base("train-oo", idx_u)
        },
        "train-branchy" => GenSpec {
            mix: MixProfile::int_heavy(),
            block_len: (4, 12),
            diamond_frac: 0.55,
            loop_trips: (5, 40),
            ..base("train-branchy", idx_u)
        },
        "train-div-heavy" => GenSpec {
            mix: MixProfile::new(vec![
                (InstrClass::IntAlu, 16.0),
                (InstrClass::IntDiv, 6.0),
                (InstrClass::SseDivSqrt, 5.0),
                (InstrClass::Load, 12.0),
                (InstrClass::Compare, 8.0),
                (InstrClass::SsePacked, 8.0),
            ]),
            block_len: (6, 26),
            loop_trips: (30, 150),
            ..base("train-div-heavy", idx_u)
        },
        "train-mixed" => GenSpec {
            mix: MixProfile::new(vec![
                (InstrClass::IntAlu, 14.0),
                (InstrClass::SsePacked, 10.0),
                (InstrClass::AvxPacked, 8.0),
                (InstrClass::X87Arith, 6.0),
                (InstrClass::Load, 12.0),
                (InstrClass::Store, 6.0),
                (InstrClass::Compare, 8.0),
                (InstrClass::Stack, 4.0),
            ]),
            block_len: (3, 36),
            diamond_frac: 0.3,
            loop_trips: (10, 200),
            ..base("train-mixed", idx_u)
        },
        _ => unreachable!("name checked above"),
    }
}

/// Generate the full training suite.
pub fn training_suite(scale: Scale) -> Vec<Workload> {
    TRAINING_NAMES
        .iter()
        .map(|n| generate(&training_spec(n), scale))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_roughly_1100_blocks() {
        // The paper trains on ≈1,100 basic blocks.
        let total: usize = training_suite(Scale::Tiny)
            .iter()
            .map(|w| w.program().block_count())
            .sum();
        assert!(
            (700..1600).contains(&total),
            "training suite has {total} blocks, expected ≈1100"
        );
    }

    #[test]
    fn lengths_span_the_cutoff_region() {
        let suite = training_suite(Scale::Tiny);
        let mut short = 0usize;
        let mut long = 0usize;
        for w in &suite {
            for block in w.program().blocks() {
                if block.len() <= 18 {
                    short += 1;
                } else {
                    long += 1;
                }
            }
        }
        assert!(short > 100, "short blocks: {short}");
        assert!(long > 100, "long blocks: {long}");
    }

    #[test]
    fn every_training_workload_generates() {
        for w in training_suite(Scale::Tiny) {
            assert!(w.program().block_count() > 20, "{}", w.name());
        }
    }
}

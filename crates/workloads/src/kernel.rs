//! The synthetic kernel benchmark of paper §VIII.D.
//!
//! "We construct a small synthetic prime number search benchmark in user
//! space. We then insert the same code into a live kernel as a device
//! driver module, and trigger it from user space by reads. Calls to kernel
//! code are separated in time to simulate real behavior."
//!
//! `hello_u` (user binary) and `hello_k` (in `hello.ko`, ring 0) are
//! emitted from the same template, so their mixes are directly comparable
//! (Table 7). The kernel module carries tracepoint sites — self-modifying
//! text — so the workload also exercises the paper's §III.C kernel-image
//! patching requirement.

use crate::synth::{Behavior, BehaviorMap};
use crate::workload::{Scale, Workload};
use hbbp_instrument::CostModel;
use hbbp_isa::{instruction::build, BranchKind, Mnemonic, Reg};
use hbbp_program::{FunctionId, ProgramBuilder, Ring};
use hbbp_sim::lbr::{is_sticky_branch, STICKY_ALIGN};

/// Iterations of the user driver loop at `Scale::Tiny`.
pub const BASE_READS: u64 = 300;

/// Emit the prime-search function body (identical for user and kernel).
///
/// The mnemonic population is Table 7's: `ADD CDQE CMP IMUL JLE JNLE JNZ JZ
/// MOV MOVSXD SUB TEST`, structured as three nested loops plus a parity
/// diamond. When `tracepoints` is set, two probe sites are inserted (the
/// kernel build).
fn emit_prime_fn(
    b: &mut ProgramBuilder,
    f: FunctionId,
    behaviors: &mut BehaviorMap,
    tracepoints: bool,
) {
    let g = Reg::gpr;
    // Outer loop over prime candidates.
    let outer = b.block(f);
    b.push(outer, build::rr(Mnemonic::Mov, g(0), g(8)));
    b.push(outer, build::bare(Mnemonic::Cdqe));
    b.push(outer, build::rr(Mnemonic::Imul, g(1), g(0)));
    b.push(outer, build::rr(Mnemonic::Mov, g(2), g(1)));
    if tracepoints {
        b.tracepoint(outer);
    }

    // Middle loop over divisor strides.
    let mid = b.block(f);
    b.terminate_jump(outer, mid);
    b.push(mid, build::rr(Mnemonic::Movsxd, g(3), g(2)));
    b.push(mid, build::rr(Mnemonic::Sub, g(0), g(3)));
    b.push(mid, build::rr(Mnemonic::Mov, g(4), g(0)));
    b.push(mid, build::rr(Mnemonic::Add, g(4), g(3)));

    // Inner trial loop (hottest).
    let inner = b.block(f);
    b.terminate_jump(mid, inner);
    b.push(inner, build::rr(Mnemonic::Add, g(5), g(4)));
    b.push(inner, build::rr(Mnemonic::Add, g(5), g(3)));
    b.push(inner, build::rr(Mnemonic::Mov, g(6), g(5)));
    b.push(inner, build::rr(Mnemonic::Cmp, g(6), g(0)));
    let after_inner = b.block(f);
    b.terminate_branch(inner, Mnemonic::Jnz, inner, after_inner);
    behaviors.set(inner, Behavior::Trips(4));

    // Parity diamond: TEST + JZ.
    b.push(after_inner, build::rr(Mnemonic::Test, g(6), g(6)));
    let odd = b.block(f);
    let even = b.block(f);
    let join = b.block(f);
    b.terminate_branch(after_inner, Mnemonic::Jz, even, odd);
    behaviors.set(after_inner, Behavior::Prob(0.5));
    b.push(odd, build::rr(Mnemonic::Add, g(7), g(6)));
    if tracepoints {
        b.tracepoint(odd);
    }
    b.push(odd, build::rr(Mnemonic::Cmp, g(7), g(0)));
    b.terminate_jump(odd, join);
    b.push(even, build::rr(Mnemonic::Mov, g(7), g(6)));
    b.push(even, build::rr(Mnemonic::Sub, g(7), g(3)));
    b.terminate_jump(even, join);

    // Close the middle loop.
    b.push(join, build::rr(Mnemonic::Add, g(2), g(3)));
    b.push(join, build::rr(Mnemonic::Cmp, g(2), g(1)));
    let after_mid = b.block(f);
    b.terminate_branch(join, Mnemonic::Jle, mid, after_mid);
    behaviors.set(join, Behavior::Trips(3));

    // Close the outer loop.
    b.push(after_mid, build::rr(Mnemonic::Add, g(8), g(3)));
    b.push(after_mid, build::rr(Mnemonic::Cmp, g(8), g(9)));
    let done = b.block(f);
    b.terminate_branch(after_mid, Mnemonic::Jnle, outer, done);
    behaviors.set(after_mid, Behavior::Trips(3));

    b.push(done, build::rr(Mnemonic::Mov, g(10), g(7)));
    b.terminate_ret(done);
}

/// Build the kernel benchmark workload: a user binary `hello` (with
/// `hello_u`) and a kernel module `hello.ko` (with `hello_k`), driven by a
/// user loop that alternates user work, a kernel "read" and a spacing spin
/// loop.
///
/// Both modules are alignment-padded so no conditional branch lands in
/// the LBR sticky window — Table 7 demonstrates ring coverage, not the
/// bias anomaly (which Table 3 covers).
pub fn kernel_benchmark(scale: Scale) -> Workload {
    let probe = build_kernel(scale, 0, 0);
    let cond_addrs = |w: &Workload, module_name: &str| -> Vec<u64> {
        let module = w
            .program()
            .modules()
            .iter()
            .find(|m| m.name() == module_name)
            .expect("module");
        let mut addrs = Vec::new();
        for &fid in module.functions() {
            for &bid in w.program().function(fid).blocks() {
                let block = w.program().block(bid);
                if block.last_instr().and_then(|i| i.branch_kind()) == Some(BranchKind::Conditional)
                {
                    addrs.push(w.layout().terminator_addr(bid));
                }
            }
        }
        addrs
    };
    // 3-byte NOP padding shifts every later address by 3k; find shifts
    // under which no conditional branch is alignment-sticky.
    let find_pad = |addrs: &[u64]| -> usize {
        (0..STICKY_ALIGN as usize)
            .find(|k| addrs.iter().all(|a| !is_sticky_branch(a + 3 * *k as u64)))
            .unwrap_or(0)
    };
    let pad_u = find_pad(&cond_addrs(&probe, "hello"));
    let pad_k = find_pad(&cond_addrs(&probe, "hello.ko"));
    if pad_u == 0 && pad_k == 0 {
        return probe;
    }
    build_kernel(scale, pad_u, pad_k)
}

fn build_kernel(scale: Scale, pad_u: usize, pad_k: usize) -> Workload {
    let mut b = ProgramBuilder::new("kernel-prime");
    let user = b.module("hello", Ring::User);
    let kmod = b.module("hello.ko", Ring::Kernel);
    let mut behaviors = BehaviorMap::new();

    // Alignment shims (never executed; laid out first in each module).
    for (module, pad) in [(user, pad_u), (kmod, pad_k)] {
        let f = b.function(module, "__alignment_pad");
        let blk = b.block(f);
        for _ in 0..pad {
            b.push(blk, build::bare(Mnemonic::Nop));
        }
        b.terminate_ret(blk);
    }

    let hello_u = b.function(user, "hello_u");
    emit_prime_fn(&mut b, hello_u, &mut behaviors, false);
    let hello_k = b.function(kmod, "hello_k");
    emit_prime_fn(&mut b, hello_k, &mut behaviors, true);

    let main = b.function(user, "main");
    let entry = b.block(main);
    b.push(entry, build::ri(Mnemonic::Mov, Reg::gpr(8), 3));
    b.push(entry, build::ri(Mnemonic::Mov, Reg::gpr(9), 1000));
    let loop_head = b.block(main);
    b.terminate_jump(entry, loop_head);
    b.push(
        loop_head,
        build::rr(Mnemonic::Add, Reg::gpr(11), Reg::gpr(8)),
    );
    let r0 = b.block(main);
    b.terminate_call(loop_head, hello_u, r0);
    // The "read" that traps into the kernel module.
    b.push(r0, build::rr(Mnemonic::Mov, Reg::gpr(12), Reg::gpr(11)));
    let r1 = b.block(main);
    b.terminate_call(r0, hello_k, r1);
    // Spacing spin loop: separates kernel calls in time (paper §VIII.D).
    let spin = b.block(main);
    b.terminate_jump(r1, spin);
    b.push(spin, build::rr(Mnemonic::Add, Reg::gpr(13), Reg::gpr(8)));
    b.push(spin, build::rr(Mnemonic::Cmp, Reg::gpr(13), Reg::gpr(9)));
    let after_spin = b.block(main);
    b.terminate_branch(spin, Mnemonic::Jnz, spin, after_spin);
    behaviors.set(spin, Behavior::Trips(12));
    b.push(
        after_spin,
        build::rr(Mnemonic::Test, Reg::gpr(11), Reg::gpr(11)),
    );
    let exit = b.block(main);
    b.terminate_branch(after_spin, Mnemonic::Jnz, loop_head, exit);
    behaviors.set(after_spin, Behavior::Trips(BASE_READS * scale.multiplier()));
    b.terminate_exit(exit, build::bare(Mnemonic::Syscall));

    let program = b.build(main).expect("kernel benchmark valid");
    Workload::from_program(
        "kernel-prime",
        program,
        behaviors,
        0xC0DE_1234,
        CostModel::default(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbbp_instrument::Instrumenter;
    use hbbp_program::{ImageView, Ring};
    use hbbp_sim::Cpu;

    #[test]
    fn user_and_kernel_functions_have_identical_shape() {
        let w = kernel_benchmark(Scale::Tiny);
        let p = w.program();
        let fu = p
            .functions()
            .iter()
            .find(|f| f.name() == "hello_u")
            .unwrap();
        let fk = p
            .functions()
            .iter()
            .find(|f| f.name() == "hello_k")
            .unwrap();
        assert_eq!(fu.blocks().len(), fk.blocks().len());
        for (&bu, &bk) in fu.blocks().iter().zip(fk.blocks()) {
            // Kernel blocks may carry extra tracepoint NOPs.
            let iu: Vec<_> = p.block(bu).instrs().iter().map(|i| i.mnemonic()).collect();
            let ik: Vec<_> = p
                .block(bk)
                .instrs()
                .iter()
                .filter(|i| i.mnemonic() != Mnemonic::NopMulti)
                .map(|i| i.mnemonic())
                .collect();
            assert_eq!(iu, ik);
        }
    }

    #[test]
    fn only_table7_mnemonics_in_prime_fn() {
        let w = kernel_benchmark(Scale::Tiny);
        let p = w.program();
        let allowed = [
            "ADD",
            "CDQE",
            "CMP",
            "IMUL",
            "JLE",
            "JNLE",
            "JNZ",
            "JZ",
            "MOV",
            "MOVSXD",
            "SUB",
            "TEST",
            "RET_NEAR",
            "JMP",
            "NOP_MULTI",
        ];
        for f in p
            .functions()
            .iter()
            .filter(|f| f.name().starts_with("hello_"))
        {
            for &bid in f.blocks() {
                for i in p.block(bid).instrs() {
                    assert!(
                        allowed.contains(&i.mnemonic().name()),
                        "{} contains {}",
                        f.name(),
                        i.mnemonic()
                    );
                }
            }
        }
    }

    #[test]
    fn kernel_module_has_tracepoints_and_ring0() {
        let w = kernel_benchmark(Scale::Tiny);
        let km = w
            .program()
            .modules()
            .iter()
            .find(|m| m.name() == "hello.ko")
            .unwrap();
        assert_eq!(km.ring(), Ring::Kernel);
        assert_eq!(km.tracepoints().len(), 2);
        // Disk and live views differ.
        let disk = w.images(ImageView::Disk);
        let live = w.images(ImageView::Live);
        let kd = disk.iter().find(|i| i.name() == "hello.ko").unwrap();
        let kl = live.iter().find(|i| i.name() == "hello.ko").unwrap();
        assert_ne!(kd.bytes(), kl.bytes());
    }

    #[test]
    fn instrumenter_sees_only_user_half() {
        let w = kernel_benchmark(Scale::Tiny);
        let truth = Instrumenter::new().run(w.program(), w.layout(), w.oracle());
        assert!(truth.kernel_blocks_invisible > 0);
        let run = Cpu::with_seed(1)
            .run_clean(w.program(), w.layout(), w.oracle())
            .unwrap();
        // PMU sees more instructions than the instrumenter.
        assert!(run.instructions as f64 > truth.instructions * 1.2);
    }
}

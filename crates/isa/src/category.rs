//! Instruction categories and branch kinds.

use std::fmt;

/// Functional category of an instruction.
///
/// This is the "category" axis of the paper's static annotation (§V.B).
/// Categories drive several downstream decisions: which instructions are
/// branches (LBR semantics), which are long-latency (EBS shadowing,
/// user-defined "long latency" taxonomies), and how pivot tables group rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Category {
    /// Register/memory data movement (`MOV`, `MOVAPS`, …).
    Move,
    /// Integer or FP arithmetic other than multiply/divide.
    Arith,
    /// Multiplication.
    Mul,
    /// Division (a classic long-latency hazard, §II.A).
    Div,
    /// Square root.
    Sqrt,
    /// Transcendental x87 operations (`FSIN`, `FPTAN`, …).
    Transcendental,
    /// Fused multiply-add.
    Fma,
    /// Bitwise logic.
    Logic,
    /// Shifts and rotates.
    Shift,
    /// Comparison (sets flags).
    Compare,
    /// Bit-test / bit-scan / population count.
    BitScan,
    /// Conditional branch.
    CondBranch,
    /// Unconditional direct jump.
    UncondBranch,
    /// Near call.
    Call,
    /// Near return.
    Ret,
    /// Stack push.
    Push,
    /// Stack pop.
    Pop,
    /// Stack frame maintenance (`LEAVE`).
    Frame,
    /// Conversions between numeric formats (`CVTSI2SD`, `CDQE`, …).
    Convert,
    /// Vector shuffles/permutes/unpacks.
    Shuffle,
    /// Vector broadcasts / lane insert-extract.
    Broadcast,
    /// Vector gather (AVX2).
    Gather,
    /// Atomic / synchronization (`XADD`, `CMPXCHG`, fences; §V.B example).
    Sync,
    /// No-operation (incl. multi-byte NOPs used for patched tracepoints).
    Nop,
    /// Privileged or system interaction (`SYSCALL`, `CPUID`, …).
    System,
    /// Address generation (`LEA`).
    Lea,
}

impl Category {
    /// Whether instructions of this category transfer control.
    pub fn is_branch(self) -> bool {
        matches!(
            self,
            Category::CondBranch | Category::UncondBranch | Category::Call | Category::Ret
        )
    }

    /// Whether this category is "computational" in the paper's sense
    /// (arithmetic work as opposed to data movement / control).
    pub fn is_computational(self) -> bool {
        matches!(
            self,
            Category::Arith
                | Category::Mul
                | Category::Div
                | Category::Sqrt
                | Category::Transcendental
                | Category::Fma
                | Category::Logic
                | Category::Shift
                | Category::Convert
        )
    }

    /// Short lowercase tag for pivot table rows.
    pub fn name(self) -> &'static str {
        match self {
            Category::Move => "move",
            Category::Arith => "arith",
            Category::Mul => "mul",
            Category::Div => "div",
            Category::Sqrt => "sqrt",
            Category::Transcendental => "transcendental",
            Category::Fma => "fma",
            Category::Logic => "logic",
            Category::Shift => "shift",
            Category::Compare => "compare",
            Category::BitScan => "bitscan",
            Category::CondBranch => "cond-branch",
            Category::UncondBranch => "uncond-branch",
            Category::Call => "call",
            Category::Ret => "ret",
            Category::Push => "push",
            Category::Pop => "pop",
            Category::Frame => "frame",
            Category::Convert => "convert",
            Category::Shuffle => "shuffle",
            Category::Broadcast => "broadcast",
            Category::Gather => "gather",
            Category::Sync => "sync",
            Category::Nop => "nop",
            Category::System => "system",
            Category::Lea => "lea",
        }
    }
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The control-flow kind of a branch instruction.
///
/// LBR filtering in the PMU operates on these kinds; the paper samples on
/// `BR_INST_RETIRED:NEAR_TAKEN`, which covers all four taken-branch kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BranchKind {
    /// Conditional relative branch (taken or not taken at runtime).
    Conditional,
    /// Unconditional relative jump (always taken).
    Unconditional,
    /// Near call (always taken).
    Call,
    /// Near return (always taken).
    Return,
}

impl BranchKind {
    /// Whether this branch kind is *always* taken when executed.
    pub fn always_taken(self) -> bool {
        !matches!(self, BranchKind::Conditional)
    }

    /// Derive the branch kind from a category, if the category is a branch.
    pub fn from_category(category: Category) -> Option<BranchKind> {
        match category {
            Category::CondBranch => Some(BranchKind::Conditional),
            Category::UncondBranch => Some(BranchKind::Unconditional),
            Category::Call => Some(BranchKind::Call),
            Category::Ret => Some(BranchKind::Return),
            _ => None,
        }
    }
}

impl fmt::Display for BranchKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BranchKind::Conditional => "conditional",
            BranchKind::Unconditional => "unconditional",
            BranchKind::Call => "call",
            BranchKind::Return => "return",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn branch_categories() {
        assert!(Category::CondBranch.is_branch());
        assert!(Category::UncondBranch.is_branch());
        assert!(Category::Call.is_branch());
        assert!(Category::Ret.is_branch());
        assert!(!Category::Move.is_branch());
        assert!(!Category::Div.is_branch());
    }

    #[test]
    fn computational_categories() {
        assert!(Category::Div.is_computational());
        assert!(Category::Fma.is_computational());
        assert!(!Category::Move.is_computational());
        assert!(!Category::CondBranch.is_computational());
        assert!(!Category::Nop.is_computational());
    }

    #[test]
    fn branch_kind_from_category() {
        assert_eq!(
            BranchKind::from_category(Category::CondBranch),
            Some(BranchKind::Conditional)
        );
        assert_eq!(
            BranchKind::from_category(Category::Ret),
            Some(BranchKind::Return)
        );
        assert_eq!(BranchKind::from_category(Category::Move), None);
    }

    #[test]
    fn always_taken() {
        assert!(!BranchKind::Conditional.always_taken());
        assert!(BranchKind::Unconditional.always_taken());
        assert!(BranchKind::Call.always_taken());
        assert!(BranchKind::Return.always_taken());
    }

    #[test]
    fn display_names_unique() {
        use std::collections::HashSet;
        let cats = [
            Category::Move,
            Category::Arith,
            Category::Mul,
            Category::Div,
            Category::Sqrt,
            Category::Transcendental,
            Category::Fma,
            Category::Logic,
            Category::Shift,
            Category::Compare,
            Category::BitScan,
            Category::CondBranch,
            Category::UncondBranch,
            Category::Call,
            Category::Ret,
            Category::Push,
            Category::Pop,
            Category::Frame,
            Category::Convert,
            Category::Shuffle,
            Category::Broadcast,
            Category::Gather,
            Category::Sync,
            Category::Nop,
            Category::System,
            Category::Lea,
        ];
        let names: HashSet<_> = cats.iter().map(|c| c.name()).collect();
        assert_eq!(names.len(), cats.len());
    }
}

//! Decoded instruction representation and derived (secondary) attributes.

use crate::{BranchKind, Category, ElementType, Extension, Mnemonic, Operand, Packing, Reg};
use std::fmt;

/// Maximum number of explicit operands an instruction may carry.
pub const MAX_OPERANDS: usize = 3;

/// A decoded instruction: mnemonic + operands + prefixes.
///
/// Instructions are immutable values; the program layer assembles them into
/// basic blocks, and the codec maps them to/from bytes. Branch *targets* are
/// not stored here — control flow is a property of the block graph — but
/// branch instructions carry a relative displacement immediate once a
/// program is laid out.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Instruction {
    mnemonic: Mnemonic,
    operands: Vec<Operand>,
    lock: bool,
}

impl Instruction {
    /// Create an instruction with no operands.
    pub fn new(mnemonic: Mnemonic) -> Instruction {
        Instruction {
            mnemonic,
            operands: Vec::new(),
            lock: false,
        }
    }

    /// Create an instruction with operands.
    ///
    /// # Panics
    ///
    /// Panics if more than [`MAX_OPERANDS`] operands are supplied.
    pub fn with_operands(mnemonic: Mnemonic, operands: impl Into<Vec<Operand>>) -> Instruction {
        let operands = operands.into();
        assert!(
            operands.len() <= MAX_OPERANDS,
            "instruction {mnemonic} has {} operands (max {MAX_OPERANDS})",
            operands.len()
        );
        Instruction {
            mnemonic,
            operands,
            lock: false,
        }
    }

    /// Add a `LOCK` prefix (turns the instruction into an atomic RMW; the
    /// paper's "synchronization instructions" taxonomy example includes
    /// "LOCK variants").
    pub fn locked(mut self) -> Instruction {
        self.lock = true;
        self
    }

    /// The instruction's mnemonic.
    pub fn mnemonic(&self) -> Mnemonic {
        self.mnemonic
    }

    /// Explicit operands.
    pub fn operands(&self) -> &[Operand] {
        &self.operands
    }

    /// Whether the instruction carries a `LOCK` prefix.
    pub fn is_locked(&self) -> bool {
        self.lock
    }

    /// ISA extension (from the mnemonic table).
    pub fn extension(&self) -> Extension {
        self.mnemonic.extension()
    }

    /// Functional category (from the mnemonic table).
    pub fn category(&self) -> Category {
        self.mnemonic.category()
    }

    /// Packing attribute.
    pub fn packing(&self) -> Packing {
        self.mnemonic.packing()
    }

    /// Element type.
    pub fn element(&self) -> ElementType {
        self.mnemonic.element()
    }

    /// Whether the instruction is a branch.
    pub fn is_branch(&self) -> bool {
        self.mnemonic.is_branch()
    }

    /// Branch kind, if the instruction is a branch.
    pub fn branch_kind(&self) -> Option<BranchKind> {
        BranchKind::from_category(self.category())
    }

    /// Secondary attribute: does the instruction read memory?
    pub fn reads_memory(&self) -> bool {
        self.operands.iter().any(Operand::reads_memory)
            || matches!(self.category(), Category::Pop | Category::Ret)
    }

    /// Secondary attribute: does the instruction write memory?
    pub fn writes_memory(&self) -> bool {
        self.operands.iter().any(Operand::writes_memory)
            || matches!(self.category(), Category::Push | Category::Call)
    }

    /// Secondary attribute: is this an atomic/synchronizing operation?
    ///
    /// Covers the `Sync` category plus any `LOCK`-prefixed instruction
    /// (§V.B: a "synchronization instructions" group "would have items such
    /// as XADD, LOCK variants").
    pub fn is_synchronizing(&self) -> bool {
        self.lock || self.category() == Category::Sync
    }

    /// Secondary attribute: vector lane count for SIMD operations
    /// (1 for scalar FP, 0 for non-FP).
    pub fn lanes(&self) -> u32 {
        let elem = self.element().size_bytes();
        if elem == 0 {
            return 0;
        }
        match self.packing() {
            Packing::None => 0,
            Packing::Scalar => 1,
            Packing::Packed => self.vector_width_bytes() / elem,
        }
    }

    /// Width in bytes of the vector unit engaged by this instruction.
    fn vector_width_bytes(&self) -> u32 {
        match self.extension() {
            Extension::Sse => 16,
            Extension::Avx | Extension::Avx2 => {
                // YMM unless an operand says otherwise (e.g. VMOVSS).
                if self
                    .operands
                    .iter()
                    .any(|o| matches!(o, Operand::Reg(r, _) if r.class() == crate::RegClass::Xmm))
                {
                    16
                } else {
                    32
                }
            }
            Extension::X87 => 10,
            _ => 0,
        }
    }

    /// Approximate floating-point operations retired by one execution.
    ///
    /// FMA counts double; moves, shuffles and compares count zero. The paper
    /// cites "approximate FLOP rates" as a direct instruction-mix use.
    pub fn flop_count(&self) -> u32 {
        if !self.element().is_float() {
            return 0;
        }
        let per_lane = match self.category() {
            Category::Arith | Category::Mul | Category::Div | Category::Sqrt => 1,
            Category::Fma => 2,
            Category::Transcendental => 1,
            _ => 0,
        };
        per_lane * self.lanes().max(if per_lane > 0 { 1 } else { 0 })
    }

    /// Nominal latency in cycles (LOCK prefix adds the bus-lock penalty).
    pub fn latency(&self) -> u32 {
        let base = self.mnemonic.latency();
        if self.lock {
            base + crate::latency::LOCK_PENALTY
        } else {
            base
        }
    }

    /// Whether this instruction casts a "shadow" on its successor in the
    /// EBS sampling model (long execution latency).
    pub fn is_long_latency(&self) -> bool {
        self.latency() >= crate::latency::LONG_LATENCY_THRESHOLD
    }

    /// Length of the encoded form in bytes. See [`crate::codec`].
    pub fn encoded_len(&self) -> u32 {
        crate::codec::encoded_len(self)
    }

    /// Registers written by this instruction.
    pub fn regs_written(&self) -> impl Iterator<Item = Reg> + '_ {
        self.operands.iter().filter_map(|o| match o {
            Operand::Reg(r, a) if a.is_write() => Some(*r),
            _ => None,
        })
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.lock {
            write!(f, "LOCK ")?;
        }
        write!(f, "{}", self.mnemonic)?;
        for (i, op) in self.operands.iter().enumerate() {
            if i == 0 {
                write!(f, " {op}")?;
            } else {
                write!(f, ", {op}")?;
            }
        }
        Ok(())
    }
}

/// Fluent helpers for common instruction shapes, used heavily by the
/// workload generators.
pub mod build {
    use super::*;
    use crate::{MemRef, Operand, Reg};

    /// `mnemonic dst, src` register-register.
    pub fn rr(m: Mnemonic, dst: Reg, src: Reg) -> Instruction {
        Instruction::with_operands(m, vec![Operand::reg_rw(dst), Operand::reg_r(src)])
    }

    /// `mnemonic dst, [mem]` register-load.
    pub fn rm(m: Mnemonic, dst: Reg, mem: MemRef) -> Instruction {
        Instruction::with_operands(m, vec![Operand::reg_w(dst), Operand::mem_r(mem)])
    }

    /// `mnemonic [mem], src` store.
    pub fn mr(m: Mnemonic, mem: MemRef, src: Reg) -> Instruction {
        Instruction::with_operands(m, vec![Operand::mem_w(mem), Operand::reg_r(src)])
    }

    /// `mnemonic dst, imm`.
    pub fn ri(m: Mnemonic, dst: Reg, imm: i32) -> Instruction {
        Instruction::with_operands(m, vec![Operand::reg_rw(dst), Operand::Imm(imm)])
    }

    /// `mnemonic reg` single-register.
    pub fn r(m: Mnemonic, reg: Reg) -> Instruction {
        Instruction::with_operands(m, vec![Operand::reg_rw(reg)])
    }

    /// Bare mnemonic, no operands (branches, NOP, CDQE, …).
    pub fn bare(m: Mnemonic) -> Instruction {
        Instruction::new(m)
    }
}

#[cfg(test)]
mod tests {
    use super::build::*;
    use super::*;
    use crate::{MemRef, Reg};

    #[test]
    fn display_formats() {
        let i = rr(Mnemonic::Add, Reg::gpr(0), Reg::gpr(1));
        assert_eq!(i.to_string(), "ADD r0, r1");
        let l = ri(Mnemonic::Xadd, Reg::gpr(2), 1).locked();
        assert!(l.to_string().starts_with("LOCK XADD"));
        assert_eq!(bare(Mnemonic::RetNear).to_string(), "RET_NEAR");
    }

    #[test]
    fn memory_flags_follow_operands() {
        let load = rm(Mnemonic::Mov, Reg::gpr(0), MemRef::absolute(8));
        assert!(load.reads_memory());
        assert!(!load.writes_memory());
        let store = mr(Mnemonic::Mov, MemRef::absolute(8), Reg::gpr(0));
        assert!(store.writes_memory());
        assert!(!store.reads_memory());
    }

    #[test]
    fn implicit_stack_memory() {
        assert!(r(Mnemonic::Push, Reg::gpr(0)).writes_memory());
        assert!(r(Mnemonic::Pop, Reg::gpr(0)).reads_memory());
        assert!(bare(Mnemonic::RetNear).reads_memory());
        assert!(bare(Mnemonic::CallNear).writes_memory());
    }

    #[test]
    fn sync_attribute() {
        assert!(bare(Mnemonic::Mfence).is_synchronizing());
        assert!(rr(Mnemonic::Add, Reg::gpr(0), Reg::gpr(1))
            .locked()
            .is_synchronizing());
        assert!(!rr(Mnemonic::Add, Reg::gpr(0), Reg::gpr(1)).is_synchronizing());
    }

    #[test]
    fn lanes_and_flops() {
        // SSE packed f32: 128/32 = 4 lanes, arith = 4 flops.
        let addps = rr(Mnemonic::Addps, Reg::xmm(0), Reg::xmm(1));
        assert_eq!(addps.lanes(), 4);
        assert_eq!(addps.flop_count(), 4);
        // AVX packed f32 on YMM: 8 lanes; FMA doubles.
        let vfma = rr(Mnemonic::Vfmadd231ps, Reg::ymm(0), Reg::ymm(1));
        assert_eq!(vfma.lanes(), 8);
        assert_eq!(vfma.flop_count(), 16);
        // Scalar SSE: 1 lane.
        let addss = rr(Mnemonic::Addss, Reg::xmm(0), Reg::xmm(1));
        assert_eq!(addss.lanes(), 1);
        assert_eq!(addss.flop_count(), 1);
        // Integer op: no flops.
        let add = rr(Mnemonic::Add, Reg::gpr(0), Reg::gpr(1));
        assert_eq!(add.flop_count(), 0);
        // FP move: lanes but no flops.
        let movaps = rr(Mnemonic::Movaps, Reg::xmm(0), Reg::xmm(1));
        assert_eq!(movaps.lanes(), 4);
        assert_eq!(movaps.flop_count(), 0);
    }

    #[test]
    fn lock_penalty_applies() {
        let plain = rr(Mnemonic::Add, Reg::gpr(0), Reg::gpr(1));
        let locked = plain.clone().locked();
        assert!(locked.latency() > plain.latency());
        assert!(locked.is_long_latency());
    }

    #[test]
    #[should_panic(expected = "operands")]
    fn too_many_operands_rejected() {
        let r0 = Operand::reg_r(Reg::gpr(0));
        let _ = Instruction::with_operands(Mnemonic::Add, vec![r0; 4]);
    }

    #[test]
    fn branch_kinds() {
        assert_eq!(
            bare(Mnemonic::Jz).branch_kind(),
            Some(BranchKind::Conditional)
        );
        assert_eq!(
            bare(Mnemonic::Jmp).branch_kind(),
            Some(BranchKind::Unconditional)
        );
        assert_eq!(
            bare(Mnemonic::CallNear).branch_kind(),
            Some(BranchKind::Call)
        );
        assert_eq!(
            bare(Mnemonic::RetNear).branch_kind(),
            Some(BranchKind::Return)
        );
        assert_eq!(bare(Mnemonic::Nop).branch_kind(), None);
    }
}

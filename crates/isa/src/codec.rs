//! Binary instruction codec — the synthetic ISA's machine code format.
//!
//! This replaces XED's encoder/decoder. The format is deliberately simple
//! but *byte-exact and self-describing*: the analyzer decodes raw `.text`
//! bytes back into [`Instruction`]s, exactly like the paper's tool decodes
//! x86 text sections, and any corruption (e.g. stale self-modified kernel
//! text) surfaces as decode divergence.
//!
//! ## Wire format
//!
//! ```text
//! byte 0      opcode (index into the mnemonic table)
//! byte 1      (n_operands << 4) | (lock << 3)      low 3 bits reserved = 0
//! byte 2      operand kinds, 2 bits each, LSB-first (0=none 1=reg 2=mem 3=imm)
//! payload     per operand:
//!   reg       class(2) << 6 | access(2) << 4 | index(4)
//!   mem       access(2) << 6 | has_base << 5 | base_index(4) << 1   + disp i16 LE
//!   imm       value i32 LE
//! ```

use crate::{Access, Instruction, MemRef, Mnemonic, Operand, Reg, RegClass, MNEMONIC_COUNT};
use std::fmt;

const KIND_REG: u8 = 1;
const KIND_MEM: u8 = 2;
const KIND_IMM: u8 = 3;

// The opcode byte must be able to address every mnemonic.
const _: () = assert!(MNEMONIC_COUNT <= 256, "opcode byte overflow");

/// Header bytes preceding the operand payload.
pub const HEADER_LEN: u32 = 3;

/// Errors produced while decoding machine code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The stream ended in the middle of an instruction.
    Truncated {
        /// Offset of the instruction whose decoding failed.
        at: usize,
    },
    /// The opcode byte does not name a known mnemonic.
    UnknownOpcode {
        /// Offset of the instruction whose decoding failed.
        at: usize,
        /// The offending opcode byte.
        opcode: u8,
    },
    /// The descriptor byte is malformed (reserved bits set, bad count).
    BadDescriptor {
        /// Offset of the instruction whose decoding failed.
        at: usize,
        /// The offending descriptor byte.
        descriptor: u8,
    },
    /// An operand payload is malformed.
    BadOperand {
        /// Offset of the instruction whose decoding failed.
        at: usize,
        /// Index of the malformed operand.
        index: usize,
    },
}

impl DecodeError {
    /// Byte offset at which decoding failed.
    pub fn offset(&self) -> usize {
        match *self {
            DecodeError::Truncated { at }
            | DecodeError::UnknownOpcode { at, .. }
            | DecodeError::BadDescriptor { at, .. }
            | DecodeError::BadOperand { at, .. } => at,
        }
    }
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated { at } => write!(f, "truncated instruction at offset {at}"),
            DecodeError::UnknownOpcode { at, opcode } => {
                write!(f, "unknown opcode {opcode:#04x} at offset {at}")
            }
            DecodeError::BadDescriptor { at, descriptor } => {
                write!(f, "malformed descriptor {descriptor:#04x} at offset {at}")
            }
            DecodeError::BadOperand { at, index } => {
                write!(f, "malformed operand {index} at offset {at}")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// Encoded length of an instruction in bytes.
pub fn encoded_len(instr: &Instruction) -> u32 {
    HEADER_LEN
        + instr
            .operands()
            .iter()
            .map(Operand::encoded_len)
            .sum::<u32>()
}

/// Append the encoding of `instr` to `out`. Returns the number of bytes
/// written.
pub fn encode_into(instr: &Instruction, out: &mut Vec<u8>) -> usize {
    let start = out.len();
    out.push(instr.mnemonic().opcode() as u8);
    let desc = ((instr.operands().len() as u8) << 4) | ((instr.is_locked() as u8) << 3);
    out.push(desc);
    let mut kinds = 0u8;
    for (i, op) in instr.operands().iter().enumerate() {
        let k = match op {
            Operand::Reg(..) => KIND_REG,
            Operand::Mem(..) => KIND_MEM,
            Operand::Imm(_) => KIND_IMM,
        };
        kinds |= k << (2 * i);
    }
    out.push(kinds);
    for op in instr.operands() {
        match *op {
            Operand::Reg(reg, access) => {
                let b = (class_code(reg.class()) << 6) | (access_code(access) << 4) | reg.index();
                out.push(b);
            }
            Operand::Mem(mem, access) => {
                let (has_base, base_index) = match mem.base() {
                    Some(b) => (1u8, b.index()),
                    None => (0u8, 0u8),
                };
                let b = (access_code(access) << 6) | (has_base << 5) | (base_index << 1);
                out.push(b);
                out.extend_from_slice(&mem.disp().to_le_bytes());
            }
            Operand::Imm(v) => out.extend_from_slice(&v.to_le_bytes()),
        }
    }
    out.len() - start
}

/// Encode a single instruction to a fresh byte vector.
pub fn encode(instr: &Instruction) -> Vec<u8> {
    let mut out = Vec::with_capacity(encoded_len(instr) as usize);
    encode_into(instr, &mut out);
    out
}

/// Encode a sequence of instructions back-to-back.
pub fn encode_all<'a>(instrs: impl IntoIterator<Item = &'a Instruction>) -> Vec<u8> {
    let mut out = Vec::new();
    for i in instrs {
        encode_into(i, &mut out);
    }
    out
}

/// Decode one instruction starting at `offset` in `bytes`.
///
/// Returns the instruction and the offset of the next instruction.
///
/// # Errors
///
/// Returns a [`DecodeError`] if the bytes are truncated or malformed.
pub fn decode_one(bytes: &[u8], offset: usize) -> Result<(Instruction, usize), DecodeError> {
    let at = offset;
    let header = bytes
        .get(offset..offset + HEADER_LEN as usize)
        .ok_or(DecodeError::Truncated { at })?;
    let mnemonic = Mnemonic::from_opcode(header[0] as u16).ok_or(DecodeError::UnknownOpcode {
        at,
        opcode: header[0],
    })?;
    let desc = header[1];
    if desc & 0b0000_0111 != 0 {
        return Err(DecodeError::BadDescriptor {
            at,
            descriptor: desc,
        });
    }
    let n_ops = (desc >> 4) as usize;
    if n_ops > crate::MAX_OPERANDS {
        return Err(DecodeError::BadDescriptor {
            at,
            descriptor: desc,
        });
    }
    let lock = desc & 0b0000_1000 != 0;
    let kinds = header[2];
    // Kind bits beyond n_ops must be zero.
    if n_ops < 4 && (kinds >> (2 * n_ops)) != 0 {
        return Err(DecodeError::BadDescriptor {
            at,
            descriptor: kinds,
        });
    }
    let mut pos = offset + HEADER_LEN as usize;
    let mut operands = Vec::with_capacity(n_ops);
    for i in 0..n_ops {
        let kind = (kinds >> (2 * i)) & 0b11;
        let op = match kind {
            KIND_REG => {
                let b = *bytes.get(pos).ok_or(DecodeError::Truncated { at })?;
                pos += 1;
                let class = class_from_code(b >> 6);
                let access = access_from_code((b >> 4) & 0b11)
                    .ok_or(DecodeError::BadOperand { at, index: i })?;
                let index = b & 0b1111;
                if index >= class.count() {
                    return Err(DecodeError::BadOperand { at, index: i });
                }
                Operand::Reg(Reg::new(class, index), access)
            }
            KIND_MEM => {
                let hdr = *bytes.get(pos).ok_or(DecodeError::Truncated { at })?;
                let disp_bytes = bytes
                    .get(pos + 1..pos + 3)
                    .ok_or(DecodeError::Truncated { at })?;
                pos += 3;
                let access =
                    access_from_code(hdr >> 6).ok_or(DecodeError::BadOperand { at, index: i })?;
                if hdr & 1 != 0 {
                    return Err(DecodeError::BadOperand { at, index: i });
                }
                let disp = i16::from_le_bytes([disp_bytes[0], disp_bytes[1]]);
                let mem = if hdr & 0b0010_0000 != 0 {
                    MemRef::base_disp(Reg::gpr((hdr >> 1) & 0b1111), disp)
                } else {
                    if (hdr >> 1) & 0b1111 != 0 {
                        return Err(DecodeError::BadOperand { at, index: i });
                    }
                    MemRef::absolute(disp)
                };
                Operand::Mem(mem, access)
            }
            KIND_IMM => {
                let imm_bytes = bytes
                    .get(pos..pos + 4)
                    .ok_or(DecodeError::Truncated { at })?;
                pos += 4;
                Operand::Imm(i32::from_le_bytes([
                    imm_bytes[0],
                    imm_bytes[1],
                    imm_bytes[2],
                    imm_bytes[3],
                ]))
            }
            _ => return Err(DecodeError::BadOperand { at, index: i }),
        };
        operands.push(op);
    }
    let mut instr = Instruction::with_operands(mnemonic, operands);
    if lock {
        instr = instr.locked();
    }
    Ok((instr, pos))
}

/// Decode all instructions in `bytes`.
///
/// # Errors
///
/// Fails on the first malformed or truncated instruction.
pub fn decode_all(bytes: &[u8]) -> Result<Vec<Instruction>, DecodeError> {
    Decoder::new(bytes).collect()
}

/// Streaming decoder over a byte slice.
#[derive(Debug, Clone)]
pub struct Decoder<'a> {
    bytes: &'a [u8],
    offset: usize,
    failed: bool,
}

impl<'a> Decoder<'a> {
    /// Create a decoder positioned at the start of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Decoder<'a> {
        Decoder {
            bytes,
            offset: 0,
            failed: false,
        }
    }

    /// Current byte offset into the stream.
    pub fn offset(&self) -> usize {
        self.offset
    }
}

impl Iterator for Decoder<'_> {
    type Item = Result<Instruction, DecodeError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed || self.offset >= self.bytes.len() {
            return None;
        }
        match decode_one(self.bytes, self.offset) {
            Ok((instr, next)) => {
                self.offset = next;
                Some(Ok(instr))
            }
            Err(e) => {
                self.failed = true;
                Some(Err(e))
            }
        }
    }
}

fn class_code(class: RegClass) -> u8 {
    match class {
        RegClass::Gpr => 0,
        RegClass::X87 => 1,
        RegClass::Xmm => 2,
        RegClass::Ymm => 3,
    }
}

fn class_from_code(code: u8) -> RegClass {
    match code & 0b11 {
        0 => RegClass::Gpr,
        1 => RegClass::X87,
        2 => RegClass::Xmm,
        _ => RegClass::Ymm,
    }
}

fn access_code(access: Access) -> u8 {
    match access {
        Access::Read => 0,
        Access::Write => 1,
        Access::ReadWrite => 2,
    }
}

fn access_from_code(code: u8) -> Option<Access> {
    match code {
        0 => Some(Access::Read),
        1 => Some(Access::Write),
        2 => Some(Access::ReadWrite),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instruction::build::*;

    fn samples() -> Vec<Instruction> {
        vec![
            bare(Mnemonic::Nop),
            bare(Mnemonic::RetNear),
            rr(Mnemonic::Add, Reg::gpr(0), Reg::gpr(15)),
            rm(
                Mnemonic::Mov,
                Reg::gpr(3),
                MemRef::base_disp(Reg::gpr(4), -128),
            ),
            mr(Mnemonic::Mov, MemRef::absolute(32), Reg::gpr(7)),
            ri(Mnemonic::Cmp, Reg::gpr(1), 1_000_000),
            rr(Mnemonic::Vfmadd231ps, Reg::ymm(2), Reg::ymm(9)),
            ri(Mnemonic::Xadd, Reg::gpr(5), 1).locked(),
            Instruction::with_operands(Mnemonic::Jnz, vec![Operand::Imm(-64)]),
            rr(Mnemonic::Fdiv, Reg::st(0), Reg::st(1)),
        ]
    }

    #[test]
    fn roundtrip_individual() {
        for instr in samples() {
            let bytes = encode(&instr);
            assert_eq!(bytes.len() as u32, encoded_len(&instr), "{instr}");
            let (decoded, next) = decode_one(&bytes, 0).expect("decode");
            assert_eq!(decoded, instr);
            assert_eq!(next, bytes.len());
        }
    }

    #[test]
    fn roundtrip_stream() {
        let instrs = samples();
        let bytes = encode_all(&instrs);
        let decoded = decode_all(&bytes).expect("decode stream");
        assert_eq!(decoded, instrs);
    }

    #[test]
    fn truncation_detected() {
        let instr = ri(Mnemonic::Cmp, Reg::gpr(1), 77);
        let bytes = encode(&instr);
        for cut in 1..bytes.len() {
            let err = decode_one(&bytes[..cut], 0).unwrap_err();
            assert!(
                matches!(err, DecodeError::Truncated { .. }),
                "cut={cut}, got {err:?}"
            );
        }
    }

    #[test]
    fn unknown_opcode_detected() {
        let bytes = [0xFF, 0x00, 0x00];
        let err = decode_one(&bytes, 0).unwrap_err();
        assert!(matches!(
            err,
            DecodeError::UnknownOpcode { opcode: 0xFF, .. }
        ));
    }

    #[test]
    fn reserved_descriptor_bits_detected() {
        let mut bytes = encode(&bare(Mnemonic::Nop));
        bytes[1] |= 0b0000_0001;
        let err = decode_one(&bytes, 0).unwrap_err();
        assert!(matches!(err, DecodeError::BadDescriptor { .. }));
    }

    #[test]
    fn stray_kind_bits_detected() {
        let mut bytes = encode(&bare(Mnemonic::Nop));
        bytes[2] = 0b0000_0001; // claims a kind for operand 0 while n_ops = 0
        let err = decode_one(&bytes, 0).unwrap_err();
        assert!(matches!(err, DecodeError::BadDescriptor { .. }));
    }

    #[test]
    fn decoder_iterator_stops_after_error() {
        let mut bytes = encode_all(&samples()[..3]);
        bytes.push(0xFF); // garbage tail
        let results: Vec<_> = Decoder::new(&bytes).collect();
        assert_eq!(results.len(), 4);
        assert!(results[..3].iter().all(Result::is_ok));
        assert!(results[3].is_err());
    }

    #[test]
    fn offsets_reported_correctly() {
        let instrs = samples();
        let bytes = encode_all(&instrs);
        // Corrupt the opcode of the third instruction.
        let third_offset = encoded_len(&instrs[0]) + encoded_len(&instrs[1]);
        let mut corrupted = bytes.clone();
        corrupted[third_offset as usize] = 0xFE;
        let err = decode_all(&corrupted).unwrap_err();
        assert_eq!(err.offset(), third_offset as usize);
    }

    #[test]
    fn lock_prefix_roundtrips() {
        let locked = ri(Mnemonic::Cmpxchg, Reg::gpr(2), 3).locked();
        let (decoded, _) = decode_one(&encode(&locked), 0).unwrap();
        assert!(decoded.is_locked());
    }

    #[test]
    fn error_display_nonempty() {
        let e = DecodeError::Truncated { at: 12 };
        assert!(!e.to_string().is_empty());
        let e = DecodeError::UnknownOpcode { at: 0, opcode: 250 };
        assert!(e.to_string().contains("0xfa"));
    }
}

//! Instruction-set extensions and vector packing attributes.
//!
//! The paper's analyzer annotates every decoded instruction with "the
//! instruction class, ISA, family and category" plus secondary attributes
//! such as packed/scalar flags (§V.B). [`Extension`], [`Packing`] and
//! [`ElementType`] carry the static part of that annotation.

use std::fmt;

/// The instruction-set extension an instruction belongs to.
///
/// Mirrors the families the paper's tooling distinguishes (x87 scalar, SSE,
/// AVX and the plain "BASE" integer set; see Table 6 and Table 8).
///
/// ```
/// use hbbp_isa::Extension;
/// assert!(Extension::Avx.is_vector());
/// assert_eq!(Extension::Base.to_string(), "BASE");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Extension {
    /// Baseline integer/control instructions (no extension required).
    Base,
    /// Legacy x87 floating point stack instructions.
    X87,
    /// SSE/SSE2/SSE4 128-bit instructions (FP and integer SIMD).
    Sse,
    /// AVX 256-bit instructions.
    Avx,
    /// AVX2 integer 256-bit instructions (incl. gathers).
    Avx2,
    /// Privileged/system instructions (ring-0 oriented).
    System,
}

impl Extension {
    /// All extensions, in display order.
    pub const ALL: [Extension; 6] = [
        Extension::Base,
        Extension::X87,
        Extension::Sse,
        Extension::Avx,
        Extension::Avx2,
        Extension::System,
    ];

    /// Short uppercase name as used in the paper's pivot tables.
    pub fn name(self) -> &'static str {
        match self {
            Extension::Base => "BASE",
            Extension::X87 => "X87",
            Extension::Sse => "SSE",
            Extension::Avx => "AVX",
            Extension::Avx2 => "AVX2",
            Extension::System => "SYS",
        }
    }

    /// Whether this extension contains SIMD vector instructions.
    pub fn is_vector(self) -> bool {
        matches!(self, Extension::Sse | Extension::Avx | Extension::Avx2)
    }

    /// Whether instructions of this extension execute on the FP/SIMD stack
    /// or units (used for the "computational" secondary attribute).
    pub fn is_fp_capable(self) -> bool {
        matches!(
            self,
            Extension::X87 | Extension::Sse | Extension::Avx | Extension::Avx2
        )
    }
}

impl fmt::Display for Extension {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// SIMD packing attribute of an instruction (paper §V.B: "packed and scalar
/// flags").
///
/// `None` covers instructions with no FP/SIMD data movement at all (integer
/// ALU, branches, but also AVX housekeeping such as `VZEROUPPER`), which is
/// exactly how Table 8 of the paper buckets CLForward ("NONE", "SCALAR",
/// "PACKED" within each instruction set).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Packing {
    /// Not an FP/SIMD data operation.
    #[default]
    None,
    /// Scalar operation on a single element (e.g. `ADDSS`, `FADD`).
    Scalar,
    /// Packed operation on a full vector (e.g. `ADDPS`, `VMULPS`).
    Packed,
}

impl Packing {
    /// All packings, in display order.
    pub const ALL: [Packing; 3] = [Packing::None, Packing::Scalar, Packing::Packed];

    /// Uppercase name as used in pivot tables.
    pub fn name(self) -> &'static str {
        match self {
            Packing::None => "NONE",
            Packing::Scalar => "SCALAR",
            Packing::Packed => "PACKED",
        }
    }
}

impl fmt::Display for Packing {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Element type operated on by a (vector or scalar FP) instruction.
///
/// Used to derive approximate FLOP counts (§II.A mentions "approximate FLOP
/// rates" as an instruction-mix use case) and double-precision hazard
/// detection (the Xeon Phi transcendental example in §II.A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum ElementType {
    /// No defined element type (integer control flow etc.).
    #[default]
    None,
    /// 32-bit single-precision float.
    F32,
    /// 64-bit double-precision float.
    F64,
    /// 32-bit integer lanes.
    I32,
    /// 64-bit integer lanes.
    I64,
    /// 80-bit x87 extended precision.
    X87,
}

impl ElementType {
    /// Size of one element in bytes (x87 rounds to 10).
    pub fn size_bytes(self) -> u32 {
        match self {
            ElementType::None => 0,
            ElementType::F32 | ElementType::I32 => 4,
            ElementType::F64 | ElementType::I64 => 8,
            ElementType::X87 => 10,
        }
    }

    /// Whether the element type is floating point.
    pub fn is_float(self) -> bool {
        matches!(self, ElementType::F32 | ElementType::F64 | ElementType::X87)
    }
}

impl fmt::Display for ElementType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ElementType::None => "none",
            ElementType::F32 => "f32",
            ElementType::F64 => "f64",
            ElementType::I32 => "i32",
            ElementType::I64 => "i64",
            ElementType::X87 => "x87",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extension_names_are_stable() {
        assert_eq!(Extension::Base.name(), "BASE");
        assert_eq!(Extension::Avx2.name(), "AVX2");
        assert_eq!(Extension::System.to_string(), "SYS");
    }

    #[test]
    fn vector_extensions() {
        assert!(Extension::Sse.is_vector());
        assert!(Extension::Avx.is_vector());
        assert!(Extension::Avx2.is_vector());
        assert!(!Extension::Base.is_vector());
        assert!(!Extension::X87.is_vector());
    }

    #[test]
    fn fp_capability_includes_x87_but_not_base() {
        assert!(Extension::X87.is_fp_capable());
        assert!(!Extension::Base.is_fp_capable());
        assert!(!Extension::System.is_fp_capable());
    }

    #[test]
    fn packing_display_matches_paper_tables() {
        let names: Vec<_> = Packing::ALL.iter().map(|p| p.name()).collect();
        assert_eq!(names, ["NONE", "SCALAR", "PACKED"]);
    }

    #[test]
    fn element_sizes() {
        assert_eq!(ElementType::F32.size_bytes(), 4);
        assert_eq!(ElementType::F64.size_bytes(), 8);
        assert_eq!(ElementType::X87.size_bytes(), 10);
        assert_eq!(ElementType::None.size_bytes(), 0);
        assert!(ElementType::X87.is_float());
        assert!(!ElementType::I64.is_float());
    }

    #[test]
    fn default_packing_is_none() {
        assert_eq!(Packing::default(), Packing::None);
        assert_eq!(ElementType::default(), ElementType::None);
    }
}

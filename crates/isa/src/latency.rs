//! Latency model — a Fog-style instruction timing table with overrides.
//!
//! The paper's EBS "shadowing" artefact is latency-driven: "samples
//! disproportionately represent instructions following long-latency
//! instructions in the execution chain" (§III.A). The simulator and the
//! workload generators both consult this model, so latency assumptions stay
//! consistent between the machine being simulated and the analysis that
//! corrects for its artefacts.

use crate::{Instruction, Mnemonic};
use std::collections::HashMap;

/// Latency (cycles) at or above which an instruction is "long latency":
/// it casts a sampling shadow and belongs to the built-in long-latency
/// taxonomy.
pub const LONG_LATENCY_THRESHOLD: u32 = 10;

/// Extra cycles added by a `LOCK` prefix (bus lock + fill-buffer drain).
pub const LOCK_PENALTY: u32 = 18;

/// Extra cycles for a memory read hitting L1 (applied per instruction that
/// reads memory).
pub const MEM_READ_CYCLES: u32 = 3;

/// Extra cycles for a memory write (store buffer absorbs most of it).
pub const MEM_WRITE_CYCLES: u32 = 1;

/// A configurable instruction latency model.
///
/// The default model uses the per-mnemonic nominal latencies from the
/// mnemonic table plus memory access penalties. Specific mnemonics can be
/// overridden, e.g. to model a different microarchitecture generation.
///
/// ```
/// use hbbp_isa::{LatencyModel, Mnemonic, Instruction};
/// let model = LatencyModel::new();
/// let div = Instruction::new(Mnemonic::Idiv);
/// assert!(model.latency_of(&div) >= 20);
/// ```
#[derive(Debug, Clone, Default)]
pub struct LatencyModel {
    overrides: HashMap<Mnemonic, u32>,
    mem_read_cycles: u32,
    mem_write_cycles: u32,
}

impl LatencyModel {
    /// The default Ivy Bridge-flavoured model.
    pub fn new() -> LatencyModel {
        LatencyModel {
            overrides: HashMap::new(),
            mem_read_cycles: MEM_READ_CYCLES,
            mem_write_cycles: MEM_WRITE_CYCLES,
        }
    }

    /// Override the nominal latency of a mnemonic.
    pub fn with_override(mut self, mnemonic: Mnemonic, cycles: u32) -> LatencyModel {
        self.overrides.insert(mnemonic, cycles);
        self
    }

    /// Set the memory read penalty.
    pub fn with_mem_read_cycles(mut self, cycles: u32) -> LatencyModel {
        self.mem_read_cycles = cycles;
        self
    }

    /// Set the memory write penalty.
    pub fn with_mem_write_cycles(mut self, cycles: u32) -> LatencyModel {
        self.mem_write_cycles = cycles;
        self
    }

    /// Nominal latency of a mnemonic under this model.
    pub fn mnemonic_latency(&self, mnemonic: Mnemonic) -> u32 {
        self.overrides
            .get(&mnemonic)
            .copied()
            .unwrap_or_else(|| mnemonic.latency())
    }

    /// Full latency of an instruction: nominal + memory penalties + LOCK.
    pub fn latency_of(&self, instr: &Instruction) -> u32 {
        let mut cycles = self.mnemonic_latency(instr.mnemonic());
        if instr.reads_memory() {
            cycles += self.mem_read_cycles;
        }
        if instr.writes_memory() {
            cycles += self.mem_write_cycles;
        }
        if instr.is_locked() {
            cycles += LOCK_PENALTY;
        }
        cycles
    }

    /// Whether the instruction is long-latency under this model.
    pub fn is_long_latency(&self, instr: &Instruction) -> bool {
        self.latency_of(instr) >= LONG_LATENCY_THRESHOLD
    }

    /// Pipelined cost in cycles: long-latency instructions stall for their
    /// full latency, short ones retire at (modelled) superscalar throughput.
    ///
    /// This is the per-instruction cycle cost used by the CPU simulator's
    /// wall-clock accounting; it is deliberately coarse (the paper's claims
    /// are about *relative* runtimes).
    pub fn pipelined_cost(&self, instr: &Instruction) -> u32 {
        let lat = self.latency_of(instr);
        if lat >= LONG_LATENCY_THRESHOLD {
            lat
        } else {
            1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instruction::build::*;
    use crate::{MemRef, Reg};

    #[test]
    fn default_model_uses_table_latency() {
        let m = LatencyModel::new();
        assert_eq!(m.mnemonic_latency(Mnemonic::Add), Mnemonic::Add.latency());
        assert_eq!(m.mnemonic_latency(Mnemonic::Fsin), Mnemonic::Fsin.latency());
    }

    #[test]
    fn overrides_take_precedence() {
        let m = LatencyModel::new().with_override(Mnemonic::Add, 99);
        assert_eq!(m.mnemonic_latency(Mnemonic::Add), 99);
        assert_eq!(m.mnemonic_latency(Mnemonic::Sub), 1);
    }

    #[test]
    fn memory_penalties_apply() {
        let m = LatencyModel::new();
        let reg = rr(Mnemonic::Add, Reg::gpr(0), Reg::gpr(1));
        let load = rm(Mnemonic::Add, Reg::gpr(0), MemRef::absolute(0));
        let store = mr(Mnemonic::Mov, MemRef::absolute(0), Reg::gpr(0));
        assert_eq!(m.latency_of(&load), m.latency_of(&reg) + MEM_READ_CYCLES);
        assert_eq!(
            m.latency_of(&store),
            m.mnemonic_latency(Mnemonic::Mov) + MEM_WRITE_CYCLES
        );
    }

    #[test]
    fn lock_penalty_applies() {
        let m = LatencyModel::new();
        let locked = ri(Mnemonic::Xadd, Reg::gpr(0), 1).locked();
        assert!(m.latency_of(&locked) >= LOCK_PENALTY);
        assert!(m.is_long_latency(&locked));
    }

    #[test]
    fn pipelined_cost_compresses_short_ops() {
        let m = LatencyModel::new();
        let add = rr(Mnemonic::Add, Reg::gpr(0), Reg::gpr(1));
        assert_eq!(m.pipelined_cost(&add), 1);
        let div = bare(Mnemonic::Idiv);
        assert_eq!(m.pipelined_cost(&div), m.latency_of(&div));
    }

    #[test]
    fn long_latency_consistency_with_mnemonic_flag() {
        // For register-only instructions the model agrees with the static
        // mnemonic flag.
        let m = LatencyModel::new();
        for &mn in Mnemonic::ALL {
            let instr = bare(mn);
            if mn.is_long_latency() {
                assert!(m.is_long_latency(&instr), "{mn}");
            }
        }
    }
}

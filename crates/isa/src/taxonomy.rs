//! Custom instruction taxonomies.
//!
//! The paper's analyzer lets users build "custom instruction taxonomies
//! based on instruction properties" — e.g. a "long latency instructions"
//! group containing `DIV`, `SQRT`, `XCHG R,M`, or a "synchronization
//! instructions" group with `XADD` and `LOCK` variants (§V.B). A
//! [`Taxonomy`] is an ordered list of named groups, each defined by a
//! [`Predicate`] over decoded instruction attributes; classification picks
//! the first matching group.

use crate::{Category, Extension, Instruction, Mnemonic, Packing};
use std::collections::BTreeSet;
use std::fmt;

/// A predicate over instruction attributes.
///
/// Predicates combine with [`Predicate::all`], [`Predicate::any`] and
/// [`Predicate::negate`]; leaves test a single static or secondary
/// attribute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Predicate {
    /// Matches every instruction.
    True,
    /// Matches instructions whose mnemonic is in the set.
    MnemonicIn(BTreeSet<Mnemonic>),
    /// Matches a functional category.
    CategoryIs(Category),
    /// Matches an ISA extension.
    ExtensionIs(Extension),
    /// Matches a packing attribute.
    PackingIs(Packing),
    /// Matches long-latency instructions (see [`crate::latency`]).
    LongLatency,
    /// Matches synchronizing instructions (Sync category or `LOCK` prefix).
    Synchronizing,
    /// Matches instructions that read memory.
    ReadsMemory,
    /// Matches instructions that write memory.
    WritesMemory,
    /// Matches branches.
    IsBranch,
    /// Matches "computational" categories (paper §VI.B ratio example).
    Computational,
    /// Matches if every sub-predicate matches.
    All(Vec<Predicate>),
    /// Matches if any sub-predicate matches.
    Any(Vec<Predicate>),
    /// Matches if the sub-predicate does not.
    Not(Box<Predicate>),
}

impl Predicate {
    /// Conjunction of predicates.
    pub fn all(preds: impl Into<Vec<Predicate>>) -> Predicate {
        Predicate::All(preds.into())
    }

    /// Disjunction of predicates.
    pub fn any(preds: impl Into<Vec<Predicate>>) -> Predicate {
        Predicate::Any(preds.into())
    }

    /// Negation.
    pub fn negate(self) -> Predicate {
        Predicate::Not(Box::new(self))
    }

    /// Predicate matching a set of mnemonics by value.
    pub fn mnemonics(set: impl IntoIterator<Item = Mnemonic>) -> Predicate {
        Predicate::MnemonicIn(set.into_iter().collect())
    }

    /// Evaluate the predicate on an instruction.
    pub fn matches(&self, instr: &Instruction) -> bool {
        match self {
            Predicate::True => true,
            Predicate::MnemonicIn(set) => set.contains(&instr.mnemonic()),
            Predicate::CategoryIs(c) => instr.category() == *c,
            Predicate::ExtensionIs(e) => instr.extension() == *e,
            Predicate::PackingIs(p) => instr.packing() == *p,
            Predicate::LongLatency => instr.is_long_latency(),
            Predicate::Synchronizing => instr.is_synchronizing(),
            Predicate::ReadsMemory => instr.reads_memory(),
            Predicate::WritesMemory => instr.writes_memory(),
            Predicate::IsBranch => instr.is_branch(),
            Predicate::Computational => instr.category().is_computational(),
            Predicate::All(ps) => ps.iter().all(|p| p.matches(instr)),
            Predicate::Any(ps) => ps.iter().any(|p| p.matches(instr)),
            Predicate::Not(p) => !p.matches(instr),
        }
    }
}

/// A named group within a taxonomy.
#[derive(Debug, Clone)]
pub struct TaxonGroup {
    name: String,
    predicate: Predicate,
}

impl TaxonGroup {
    /// Create a group from a name and predicate.
    pub fn new(name: impl Into<String>, predicate: Predicate) -> TaxonGroup {
        TaxonGroup {
            name: name.into(),
            predicate,
        }
    }

    /// Group name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Group predicate.
    pub fn predicate(&self) -> &Predicate {
        &self.predicate
    }
}

/// An ordered, named classification of instructions.
///
/// ```
/// use hbbp_isa::{Taxonomy, Instruction, Mnemonic};
/// let tax = Taxonomy::long_latency();
/// let div = Instruction::new(Mnemonic::Idiv);
/// assert_eq!(tax.classify(&div), Some("long latency"));
/// let mov = Instruction::new(Mnemonic::Nop);
/// assert_eq!(tax.classify(&mov), None);
/// ```
#[derive(Debug, Clone)]
pub struct Taxonomy {
    name: String,
    groups: Vec<TaxonGroup>,
}

impl Taxonomy {
    /// Create an empty taxonomy.
    pub fn new(name: impl Into<String>) -> Taxonomy {
        Taxonomy {
            name: name.into(),
            groups: Vec::new(),
        }
    }

    /// Add a group (evaluation order = insertion order).
    pub fn group(mut self, name: impl Into<String>, predicate: Predicate) -> Taxonomy {
        self.groups.push(TaxonGroup::new(name, predicate));
        self
    }

    /// Taxonomy name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The groups in evaluation order.
    pub fn groups(&self) -> &[TaxonGroup] {
        &self.groups
    }

    /// Classify an instruction: the name of the first matching group.
    pub fn classify(&self, instr: &Instruction) -> Option<&str> {
        self.groups
            .iter()
            .find(|g| g.predicate.matches(instr))
            .map(|g| g.name.as_str())
    }

    /// The paper's "long latency instructions" example group (§V.B).
    pub fn long_latency() -> Taxonomy {
        Taxonomy::new("latency").group("long latency", Predicate::LongLatency)
    }

    /// The paper's "synchronization instructions" example group (§V.B).
    pub fn synchronization() -> Taxonomy {
        Taxonomy::new("synchronization").group("synchronization", Predicate::Synchronizing)
    }

    /// Computational vs non-computational split (§VI.B ratio example).
    pub fn computational() -> Taxonomy {
        Taxonomy::new("computational")
            .group("computational", Predicate::Computational)
            .group("non-computational", Predicate::True)
    }

    /// Instruction-set × packing breakdown, the exact grouping of the
    /// paper's Table 8 (CLForward vectorization view).
    pub fn ext_packing() -> Taxonomy {
        let mut tax = Taxonomy::new("ext/packing");
        for ext in Extension::ALL {
            for pack in Packing::ALL {
                tax.groups.push(TaxonGroup::new(
                    format!("{}/{}", ext.name(), pack.name()),
                    Predicate::all(vec![
                        Predicate::ExtensionIs(ext),
                        Predicate::PackingIs(pack),
                    ]),
                ));
            }
        }
        tax
    }
}

impl fmt::Display for Taxonomy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "taxonomy `{}` ({} groups)", self.name, self.groups.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instruction::build::*;
    use crate::Reg;

    #[test]
    fn long_latency_taxonomy_matches_paper_examples() {
        let tax = Taxonomy::long_latency();
        for m in [Mnemonic::Div, Mnemonic::Fsqrt, Mnemonic::Fsin] {
            assert_eq!(tax.classify(&bare(m)), Some("long latency"), "{m}");
        }
        // "XCHG R,M" — xchg with a memory operand is implicitly locked.
        let xchg_rm = rm(Mnemonic::Xchg, Reg::gpr(0), crate::MemRef::absolute(0)).locked();
        assert_eq!(tax.classify(&xchg_rm), Some("long latency"));
        assert_eq!(tax.classify(&bare(Mnemonic::Nop)), None);
    }

    #[test]
    fn synchronization_taxonomy_matches_paper_examples() {
        let tax = Taxonomy::synchronization();
        assert!(tax.classify(&bare(Mnemonic::Xadd)).is_some());
        let locked_add = rr(Mnemonic::Add, Reg::gpr(0), Reg::gpr(1)).locked();
        assert!(tax.classify(&locked_add).is_some());
        assert!(tax.classify(&bare(Mnemonic::Add)).is_none());
    }

    #[test]
    fn computational_taxonomy_is_total() {
        let tax = Taxonomy::computational();
        for &m in Mnemonic::ALL {
            assert!(tax.classify(&bare(m)).is_some(), "{m} unclassified");
        }
    }

    #[test]
    fn ext_packing_matches_table8_buckets() {
        let tax = Taxonomy::ext_packing();
        let vaddps = rr(Mnemonic::Vaddps, Reg::ymm(0), Reg::ymm(1));
        assert_eq!(tax.classify(&vaddps), Some("AVX/PACKED"));
        let vaddss = rr(Mnemonic::Vaddss, Reg::xmm(0), Reg::xmm(1));
        assert_eq!(tax.classify(&vaddss), Some("AVX/SCALAR"));
        let vzero = bare(Mnemonic::Vzeroupper);
        assert_eq!(tax.classify(&vzero), Some("AVX/NONE"));
        let add = rr(Mnemonic::Add, Reg::gpr(0), Reg::gpr(1));
        assert_eq!(tax.classify(&add), Some("BASE/NONE"));
    }

    #[test]
    fn predicate_combinators() {
        let p = Predicate::any(vec![
            Predicate::CategoryIs(Category::Div),
            Predicate::CategoryIs(Category::Sqrt),
        ]);
        assert!(p.matches(&bare(Mnemonic::Div)));
        assert!(p.matches(&bare(Mnemonic::Sqrtss)));
        assert!(!p.matches(&bare(Mnemonic::Add)));

        let not_branch = Predicate::IsBranch.negate();
        assert!(not_branch.matches(&bare(Mnemonic::Add)));
        assert!(!not_branch.matches(&bare(Mnemonic::Jmp)));

        let both = Predicate::all(vec![
            Predicate::ExtensionIs(Extension::Sse),
            Predicate::PackingIs(Packing::Packed),
        ]);
        assert!(both.matches(&bare(Mnemonic::Addps)));
        assert!(!both.matches(&bare(Mnemonic::Addss)));
    }

    #[test]
    fn first_matching_group_wins() {
        let tax = Taxonomy::new("t")
            .group("branches", Predicate::IsBranch)
            .group("everything", Predicate::True);
        assert_eq!(tax.classify(&bare(Mnemonic::Jmp)), Some("branches"));
        assert_eq!(tax.classify(&bare(Mnemonic::Add)), Some("everything"));
    }

    #[test]
    fn mnemonic_set_predicate() {
        let p = Predicate::mnemonics([Mnemonic::Add, Mnemonic::Sub]);
        assert!(p.matches(&bare(Mnemonic::Add)));
        assert!(!p.matches(&bare(Mnemonic::Mov)));
    }
}

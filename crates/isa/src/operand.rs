//! Operand model: registers, memory references, immediates.
//!
//! The paper's analyzer records "types, numbers, sizes and attributes of
//! operands" (§V.B); this module is that attribute source.

use std::fmt;

/// Register class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RegClass {
    /// General purpose 64-bit registers (r0..r15 ~ RAX..R15).
    Gpr,
    /// x87 stack registers st0..st7.
    X87,
    /// 128-bit XMM registers.
    Xmm,
    /// 256-bit YMM registers.
    Ymm,
}

impl RegClass {
    /// Number of architectural registers in the class.
    pub fn count(self) -> u8 {
        match self {
            RegClass::Gpr => 16,
            RegClass::X87 => 8,
            RegClass::Xmm | RegClass::Ymm => 16,
        }
    }

    /// Register width in bits.
    pub fn width_bits(self) -> u32 {
        match self {
            RegClass::Gpr => 64,
            RegClass::X87 => 80,
            RegClass::Xmm => 128,
            RegClass::Ymm => 256,
        }
    }
}

/// An architectural register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg {
    class: RegClass,
    index: u8,
}

impl Reg {
    /// Create a register, clamping the index into the class's range.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range for the class.
    pub fn new(class: RegClass, index: u8) -> Reg {
        assert!(
            index < class.count(),
            "register index {index} out of range for {class:?}"
        );
        Reg { class, index }
    }

    /// General-purpose register `index`.
    pub fn gpr(index: u8) -> Reg {
        Reg::new(RegClass::Gpr, index)
    }

    /// XMM register `index`.
    pub fn xmm(index: u8) -> Reg {
        Reg::new(RegClass::Xmm, index)
    }

    /// YMM register `index`.
    pub fn ymm(index: u8) -> Reg {
        Reg::new(RegClass::Ymm, index)
    }

    /// x87 stack register `index`.
    pub fn st(index: u8) -> Reg {
        Reg::new(RegClass::X87, index)
    }

    /// The register's class.
    pub fn class(self) -> RegClass {
        self.class
    }

    /// The register's index within its class.
    pub fn index(self) -> u8 {
        self.index
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.class {
            RegClass::Gpr => write!(f, "r{}", self.index),
            RegClass::X87 => write!(f, "st{}", self.index),
            RegClass::Xmm => write!(f, "xmm{}", self.index),
            RegClass::Ymm => write!(f, "ymm{}", self.index),
        }
    }
}

/// A (simplified) memory reference: `[base + disp]`.
///
/// The synthetic ISA does not model full x86 SIB addressing; a base
/// register plus a 16-bit displacement covers everything the profiling
/// pipeline observes (addresses only matter through instruction lengths and
/// block layout).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemRef {
    base: Option<Reg>,
    disp: i16,
}

impl MemRef {
    /// `[base + disp]`.
    ///
    /// # Panics
    ///
    /// Panics if `base` is not a general-purpose register (as on x86, only
    /// GPRs can serve as address bases).
    pub fn base_disp(base: Reg, disp: i16) -> MemRef {
        assert_eq!(
            base.class(),
            RegClass::Gpr,
            "memory base must be a general-purpose register"
        );
        MemRef {
            base: Some(base),
            disp,
        }
    }

    /// Absolute `[disp]` (rip-relative style).
    pub fn absolute(disp: i16) -> MemRef {
        MemRef { base: None, disp }
    }

    /// Base register, if any.
    pub fn base(self) -> Option<Reg> {
        self.base
    }

    /// Displacement.
    pub fn disp(self) -> i16 {
        self.disp
    }
}

impl fmt::Display for MemRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.base {
            Some(b) => write!(f, "[{}{:+}]", b, self.disp),
            None => write!(f, "[{:+}]", self.disp),
        }
    }
}

/// Access direction of an operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Access {
    /// Operand is only read.
    Read,
    /// Operand is only written.
    Write,
    /// Operand is read and written.
    ReadWrite,
}

impl Access {
    /// Whether the operand is read.
    pub fn is_read(self) -> bool {
        matches!(self, Access::Read | Access::ReadWrite)
    }

    /// Whether the operand is written.
    pub fn is_write(self) -> bool {
        matches!(self, Access::Write | Access::ReadWrite)
    }
}

/// An instruction operand with its access direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// Register operand.
    Reg(Reg, Access),
    /// Memory operand.
    Mem(MemRef, Access),
    /// Immediate operand (always read).
    Imm(i32),
}

impl Operand {
    /// Convenience: read-only register.
    pub fn reg_r(reg: Reg) -> Operand {
        Operand::Reg(reg, Access::Read)
    }

    /// Convenience: written register.
    pub fn reg_w(reg: Reg) -> Operand {
        Operand::Reg(reg, Access::Write)
    }

    /// Convenience: read-write register.
    pub fn reg_rw(reg: Reg) -> Operand {
        Operand::Reg(reg, Access::ReadWrite)
    }

    /// Convenience: memory load operand.
    pub fn mem_r(mem: MemRef) -> Operand {
        Operand::Mem(mem, Access::Read)
    }

    /// Convenience: memory store operand.
    pub fn mem_w(mem: MemRef) -> Operand {
        Operand::Mem(mem, Access::Write)
    }

    /// Whether this operand reads memory.
    pub fn reads_memory(&self) -> bool {
        matches!(self, Operand::Mem(_, a) if a.is_read())
    }

    /// Whether this operand writes memory.
    pub fn writes_memory(&self) -> bool {
        matches!(self, Operand::Mem(_, a) if a.is_write())
    }

    /// Whether this operand is an immediate.
    pub fn is_imm(&self) -> bool {
        matches!(self, Operand::Imm(_))
    }

    /// Encoded size of this operand in bytes (see `codec`).
    pub fn encoded_len(&self) -> u32 {
        match self {
            Operand::Reg(..) => 1,
            Operand::Mem(..) => 3,
            Operand::Imm(_) => 4,
        }
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r, _) => write!(f, "{r}"),
            Operand::Mem(m, _) => write!(f, "{m}"),
            Operand::Imm(v) => write!(f, "{v:#x}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reg_construction_and_display() {
        assert_eq!(Reg::gpr(3).to_string(), "r3");
        assert_eq!(Reg::xmm(7).to_string(), "xmm7");
        assert_eq!(Reg::ymm(15).to_string(), "ymm15");
        assert_eq!(Reg::st(2).to_string(), "st2");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn reg_index_validated() {
        let _ = Reg::st(9);
    }

    #[test]
    fn memref_display() {
        assert_eq!(MemRef::base_disp(Reg::gpr(5), 8).to_string(), "[r5+8]");
        assert_eq!(MemRef::base_disp(Reg::gpr(5), -16).to_string(), "[r5-16]");
        assert_eq!(MemRef::absolute(64).to_string(), "[+64]");
    }

    #[test]
    fn memory_access_flags() {
        let load = Operand::mem_r(MemRef::absolute(0));
        let store = Operand::mem_w(MemRef::absolute(0));
        let rmw = Operand::Mem(MemRef::absolute(0), Access::ReadWrite);
        assert!(load.reads_memory() && !load.writes_memory());
        assert!(!store.reads_memory() && store.writes_memory());
        assert!(rmw.reads_memory() && rmw.writes_memory());
        assert!(!Operand::reg_r(Reg::gpr(0)).reads_memory());
    }

    #[test]
    fn encoded_lengths() {
        assert_eq!(Operand::reg_r(Reg::gpr(0)).encoded_len(), 1);
        assert_eq!(Operand::mem_r(MemRef::absolute(4)).encoded_len(), 3);
        assert_eq!(Operand::Imm(42).encoded_len(), 4);
    }

    #[test]
    fn class_widths() {
        assert_eq!(RegClass::Gpr.width_bits(), 64);
        assert_eq!(RegClass::Xmm.width_bits(), 128);
        assert_eq!(RegClass::Ymm.width_bits(), 256);
        assert_eq!(RegClass::X87.width_bits(), 80);
    }
}

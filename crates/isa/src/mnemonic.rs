//! The mnemonic table: every instruction mnemonic the synthetic ISA knows,
//! together with its static attributes.
//!
//! This is the stand-in for XED's opcode metadata (§V.B: "We implement a
//! custom disassembler based on XED … to extract detailed opcode
//! information"). Mnemonic spellings follow XED/SDE conventions used in the
//! paper's figures (`RET_NEAR`, `CALL_NEAR`, `MOVSD_XMM`, …).

use crate::{Category, ElementType, Extension, Packing};
use std::fmt;
use std::str::FromStr;

/// Static attributes of a mnemonic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MnemonicInfo {
    /// XED-style uppercase spelling.
    pub name: &'static str,
    /// ISA extension the mnemonic belongs to.
    pub extension: Extension,
    /// Functional category.
    pub category: Category,
    /// SIMD packing attribute.
    pub packing: Packing,
    /// Element type for FP/SIMD operations.
    pub element: ElementType,
    /// Nominal register-to-register latency in cycles (Fog-style table).
    pub latency: u32,
}

macro_rules! define_mnemonics {
    ($( $variant:ident => ($name:literal, $ext:ident, $cat:ident, $pack:ident, $elem:ident, $lat:literal) ),+ $(,)?) => {
        /// An instruction mnemonic of the synthetic ISA.
        ///
        /// The discriminant doubles as the opcode in the binary encoding, so
        /// the numeric values are stable across encode/decode.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        #[repr(u16)]
        #[allow(missing_docs)]
        pub enum Mnemonic {
            $($variant),+
        }

        /// Number of mnemonics in the ISA.
        pub const MNEMONIC_COUNT: usize = Mnemonic::ALL.len();

        impl Mnemonic {
            /// Every mnemonic, ordered by opcode.
            pub const ALL: &'static [Mnemonic] = &[ $(Mnemonic::$variant),+ ];

            /// Static attribute record for this mnemonic.
            pub fn info(self) -> &'static MnemonicInfo {
                const INFOS: &[MnemonicInfo] = &[
                    $(MnemonicInfo {
                        name: $name,
                        extension: Extension::$ext,
                        category: Category::$cat,
                        packing: Packing::$pack,
                        element: ElementType::$elem,
                        latency: $lat,
                    }),+
                ];
                &INFOS[self as u16 as usize]
            }

            /// Decode a mnemonic from its opcode value.
            pub fn from_opcode(op: u16) -> Option<Mnemonic> {
                Mnemonic::ALL.get(op as usize).copied()
            }

            /// The opcode value used in the binary encoding.
            pub fn opcode(self) -> u16 {
                self as u16
            }
        }
    };
}

define_mnemonics! {
    // ---- BASE data movement ----
    Mov        => ("MOV",        Base, Move,    None,   None, 1),
    Movzx      => ("MOVZX",      Base, Move,    None,   None, 1),
    Movsx      => ("MOVSX",      Base, Move,    None,   None, 1),
    Movsxd     => ("MOVSXD",     Base, Move,    None,   None, 1),
    Cdqe       => ("CDQE",       Base, Convert, None,   None, 1),
    Cdq        => ("CDQ",        Base, Convert, None,   None, 1),
    Cqo        => ("CQO",        Base, Convert, None,   None, 1),
    Cmovz      => ("CMOVZ",      Base, Move,    None,   None, 1),
    Cmovnz     => ("CMOVNZ",     Base, Move,    None,   None, 1),
    Setz       => ("SETZ",       Base, Move,    None,   None, 1),
    Setnz      => ("SETNZ",      Base, Move,    None,   None, 1),
    Lea        => ("LEA",        Base, Lea,     None,   None, 1),
    Xchg       => ("XCHG",       Base, Sync,    None,   None, 2),
    // ---- BASE ALU ----
    Add        => ("ADD",        Base, Arith,   None,   None, 1),
    Adc        => ("ADC",        Base, Arith,   None,   None, 1),
    Sub        => ("SUB",        Base, Arith,   None,   None, 1),
    Sbb        => ("SBB",        Base, Arith,   None,   None, 1),
    Inc        => ("INC",        Base, Arith,   None,   None, 1),
    Dec        => ("DEC",        Base, Arith,   None,   None, 1),
    Neg        => ("NEG",        Base, Arith,   None,   None, 1),
    Imul       => ("IMUL",       Base, Mul,     None,   None, 3),
    Mul        => ("MUL",        Base, Mul,     None,   None, 3),
    Idiv       => ("IDIV",       Base, Div,     None,   None, 26),
    Div        => ("DIV",        Base, Div,     None,   None, 26),
    Cmp        => ("CMP",        Base, Compare, None,   None, 1),
    Test       => ("TEST",       Base, Compare, None,   None, 1),
    And        => ("AND",        Base, Logic,   None,   None, 1),
    Or         => ("OR",         Base, Logic,   None,   None, 1),
    Xor        => ("XOR",        Base, Logic,   None,   None, 1),
    Not        => ("NOT",        Base, Logic,   None,   None, 1),
    Shl        => ("SHL",        Base, Shift,   None,   None, 1),
    Shr        => ("SHR",        Base, Shift,   None,   None, 1),
    Sar        => ("SAR",        Base, Shift,   None,   None, 1),
    Rol        => ("ROL",        Base, Shift,   None,   None, 1),
    Ror        => ("ROR",        Base, Shift,   None,   None, 1),
    Bt         => ("BT",         Base, BitScan, None,   None, 1),
    Bsf        => ("BSF",        Base, BitScan, None,   None, 3),
    Bsr        => ("BSR",        Base, BitScan, None,   None, 3),
    Popcnt     => ("POPCNT",     Base, BitScan, None,   None, 3),
    Lzcnt      => ("LZCNT",      Base, BitScan, None,   None, 3),
    Tzcnt      => ("TZCNT",      Base, BitScan, None,   None, 3),
    // ---- BASE stack ----
    Push       => ("PUSH",       Base, Push,    None,   None, 1),
    Pop        => ("POP",        Base, Pop,     None,   None, 1),
    Leave      => ("LEAVE",      Base, Frame,   None,   None, 2),
    Nop        => ("NOP",        Base, Nop,     None,   None, 1),
    NopMulti   => ("NOP_MULTI",  Base, Nop,     None,   None, 1),
    // ---- BASE branches ----
    Jmp        => ("JMP",        Base, UncondBranch, None, None, 1),
    Jz         => ("JZ",         Base, CondBranch,   None, None, 1),
    Jnz        => ("JNZ",        Base, CondBranch,   None, None, 1),
    Jl         => ("JL",         Base, CondBranch,   None, None, 1),
    Jnl        => ("JNL",        Base, CondBranch,   None, None, 1),
    Jle        => ("JLE",        Base, CondBranch,   None, None, 1),
    Jnle       => ("JNLE",       Base, CondBranch,   None, None, 1),
    Jb         => ("JB",         Base, CondBranch,   None, None, 1),
    Jnb        => ("JNB",        Base, CondBranch,   None, None, 1),
    Jbe        => ("JBE",        Base, CondBranch,   None, None, 1),
    Jnbe       => ("JNBE",       Base, CondBranch,   None, None, 1),
    Js         => ("JS",         Base, CondBranch,   None, None, 1),
    Jns        => ("JNS",        Base, CondBranch,   None, None, 1),
    Jo         => ("JO",         Base, CondBranch,   None, None, 1),
    Jno        => ("JNO",        Base, CondBranch,   None, None, 1),
    Jp         => ("JP",         Base, CondBranch,   None, None, 1),
    Jnp        => ("JNP",        Base, CondBranch,   None, None, 1),
    CallNear   => ("CALL_NEAR",  Base, Call,         None, None, 2),
    RetNear    => ("RET_NEAR",   Base, Ret,          None, None, 2),
    // ---- BASE sync ----
    Xadd       => ("XADD",       Base, Sync,    None,   None, 20),
    Cmpxchg    => ("CMPXCHG",    Base, Sync,    None,   None, 20),
    Pause      => ("PAUSE",      Base, Sync,    None,   None, 10),
    Mfence     => ("MFENCE",     Base, Sync,    None,   None, 33),
    Lfence     => ("LFENCE",     Base, Sync,    None,   None, 5),
    Sfence     => ("SFENCE",     Base, Sync,    None,   None, 5),
    // ---- System ----
    Syscall    => ("SYSCALL",    System, System, None,  None, 80),
    Sysret     => ("SYSRET",     System, System, None,  None, 80),
    Cpuid      => ("CPUID",      System, System, None,  None, 100),
    Rdtsc      => ("RDTSC",      System, System, None,  None, 25),
    Cli        => ("CLI",        System, System, None,  None, 8),
    Sti        => ("STI",        System, System, None,  None, 8),
    Swapgs     => ("SWAPGS",     System, System, None,  None, 30),
    Iretq      => ("IRETQ",      System, Ret,    None,  None, 60),
    // ---- x87 ----
    Fld        => ("FLD",        X87, Move,    Scalar, X87, 3),
    Fst        => ("FST",        X87, Move,    Scalar, X87, 3),
    Fstp       => ("FSTP",       X87, Move,    Scalar, X87, 3),
    Fild       => ("FILD",       X87, Convert, Scalar, X87, 6),
    Fistp      => ("FISTP",      X87, Convert, Scalar, X87, 7),
    Fxch       => ("FXCH",       X87, Move,    Scalar, X87, 1),
    Fabs       => ("FABS",       X87, Arith,   Scalar, X87, 1),
    Fchs       => ("FCHS",       X87, Arith,   Scalar, X87, 1),
    Fldz       => ("FLDZ",       X87, Move,    Scalar, X87, 1),
    Fld1       => ("FLD1",       X87, Move,    Scalar, X87, 1),
    Fadd       => ("FADD",       X87, Arith,   Scalar, X87, 5),
    Fsub       => ("FSUB",       X87, Arith,   Scalar, X87, 5),
    Fsubr      => ("FSUBR",      X87, Arith,   Scalar, X87, 5),
    Fmul       => ("FMUL",       X87, Mul,     Scalar, X87, 5),
    Fdiv       => ("FDIV",       X87, Div,     Scalar, X87, 24),
    Fdivr      => ("FDIVR",      X87, Div,     Scalar, X87, 24),
    Fsqrt      => ("FSQRT",      X87, Sqrt,    Scalar, X87, 27),
    Fsin       => ("FSIN",       X87, Transcendental, Scalar, X87, 100),
    Fcos       => ("FCOS",       X87, Transcendental, Scalar, X87, 100),
    Fptan      => ("FPTAN",      X87, Transcendental, Scalar, X87, 150),
    Fpatan     => ("FPATAN",     X87, Transcendental, Scalar, X87, 150),
    F2xm1      => ("F2XM1",      X87, Transcendental, Scalar, X87, 120),
    Fyl2x      => ("FYL2X",      X87, Transcendental, Scalar, X87, 110),
    Frndint    => ("FRNDINT",    X87, Convert, Scalar, X87, 20),
    Fcomi      => ("FCOMI",      X87, Compare, Scalar, X87, 2),
    Fucomi     => ("FUCOMI",     X87, Compare, Scalar, X87, 2),
    // ---- SSE FP ----
    Movaps     => ("MOVAPS",     Sse, Move,    Packed, F32, 1),
    Movups     => ("MOVUPS",     Sse, Move,    Packed, F32, 1),
    Movss      => ("MOVSS",      Sse, Move,    Scalar, F32, 1),
    MovsdXmm   => ("MOVSD_XMM",  Sse, Move,    Scalar, F64, 1),
    Movapd     => ("MOVAPD",     Sse, Move,    Packed, F64, 1),
    Addps      => ("ADDPS",      Sse, Arith,   Packed, F32, 3),
    Addss      => ("ADDSS",      Sse, Arith,   Scalar, F32, 3),
    Addpd      => ("ADDPD",      Sse, Arith,   Packed, F64, 3),
    Addsd      => ("ADDSD",      Sse, Arith,   Scalar, F64, 3),
    Subps      => ("SUBPS",      Sse, Arith,   Packed, F32, 3),
    Subss      => ("SUBSS",      Sse, Arith,   Scalar, F32, 3),
    Subsd      => ("SUBSD",      Sse, Arith,   Scalar, F64, 3),
    Mulps      => ("MULPS",      Sse, Mul,     Packed, F32, 5),
    Mulss      => ("MULSS",      Sse, Mul,     Scalar, F32, 5),
    Mulpd      => ("MULPD",      Sse, Mul,     Packed, F64, 5),
    Mulsd      => ("MULSD",      Sse, Mul,     Scalar, F64, 5),
    Divps      => ("DIVPS",      Sse, Div,     Packed, F32, 14),
    Divss      => ("DIVSS",      Sse, Div,     Scalar, F32, 14),
    Divpd      => ("DIVPD",      Sse, Div,     Packed, F64, 22),
    Divsd      => ("DIVSD",      Sse, Div,     Scalar, F64, 22),
    Sqrtps     => ("SQRTPS",     Sse, Sqrt,    Packed, F32, 14),
    Sqrtss     => ("SQRTSS",     Sse, Sqrt,    Scalar, F32, 14),
    Sqrtsd     => ("SQRTSD",     Sse, Sqrt,    Scalar, F64, 21),
    Maxps      => ("MAXPS",      Sse, Arith,   Packed, F32, 3),
    Minps      => ("MINPS",      Sse, Arith,   Packed, F32, 3),
    Maxss      => ("MAXSS",      Sse, Arith,   Scalar, F32, 3),
    Minss      => ("MINSS",      Sse, Arith,   Scalar, F32, 3),
    Andps      => ("ANDPS",      Sse, Logic,   Packed, F32, 1),
    Orps       => ("ORPS",       Sse, Logic,   Packed, F32, 1),
    Xorps      => ("XORPS",      Sse, Logic,   Packed, F32, 1),
    Ucomiss    => ("UCOMISS",    Sse, Compare, Scalar, F32, 2),
    Ucomisd    => ("UCOMISD",    Sse, Compare, Scalar, F64, 2),
    Comiss     => ("COMISS",     Sse, Compare, Scalar, F32, 2),
    Comisd     => ("COMISD",     Sse, Compare, Scalar, F64, 2),
    Shufps     => ("SHUFPS",     Sse, Shuffle, Packed, F32, 1),
    Unpcklps   => ("UNPCKLPS",   Sse, Shuffle, Packed, F32, 1),
    Unpckhps   => ("UNPCKHPS",   Sse, Shuffle, Packed, F32, 1),
    Cvtsi2ss   => ("CVTSI2SS",   Sse, Convert, Scalar, F32, 5),
    Cvtsi2sd   => ("CVTSI2SD",   Sse, Convert, Scalar, F64, 5),
    Cvtss2sd   => ("CVTSS2SD",   Sse, Convert, Scalar, F64, 2),
    Cvtsd2ss   => ("CVTSD2SS",   Sse, Convert, Scalar, F32, 4),
    Cvttss2si  => ("CVTTSS2SI",  Sse, Convert, Scalar, F32, 5),
    Cvttsd2si  => ("CVTTSD2SI",  Sse, Convert, Scalar, F64, 5),
    // ---- SSE integer ----
    Movd       => ("MOVD",       Sse, Move,    Scalar, I32, 1),
    Movq       => ("MOVQ",       Sse, Move,    Scalar, I64, 1),
    Movdqa     => ("MOVDQA",     Sse, Move,    Packed, I32, 1),
    Movdqu     => ("MOVDQU",     Sse, Move,    Packed, I32, 1),
    Paddd      => ("PADDD",      Sse, Arith,   Packed, I32, 1),
    Psubd      => ("PSUBD",      Sse, Arith,   Packed, I32, 1),
    Pmulld     => ("PMULLD",     Sse, Mul,     Packed, I32, 10),
    Pand       => ("PAND",       Sse, Logic,   Packed, I32, 1),
    Por        => ("POR",        Sse, Logic,   Packed, I32, 1),
    Pxor       => ("PXOR",       Sse, Logic,   Packed, I32, 1),
    Pcmpeqd    => ("PCMPEQD",    Sse, Compare, Packed, I32, 1),
    Pslld      => ("PSLLD",      Sse, Shift,   Packed, I32, 1),
    Psrld      => ("PSRLD",      Sse, Shift,   Packed, I32, 1),
    Pshufd     => ("PSHUFD",     Sse, Shuffle, Packed, I32, 1),
    // ---- AVX ----
    Vmovaps    => ("VMOVAPS",    Avx, Move,    Packed, F32, 1),
    Vmovups    => ("VMOVUPS",    Avx, Move,    Packed, F32, 1),
    Vmovss     => ("VMOVSS",     Avx, Move,    Scalar, F32, 1),
    Vaddps     => ("VADDPS",     Avx, Arith,   Packed, F32, 3),
    Vaddss     => ("VADDSS",     Avx, Arith,   Scalar, F32, 3),
    Vsubps     => ("VSUBPS",     Avx, Arith,   Packed, F32, 3),
    Vmulps     => ("VMULPS",     Avx, Mul,     Packed, F32, 5),
    Vmulss     => ("VMULSS",     Avx, Mul,     Scalar, F32, 5),
    Vdivps     => ("VDIVPS",     Avx, Div,     Packed, F32, 21),
    Vdivss     => ("VDIVSS",     Avx, Div,     Scalar, F32, 14),
    Vsqrtps    => ("VSQRTPS",    Avx, Sqrt,    Packed, F32, 21),
    Vsqrtss    => ("VSQRTSS",    Avx, Sqrt,    Scalar, F32, 14),
    Vmaxps     => ("VMAXPS",     Avx, Arith,   Packed, F32, 3),
    Vminps     => ("VMINPS",     Avx, Arith,   Packed, F32, 3),
    Vandps     => ("VANDPS",     Avx, Logic,   Packed, F32, 1),
    Vorps      => ("VORPS",      Avx, Logic,   Packed, F32, 1),
    Vxorps     => ("VXORPS",     Avx, Logic,   Packed, F32, 1),
    Vucomiss   => ("VUCOMISS",   Avx, Compare, Scalar, F32, 2),
    Vshufps    => ("VSHUFPS",    Avx, Shuffle, Packed, F32, 1),
    Vpermilps  => ("VPERMILPS",  Avx, Shuffle, Packed, F32, 1),
    Vbroadcastss => ("VBROADCASTSS", Avx, Broadcast, Packed, F32, 3),
    Vinsertf128  => ("VINSERTF128",  Avx, Broadcast, Packed, F32, 3),
    Vextractf128 => ("VEXTRACTF128", Avx, Broadcast, Packed, F32, 3),
    Vzeroupper => ("VZEROUPPER", Avx, Move,    None,   None, 1),
    Vcvtsi2ss  => ("VCVTSI2SS",  Avx, Convert, Scalar, F32, 5),
    Vfmadd132ps => ("VFMADD132PS", Avx, Fma,   Packed, F32, 5),
    Vfmadd213ps => ("VFMADD213PS", Avx, Fma,   Packed, F32, 5),
    Vfmadd231ps => ("VFMADD231PS", Avx, Fma,   Packed, F32, 5),
    Vfmadd231ss => ("VFMADD231SS", Avx, Fma,   Scalar, F32, 5),
    // ---- AVX2 ----
    Vpaddd     => ("VPADDD",     Avx2, Arith,  Packed, I32, 1),
    Vpmulld    => ("VPMULLD",    Avx2, Mul,    Packed, I32, 10),
    Vpand      => ("VPAND",      Avx2, Logic,  Packed, I32, 1),
    Vpbroadcastd => ("VPBROADCASTD", Avx2, Broadcast, Packed, I32, 3),
    Vgatherdps => ("VGATHERDPS", Avx2, Gather, Packed, F32, 20),
}

impl Mnemonic {
    /// XED-style uppercase spelling (e.g. `"RET_NEAR"`).
    pub fn name(self) -> &'static str {
        self.info().name
    }

    /// ISA extension of this mnemonic.
    pub fn extension(self) -> Extension {
        self.info().extension
    }

    /// Functional category of this mnemonic.
    pub fn category(self) -> Category {
        self.info().category
    }

    /// Packing attribute of this mnemonic.
    pub fn packing(self) -> Packing {
        self.info().packing
    }

    /// Element type for FP/SIMD mnemonics.
    pub fn element(self) -> ElementType {
        self.info().element
    }

    /// Nominal latency in cycles.
    pub fn latency(self) -> u32 {
        self.info().latency
    }

    /// Whether this mnemonic transfers control.
    pub fn is_branch(self) -> bool {
        self.category().is_branch()
    }

    /// Whether this mnemonic is considered long-latency for the shadowing
    /// model and the built-in "long latency" taxonomy (§V.B example group).
    pub fn is_long_latency(self) -> bool {
        self.latency() >= crate::latency::LONG_LATENCY_THRESHOLD
    }

    /// Look up a mnemonic by its XED-style spelling.
    ///
    /// ```
    /// use hbbp_isa::Mnemonic;
    /// assert_eq!("RET_NEAR".parse::<Mnemonic>().ok(), Some(Mnemonic::RetNear));
    /// ```
    pub fn from_name(name: &str) -> Option<Mnemonic> {
        Mnemonic::ALL.iter().copied().find(|m| m.name() == name)
    }
}

impl fmt::Display for Mnemonic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error returned when parsing an unknown mnemonic spelling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseMnemonicError {
    spelling: String,
}

impl fmt::Display for ParseMnemonicError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown mnemonic spelling `{}`", self.spelling)
    }
}

impl std::error::Error for ParseMnemonicError {}

impl FromStr for Mnemonic {
    type Err = ParseMnemonicError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Mnemonic::from_name(s).ok_or_else(|| ParseMnemonicError {
            spelling: s.to_owned(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn opcode_roundtrip_for_all() {
        for &m in Mnemonic::ALL {
            assert_eq!(Mnemonic::from_opcode(m.opcode()), Some(m));
        }
        assert_eq!(Mnemonic::from_opcode(u16::MAX), None);
        assert_eq!(Mnemonic::from_opcode(MNEMONIC_COUNT as u16), None);
    }

    #[test]
    fn names_are_unique_and_uppercase() {
        let mut seen = HashSet::new();
        for &m in Mnemonic::ALL {
            assert!(seen.insert(m.name()), "duplicate name {}", m.name());
            assert_eq!(
                m.name(),
                m.name().to_ascii_uppercase(),
                "name not uppercase: {}",
                m.name()
            );
        }
    }

    #[test]
    fn name_roundtrip() {
        for &m in Mnemonic::ALL {
            assert_eq!(m.name().parse::<Mnemonic>().ok(), Some(m));
        }
        assert!("BOGUS".parse::<Mnemonic>().is_err());
    }

    #[test]
    fn paper_table7_mnemonics_exist() {
        // Every mnemonic from the kernel benchmark (Table 7) must be present.
        for name in [
            "ADD", "CDQE", "CMP", "IMUL", "JLE", "JNLE", "JNZ", "JZ", "MOV", "MOVSXD", "SUB",
            "TEST",
        ] {
            assert!(Mnemonic::from_name(name).is_some(), "missing {name}");
        }
    }

    #[test]
    fn paper_figure_mnemonics_exist() {
        // Figure 3/4 mention POP, RET_NEAR, JMP among the top-20.
        for name in ["POP", "RET_NEAR", "JMP", "CALL_NEAR", "PUSH", "LEA"] {
            assert!(Mnemonic::from_name(name).is_some(), "missing {name}");
        }
    }

    #[test]
    fn long_latency_classes() {
        assert!(Mnemonic::Div.is_long_latency());
        assert!(Mnemonic::Fsqrt.is_long_latency());
        assert!(Mnemonic::Fsin.is_long_latency());
        assert!(Mnemonic::Divps.is_long_latency());
        assert!(!Mnemonic::Add.is_long_latency());
        assert!(!Mnemonic::Mov.is_long_latency());
        assert!(!Mnemonic::Jnz.is_long_latency());
    }

    #[test]
    fn branch_mnemonics() {
        assert!(Mnemonic::Jmp.is_branch());
        assert!(Mnemonic::Jz.is_branch());
        assert!(Mnemonic::CallNear.is_branch());
        assert!(Mnemonic::RetNear.is_branch());
        assert!(!Mnemonic::Mov.is_branch());
    }

    #[test]
    fn extension_assignment_spot_checks() {
        assert_eq!(Mnemonic::Addps.extension(), Extension::Sse);
        assert_eq!(Mnemonic::Vaddps.extension(), Extension::Avx);
        assert_eq!(Mnemonic::Fadd.extension(), Extension::X87);
        assert_eq!(Mnemonic::Add.extension(), Extension::Base);
        assert_eq!(Mnemonic::Vpaddd.extension(), Extension::Avx2);
        assert_eq!(Mnemonic::Syscall.extension(), Extension::System);
    }

    #[test]
    fn packing_spot_checks() {
        assert_eq!(Mnemonic::Addps.packing(), Packing::Packed);
        assert_eq!(Mnemonic::Addss.packing(), Packing::Scalar);
        assert_eq!(Mnemonic::Vzeroupper.packing(), Packing::None);
        assert_eq!(Mnemonic::Add.packing(), Packing::None);
    }

    #[test]
    fn table_has_reasonable_size() {
        // The synthetic ISA should be rich enough for realistic mixes.
        assert!(
            Mnemonic::ALL.len() >= 120,
            "only {} mnemonics",
            Mnemonic::ALL.len()
        );
    }
}

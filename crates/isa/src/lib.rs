//! # hbbp-isa — synthetic instruction set for the HBBP reproduction
//!
//! The ISPASS 2018 paper "Low-Overhead Dynamic Instruction Mix Generation
//! using Hybrid Basic Block Profiling" builds its analyzer on top of Intel
//! XED: raw `.text` bytes are decoded into instructions annotated with
//! "the instruction class, ISA, family and category" plus "types, numbers,
//! sizes and attributes of operands" and secondary attributes like memory
//! read/write or packed/scalar flags (§V.B).
//!
//! This crate is the XED stand-in: a compact x86-*like* ISA with
//!
//! * a [`Mnemonic`] table (~140 entries across BASE/X87/SSE/AVX/AVX2/SYS)
//!   carrying extension, category, packing, element type and latency,
//! * an [`Instruction`] value type with operands and derived secondary
//!   attributes ([`Instruction::reads_memory`], [`Instruction::lanes`],
//!   [`Instruction::flop_count`], …),
//! * a byte-exact binary [`codec`] (encode/decode round-trips, truncation
//!   and corruption detection) so programs exist as real machine-code bytes,
//! * a configurable [`LatencyModel`] feeding the simulator's timing and
//!   shadowing artefacts, and
//! * user-definable [`Taxonomy`] groups reproducing the paper's custom
//!   instruction groups ("long latency instructions", "synchronization
//!   instructions", the Table 8 ext×packing view).
//!
//! ```
//! use hbbp_isa::{codec, instruction::build, Mnemonic, Reg};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let add = build::rr(Mnemonic::Add, Reg::gpr(0), Reg::gpr(1));
//! let bytes = codec::encode(&add);
//! let (decoded, len) = codec::decode_one(&bytes, 0)?;
//! assert_eq!(decoded, add);
//! assert_eq!(len, bytes.len());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod category;
pub mod codec;
pub mod extension;
pub mod instruction;
pub mod latency;
pub mod mnemonic;
pub mod operand;
pub mod taxonomy;

pub use category::{BranchKind, Category};
pub use extension::{ElementType, Extension, Packing};
pub use instruction::{Instruction, MAX_OPERANDS};
pub use latency::{LatencyModel, LOCK_PENALTY, LONG_LATENCY_THRESHOLD};
pub use mnemonic::{Mnemonic, MnemonicInfo, ParseMnemonicError, MNEMONIC_COUNT};
pub use operand::{Access, MemRef, Operand, Reg, RegClass};
pub use taxonomy::{Predicate, TaxonGroup, Taxonomy};

//! Property-based tests for the instruction codec: arbitrary instruction
//! streams must round-trip byte-exactly, and decoding must never panic on
//! arbitrary byte soup.

use hbbp_isa::{codec, Access, Instruction, MemRef, Mnemonic, Operand, Reg};
use proptest::prelude::*;

fn arb_access() -> impl Strategy<Value = Access> {
    prop_oneof![
        Just(Access::Read),
        Just(Access::Write),
        Just(Access::ReadWrite)
    ]
}

fn arb_reg() -> impl Strategy<Value = Reg> {
    prop_oneof![
        (0u8..16).prop_map(Reg::gpr),
        (0u8..8).prop_map(Reg::st),
        (0u8..16).prop_map(Reg::xmm),
        (0u8..16).prop_map(Reg::ymm),
    ]
}

fn arb_operand() -> impl Strategy<Value = Operand> {
    prop_oneof![
        (arb_reg(), arb_access()).prop_map(|(r, a)| Operand::Reg(r, a)),
        ((0u8..16).prop_map(Reg::gpr), any::<i16>(), arb_access())
            .prop_map(|(b, d, a)| Operand::Mem(MemRef::base_disp(b, d), a)),
        (any::<i16>(), arb_access()).prop_map(|(d, a)| Operand::Mem(MemRef::absolute(d), a)),
        any::<i32>().prop_map(Operand::Imm),
    ]
}

fn arb_instruction() -> impl Strategy<Value = Instruction> {
    (
        0..Mnemonic::ALL.len(),
        proptest::collection::vec(arb_operand(), 0..=3),
        any::<bool>(),
    )
        .prop_map(|(m, ops, lock)| {
            let instr = Instruction::with_operands(Mnemonic::ALL[m], ops);
            if lock {
                instr.locked()
            } else {
                instr
            }
        })
}

proptest! {
    #[test]
    fn roundtrip_single(instr in arb_instruction()) {
        let bytes = codec::encode(&instr);
        prop_assert_eq!(bytes.len() as u32, codec::encoded_len(&instr));
        let (decoded, consumed) = codec::decode_one(&bytes, 0).unwrap();
        prop_assert_eq!(decoded, instr);
        prop_assert_eq!(consumed, bytes.len());
    }

    #[test]
    fn roundtrip_stream(instrs in proptest::collection::vec(arb_instruction(), 0..64)) {
        let bytes = codec::encode_all(&instrs);
        let decoded = codec::decode_all(&bytes).unwrap();
        prop_assert_eq!(decoded, instrs);
    }

    #[test]
    fn decode_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        // Any outcome is fine; panicking is not.
        let _ = codec::decode_all(&bytes);
    }

    #[test]
    fn truncation_always_detected(instr in arb_instruction(), cut_fraction in 0.0f64..1.0) {
        let bytes = codec::encode(&instr);
        let cut = ((bytes.len() as f64) * cut_fraction) as usize;
        if cut < bytes.len() {
            prop_assert!(codec::decode_one(&bytes[..cut], 0).is_err());
        }
    }

    #[test]
    fn stream_decode_offsets_monotonic(instrs in proptest::collection::vec(arb_instruction(), 1..32)) {
        let bytes = codec::encode_all(&instrs);
        let mut dec = codec::Decoder::new(&bytes);
        let mut last = 0;
        while let Some(item) = dec.next() {
            item.unwrap();
            prop_assert!(dec.offset() > last);
            last = dec.offset();
        }
        prop_assert_eq!(last, bytes.len());
    }

    #[test]
    fn reg_reg_instructions_are_compact(m in 0..Mnemonic::ALL.len()) {
        // Header + two register operands should stay close to x86 sizes.
        let instr = Instruction::with_operands(
            Mnemonic::ALL[m],
            vec![Operand::Reg(Reg::gpr(0), Access::ReadWrite), Operand::Reg(Reg::gpr(1), Access::Read)],
        );
        prop_assert!(codec::encoded_len(&instr) <= 8);
    }
}

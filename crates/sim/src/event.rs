//! PMU events and the libpfm4-style event-string parser.
//!
//! The paper's tool "optionally works with the libpfm4 library, translating
//! user-friendly strings to performance event codes" (§V). This module is
//! that translation layer for the simulated PMU: `"INST_RETIRED:PREC_DIST"`
//! and `"BR_INST_RETIRED:NEAR_TAKEN"` — the two events HBBP's collector
//! programs (§V.A) — parse to [`EventSpec`]s.

use hbbp_isa::{Category, Extension, Instruction, Packing};
use std::fmt;
use std::str::FromStr;

/// A hardware performance event of the simulated PMU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EventKind {
    /// Every retired instruction.
    InstRetired,
    /// Unhalted core cycles.
    CpuClkUnhalted,
    /// Retired taken near branches (the LBR sampling event).
    BrInstRetiredNearTaken,
    /// All retired near branches, taken or not.
    BrInstRetiredAll,
    /// Computational SSE FP operations ("Math SSE FP" row of Table 2).
    FpCompOpsSse,
    /// Computational AVX FP operations ("Math AVX FP" row of Table 2).
    SimdFpAvx,
    /// Divider busy cycles ("DIV (cycles)" row of Table 2).
    ArithDivCycles,
    /// Packed integer SIMD operations ("INT SIMD" row of Table 2).
    SimdIntOps,
    /// x87 computational operations ("X87" row of Table 2).
    X87Ops,
}

impl EventKind {
    /// All event kinds.
    pub const ALL: [EventKind; 9] = [
        EventKind::InstRetired,
        EventKind::CpuClkUnhalted,
        EventKind::BrInstRetiredNearTaken,
        EventKind::BrInstRetiredAll,
        EventKind::FpCompOpsSse,
        EventKind::SimdFpAvx,
        EventKind::ArithDivCycles,
        EventKind::SimdIntOps,
        EventKind::X87Ops,
    ];

    /// Dense index of this event in [`EventKind::ALL`] (used for per-block
    /// increment tables in the simulator's fast path).
    pub fn index(self) -> usize {
        match self {
            EventKind::InstRetired => 0,
            EventKind::CpuClkUnhalted => 1,
            EventKind::BrInstRetiredNearTaken => 2,
            EventKind::BrInstRetiredAll => 3,
            EventKind::FpCompOpsSse => 4,
            EventKind::SimdFpAvx => 5,
            EventKind::ArithDivCycles => 6,
            EventKind::SimdIntOps => 7,
            EventKind::X87Ops => 8,
        }
    }

    /// Canonical event-string name.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::InstRetired => "INST_RETIRED",
            EventKind::CpuClkUnhalted => "CPU_CLK_UNHALTED",
            EventKind::BrInstRetiredNearTaken => "BR_INST_RETIRED:NEAR_TAKEN",
            EventKind::BrInstRetiredAll => "BR_INST_RETIRED:ALL_BRANCHES",
            EventKind::FpCompOpsSse => "FP_COMP_OPS_EXE:SSE_FP",
            EventKind::SimdFpAvx => "SIMD_FP_256:PACKED",
            EventKind::ArithDivCycles => "ARITH:FPU_DIV_ACTIVE",
            EventKind::SimdIntOps => "SIMD_INT_128:ALL",
            EventKind::X87Ops => "FP_COMP_OPS_EXE:X87",
        }
    }

    /// Whether this is one of the instruction-specific computational events
    /// whose availability Table 2 tracks across PMU generations.
    pub fn is_instruction_specific(self) -> bool {
        matches!(
            self,
            EventKind::FpCompOpsSse
                | EventKind::SimdFpAvx
                | EventKind::ArithDivCycles
                | EventKind::SimdIntOps
                | EventKind::X87Ops
        )
    }

    /// How much this event's counter advances when `instr` retires.
    ///
    /// `branch_taken` reports whether the instruction was a taken branch
    /// (only meaningful for branch instructions); `cycles` is the
    /// instruction's cycle cost under the active latency model.
    pub fn increment(self, instr: &Instruction, branch_taken: bool, cycles: u64) -> u64 {
        match self {
            EventKind::InstRetired => 1,
            EventKind::CpuClkUnhalted => cycles,
            EventKind::BrInstRetiredNearTaken => (instr.is_branch() && branch_taken) as u64,
            EventKind::BrInstRetiredAll => instr.is_branch() as u64,
            EventKind::FpCompOpsSse => {
                (instr.extension() == Extension::Sse
                    && instr.category().is_computational()
                    && instr.element().is_float()) as u64
            }
            EventKind::SimdFpAvx => {
                (instr.extension() == Extension::Avx
                    && instr.category().is_computational()
                    && instr.packing() == Packing::Packed) as u64
            }
            EventKind::ArithDivCycles => {
                if instr.category() == Category::Div {
                    cycles
                } else {
                    0
                }
            }
            EventKind::SimdIntOps => {
                ((instr.extension() == Extension::Sse || instr.extension() == Extension::Avx2)
                    && instr.packing() == Packing::Packed
                    && !instr.element().is_float()
                    && instr.category().is_computational()) as u64
            }
            EventKind::X87Ops => {
                (instr.extension() == Extension::X87 && instr.category().is_computational()) as u64
            }
        }
    }
}

impl fmt::Display for EventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A fully specified event: kind plus the precision flag.
///
/// On the simulated PMU, as on real hardware, only `INST_RETIRED` offers a
/// precisely-distributed variant (`:PREC_DIST`), and the paper notes it
/// "can only be enabled on one of the available PMU counters" — a
/// constraint the PMU model enforces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventSpec {
    /// The event to count.
    pub kind: EventKind,
    /// Request the precise (PEBS/PREC_DIST-style) variant.
    pub precise: bool,
}

impl EventSpec {
    /// Plain (imprecise) event.
    pub fn plain(kind: EventKind) -> EventSpec {
        EventSpec {
            kind,
            precise: false,
        }
    }

    /// Precise variant of an event.
    pub fn precise(kind: EventKind) -> EventSpec {
        EventSpec {
            kind,
            precise: true,
        }
    }

    /// The paper's EBS collection event: `INST_RETIRED:PREC_DIST`.
    pub fn inst_retired_prec_dist() -> EventSpec {
        EventSpec::precise(EventKind::InstRetired)
    }

    /// The paper's LBR collection event: `BR_INST_RETIRED:NEAR_TAKEN`.
    pub fn br_inst_retired_near_taken() -> EventSpec {
        EventSpec::plain(EventKind::BrInstRetiredNearTaken)
    }
}

impl fmt::Display for EventSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.precise && self.kind == EventKind::InstRetired {
            write!(f, "INST_RETIRED:PREC_DIST")
        } else if self.precise {
            write!(f, "{}:PRECISE", self.kind)
        } else {
            write!(f, "{}", self.kind)
        }
    }
}

/// Error from parsing an event string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseEventError {
    spelling: String,
}

impl fmt::Display for ParseEventError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown event string `{}`", self.spelling)
    }
}

impl std::error::Error for ParseEventError {}

impl FromStr for EventSpec {
    type Err = ParseEventError;

    /// Parse a libpfm4-style event string.
    ///
    /// ```
    /// use hbbp_sim::EventSpec;
    /// let ebs: EventSpec = "INST_RETIRED:PREC_DIST".parse()?;
    /// assert!(ebs.precise);
    /// let lbr: EventSpec = "BR_INST_RETIRED:NEAR_TAKEN".parse()?;
    /// assert!(!lbr.precise);
    /// # Ok::<(), hbbp_sim::ParseEventError>(())
    /// ```
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || ParseEventError {
            spelling: s.to_owned(),
        };
        match s {
            "INST_RETIRED" | "INST_RETIRED:ANY" => Ok(EventSpec::plain(EventKind::InstRetired)),
            "INST_RETIRED:PREC_DIST" => Ok(EventSpec::precise(EventKind::InstRetired)),
            "CPU_CLK_UNHALTED" | "CPU_CLK_UNHALTED:THREAD" => {
                Ok(EventSpec::plain(EventKind::CpuClkUnhalted))
            }
            "BR_INST_RETIRED:NEAR_TAKEN" => Ok(EventSpec::plain(EventKind::BrInstRetiredNearTaken)),
            "BR_INST_RETIRED:ALL_BRANCHES" => Ok(EventSpec::plain(EventKind::BrInstRetiredAll)),
            "FP_COMP_OPS_EXE:SSE_FP" => Ok(EventSpec::plain(EventKind::FpCompOpsSse)),
            "SIMD_FP_256:PACKED" | "SIMD_FP_256:PACKED_SINGLE" => {
                Ok(EventSpec::plain(EventKind::SimdFpAvx))
            }
            "ARITH:FPU_DIV_ACTIVE" | "ARITH:DIV" => Ok(EventSpec::plain(EventKind::ArithDivCycles)),
            "SIMD_INT_128:ALL" => Ok(EventSpec::plain(EventKind::SimdIntOps)),
            "FP_COMP_OPS_EXE:X87" => Ok(EventSpec::plain(EventKind::X87Ops)),
            _ => Err(err()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbbp_isa::instruction::build::*;
    use hbbp_isa::{Mnemonic, Reg};

    #[test]
    fn paper_events_parse() {
        assert_eq!(
            "INST_RETIRED:PREC_DIST".parse::<EventSpec>().unwrap(),
            EventSpec::inst_retired_prec_dist()
        );
        assert_eq!(
            "BR_INST_RETIRED:NEAR_TAKEN".parse::<EventSpec>().unwrap(),
            EventSpec::br_inst_retired_near_taken()
        );
        assert!("NOT_AN_EVENT".parse::<EventSpec>().is_err());
    }

    #[test]
    fn display_roundtrip_for_paper_events() {
        let e = EventSpec::inst_retired_prec_dist();
        assert_eq!(e.to_string().parse::<EventSpec>().unwrap(), e);
        let b = EventSpec::br_inst_retired_near_taken();
        assert_eq!(b.to_string().parse::<EventSpec>().unwrap(), b);
    }

    #[test]
    fn inst_retired_counts_everything() {
        let add = rr(Mnemonic::Add, Reg::gpr(0), Reg::gpr(1));
        assert_eq!(EventKind::InstRetired.increment(&add, false, 1), 1);
        let jz = bare(Mnemonic::Jz);
        assert_eq!(EventKind::InstRetired.increment(&jz, true, 1), 1);
    }

    #[test]
    fn taken_branch_event_requires_taken() {
        let jz = bare(Mnemonic::Jz);
        assert_eq!(EventKind::BrInstRetiredNearTaken.increment(&jz, true, 1), 1);
        assert_eq!(
            EventKind::BrInstRetiredNearTaken.increment(&jz, false, 1),
            0
        );
        let add = rr(Mnemonic::Add, Reg::gpr(0), Reg::gpr(1));
        assert_eq!(
            EventKind::BrInstRetiredNearTaken.increment(&add, true, 1),
            0
        );
        assert_eq!(EventKind::BrInstRetiredAll.increment(&jz, false, 1), 1);
    }

    #[test]
    fn instruction_specific_events_filter_by_class() {
        let addps = rr(Mnemonic::Addps, Reg::xmm(0), Reg::xmm(1));
        let vaddps = rr(Mnemonic::Vaddps, Reg::ymm(0), Reg::ymm(1));
        let fadd = rr(Mnemonic::Fadd, Reg::st(0), Reg::st(1));
        let paddd = rr(Mnemonic::Paddd, Reg::xmm(0), Reg::xmm(1));
        let movaps = rr(Mnemonic::Movaps, Reg::xmm(0), Reg::xmm(1));

        assert_eq!(EventKind::FpCompOpsSse.increment(&addps, false, 3), 1);
        assert_eq!(EventKind::FpCompOpsSse.increment(&vaddps, false, 3), 0);
        assert_eq!(EventKind::FpCompOpsSse.increment(&movaps, false, 1), 0);
        assert_eq!(EventKind::SimdFpAvx.increment(&vaddps, false, 3), 1);
        assert_eq!(EventKind::X87Ops.increment(&fadd, false, 5), 1);
        assert_eq!(EventKind::SimdIntOps.increment(&paddd, false, 1), 1);
        assert_eq!(EventKind::SimdIntOps.increment(&addps, false, 3), 0);
    }

    #[test]
    fn div_event_counts_cycles() {
        let div = bare(Mnemonic::Idiv);
        assert_eq!(EventKind::ArithDivCycles.increment(&div, false, 26), 26);
        let add = bare(Mnemonic::Add);
        assert_eq!(EventKind::ArithDivCycles.increment(&add, false, 1), 0);
    }

    #[test]
    fn cycles_event_counts_cycles() {
        let add = bare(Mnemonic::Add);
        assert_eq!(EventKind::CpuClkUnhalted.increment(&add, false, 7), 7);
    }
}

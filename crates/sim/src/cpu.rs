//! The CPU execution engine: runs a program, advances time, drives the PMU.
//!
//! Execution is *block-stepped*: per-block totals (cycles, event
//! increments) are precomputed so that blocks in which no counter can
//! overflow and no sample is in flight cost O(1). Blocks near an overflow,
//! or traversed while a skidding sample / delayed PMI is pending, fall back
//! to instruction-level stepping, where the skid/shadow and LBR-delay
//! models operate.

use crate::{
    EventCounts, EventKind, LbrEntry, LbrRing, PmuConfig, PmuError, SampleRecord, MAX_COUNTERS,
};
use hbbp_isa::{BranchKind, LatencyModel};
use hbbp_program::{BlockId, ExecutionOracle, Layout, Program, Ring, Terminator, WalkEnd, Walker};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const N_EVENTS: usize = EventKind::ALL.len();

/// Machine-level configuration: frequency and the stabilization knobs the
/// paper turns off for benchmarking (§VII.A: "we disable frequency scaling,
/// 'turbo mode' and C-states"; §VII.B: "We disable the NMI watchdog").
#[derive(Debug, Clone, PartialEq)]
pub struct SystemConfig {
    /// Nominal core frequency in GHz.
    pub freq_ghz: f64,
    /// Turbo mode: run-to-run frequency wander (destabilizes timings).
    pub turbo: bool,
    /// C-states: wakeup latency noise added to runtimes.
    pub cstates: bool,
    /// NMI watchdog: occupies one PMU counter when enabled.
    pub nmi_watchdog: bool,
}

impl Default for SystemConfig {
    /// The paper's stabilized Ivy Bridge: 2.4 GHz, everything noisy off.
    fn default() -> SystemConfig {
        SystemConfig {
            freq_ghz: 2.4,
            turbo: false,
            cstates: false,
            nmi_watchdog: false,
        }
    }
}

/// The simulated CPU.
#[derive(Debug, Clone, Default)]
pub struct Cpu {
    /// System-level configuration.
    pub system: SystemConfig,
    /// Instruction timing model.
    pub latency: LatencyModel,
    /// Seed for all stochastic hardware behaviour (skid draws, PMI delays,
    /// LBR quirk, turbo wander). Same seed + same oracle ⇒ identical run.
    pub seed: u64,
    /// Thread id stamped into samples.
    pub tid: u32,
}

impl Cpu {
    /// A CPU with a specific seed.
    pub fn with_seed(seed: u64) -> Cpu {
        Cpu {
            seed,
            ..Cpu::default()
        }
    }

    /// Run `program` to completion under `oracle`, with the PMU programmed
    /// per `pmu`.
    ///
    /// # Errors
    ///
    /// Returns [`PmuError`] if the PMU programming is invalid (counter
    /// limits, unsupported events, or the NMI watchdog stealing the last
    /// counter).
    pub fn run<O: ExecutionOracle>(
        &self,
        program: &Program,
        layout: &Layout,
        oracle: O,
        pmu: &PmuConfig,
    ) -> Result<RunResult, PmuError> {
        pmu.validate()?;
        if self.system.nmi_watchdog && pmu.counters.len() + 1 > MAX_COUNTERS {
            return Err(PmuError::TooManyCounters {
                requested: pmu.counters.len() + 1,
            });
        }
        let profs = build_profiles(program, layout, &self.latency);
        let mut rng = SmallRng::seed_from_u64(self.seed ^ 0x9e37_79b9_7f4a_7c15);
        let freq_ghz = if self.system.turbo {
            self.system.freq_ghz * (1.0 + 0.12 * rng.random::<f64>())
        } else {
            self.system.freq_ghz
        };
        let min_gap_cycles = pmu
            .max_sample_rate
            .map(|rate| ((freq_ghz * 1e9) / rate as f64) as u64);

        let mut ctrs: Vec<CtrState> = pmu
            .counters
            .iter()
            .enumerate()
            .map(|(i, c)| CtrState {
                index: i as u8,
                event: c.event,
                kind_idx: c.event.kind.index(),
                period: c.period,
                collect_lbr: c.collect_lbr,
                value: 0,
                pending: None,
                last_sample_cycles: None,
            })
            .collect();

        let mut ring = LbrRing::new(pmu.lbr.clone());
        let mut counts = [0u64; N_EVENTS];
        let mut out = RunResult {
            samples: Vec::new(),
            counts: EventCounts::new(),
            cycles: 0,
            overhead_cycles: 0,
            instructions: 0,
            taken_branches: 0,
            blocks_executed: 0,
            throttled: 0,
            freq_ghz,
            end: WalkEnd::Running,
        };
        let mut prev_long = false;
        // Whether the current block was entered through a taken branch
        // (program entry counts as taken — it is a control transfer).
        let mut entered_taken = true;

        let mut walker = Walker::new(program, oracle);
        let mut cur = walker.next_block();
        while let Some(bid) = cur {
            let next = walker.next_block();
            let prof = &profs[bid.index()];
            out.blocks_executed += 1;

            // Resolve the dynamic branch outcome from the walk itself.
            let (taken, to_addr) = match prof.term_kind {
                None => (false, 0),
                Some(BranchKind::Conditional) => {
                    let t = next.is_some() && next == prof.taken_target;
                    let addr = if t {
                        profs[next.expect("taken").index()].start
                    } else {
                        0
                    };
                    (t, addr)
                }
                Some(_) => match next {
                    Some(n) => (true, profs[n.index()].start),
                    None => (false, 0),
                },
            };

            let needs_slow = ctrs
                .iter()
                .any(|c| c.pending.is_some() || c.value + c.max_increment(prof) >= c.period);

            if !needs_slow {
                // Fast path: whole-block accounting.
                out.cycles += prof.cycles;
                out.instructions += prof.len as u64;
                for (count, incr) in counts.iter_mut().zip(&prof.incr[..N_EVENTS]) {
                    *count += incr;
                }
                if taken {
                    counts[EventKind::BrInstRetiredNearTaken.index()] += 1;
                    out.taken_branches += 1;
                    ring.push(
                        LbrEntry {
                            from: prof.term_addr,
                            to: to_addr,
                        },
                        prof.sticky,
                    );
                }
                for c in ctrs.iter_mut() {
                    c.value += c.block_increment(prof, taken);
                }
                prev_long = prof.last_long;
            } else {
                // Slow path: instruction-level stepping.
                let block = program.block(bid);
                let n = prof.len as usize;
                for i in 0..n {
                    let instr = &block.instrs()[i];
                    let icyc = prof.instr_cycles[i] as u64;
                    out.cycles += icyc;
                    out.instructions += 1;
                    let instr_taken = taken && i == n - 1;
                    if instr_taken {
                        out.taken_branches += 1;
                        ring.push(
                            LbrEntry {
                                from: prof.term_addr,
                                to: to_addr,
                            },
                            prof.sticky,
                        );
                    }
                    for kind in EventKind::ALL {
                        counts[kind.index()] += kind.increment(instr, instr_taken, icyc);
                    }
                    for c in ctrs.iter_mut() {
                        // 1. Let a pending sample resolve on this instruction.
                        match &mut c.pending {
                            Some(Pending::Skid { remaining }) => {
                                let capture = *remaining == 0
                                    || (i == 0
                                        && entered_taken
                                        && pmu.skid.branch_target_captures(&mut rng))
                                    || pmu.skid.shadow_captures(prev_long, &mut rng);
                                if capture {
                                    emit_sample(
                                        &mut out,
                                        c,
                                        prof.instr_addrs[i],
                                        prof.ring,
                                        self.tid,
                                        &ring,
                                        min_gap_cycles,
                                        pmu.pmi_cost_cycles,
                                        &mut rng,
                                    );
                                } else {
                                    *remaining -= 1;
                                }
                            }
                            Some(Pending::LbrDelay { remaining }) if instr_taken => {
                                if *remaining == 0 {
                                    emit_sample(
                                        &mut out,
                                        c,
                                        prof.term_addr,
                                        prof.ring,
                                        self.tid,
                                        &ring,
                                        min_gap_cycles,
                                        pmu.pmi_cost_cycles,
                                        &mut rng,
                                    );
                                } else {
                                    *remaining -= 1;
                                }
                            }
                            Some(Pending::LbrDelay { .. }) => {}
                            None => {}
                        }
                        // 2. Advance the counter and arm on overflow.
                        let inc = c.event.kind.increment(instr, instr_taken, icyc);
                        c.value += inc;
                        if inc > 0 && c.value >= c.period {
                            c.value -= c.period;
                            if c.pending.is_none() {
                                c.pending = Some(match c.event.kind {
                                    EventKind::InstRetired => Pending::Skid {
                                        remaining: pmu.skid.draw(c.event.precise, &mut rng),
                                    },
                                    EventKind::BrInstRetiredNearTaken
                                    | EventKind::BrInstRetiredAll => Pending::LbrDelay {
                                        remaining: rng.random_range(0..=2),
                                    },
                                    // Other events: PMI attributed right here.
                                    _ => {
                                        emit_sample(
                                            &mut out,
                                            c,
                                            prof.instr_addrs[i],
                                            prof.ring,
                                            self.tid,
                                            &ring,
                                            min_gap_cycles,
                                            pmu.pmi_cost_cycles,
                                            &mut rng,
                                        );
                                        continue;
                                    }
                                });
                            }
                        }
                    }
                    prev_long = prof.long_lat[i];
                }
            }
            entered_taken = taken;
            cur = next;
        }
        out.end = walker.end();

        if self.system.cstates {
            // Wakeup latency noise: up to 0.4% extra wall time.
            let noise = (out.cycles as f64 * 0.004 * rng.random::<f64>()) as u64;
            out.cycles += noise;
        }
        for (kind, total) in EventKind::ALL.iter().zip(counts) {
            out.counts.add(*kind, total);
        }
        Ok(out)
    }

    /// Run without any sampling (a "clean" run for baseline timing).
    ///
    /// # Errors
    ///
    /// Propagates [`PmuError`] (cannot occur with the empty configuration).
    pub fn run_clean<O: ExecutionOracle>(
        &self,
        program: &Program,
        layout: &Layout,
        oracle: O,
    ) -> Result<RunResult, PmuError> {
        self.run(program, layout, oracle, &PmuConfig::counting_only())
    }
}

/// Everything one simulated run produces.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Recorded samples, in time order.
    pub samples: Vec<SampleRecord>,
    /// Whole-run event totals (counting mode; the PMU cross-check).
    pub counts: EventCounts,
    /// Core cycles of the workload itself.
    pub cycles: u64,
    /// Extra cycles spent in PMI handlers (collection overhead).
    pub overhead_cycles: u64,
    /// Retired instructions.
    pub instructions: u64,
    /// Retired taken branches.
    pub taken_branches: u64,
    /// Executed basic blocks.
    pub blocks_executed: u64,
    /// Samples dropped by the rate throttle.
    pub throttled: u64,
    /// Effective frequency of this run (GHz; wanders when turbo is on).
    pub freq_ghz: f64,
    /// How execution ended.
    pub end: WalkEnd,
}

impl RunResult {
    /// Wall-clock seconds of the *uninstrumented* workload.
    pub fn clean_seconds(&self) -> f64 {
        self.cycles as f64 / (self.freq_ghz * 1e9)
    }

    /// Wall-clock seconds including collection overhead.
    pub fn wall_seconds(&self) -> f64 {
        (self.cycles + self.overhead_cycles) as f64 / (self.freq_ghz * 1e9)
    }

    /// Collection overhead as a fraction of clean runtime.
    pub fn overhead_fraction(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.overhead_cycles as f64 / self.cycles as f64
        }
    }

    /// Samples produced by counter `index`.
    pub fn samples_for(&self, index: u8) -> impl Iterator<Item = &SampleRecord> {
        self.samples.iter().filter(move |s| s.counter == index)
    }
}

#[derive(Debug, Clone)]
enum Pending {
    Skid { remaining: u32 },
    LbrDelay { remaining: u32 },
}

#[derive(Debug)]
struct CtrState {
    index: u8,
    event: crate::EventSpec,
    kind_idx: usize,
    period: u64,
    collect_lbr: bool,
    value: u64,
    pending: Option<Pending>,
    last_sample_cycles: Option<u64>,
}

impl CtrState {
    /// Largest possible increment this block (fast-path guard).
    fn max_increment(&self, prof: &Prof) -> u64 {
        match EventKind::ALL[self.kind_idx] {
            EventKind::InstRetired => prof.len as u64,
            EventKind::CpuClkUnhalted => prof.cycles,
            EventKind::BrInstRetiredNearTaken | EventKind::BrInstRetiredAll => 1,
            _ => prof.incr[self.kind_idx],
        }
    }

    /// Exact whole-block increment on the fast path.
    fn block_increment(&self, prof: &Prof, taken: bool) -> u64 {
        match EventKind::ALL[self.kind_idx] {
            EventKind::BrInstRetiredNearTaken => taken as u64,
            _ => prof.incr[self.kind_idx],
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn emit_sample(
    out: &mut RunResult,
    c: &mut CtrState,
    ip: u64,
    ring_level: Ring,
    tid: u32,
    lbr: &LbrRing,
    min_gap_cycles: Option<u64>,
    pmi_cost: u64,
    rng: &mut SmallRng,
) {
    c.pending = None;
    if let (Some(gap), Some(last)) = (min_gap_cycles, c.last_sample_cycles) {
        if out.cycles.saturating_sub(last) < gap {
            out.throttled += 1;
            return;
        }
    }
    c.last_sample_cycles = Some(out.cycles);
    out.overhead_cycles += pmi_cost;
    out.samples.push(SampleRecord {
        counter: c.index,
        event: c.event,
        ip,
        time_cycles: out.cycles,
        ring: ring_level,
        tid,
        lbr: c.collect_lbr.then(|| lbr.snapshot(rng)),
    });
}

/// Precomputed per-block execution profile.
struct Prof {
    start: u64,
    term_addr: u64,
    len: u32,
    cycles: u64,
    ring: Ring,
    term_kind: Option<BranchKind>,
    taken_target: Option<BlockId>,
    sticky: bool,
    last_long: bool,
    incr: [u64; N_EVENTS],
    instr_addrs: Vec<u64>,
    instr_cycles: Vec<u32>,
    long_lat: Vec<bool>,
}

fn build_profiles(program: &Program, layout: &Layout, latency: &LatencyModel) -> Vec<Prof> {
    let mut profs = Vec::with_capacity(program.block_count());
    for block in program.blocks() {
        let bid = block.id();
        let n = block.len();
        let mut instr_addrs = Vec::with_capacity(n);
        let mut instr_cycles = Vec::with_capacity(n);
        let mut long_lat = Vec::with_capacity(n);
        let mut incr = [0u64; N_EVENTS];
        let mut cycles = 0u64;
        let term_kind = block.last_instr().and_then(|i| i.branch_kind());
        for (i, instr) in block.instrs().iter().enumerate() {
            let icyc = latency.pipelined_cost(instr);
            instr_addrs.push(layout.instr_addr(bid, i));
            instr_cycles.push(icyc);
            long_lat.push(latency.is_long_latency(instr));
            cycles += icyc as u64;
            // Static increments: taken-ness resolved at runtime, so the
            // taken-branch event is excluded here. For the static table we
            // treat branches as not-taken.
            for kind in EventKind::ALL {
                if kind != EventKind::BrInstRetiredNearTaken {
                    incr[kind.index()] += kind.increment(instr, false, icyc as u64);
                }
            }
        }
        let taken_target = match block.terminator() {
            Terminator::Branch { taken, .. } => Some(taken),
            _ => None,
        };
        let term_addr = layout.terminator_addr(bid);
        let sticky =
            term_kind == Some(BranchKind::Conditional) && crate::lbr::is_sticky_branch(term_addr);
        profs.push(Prof {
            start: layout.block_start(bid),
            term_addr,
            len: n as u32,
            cycles,
            ring: program.ring_of_block(bid),
            term_kind,
            taken_target,
            sticky,
            last_long: long_lat.last().copied().unwrap_or(false),
            incr,
            instr_addrs,
            instr_cycles,
            long_lat,
        });
    }
    profs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CounterConfig, EventSpec};
    use hbbp_isa::instruction::build::*;
    use hbbp_isa::{Mnemonic, Reg};
    use hbbp_program::{ProgramBuilder, TripCountOracle};

    /// A simple loop program: entry -> loop (body_len instrs, `trips`
    /// iterations) -> exit.
    fn loop_program(body_len: usize) -> (Program, Layout, BlockId) {
        let mut b = ProgramBuilder::new("loop");
        let m = b.module("loop.bin", hbbp_program::Ring::User);
        let f = b.function(m, "main");
        let head = b.block(f);
        let exit = b.block(f);
        for i in 0..body_len {
            b.push(
                head,
                rr(Mnemonic::Add, Reg::gpr((i % 8) as u8), Reg::gpr(9)),
            );
        }
        b.terminate_branch(head, Mnemonic::Jnz, head, exit);
        b.terminate_exit(exit, bare(Mnemonic::Syscall));
        let mut p = b.build(f).unwrap();
        let layout = Layout::compute(&mut p).unwrap();
        (p, layout, head)
    }

    #[test]
    fn instruction_counts_are_exact() {
        let (p, layout, head) = loop_program(9);
        let cpu = Cpu::with_seed(1);
        let trips = 1000;
        let oracle = TripCountOracle::new(1).with_trips(head, trips);
        let r = cpu.run_clean(&p, &layout, oracle).unwrap();
        // head has 10 instrs (9 + Jnz), executed `trips` times; exit has 1.
        assert_eq!(r.instructions, trips * 10 + 1);
        assert_eq!(r.counts.get(EventKind::InstRetired), r.instructions);
        assert_eq!(r.taken_branches, trips - 1);
        assert_eq!(
            r.counts.get(EventKind::BrInstRetiredNearTaken),
            r.taken_branches
        );
        assert_eq!(r.counts.get(EventKind::BrInstRetiredAll), trips);
        assert_eq!(r.blocks_executed, trips + 1);
        assert_eq!(r.end, WalkEnd::Exited);
        assert!(r.samples.is_empty());
    }

    #[test]
    fn sampling_produces_expected_sample_count() {
        let (p, layout, head) = loop_program(9);
        let cpu = Cpu::with_seed(2);
        let trips = 100_000;
        let oracle = TripCountOracle::new(1).with_trips(head, trips);
        let period = 1009;
        let pmu = PmuConfig {
            counters: vec![CounterConfig::new(
                EventSpec::inst_retired_prec_dist(),
                period,
            )],
            max_sample_rate: None,
            ..PmuConfig::default()
        };
        let r = cpu.run(&p, &layout, oracle, &pmu).unwrap();
        let expected = r.instructions / period;
        let got = r.samples.len() as u64 + r.throttled;
        let diff = (expected as i64 - got as i64).abs();
        assert!(
            diff <= 2,
            "expected ≈{expected} samples, got {got} (skid tails can drop a couple)"
        );
    }

    #[test]
    fn fast_and_slow_paths_agree_on_counts() {
        // Same program: run once with no sampling (all fast path) and once
        // with period 1 (all slow path); event totals must be identical.
        let (p, layout, head) = loop_program(7);
        let cpu = Cpu::with_seed(3);
        let mk_oracle = || TripCountOracle::new(1).with_trips(head, 500);
        let clean = cpu.run_clean(&p, &layout, mk_oracle()).unwrap();
        let pmu = PmuConfig {
            counters: vec![CounterConfig::new(
                EventSpec::plain(EventKind::InstRetired),
                7, // frequent overflow → slow path dominates
            )],
            max_sample_rate: Some(10), // throttle hard so sample count is small
            ..PmuConfig::default()
        };
        let sampled = cpu.run(&p, &layout, mk_oracle(), &pmu).unwrap();
        assert_eq!(clean.instructions, sampled.instructions);
        assert_eq!(clean.cycles, sampled.cycles);
        for kind in EventKind::ALL {
            assert_eq!(
                clean.counts.get(kind),
                sampled.counts.get(kind),
                "{kind} differs between fast and slow paths"
            );
        }
    }

    #[test]
    fn lbr_samples_carry_stacks() {
        let (p, layout, head) = loop_program(5);
        let cpu = Cpu::with_seed(4);
        let oracle = TripCountOracle::new(1).with_trips(head, 50_000);
        let pmu = PmuConfig::hbbp_collector(5003, 701);
        let r = cpu.run(&p, &layout, oracle, &pmu).unwrap();
        let lbr_samples: Vec<_> = r.samples_for(1).collect();
        assert!(!lbr_samples.is_empty());
        for s in &lbr_samples {
            let stack = s.lbr.as_ref().expect("LBR collected");
            assert!(stack.len() <= pmu.lbr.stack_depth);
            assert!(!stack.is_empty());
            // All branches in this program come from the loop head.
            for e in stack {
                assert_eq!(e.from, layout.terminator_addr(head));
            }
        }
        // EBS samples also carry (to-be-discarded) stacks.
        let ebs: Vec<_> = r.samples_for(0).collect();
        assert!(!ebs.is_empty());
        assert!(ebs.iter().all(|s| s.lbr.is_some()));
    }

    #[test]
    fn identical_seeds_reproduce_runs() {
        let (p, layout, head) = loop_program(6);
        let pmu = PmuConfig::hbbp_collector(997, 199);
        let run = |seed| {
            let cpu = Cpu::with_seed(seed);
            let oracle = TripCountOracle::new(1).with_trips(head, 20_000);
            cpu.run(&p, &layout, oracle, &pmu).unwrap()
        };
        let a = run(7);
        let b = run(7);
        assert_eq!(a.samples, b.samples);
        assert_eq!(a.cycles, b.cycles);
        let c = run(8);
        assert_ne!(a.samples, c.samples, "different seed should perturb");
    }

    #[test]
    fn throttle_drops_samples() {
        let (p, layout, head) = loop_program(5);
        let cpu = Cpu::with_seed(5);
        let oracle = TripCountOracle::new(1).with_trips(head, 50_000);
        let pmu = PmuConfig {
            counters: vec![CounterConfig::new(EventSpec::inst_retired_prec_dist(), 503)],
            max_sample_rate: Some(1_000), // very low rate limit
            ..PmuConfig::default()
        };
        let r = cpu.run(&p, &layout, oracle, &pmu).unwrap();
        assert!(r.throttled > 0, "expected throttling");
    }

    #[test]
    fn overhead_scales_with_samples() {
        let (p, layout, head) = loop_program(9);
        let cpu = Cpu::with_seed(6);
        let mk = || TripCountOracle::new(1).with_trips(head, 100_000);
        let sparse = cpu
            .run(
                &p,
                &layout,
                mk(),
                &PmuConfig::hbbp_collector(100_003, 10_007),
            )
            .unwrap();
        let dense = cpu
            .run(&p, &layout, mk(), &PmuConfig::hbbp_collector(1_009, 211))
            .unwrap();
        assert!(dense.samples.len() > sparse.samples.len());
        assert!(dense.overhead_fraction() > sparse.overhead_fraction());
        assert!(sparse.wall_seconds() > sparse.clean_seconds());
    }

    #[test]
    fn turbo_wanders_frequency_and_nmi_steals_a_counter() {
        let (p, layout, head) = loop_program(4);
        let mut cpu = Cpu::with_seed(9);
        cpu.system.turbo = true;
        let oracle = TripCountOracle::new(1).with_trips(head, 100);
        let r = cpu.run_clean(&p, &layout, oracle).unwrap();
        assert!(r.freq_ghz > 2.4);

        cpu.system.nmi_watchdog = true;
        let mut pmu = PmuConfig::hbbp_collector(1000, 100);
        pmu.counters.push(CounterConfig::new(
            EventSpec::plain(EventKind::CpuClkUnhalted),
            100_000,
        ));
        pmu.counters.push(CounterConfig::new(
            EventSpec::plain(EventKind::FpCompOpsSse),
            100_000,
        ));
        let oracle = TripCountOracle::new(1).with_trips(head, 100);
        assert!(matches!(
            cpu.run(&p, &layout, oracle, &pmu),
            Err(PmuError::TooManyCounters { .. })
        ));
    }

    #[test]
    fn kernel_blocks_sampled_with_kernel_ring() {
        let mut b = ProgramBuilder::new("k");
        let km = b.module("prime.ko", hbbp_program::Ring::Kernel);
        let f = b.function(km, "hello_k");
        let head = b.block(f);
        let exit = b.block(f);
        for i in 0..6 {
            b.push(head, rr(Mnemonic::Add, Reg::gpr(i), Reg::gpr(7)));
        }
        b.terminate_branch(head, Mnemonic::Jnz, head, exit);
        b.terminate_exit(exit, bare(Mnemonic::Nop));
        let mut p = b.build(f).unwrap();
        let layout = Layout::compute(&mut p).unwrap();
        let cpu = Cpu::with_seed(10);
        let oracle = TripCountOracle::new(1).with_trips(head, 50_000);
        let pmu = PmuConfig::hbbp_collector(997, 199);
        let r = cpu.run(&p, &layout, oracle, &pmu).unwrap();
        assert!(!r.samples.is_empty());
        assert!(r.samples.iter().all(|s| s.ring == Ring::Kernel));
    }
}

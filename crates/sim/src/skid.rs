//! The EBS skid/shadow model.
//!
//! Paper §III.A: "'Skid' causes the reported IP to be different from the
//! code location that causes the counter overflow … 'Shadowing' causes
//! samples to disproportionately represent instructions following
//! long-latency instructions in the execution chain." Both artefacts are
//! modelled as a forward displacement of the sample IP along the *actual*
//! retirement stream:
//!
//! * a geometric base displacement (smaller for precise `PREC_DIST`
//!   events), which leaks samples out of short blocks — the error decays
//!   roughly like `skid / block_length`, which is what makes block length
//!   the decisive HBBP feature;
//! * a capture rule: while a sample is in flight, the instruction right
//!   after a long-latency instruction grabs it with high probability
//!   (the "shadow").

use rand::rngs::SmallRng;
use rand::Rng;

/// Parameters of the skid/shadow model.
#[derive(Debug, Clone, PartialEq)]
pub struct SkidModel {
    /// Mean displacement (instructions) for precise events.
    pub precise_mean: f64,
    /// Mean displacement for imprecise events.
    pub imprecise_mean: f64,
    /// Probability that an instruction in a long-latency shadow captures an
    /// in-flight sample.
    pub shadow_capture_prob: f64,
    /// Probability that a *branch target* (the first instruction executed
    /// after a taken branch) captures an in-flight sample. This is the
    /// "trap" the paper describes — "additional samples tend to pile up in
    /// the same code traps as before" (§III.A): PMIs prefer to land on the
    /// instruction boundary right after a control transfer, systematically
    /// inflating branch-target blocks and starving fallthrough blocks.
    pub branch_target_capture_prob: f64,
    /// Hard cap on drawn displacement.
    pub max_skid: u32,
}

impl Default for SkidModel {
    fn default() -> SkidModel {
        SkidModel {
            precise_mean: 2.2,
            imprecise_mean: 5.0,
            shadow_capture_prob: 0.85,
            branch_target_capture_prob: 0.65,
            max_skid: 14,
        }
    }
}

impl SkidModel {
    /// A model with no skid and no shadowing (ideal PMU, used in ablations).
    pub fn ideal() -> SkidModel {
        SkidModel {
            precise_mean: 0.0,
            imprecise_mean: 0.0,
            shadow_capture_prob: 0.0,
            branch_target_capture_prob: 0.0,
            max_skid: 0,
        }
    }

    /// Whether an in-flight sample is captured at a taken-branch target.
    pub fn branch_target_captures(&self, rng: &mut SmallRng) -> bool {
        self.branch_target_capture_prob > 0.0
            && rng.random::<f64>() < self.branch_target_capture_prob
    }

    /// Draw a displacement (in retired instructions) for one sample.
    pub fn draw(&self, precise: bool, rng: &mut SmallRng) -> u32 {
        let mean = if precise {
            self.precise_mean
        } else {
            self.imprecise_mean
        };
        if mean <= 0.0 || self.max_skid == 0 {
            return 0;
        }
        // Geometric distribution with the requested mean: p = 1/(mean+1).
        let p = 1.0 / (mean + 1.0);
        let u: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
        let k = (u.ln() / (1.0 - p).ln()).floor();
        (k as u32).min(self.max_skid)
    }

    /// Whether an in-flight sample is captured by an instruction sitting in
    /// the shadow of a long-latency predecessor.
    pub fn shadow_captures(&self, prev_was_long: bool, rng: &mut SmallRng) -> bool {
        prev_was_long
            && self.shadow_capture_prob > 0.0
            && rng.random::<f64>() < self.shadow_capture_prob
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn ideal_model_never_skids() {
        let m = SkidModel::ideal();
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(m.draw(true, &mut rng), 0);
            assert_eq!(m.draw(false, &mut rng), 0);
            assert!(!m.shadow_captures(true, &mut rng));
        }
    }

    #[test]
    fn precise_skid_is_smaller_on_average() {
        let m = SkidModel::default();
        let mut rng = SmallRng::seed_from_u64(42);
        let n = 20_000;
        let mut sum_p = 0u64;
        let mut sum_i = 0u64;
        for _ in 0..n {
            sum_p += m.draw(true, &mut rng) as u64;
            sum_i += m.draw(false, &mut rng) as u64;
        }
        let mean_p = sum_p as f64 / n as f64;
        let mean_i = sum_i as f64 / n as f64;
        assert!(mean_p < mean_i, "precise {mean_p} !< imprecise {mean_i}");
        // Means should be in the ballpark of the configured values
        // (the cap trims the tail slightly).
        assert!((mean_p - m.precise_mean).abs() < 0.5, "mean_p={mean_p}");
        assert!((mean_i - m.imprecise_mean).abs() < 1.0, "mean_i={mean_i}");
    }

    #[test]
    fn skid_respects_cap() {
        let m = SkidModel {
            max_skid: 3,
            ..SkidModel::default()
        };
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            assert!(m.draw(false, &mut rng) <= 3);
        }
    }

    #[test]
    fn shadow_capture_requires_long_latency_predecessor() {
        let m = SkidModel::default();
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..100 {
            assert!(!m.shadow_captures(false, &mut rng));
        }
        let captures = (0..10_000)
            .filter(|_| m.shadow_captures(true, &mut rng))
            .count();
        let rate = captures as f64 / 10_000.0;
        assert!((rate - m.shadow_capture_prob).abs() < 0.03, "rate={rate}");
    }

    #[test]
    fn draws_are_deterministic_per_seed() {
        let m = SkidModel::default();
        let a: Vec<u32> = {
            let mut rng = SmallRng::seed_from_u64(9);
            (0..50).map(|_| m.draw(true, &mut rng)).collect()
        };
        let b: Vec<u32> = {
            let mut rng = SmallRng::seed_from_u64(9);
            (0..50).map(|_| m.draw(true, &mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}

//! # hbbp-sim — the simulated CPU and Performance Monitoring Unit
//!
//! The paper's measurements run on a physical Ivy Bridge Xeon; this crate
//! is that machine's stand-in. It executes [`hbbp_program::Program`]s
//! block-by-block with a coarse cycle model and implements the PMU
//! behaviours HBBP exists to correct for:
//!
//! * **EBS skid & shadowing** ([`SkidModel`]): sampled IPs are displaced
//!   forward along the retirement stream and pile up after long-latency
//!   instructions (§III.A of the paper);
//! * **LBR and its entry\[0\] bias** ([`LbrRing`], [`LbrQuirk`]): 16-entry
//!   source→target stacks whose oldest reported entry is disproportionately
//!   captured by "sticky" branches (§III.C);
//! * **event programming** ([`EventSpec`], libpfm4-style string parsing)
//!   with per-generation capability validation ([`PmuGeneration`],
//!   Table 2), counter limits, precise-event exclusivity, PMI cost
//!   accounting and sample-rate throttling ([`PmuConfig`]);
//! * **system stabilization** ([`SystemConfig`]): turbo, C-states and the
//!   NMI watchdog, which the paper disables for its experiments (§VII).
//!
//! Everything is deterministic per seed, so the collector and the
//! instrumentation ground truth observe the same execution.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod capabilities;
pub mod cpu;
pub mod event;
pub mod lbr;
pub mod pmu;
pub mod skid;

pub use capabilities::{capability_table, PmuGeneration, Support};
pub use cpu::{Cpu, RunResult, SystemConfig};
pub use event::{EventKind, EventSpec, ParseEventError};
pub use lbr::{
    is_sticky_branch, LbrConfig, LbrEntry, LbrQuirk, LbrRing, STICKY_ALIGN, STICKY_WINDOW,
};
pub use pmu::{CounterConfig, EventCounts, PmuConfig, PmuError, SampleRecord, MAX_COUNTERS};
pub use skid::SkidModel;

//! Instruction-specific PMU event support across processor generations.
//!
//! Table 2 of the paper documents the *decline* of instruction-specific
//! computational events on Intel server PMUs ("dictated by a general trend
//! of reducing PMU complexity", §II.B): Westmere could count most
//! instruction classes directly, Haswell almost none — which is precisely
//! why a general mechanism like HBBP is needed. The exact per-cell marks of
//! the table do not survive text extraction; this matrix encodes the
//! documented trend (monotone shrinkage, AVX absent before it existed) and
//! is what `experiments table2` prints.

use crate::EventKind;
use std::fmt;

/// A simulated PMU generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PmuGeneration {
    /// Westmere (2010).
    Westmere,
    /// Ivy Bridge (2013) — the paper's evaluation machine.
    IvyBridge,
    /// Haswell (2015).
    Haswell,
}

impl PmuGeneration {
    /// All generations in chronological order.
    pub const ALL: [PmuGeneration; 3] = [
        PmuGeneration::Westmere,
        PmuGeneration::IvyBridge,
        PmuGeneration::Haswell,
    ];

    /// Display name with year, as in Table 2's header.
    pub fn name(self) -> &'static str {
        match self {
            PmuGeneration::Westmere => "Westmere (2010)",
            PmuGeneration::IvyBridge => "Ivy Bridge (2013)",
            PmuGeneration::Haswell => "Haswell (2015)",
        }
    }

    /// Support status of an instruction-specific event on this generation.
    pub fn supports(self, event: EventKind) -> Support {
        use EventKind::*;
        use PmuGeneration::*;
        use Support::*;
        match (self, event) {
            // Architectural events are always available.
            (_, InstRetired) | (_, CpuClkUnhalted) => Supported,
            (_, BrInstRetiredNearTaken) | (_, BrInstRetiredAll) => Supported,
            // DIV busy cycles: present on Westmere/Ivy Bridge, gone on Haswell.
            (Westmere, ArithDivCycles) | (IvyBridge, ArithDivCycles) => Supported,
            (Haswell, ArithDivCycles) => Dropped,
            // Math SSE FP: counted until Haswell.
            (Westmere, FpCompOpsSse) | (IvyBridge, FpCompOpsSse) => Supported,
            (Haswell, FpCompOpsSse) => Dropped,
            // Math AVX FP: no AVX hardware on Westmere; counted on Ivy
            // Bridge; dropped on Haswell.
            (Westmere, SimdFpAvx) => NotApplicable,
            (IvyBridge, SimdFpAvx) => Supported,
            (Haswell, SimdFpAvx) => Dropped,
            // INT SIMD: Westmere only.
            (Westmere, SimdIntOps) => Supported,
            (IvyBridge, SimdIntOps) | (Haswell, SimdIntOps) => Dropped,
            // X87: Westmere and Ivy Bridge.
            (Westmere, X87Ops) | (IvyBridge, X87Ops) => Supported,
            (Haswell, X87Ops) => Dropped,
        }
    }

    /// Number of instruction-specific events this generation can count.
    pub fn instruction_specific_count(self) -> usize {
        EventKind::ALL
            .iter()
            .filter(|e| e.is_instruction_specific())
            .filter(|e| self.supports(**e) == Support::Supported)
            .count()
    }
}

impl fmt::Display for PmuGeneration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Support status of an event on a generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Support {
    /// The event exists and counts correctly.
    Supported,
    /// The event was removed from this generation's PMU.
    Dropped,
    /// The instruction class does not exist on this generation.
    NotApplicable,
}

impl Support {
    /// Table-cell mark, Table 2 style.
    pub fn mark(self) -> &'static str {
        match self {
            Support::Supported => "yes",
            Support::Dropped => "-",
            Support::NotApplicable => "N/A",
        }
    }
}

impl fmt::Display for Support {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mark())
    }
}

/// Render the Table 2 capability matrix as text.
pub fn capability_table() -> String {
    let rows: [(&str, EventKind); 5] = [
        ("DIV (cycles)", EventKind::ArithDivCycles),
        ("Math SSE FP", EventKind::FpCompOpsSse),
        ("Math AVX FP", EventKind::SimdFpAvx),
        ("INT SIMD", EventKind::SimdIntOps),
        ("X87", EventKind::X87Ops),
    ];
    let mut out = String::new();
    out.push_str(&format!(
        "{:<14} {:>16} {:>18} {:>15}\n",
        "", "Westmere (2010)", "Ivy Bridge (2013)", "Haswell (2015)"
    ));
    for (label, event) in rows {
        out.push_str(&format!(
            "{:<14} {:>16} {:>18} {:>15}\n",
            label,
            PmuGeneration::Westmere.supports(event),
            PmuGeneration::IvyBridge.supports(event),
            PmuGeneration::Haswell.supports(event),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn support_shrinks_monotonically() {
        // The documented trend: later generations support fewer
        // instruction-specific events.
        let w = PmuGeneration::Westmere.instruction_specific_count();
        let i = PmuGeneration::IvyBridge.instruction_specific_count();
        let h = PmuGeneration::Haswell.instruction_specific_count();
        assert!(w >= i, "Westmere {w} < IvyBridge {i}");
        assert!(i > h, "IvyBridge {i} <= Haswell {h}");
        assert_eq!(h, 0, "Haswell should have lost all of them");
    }

    #[test]
    fn avx_not_applicable_before_avx_existed() {
        assert_eq!(
            PmuGeneration::Westmere.supports(EventKind::SimdFpAvx),
            Support::NotApplicable
        );
        assert_eq!(
            PmuGeneration::IvyBridge.supports(EventKind::SimdFpAvx),
            Support::Supported
        );
    }

    #[test]
    fn architectural_events_always_supported() {
        for gen in PmuGeneration::ALL {
            assert_eq!(gen.supports(EventKind::InstRetired), Support::Supported);
            assert_eq!(
                gen.supports(EventKind::BrInstRetiredNearTaken),
                Support::Supported
            );
        }
    }

    #[test]
    fn table_renders_all_rows() {
        let t = capability_table();
        for label in [
            "DIV (cycles)",
            "Math SSE FP",
            "Math AVX FP",
            "INT SIMD",
            "X87",
        ] {
            assert!(t.contains(label), "missing row {label}");
        }
        assert!(t.contains("N/A"));
    }
}

//! The Last Branch Record facility, including the entry\[0\] bias quirk.
//!
//! Paper §III.B-C: the LBR is "a circular hardware buffer, continually
//! filled with executed branches"; a snapshot is "a stack of 16 entries",
//! each a source→target pair. The paper's key discovery is an anomaly:
//! "a particular branch occurring a disproportionate number of times (even
//! up to 50% of the time) in entry\[0\] of the LBR stack", whose stream
//! (`<Target[-1], Source[0]>` does not exist) must be dropped, distorting
//! BBECs.¹
//!
//! The quirk is modelled mechanistically: the hardware keeps a deeper
//! internal history than it reports; branches with a *sticky*
//! micro-architectural property (short backward conditional branches at
//! unlucky code alignments — a deterministic predicate over the laid-out
//! code, standing in for the real erratum) cause the reported 16-entry
//! window to align on them with configurable probability, which puts the
//! sticky branch in entry\[0\] (the oldest reported slot).
//!
//! ¹ The paper notes the anomaly was reported to the manufacturer and fixed
//! in later designs; [`LbrQuirk::disabled`] models those.

use rand::rngs::SmallRng;
use rand::Rng;

/// One LBR record: a taken branch's source and target addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LbrEntry {
    /// Address of the branch instruction.
    pub from: u64,
    /// Address execution landed on.
    pub to: u64,
}

/// Cache-line-ish granularity of the sticky-branch erratum.
pub const STICKY_ALIGN: u64 = 64;
/// Width of the unlucky alignment window within [`STICKY_ALIGN`].
pub const STICKY_WINDOW: u64 = 8;

/// The *sticky* micro-architectural predicate: conditional branches
/// sitting at an unlucky code alignment trigger the entry\[0\] capture
/// quirk. Deterministic over the laid-out code, standing in for the
/// physical erratum the paper reported to the manufacturer (§III.C
/// footnote).
pub fn is_sticky_branch(branch_addr: u64) -> bool {
    branch_addr % STICKY_ALIGN < STICKY_WINDOW
}

/// Parameters of the entry\[0\] bias quirk.
#[derive(Debug, Clone, PartialEq)]
pub struct LbrQuirk {
    /// Whether the quirk is active (Ivy Bridge-era hardware: yes).
    pub enabled: bool,
    /// Probability that a sticky branch in the eligible region captures
    /// entry\[0\] of a snapshot (the paper observed rates up to ~50%).
    pub entry0_prob: f64,
    /// How many positions before the default window the hardware may
    /// mis-align by.
    pub window_slack: usize,
    /// The erratum fires only when the sticky branch's record is about to
    /// age out of the internal buffer: at most this many occurrences in
    /// the ring. Tight loops (many fresh duplicates) are immune; long
    /// loop bodies are exposed.
    pub max_ring_occurrences: usize,
}

impl Default for LbrQuirk {
    fn default() -> LbrQuirk {
        LbrQuirk {
            enabled: true,
            entry0_prob: 0.6,
            window_slack: 15,
            max_ring_occurrences: 5,
        }
    }
}

impl LbrQuirk {
    /// Fixed hardware (post-erratum designs): no bias.
    pub fn disabled() -> LbrQuirk {
        LbrQuirk {
            enabled: false,
            ..LbrQuirk::default()
        }
    }
}

/// LBR configuration: reported depth plus the quirk model.
#[derive(Debug, Clone, PartialEq)]
pub struct LbrConfig {
    /// Entries per reported stack (16 on the paper's hardware; 8/32 in
    /// ablations).
    pub stack_depth: usize,
    /// The bias quirk.
    pub quirk: LbrQuirk,
}

impl Default for LbrConfig {
    fn default() -> LbrConfig {
        LbrConfig {
            stack_depth: 16,
            quirk: LbrQuirk::default(),
        }
    }
}

/// The in-flight LBR ring: deeper than the reported stack so the quirk can
/// mis-align the reported window.
#[derive(Debug, Clone)]
pub struct LbrRing {
    entries: Vec<(LbrEntry, bool)>, // (entry, sticky)
    head: usize,
    len: usize,
    capacity: usize,
    config: LbrConfig,
}

impl LbrRing {
    /// Create an empty ring for the given configuration.
    pub fn new(config: LbrConfig) -> LbrRing {
        let capacity = config.stack_depth + config.quirk.window_slack + 1;
        LbrRing {
            entries: vec![(LbrEntry { from: 0, to: 0 }, false); capacity],
            head: 0,
            len: 0,
            capacity,
            config,
        }
    }

    /// Record a retired taken branch.
    pub fn push(&mut self, entry: LbrEntry, sticky: bool) {
        self.entries[self.head] = (entry, sticky);
        self.head = (self.head + 1) % self.capacity;
        if self.len < self.capacity {
            self.len += 1;
        }
    }

    /// Number of branches currently recorded (saturates at capacity).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no branches have been recorded.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Entry at logical position `i` (0 = oldest retained).
    fn at(&self, i: usize) -> (LbrEntry, bool) {
        debug_assert!(i < self.len);
        let idx = (self.head + self.capacity - self.len + i) % self.capacity;
        self.entries[idx]
    }

    /// Take a snapshot as delivered by the PMI handler: up to
    /// `stack_depth` entries, **oldest first** (entry\[0\] = oldest), with
    /// the bias quirk applied.
    pub fn snapshot(&self, rng: &mut SmallRng) -> Vec<LbrEntry> {
        let depth = self.config.stack_depth;
        if self.len == 0 {
            return Vec::new();
        }
        let n = self.len;
        let reported = depth.min(n);
        // Default window: the newest `reported` entries.
        let mut start = n - reported;
        if self.config.quirk.enabled && n > reported {
            // Eligible region: up to `window_slack` positions older than the
            // default window start. A sticky branch grabs the window with
            // the configured probability — but only when its record is
            // about to age out of the internal buffer (≤ 2 occurrences):
            // branches that dominate the ring (tight loops) have fresh
            // duplicates and are unaffected, which is why the paper's
            // anomaly surfaces on long loop bodies.
            let oldest = start.saturating_sub(self.config.quirk.window_slack);
            for p in oldest..start {
                let (entry, sticky) = self.at(p);
                if !sticky {
                    continue;
                }
                let occurrences = (0..n).filter(|&i| self.at(i).0.from == entry.from).count();
                if occurrences <= self.config.quirk.max_ring_occurrences
                    && rng.random::<f64>() < self.config.quirk.entry0_prob
                {
                    start = p;
                    break;
                }
            }
        }
        (start..start + reported).map(|i| self.at(i).0).collect()
    }

    /// The configuration this ring was built with.
    pub fn config(&self) -> &LbrConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn entry(i: u64) -> LbrEntry {
        LbrEntry {
            from: 0x1000 + i * 0x10,
            to: 0x2000 + i * 0x10,
        }
    }

    #[test]
    fn snapshot_is_oldest_first_last_16() {
        let mut ring = LbrRing::new(LbrConfig {
            quirk: LbrQuirk::disabled(),
            ..LbrConfig::default()
        });
        for i in 0..40 {
            ring.push(entry(i), false);
        }
        let mut rng = SmallRng::seed_from_u64(0);
        let snap = ring.snapshot(&mut rng);
        assert_eq!(snap.len(), 16);
        // Newest entry is number 39; oldest reported is 24.
        assert_eq!(snap[0], entry(24));
        assert_eq!(snap[15], entry(39));
    }

    #[test]
    fn partial_ring_reports_what_exists() {
        let mut ring = LbrRing::new(LbrConfig::default());
        for i in 0..5 {
            ring.push(entry(i), false);
        }
        let mut rng = SmallRng::seed_from_u64(0);
        let snap = ring.snapshot(&mut rng);
        assert_eq!(snap.len(), 5);
        assert_eq!(snap[0], entry(0));
        assert_eq!(snap[4], entry(4));
    }

    #[test]
    fn empty_ring_snapshot_is_empty() {
        let ring = LbrRing::new(LbrConfig::default());
        let mut rng = SmallRng::seed_from_u64(0);
        assert!(ring.snapshot(&mut rng).is_empty());
        assert!(ring.is_empty());
    }

    #[test]
    fn sticky_branch_dominates_entry0() {
        // A long loop body of 24 distinct branches, one sticky: the sticky
        // record appears 1-2 times in the internal ring (about to age out),
        // which is the regime the erratum fires in. It should then occupy
        // entry[0] far more often than the fair share of 1/24.
        let config = LbrConfig::default();
        let mut ring = LbrRing::new(config);
        let mut rng = SmallRng::seed_from_u64(11);
        let sticky_id = 3u64;
        let mut entry0_sticky = 0;
        let rounds = 4000;
        for r in 0..rounds {
            // push one loop iteration (24 branches)
            for i in 0..24u64 {
                ring.push(entry(i), i == sticky_id);
            }
            if r < 3 {
                continue; // warm up
            }
            let snap = ring.snapshot(&mut rng);
            assert_eq!(snap.len(), 16);
            if snap[0] == entry(sticky_id) {
                entry0_sticky += 1;
            }
        }
        // With the default quirk (p=0.6, slack 15) the capture rate lands
        // near the quirk probability when the sticky branch sits in the
        // eligible region — the paper's "up to 50% of the time".
        let rate = entry0_sticky as f64 / (rounds - 3) as f64;
        assert!(
            rate > 0.30,
            "sticky entry0 rate {rate} too low for bias detection"
        );
        assert!(rate < 0.95, "sticky entry0 rate {rate} implausibly high");
    }

    #[test]
    fn tight_loop_sticky_branch_is_immune() {
        // In a 4-branch loop the sticky record has many fresh duplicates in
        // the ring, so the erratum does not fire and entry[0] occupancy
        // stays at its structural value.
        let mut ring = LbrRing::new(LbrConfig::default());
        let mut rng = SmallRng::seed_from_u64(13);
        let mut with_quirk = 0u32;
        let rounds = 2000;
        for r in 0..rounds {
            for i in 0..4u64 {
                ring.push(entry(i), i == 1);
            }
            if r < 8 {
                continue;
            }
            // Compare against a quirk-disabled ring fed identically.
            let snap = ring.snapshot(&mut rng);
            if snap[0] == entry(1) {
                with_quirk += 1;
            }
        }
        // 16 % 4 == 0 → the default window always starts at the same loop
        // position; the quirk must not perturb it.
        let rate = with_quirk as f64 / (rounds - 8) as f64;
        assert!(
            rate == 0.0 || rate == 1.0,
            "tight-loop entry0 must stay deterministic, got {rate}"
        );
    }

    #[test]
    fn no_quirk_no_bias() {
        let config = LbrConfig {
            quirk: LbrQuirk::disabled(),
            ..LbrConfig::default()
        };
        let mut ring = LbrRing::new(config);
        let mut rng = SmallRng::seed_from_u64(11);
        let mut entry0_sticky = 0;
        let rounds = 4000;
        for r in 0..rounds {
            for i in 0..8u64 {
                ring.push(entry(i), i == 3);
            }
            if r < 3 {
                continue;
            }
            let snap = ring.snapshot(&mut rng);
            if snap[0] == entry(3) {
                entry0_sticky += 1;
            }
        }
        // 16 % 8 == 0, so the default window always starts at the same loop
        // position; what matters is the rate differs hugely from the quirky
        // case only through alignment, never through stickiness. With 8
        // branches per iteration and depth 16, entry[0] is always the same
        // branch modulo alignment — make sure stickiness specifically did
        // not shift the window (the window start is deterministic).
        let rate = entry0_sticky as f64 / (rounds - 3) as f64;
        assert!(rate == 0.0 || rate == 1.0, "deterministic without quirk");
    }

    #[test]
    fn custom_depth_respected() {
        let mut ring = LbrRing::new(LbrConfig {
            stack_depth: 8,
            quirk: LbrQuirk::disabled(),
        });
        for i in 0..30 {
            ring.push(entry(i), false);
        }
        let mut rng = SmallRng::seed_from_u64(0);
        assert_eq!(ring.snapshot(&mut rng).len(), 8);
    }
}

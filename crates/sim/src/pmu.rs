//! PMU programming: counters, sampling configuration, sample records.

use crate::{EventKind, EventSpec, LbrConfig, LbrEntry, PmuGeneration, SkidModel, Support};
use hbbp_program::Ring;
use std::collections::BTreeMap;
use std::fmt;

/// Number of general-purpose counters per core (Ivy Bridge has 4 with
/// hyper-threading enabled).
pub const MAX_COUNTERS: usize = 4;

/// One programmed sampling counter.
#[derive(Debug, Clone, PartialEq)]
pub struct CounterConfig {
    /// Event to sample on.
    pub event: EventSpec,
    /// Sampling period (overflow threshold).
    pub period: u64,
    /// Capture LBR stacks with each sample (the paper runs *both* its
    /// collections in LBR mode, §V.A).
    pub collect_lbr: bool,
}

impl CounterConfig {
    /// Sample `event` every `period` occurrences, without LBR capture.
    pub fn new(event: EventSpec, period: u64) -> CounterConfig {
        CounterConfig {
            event,
            period,
            collect_lbr: false,
        }
    }

    /// Enable LBR capture on this counter.
    pub fn with_lbr(mut self) -> CounterConfig {
        self.collect_lbr = true;
        self
    }
}

/// Full PMU programming for a run.
#[derive(Debug, Clone, PartialEq)]
pub struct PmuConfig {
    /// Sampling counters (≤ [`MAX_COUNTERS`], ≤ 1 precise).
    pub counters: Vec<CounterConfig>,
    /// LBR facility configuration.
    pub lbr: LbrConfig,
    /// EBS skid/shadow model.
    pub skid: SkidModel,
    /// Per-counter sample-rate throttle (samples/second of simulated time),
    /// mirroring `perf_event_max_sample_rate`. The paper §VII.B: "we adjust
    /// the maximum sample rate of perf in order to avoid overloading the
    /// system with samples (throttling), which could generate incorrect
    /// results".
    pub max_sample_rate: Option<u64>,
    /// PMU generation (validates instruction-specific events, Table 2).
    pub generation: PmuGeneration,
    /// Cycle cost of one Performance Monitoring Interrupt (collection
    /// overhead accounting).
    pub pmi_cost_cycles: u64,
}

impl Default for PmuConfig {
    fn default() -> PmuConfig {
        PmuConfig {
            counters: Vec::new(),
            lbr: LbrConfig::default(),
            skid: SkidModel::default(),
            max_sample_rate: Some(100_000),
            generation: PmuGeneration::IvyBridge,
            pmi_cost_cycles: 2_400, // ~1 µs at 2.4 GHz
        }
    }
}

impl PmuConfig {
    /// No sampling at all (a "clean" run).
    pub fn counting_only() -> PmuConfig {
        PmuConfig::default()
    }

    /// The paper's HBBP collector setup (§V.A): two counters, both in LBR
    /// mode — `INST_RETIRED:PREC_DIST` (EBS source; stacks discarded at
    /// analysis) and `BR_INST_RETIRED:NEAR_TAKEN` (LBR source; eventing IP
    /// discarded at analysis).
    ///
    /// The throttle is lifted, mirroring §VII.B: "we adjust the maximum
    /// sample rate of perf in order to avoid overloading the system with
    /// samples (throttling), which could generate incorrect results".
    pub fn hbbp_collector(ebs_period: u64, lbr_period: u64) -> PmuConfig {
        PmuConfig {
            counters: vec![
                CounterConfig::new(EventSpec::inst_retired_prec_dist(), ebs_period).with_lbr(),
                CounterConfig::new(EventSpec::br_inst_retired_near_taken(), lbr_period).with_lbr(),
            ],
            max_sample_rate: None,
            ..PmuConfig::default()
        }
    }

    /// Validate counter constraints against the PMU model.
    ///
    /// # Errors
    ///
    /// * more than [`MAX_COUNTERS`] counters;
    /// * more than one precise counter (the paper: precise events "can only
    ///   be enabled on one of the available PMU counters");
    /// * a zero period;
    /// * an event the configured generation cannot count.
    pub fn validate(&self) -> Result<(), PmuError> {
        if self.counters.len() > MAX_COUNTERS {
            return Err(PmuError::TooManyCounters {
                requested: self.counters.len(),
            });
        }
        let precise = self.counters.iter().filter(|c| c.event.precise).count();
        if precise > 1 {
            return Err(PmuError::MultiplePrecise { requested: precise });
        }
        for c in &self.counters {
            if c.period == 0 {
                return Err(PmuError::ZeroPeriod { event: c.event });
            }
            if self.generation.supports(c.event.kind) != Support::Supported {
                return Err(PmuError::UnsupportedEvent {
                    event: c.event,
                    generation: self.generation,
                });
            }
        }
        Ok(())
    }
}

/// PMU programming errors.
#[derive(Debug, Clone, PartialEq)]
pub enum PmuError {
    /// More counters than the hardware has.
    TooManyCounters {
        /// Number of counters requested.
        requested: usize,
    },
    /// More than one precise event requested.
    MultiplePrecise {
        /// Number of precise counters requested.
        requested: usize,
    },
    /// A counter with period zero.
    ZeroPeriod {
        /// The offending event.
        event: EventSpec,
    },
    /// The generation cannot count this event (Table 2).
    UnsupportedEvent {
        /// The offending event.
        event: EventSpec,
        /// The PMU generation.
        generation: PmuGeneration,
    },
}

impl fmt::Display for PmuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PmuError::TooManyCounters { requested } => {
                write!(
                    f,
                    "requested {requested} counters, hardware has {MAX_COUNTERS}"
                )
            }
            PmuError::MultiplePrecise { requested } => {
                write!(
                    f,
                    "requested {requested} precise counters, hardware supports 1"
                )
            }
            PmuError::ZeroPeriod { event } => write!(f, "zero sampling period for {event}"),
            PmuError::UnsupportedEvent { event, generation } => {
                write!(f, "event {event} is not supported on {generation}")
            }
        }
    }
}

impl std::error::Error for PmuError {}

/// One recorded sample.
#[derive(Debug, Clone, PartialEq)]
pub struct SampleRecord {
    /// Index of the counter that fired.
    pub counter: u8,
    /// The sampled event.
    pub event: EventSpec,
    /// The eventing IP (skid-displaced for EBS-style events).
    pub ip: u64,
    /// Timestamp in core cycles.
    pub time_cycles: u64,
    /// Ring level at sample time.
    pub ring: Ring,
    /// Thread id.
    pub tid: u32,
    /// LBR stack (oldest first), if the counter collects LBR.
    pub lbr: Option<Vec<LbrEntry>>,
}

/// Whole-run event totals (PMU counting mode) — the cross-check facility
/// the paper uses to validate SDE and catch its x264ref bug (§VII.B,
/// footnote 2).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EventCounts {
    counts: BTreeMap<EventKind, u64>,
}

impl EventCounts {
    /// Empty counts.
    pub fn new() -> EventCounts {
        EventCounts::default()
    }

    /// Add to an event's total.
    pub fn add(&mut self, kind: EventKind, n: u64) {
        if n > 0 {
            *self.counts.entry(kind).or_insert(0) += n;
        }
    }

    /// Total for an event.
    pub fn get(&self, kind: EventKind) -> u64 {
        self.counts.get(&kind).copied().unwrap_or(0)
    }

    /// Iterate `(event, count)`.
    pub fn iter(&self) -> impl Iterator<Item = (EventKind, u64)> + '_ {
        self.counts.iter().map(|(&k, &v)| (k, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hbbp_collector_is_valid() {
        let cfg = PmuConfig::hbbp_collector(1_000_037, 100_003);
        cfg.validate().expect("valid");
        assert_eq!(cfg.counters.len(), 2);
        assert!(cfg.counters.iter().all(|c| c.collect_lbr));
        assert!(cfg.counters[0].event.precise);
        assert!(!cfg.counters[1].event.precise);
    }

    #[test]
    fn too_many_counters_rejected() {
        let mut cfg = PmuConfig::default();
        for _ in 0..5 {
            cfg.counters.push(CounterConfig::new(
                EventSpec::plain(EventKind::InstRetired),
                1000,
            ));
        }
        assert!(matches!(
            cfg.validate(),
            Err(PmuError::TooManyCounters { requested: 5 })
        ));
    }

    #[test]
    fn multiple_precise_rejected() {
        let mut cfg = PmuConfig::default();
        cfg.counters.push(CounterConfig::new(
            EventSpec::inst_retired_prec_dist(),
            1000,
        ));
        cfg.counters.push(CounterConfig::new(
            EventSpec::inst_retired_prec_dist(),
            2000,
        ));
        assert!(matches!(
            cfg.validate(),
            Err(PmuError::MultiplePrecise { requested: 2 })
        ));
    }

    #[test]
    fn zero_period_rejected() {
        let mut cfg = PmuConfig::default();
        cfg.counters.push(CounterConfig::new(
            EventSpec::plain(EventKind::InstRetired),
            0,
        ));
        assert!(matches!(cfg.validate(), Err(PmuError::ZeroPeriod { .. })));
    }

    #[test]
    fn haswell_rejects_instruction_specific_events() {
        let mut cfg = PmuConfig {
            generation: PmuGeneration::Haswell,
            ..PmuConfig::default()
        };
        cfg.counters.push(CounterConfig::new(
            EventSpec::plain(EventKind::FpCompOpsSse),
            1000,
        ));
        assert!(matches!(
            cfg.validate(),
            Err(PmuError::UnsupportedEvent { .. })
        ));
        // But Ivy Bridge accepts the same programming.
        let cfg = PmuConfig {
            counters: vec![CounterConfig::new(
                EventSpec::plain(EventKind::FpCompOpsSse),
                1000,
            )],
            ..PmuConfig::default()
        };
        cfg.validate().expect("ivy bridge supports SSE FP event");
    }

    #[test]
    fn event_counts_accumulate() {
        let mut c = EventCounts::new();
        c.add(EventKind::InstRetired, 10);
        c.add(EventKind::InstRetired, 5);
        c.add(EventKind::X87Ops, 0);
        assert_eq!(c.get(EventKind::InstRetired), 15);
        assert_eq!(c.get(EventKind::X87Ops), 0);
        assert_eq!(c.iter().count(), 1);
    }

    #[test]
    fn error_messages_nonempty() {
        let errs = [
            PmuError::TooManyCounters { requested: 9 },
            PmuError::MultiplePrecise { requested: 2 },
            PmuError::ZeroPeriod {
                event: EventSpec::inst_retired_prec_dist(),
            },
            PmuError::UnsupportedEvent {
                event: EventSpec::plain(EventKind::X87Ops),
                generation: PmuGeneration::Haswell,
            },
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }
}

//! Property tests for the CPU/PMU simulator: conservation laws that must
//! hold for any program, period and seed.

use hbbp_isa::instruction::build;
use hbbp_isa::{Mnemonic, Reg};
use hbbp_program::{Layout, Program, ProgramBuilder, Ring, TripCountOracle};
use hbbp_sim::{
    Cpu, EventKind, EventSpec, LbrConfig, LbrEntry, LbrQuirk, LbrRing, PmuConfig, SkidModel,
};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// A loop program parameterized by body length and loop structure.
fn loop_program(body: usize, extra_blocks: usize) -> (Program, Layout, Vec<hbbp_program::BlockId>) {
    let mut b = ProgramBuilder::new("prop");
    let m = b.module("prop.bin", Ring::User);
    let f = b.function(m, "main");
    let mut ids = Vec::new();
    let head = b.block(f);
    ids.push(head);
    for i in 0..body {
        b.push(
            head,
            build::rr(Mnemonic::Add, Reg::gpr((i % 8) as u8), Reg::gpr(9)),
        );
    }
    // A chain of extra blocks after the loop.
    let mut chain = Vec::new();
    for _ in 0..extra_blocks {
        chain.push(b.block(f));
    }
    let exit = b.block(f);
    b.terminate_branch(head, Mnemonic::Jnz, head, *chain.first().unwrap_or(&exit));
    for (i, &blk) in chain.iter().enumerate() {
        b.push(blk, build::rr(Mnemonic::Sub, Reg::gpr(1), Reg::gpr(2)));
        let next = chain.get(i + 1).copied().unwrap_or(exit);
        b.terminate_jump(blk, next);
        ids.push(blk);
    }
    b.terminate_exit(exit, build::bare(Mnemonic::Syscall));
    ids.push(exit);
    let mut p = b.build(f).unwrap();
    let layout = Layout::compute(&mut p).unwrap();
    (p, layout, ids)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Event totals are independent of sampling configuration: counting is
    /// exact no matter how often the slow path runs.
    #[test]
    fn counting_is_invariant_under_sampling(
        body in 1usize..24,
        extra in 0usize..4,
        trips in 1u64..2_000,
        period in 2u64..5_000,
        seed in 0u64..1_000,
    ) {
        let (p, layout, ids) = loop_program(body, extra);
        let head = ids[0];
        let cpu = Cpu::with_seed(seed);
        let clean = cpu
            .run_clean(&p, &layout, TripCountOracle::new(1).with_trips(head, trips))
            .unwrap();
        let pmu = PmuConfig::hbbp_collector(period, (period / 7).max(2));
        let sampled = cpu
            .run(&p, &layout, TripCountOracle::new(1).with_trips(head, trips), &pmu)
            .unwrap();
        prop_assert_eq!(clean.instructions, sampled.instructions);
        prop_assert_eq!(clean.cycles, sampled.cycles);
        prop_assert_eq!(clean.taken_branches, sampled.taken_branches);
        for kind in EventKind::ALL {
            prop_assert_eq!(clean.counts.get(kind), sampled.counts.get(kind));
        }
    }

    /// EBS sample counts track instructions/period (within skid-tail loss).
    #[test]
    fn sample_counts_track_period(
        body in 4usize..20,
        trips in 500u64..5_000,
        period in 50u64..2_000,
        seed in 0u64..100,
    ) {
        let (p, layout, ids) = loop_program(body, 0);
        let head = ids[0];
        let cpu = Cpu::with_seed(seed);
        let mut pmu = PmuConfig::hbbp_collector(period, u64::MAX / 2);
        pmu.max_sample_rate = None;
        let r = cpu
            .run(&p, &layout, TripCountOracle::new(1).with_trips(head, trips), &pmu)
            .unwrap();
        let expected = r.instructions / period;
        let got = r
            .samples
            .iter()
            .filter(|s| s.event == EventSpec::inst_retired_prec_dist())
            .count() as u64;
        // A couple of samples can be lost to in-flight skid at exit.
        prop_assert!(got <= expected + 1, "got {got} expected {expected}");
        prop_assert!(got + 3 >= expected, "got {got} expected {expected}");
    }

    /// Identical seeds give identical runs; sample IPs always fall inside
    /// the program's address space.
    #[test]
    fn determinism_and_ip_validity(
        body in 2usize..16,
        trips in 100u64..2_000,
        seed in 0u64..50,
    ) {
        let (p, layout, ids) = loop_program(body, 1);
        let head = ids[0];
        let pmu = PmuConfig::hbbp_collector(211, 31);
        let run = |s| {
            Cpu::with_seed(s)
                .run(&p, &layout, TripCountOracle::new(1).with_trips(head, trips), &pmu)
                .unwrap()
        };
        let a = run(seed);
        let b = run(seed);
        prop_assert_eq!(&a.samples, &b.samples);
        let (lo, hi) = layout.module_range(p.modules()[0].id());
        for s in &a.samples {
            prop_assert!(s.ip >= lo && s.ip < hi, "ip {:#x} outside module", s.ip);
            if let Some(stack) = &s.lbr {
                for e in stack {
                    prop_assert!(e.from >= lo && e.from < hi);
                    prop_assert!(e.to >= lo && e.to < hi);
                }
            }
        }
    }

    /// The LBR ring reports at most `depth` entries, oldest-first, and the
    /// reported window is always a contiguous run of the pushed sequence.
    #[test]
    fn lbr_snapshot_is_contiguous_window(
        pushes in 1usize..200,
        depth in 1usize..32,
        slack in 0usize..16,
        seed in 0u64..50,
        sticky_every in 1usize..12,
    ) {
        let config = LbrConfig {
            stack_depth: depth,
            quirk: LbrQuirk {
                enabled: true,
                entry0_prob: 0.5,
                window_slack: slack,
                max_ring_occurrences: 5,
            },
        };
        let mut ring = LbrRing::new(config);
        for i in 0..pushes {
            ring.push(
                LbrEntry {
                    from: 0x1000 + i as u64,
                    to: 0x2000 + i as u64,
                },
                i % sticky_every == 0,
            );
        }
        let mut rng = SmallRng::seed_from_u64(seed);
        let snap = ring.snapshot(&mut rng);
        prop_assert!(snap.len() <= depth);
        prop_assert!(!snap.is_empty());
        // Contiguity: consecutive `from` addresses differ by exactly 1.
        for w in snap.windows(2) {
            prop_assert_eq!(w[1].from, w[0].from + 1);
        }
        // The newest reported entry is never newer than the newest pushed.
        prop_assert!(snap.last().unwrap().from < 0x1000 + pushes as u64);
    }

    /// Skid draws respect the configured cap and ideal() never displaces.
    #[test]
    fn skid_bounds(mean in 0.0f64..8.0, cap in 0u32..20, seed in 0u64..50) {
        let model = SkidModel {
            precise_mean: mean,
            imprecise_mean: mean * 2.0,
            max_skid: cap,
            ..SkidModel::default()
        };
        let mut rng = SmallRng::seed_from_u64(seed);
        for _ in 0..200 {
            prop_assert!(model.draw(true, &mut rng) <= cap);
            prop_assert!(model.draw(false, &mut rng) <= cap);
        }
    }
}

//! Registry correctness under contention and codec properties.
//!
//! The hammer test pins the registry's one hard guarantee: relaxed
//! atomics lose nothing — once writers quiesce, snapshot totals are
//! exactly the sum of everything every thread did. The property tests
//! pin the snapshot wire codec (roundtrip, arbitrary values) and the
//! log2 bucket mapping.

use hbbp_obs::{
    bucket_index, bucket_upper_bound, Counter, Gauge, Histogram, Metrics, Snapshot, HIST_BUCKETS,
};
use proptest::prelude::*;

#[test]
fn concurrent_updates_are_never_lost() {
    const THREADS: u64 = 8;
    const ITERS: u64 = 10_000;
    let m = Metrics::new(4);
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let m = m.clone();
            scope.spawn(move || {
                for i in 0..ITERS {
                    m.inc(Counter::WorkerTicks);
                    m.add(Counter::DecoderRecords, 3);
                    m.gauge_inc(Gauge::WorkerConnections);
                    m.gauge_shard_inc(Gauge::WriterQueueDepth, (t % 4) as usize);
                    m.observe(Histogram::WriterBatchMessages, i % 600);
                    m.gauge_shard_dec(Gauge::WriterQueueDepth, (t % 4) as usize);
                    m.gauge_dec(Gauge::WorkerConnections);
                }
            });
        }
    });

    let total = THREADS * ITERS;
    assert_eq!(m.counter_value(Counter::WorkerTicks), total);
    assert_eq!(m.counter_value(Counter::DecoderRecords), 3 * total);
    let (current, high) = m.gauge_value(Gauge::WorkerConnections, 0);
    assert_eq!(current, 0, "balanced inc/dec settle to zero");
    assert!((1..=THREADS).contains(&high), "high water saw >= 1 thread");
    for shard in 0..4 {
        assert_eq!(m.gauge_value(Gauge::WriterQueueDepth, shard).0, 0);
    }
    let snap = m.snapshot();
    let h = snap.histogram("writer.batch_messages").expect("histogram");
    assert_eq!(h.count, total, "every observation counted");
    assert_eq!(
        h.sum,
        THREADS * (0..ITERS).map(|i| i % 600).sum::<u64>(),
        "observation sum is exact"
    );
    assert_eq!(
        h.buckets.iter().sum::<u64>(),
        total,
        "every observation landed in exactly one bucket"
    );
}

fn arb_name() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("worker.ticks".to_owned()),
        Just("writer.queue_depth".to_owned()),
        Just("a.completely-unknown metric".to_owned()),
        Just(String::new()),
    ]
}

fn arb_shard() -> impl Strategy<Value = Option<u32>> {
    prop_oneof![Just(None), (0u32..16).prop_map(Some)]
}

proptest! {
    #[test]
    fn snapshot_codec_roundtrips(
        counters in proptest::collection::vec((arb_name(), arb_shard(), any::<u64>()), 0..8),
        gauges in proptest::collection::vec(
            (arb_name(), arb_shard(), any::<u64>(), any::<u64>()), 0..8),
        histograms in proptest::collection::vec(
            (arb_name(), arb_shard(), any::<u64>(), any::<u64>(),
             proptest::collection::vec(any::<u64>(), 0..40)), 0..4),
    ) {
        let mut snap = Snapshot::default();
        for (name, shard, value) in counters {
            snap.counters.push(hbbp_obs::CounterSample { name, shard, value });
        }
        for (name, shard, current, high_water) in gauges {
            snap.gauges.push(hbbp_obs::GaugeSample { name, shard, current, high_water });
        }
        for (name, shard, count, sum, buckets) in histograms {
            snap.histograms.push(hbbp_obs::HistogramSample { name, shard, count, sum, buckets });
        }
        let decoded = Snapshot::decode(&snap.encode()).unwrap();
        prop_assert_eq!(decoded, snap);
    }

    #[test]
    fn every_value_lands_in_exactly_one_bucket(value in any::<u64>()) {
        let i = bucket_index(value);
        prop_assert!(i < HIST_BUCKETS);
        // The bucket's inclusive upper bound covers the value...
        if let Some(ub) = bucket_upper_bound(i) {
            prop_assert!(value <= ub);
        }
        // ...and the previous bucket's does not.
        if i > 0 {
            let below = bucket_upper_bound(i - 1).expect("bounded");
            prop_assert!(value > below);
        }
    }

    #[test]
    fn bucket_bounds_strictly_increase(i in 0usize..HIST_BUCKETS - 1) {
        if let (Some(a), Some(b)) = (bucket_upper_bound(i), bucket_upper_bound(i + 1)) {
            prop_assert!(a < b);
        }
        prop_assert_eq!(bucket_upper_bound(HIST_BUCKETS - 1), None);
    }

    #[test]
    fn truncations_never_panic_and_never_succeed(cut in 0usize..64) {
        let m = Metrics::new(2);
        m.inc(Counter::WorkerTicks);
        m.observe(Histogram::WriterCommitUs, 42);
        let bytes = m.snapshot().encode();
        if cut < bytes.len() {
            prop_assert!(Snapshot::decode(&bytes[..cut]).is_err());
        }
    }
}

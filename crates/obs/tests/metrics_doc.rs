//! Pins the generated catalog table of `docs/OBSERVABILITY.md` to the
//! `MetricSpec` catalog in `hbbp_obs` — the registry and its document
//! cannot drift apart. Same golden mechanism as `docs/PROTOCOL.md` and
//! `docs/CLI.md`. Re-bless the section with
//! `BLESS=1 cargo test -p hbbp-obs --test metrics_doc`.

use std::path::PathBuf;

const BEGIN: &str = "<!-- generated:metrics-catalog:begin -->";
const END: &str = "<!-- generated:metrics-catalog:end -->";

fn docs_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../docs/OBSERVABILITY.md")
}

#[test]
fn observability_md_catalog_matches_the_registry() {
    let path = docs_path();
    let on_disk = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing docs/OBSERVABILITY.md ({e})"));
    let begin = on_disk
        .find(BEGIN)
        .expect("docs/OBSERVABILITY.md lost its generated-section begin marker");
    let end = on_disk
        .find(END)
        .expect("docs/OBSERVABILITY.md lost its generated-section end marker");
    assert!(begin < end, "markers out of order");
    let expected = hbbp_obs::catalog_tables();

    if std::env::var("BLESS").is_ok_and(|v| !v.is_empty() && v != "0") {
        let mut blessed = String::new();
        blessed.push_str(&on_disk[..begin + BEGIN.len()]);
        blessed.push('\n');
        blessed.push_str(&expected);
        blessed.push_str(&on_disk[end..]);
        std::fs::write(&path, blessed).unwrap();
        return;
    }

    let section = &on_disk[begin + BEGIN.len()..end];
    assert_eq!(
        section.trim_start_matches('\n'),
        expected,
        "docs/OBSERVABILITY.md catalog drifted from the hbbp_obs MetricSpec catalog; \
         regenerate with BLESS=1 cargo test -p hbbp-obs --test metrics_doc"
    );
}

#[test]
fn observability_md_documents_every_metric_name() {
    let on_disk = std::fs::read_to_string(docs_path()).expect("docs/OBSERVABILITY.md");
    for c in hbbp_obs::COUNTERS {
        let name = c.spec().name;
        assert!(
            on_disk.contains(name),
            "docs/OBSERVABILITY.md must document counter {name}"
        );
    }
    for g in hbbp_obs::GAUGES {
        let name = g.spec().name;
        assert!(
            on_disk.contains(name),
            "docs/OBSERVABILITY.md must document gauge {name}"
        );
    }
    for h in hbbp_obs::HISTOGRAMS {
        let name = h.spec().name;
        assert!(
            on_disk.contains(name),
            "docs/OBSERVABILITY.md must document histogram {name}"
        );
    }
}

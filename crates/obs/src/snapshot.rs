//! Plain-data snapshots of the registry, their wire codec, and the
//! Prometheus exposition.
//!
//! A snapshot is **self-describing** on the wire — every sample carries
//! its name and kind — so a client can render metrics a newer daemon
//! grew without recompiling, and the encoding needs no schema
//! negotiation. All integers are little-endian, matching the rest of the
//! daemon protocol.

use crate::{bucket_upper_bound, spec_for_name};
use std::fmt;

/// One counter's sampled value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterSample {
    /// Dotted metric name.
    pub name: String,
    /// Shard index for per-shard instances.
    pub shard: Option<u32>,
    /// The monotonic count.
    pub value: u64,
}

/// One gauge instance's sampled value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GaugeSample {
    /// Dotted metric name.
    pub name: String,
    /// Shard index for per-shard instances.
    pub shard: Option<u32>,
    /// Current level.
    pub current: u64,
    /// Highest level ever observed.
    pub high_water: u64,
}

/// One histogram's sampled distribution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSample {
    /// Dotted metric name.
    pub name: String,
    /// Shard index for per-shard instances.
    pub shard: Option<u32>,
    /// Observations recorded.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Per-bucket observation counts (log2 buckets; see
    /// [`bucket_upper_bound`]).
    pub buckets: Vec<u64>,
}

impl HistogramSample {
    /// The mean observed value (0.0 for an empty histogram).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// An upper bound on the `q`-quantile (0.0 ..= 1.0): the inclusive
    /// upper edge of the bucket where the cumulative count crosses
    /// `q * count`. `None` for an empty histogram or when the quantile
    /// lands in the unbounded last bucket.
    pub fn quantile_upper_bound(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_upper_bound(i);
            }
        }
        None
    }
}

/// Everything the registry knew at one instant — the payload of the
/// daemon's `METRICS` reply, in catalog order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// All counters.
    pub counters: Vec<CounterSample>,
    /// All gauge instances (per-shard gauges expanded, ascending shard).
    pub gauges: Vec<GaugeSample>,
    /// All histograms.
    pub histograms: Vec<HistogramSample>,
}

/// A `METRICS` payload that did not decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotDecodeError(pub(crate) String);

impl fmt::Display for SnapshotDecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "metrics snapshot: {}", self.0)
    }
}

impl std::error::Error for SnapshotDecodeError {}

/// No-shard marker on the wire (`shard` is otherwise a shard index).
const NO_SHARD: u32 = u32::MAX;

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl Cursor<'_> {
    fn take(&mut self, n: usize, what: &str) -> Result<&[u8], SnapshotDecodeError> {
        if self.buf.len() - self.pos < n {
            return Err(SnapshotDecodeError(format!("{what} cut short")));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u32(&mut self, what: &str) -> Result<u32, SnapshotDecodeError> {
        Ok(u32::from_le_bytes(
            self.take(4, what)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self, what: &str) -> Result<u64, SnapshotDecodeError> {
        Ok(u64::from_le_bytes(
            self.take(8, what)?.try_into().expect("8 bytes"),
        ))
    }

    fn name(&mut self) -> Result<String, SnapshotDecodeError> {
        let len = u16::from_le_bytes(self.take(2, "name length")?.try_into().expect("2 bytes"));
        let bytes = self.take(len as usize, "name")?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| SnapshotDecodeError("metric name is not UTF-8".into()))
    }

    fn shard(&mut self) -> Result<Option<u32>, SnapshotDecodeError> {
        let raw = self.u32("shard")?;
        Ok((raw != NO_SHARD).then_some(raw))
    }
}

fn put_name(buf: &mut Vec<u8>, name: &str, shard: Option<u32>) {
    buf.extend_from_slice(&(name.len() as u16).to_le_bytes());
    buf.extend_from_slice(name.as_bytes());
    buf.extend_from_slice(&shard.unwrap_or(NO_SHARD).to_le_bytes());
}

impl Snapshot {
    /// Whether the snapshot carries no samples at all (a disabled
    /// registry encodes to this).
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// A counter's value by name (first match; `None` if absent).
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// A gauge instance by name and shard (`None` shard = global).
    pub fn gauge(&self, name: &str, shard: Option<u32>) -> Option<&GaugeSample> {
        self.gauges
            .iter()
            .find(|g| g.name == name && g.shard == shard)
    }

    /// A histogram by name (`None` if absent).
    pub fn histogram(&self, name: &str) -> Option<&HistogramSample> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// The distinct metric families present, sorted (a family is the
    /// name's leading `family.` component).
    pub fn families(&self) -> Vec<&str> {
        let mut out: Vec<&str> = self
            .counters
            .iter()
            .map(|c| c.name.as_str())
            .chain(self.gauges.iter().map(|g| g.name.as_str()))
            .chain(self.histograms.iter().map(|h| h.name.as_str()))
            .map(|n| n.split('.').next().unwrap_or(n))
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Encode for the wire (the `METRICS` reply payload).
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(self.counters.len() as u32).to_le_bytes());
        for c in &self.counters {
            put_name(&mut buf, &c.name, c.shard);
            buf.extend_from_slice(&c.value.to_le_bytes());
        }
        buf.extend_from_slice(&(self.gauges.len() as u32).to_le_bytes());
        for g in &self.gauges {
            put_name(&mut buf, &g.name, g.shard);
            buf.extend_from_slice(&g.current.to_le_bytes());
            buf.extend_from_slice(&g.high_water.to_le_bytes());
        }
        buf.extend_from_slice(&(self.histograms.len() as u32).to_le_bytes());
        for h in &self.histograms {
            put_name(&mut buf, &h.name, h.shard);
            buf.extend_from_slice(&h.count.to_le_bytes());
            buf.extend_from_slice(&h.sum.to_le_bytes());
            buf.extend_from_slice(&(h.buckets.len() as u32).to_le_bytes());
            for b in &h.buckets {
                buf.extend_from_slice(&b.to_le_bytes());
            }
        }
        buf
    }

    /// Decode a wire payload.
    ///
    /// # Errors
    ///
    /// [`SnapshotDecodeError`] on a truncated or malformed payload.
    pub fn decode(payload: &[u8]) -> Result<Snapshot, SnapshotDecodeError> {
        let mut cur = Cursor {
            buf: payload,
            pos: 0,
        };
        let mut snap = Snapshot::default();
        let n = cur.u32("counter count")?;
        for _ in 0..n {
            let name = cur.name()?;
            let shard = cur.shard()?;
            let value = cur.u64("counter value")?;
            snap.counters.push(CounterSample { name, shard, value });
        }
        let n = cur.u32("gauge count")?;
        for _ in 0..n {
            let name = cur.name()?;
            let shard = cur.shard()?;
            let current = cur.u64("gauge current")?;
            let high_water = cur.u64("gauge high water")?;
            snap.gauges.push(GaugeSample {
                name,
                shard,
                current,
                high_water,
            });
        }
        let n = cur.u32("histogram count")?;
        for _ in 0..n {
            let name = cur.name()?;
            let shard = cur.shard()?;
            let count = cur.u64("histogram count")?;
            let sum = cur.u64("histogram sum")?;
            let n_buckets = cur.u32("bucket count")?;
            if n_buckets > 4096 {
                return Err(SnapshotDecodeError(format!(
                    "histogram claims {n_buckets} buckets"
                )));
            }
            let mut buckets = Vec::with_capacity(n_buckets as usize);
            for _ in 0..n_buckets {
                buckets.push(cur.u64("bucket")?);
            }
            snap.histograms.push(HistogramSample {
                name,
                shard,
                count,
                sum,
                buckets,
            });
        }
        if cur.pos != payload.len() {
            return Err(SnapshotDecodeError(format!(
                "{} trailing bytes",
                payload.len() - cur.pos
            )));
        }
        Ok(snap)
    }

    /// Render as Prometheus text exposition format (version 0.0.4): name
    /// `hbbp_<family>_<metric>`, per-shard instances as `{shard="i"}`
    /// labels, histograms with cumulative `_bucket{le=...}` series.
    /// `# HELP` lines come from the catalog when the name is known.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut typed: Vec<String> = Vec::new();
        let mut head = |out: &mut String, name: &str, prom: &str, kind: &str| {
            if typed.iter().any(|t| t == prom) {
                return;
            }
            typed.push(prom.to_owned());
            if let Some(spec) = spec_for_name(name) {
                out.push_str(&format!("# HELP {prom} {}\n", spec.help));
            }
            out.push_str(&format!("# TYPE {prom} {kind}\n"));
        };
        for c in &self.counters {
            let prom = prom_name(&c.name);
            head(&mut out, &c.name, &prom, "counter");
            out.push_str(&format!("{prom}{} {}\n", label(c.shard), c.value));
        }
        for g in &self.gauges {
            let prom = prom_name(&g.name);
            head(&mut out, &g.name, &prom, "gauge");
            out.push_str(&format!("{prom}{} {}\n", label(g.shard), g.current));
        }
        for g in &self.gauges {
            let prom = format!("{}_high_water", prom_name(&g.name));
            head(&mut out, &g.name, &prom, "gauge");
            out.push_str(&format!("{prom}{} {}\n", label(g.shard), g.high_water));
        }
        for h in &self.histograms {
            let prom = prom_name(&h.name);
            head(&mut out, &h.name, &prom, "histogram");
            let mut cumulative = 0u64;
            for (i, n) in h.buckets.iter().enumerate() {
                cumulative += n;
                let le = match bucket_upper_bound(i) {
                    Some(ub) if i + 1 < h.buckets.len() => ub.to_string(),
                    _ => "+Inf".to_owned(),
                };
                out.push_str(&format!(
                    "{prom}_bucket{} {cumulative}\n",
                    label_with(h.shard, &[("le", &le)])
                ));
            }
            out.push_str(&format!("{prom}_sum{} {}\n", label(h.shard), h.sum));
            out.push_str(&format!("{prom}_count{} {}\n", label(h.shard), h.count));
        }
        out
    }
}

/// `family.metric-name` → `hbbp_family_metric_name`.
fn prom_name(name: &str) -> String {
    let mut out = String::from("hbbp_");
    for c in name.chars() {
        out.push(match c {
            '.' | '-' | ' ' => '_',
            c => c,
        });
    }
    out
}

fn label(shard: Option<u32>) -> String {
    label_with(shard, &[])
}

fn label_with(shard: Option<u32>, extra: &[(&str, &str)]) -> String {
    let mut pairs: Vec<String> = Vec::new();
    if let Some(s) = shard {
        pairs.push(format!("shard=\"{s}\""));
    }
    for (k, v) in extra {
        pairs.push(format!("{k}=\"{v}\""));
    }
    if pairs.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", pairs.join(","))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Counter, Gauge, Histogram, Metrics};

    fn sample() -> Snapshot {
        let m = Metrics::new(2);
        m.add(Counter::DecoderRecords, 1000);
        m.gauge_shard_inc(Gauge::WriterQueueDepth, 1);
        m.observe(Histogram::WriterCommitUs, 300);
        m.observe(Histogram::WriterCommitUs, 5);
        m.snapshot()
    }

    #[test]
    fn encode_decode_roundtrips() {
        let snap = sample();
        let decoded = Snapshot::decode(&snap.encode()).unwrap();
        assert_eq!(decoded, snap);
        assert!(Snapshot::default().is_empty());
        assert_eq!(
            Snapshot::decode(&Snapshot::default().encode()).unwrap(),
            Snapshot::default()
        );
    }

    #[test]
    fn truncated_and_trailing_payloads_are_rejected() {
        let bytes = sample().encode();
        assert!(Snapshot::decode(&bytes[..bytes.len() - 1]).is_err());
        let mut longer = bytes.clone();
        longer.push(0);
        let err = Snapshot::decode(&longer).unwrap_err();
        assert!(err.to_string().contains("trailing"));
        assert!(Snapshot::decode(&[7]).is_err());
    }

    #[test]
    fn lookups_and_families() {
        let snap = sample();
        assert_eq!(snap.counter("decoder.records"), Some(1000));
        assert_eq!(snap.counter("no.such"), None);
        let g = snap.gauge("writer.queue_depth", Some(1)).unwrap();
        assert_eq!((g.current, g.high_water), (1, 1));
        let h = snap.histogram("writer.commit_us").unwrap();
        assert_eq!((h.count, h.sum), (2, 305));
        assert_eq!(
            snap.families(),
            ["acceptor", "analyzer", "decoder", "worker", "writer"]
        );
    }

    #[test]
    fn quantile_upper_bounds_bracket_observations() {
        let h = sample().histogram("writer.commit_us").unwrap().clone();
        // Observations 5 and 300: p50 lands in 5's bucket [4,8),
        // p99 in 300's bucket [256,512).
        assert_eq!(h.quantile_upper_bound(0.5), Some(7));
        assert_eq!(h.quantile_upper_bound(0.99), Some(511));
        assert_eq!(h.mean(), 152.5);
        let empty = HistogramSample {
            name: "x.y".into(),
            shard: None,
            count: 0,
            sum: 0,
            buckets: vec![0; 4],
        };
        assert_eq!(empty.quantile_upper_bound(0.5), None);
    }

    #[test]
    fn prometheus_exposition_shape() {
        let text = sample().to_prometheus();
        assert!(text.contains("# TYPE hbbp_decoder_records counter"));
        assert!(text.contains("hbbp_decoder_records 1000"));
        assert!(text.contains("# HELP hbbp_decoder_records "));
        assert!(text.contains("hbbp_writer_queue_depth{shard=\"1\"} 1"));
        assert!(text.contains("hbbp_writer_queue_depth_high_water{shard=\"0\"} 0"));
        assert!(text.contains("# TYPE hbbp_writer_commit_us histogram"));
        assert!(text.contains("hbbp_writer_commit_us_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("hbbp_writer_commit_us_sum 305"));
        assert!(text.contains("hbbp_writer_commit_us_count 2"));
        // Cumulative buckets never decrease.
        let mut last = 0u64;
        for line in text
            .lines()
            .filter(|l| l.starts_with("hbbp_writer_commit_us_bucket"))
        {
            let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= last);
            last = v;
        }
    }
}

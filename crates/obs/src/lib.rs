//! # hbbp-obs — self-observability for the serving stack
//!
//! The source paper's pitch is *low-overhead* profiling; this crate is
//! how the reproduction holds itself to the same standard. It provides a
//! **lock-free metrics registry** — atomic counters, gauges with
//! high-water tracking, and fixed-bucket log2 histograms — that `hbbpd`
//! threads through its acceptor, poll-loop workers, shard writers and
//! the streaming hot path, so the daemon's own cost under fleet load is
//! continuously measurable (and pinned by the `instrumentation_overhead`
//! block of `BENCH_store.json`).
//!
//! Design rules, in order:
//!
//! * **No locks on the hot path.** Every update is a single relaxed
//!   atomic RMW; a snapshot is a relaxed read sweep. Totals observed by
//!   a quiesced snapshot are exact (pinned by the concurrency suite).
//! * **One cache line per metric.** Counter and gauge cells are
//!   64-byte-aligned so two hot metrics never false-share; a histogram's
//!   buckets are contiguous lines of their own.
//! * **Cheap to not use.** A [`Metrics`] handle is either a registry or
//!   a no-op (one predicted branch per update) — the overhead bench
//!   ingests through both and pins the difference.
//! * **Hot loops batch.** Per-record costs (decoder, analyzer) are never
//!   paid per record: the existing local counters on
//!   `StreamDecoder`/`OnlineAnalyzer` are harvested into the registry
//!   once per stream, and the worker flushes its tick counters
//!   periodically.
//!
//! The metric catalog ([`Counter`], [`Gauge`], [`Histogram`], each with
//! a [`MetricSpec`]) is the single source of truth behind the registry
//! layout, the rendered snapshot, the Prometheus exposition, and the
//! table in `docs/OBSERVABILITY.md` (golden-pinned by
//! `tests/metrics_doc.rs`). Snapshots travel the daemon wire protocol
//! self-describing ([`Snapshot::encode`]/[`Snapshot::decode`]), so a
//! client renders metrics a newer daemon grew without recompiling.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod endpoint;
mod registry;
mod snapshot;

pub use endpoint::serve_text_endpoint;
pub use registry::Metrics;
pub use snapshot::{CounterSample, GaugeSample, HistogramSample, Snapshot, SnapshotDecodeError};

/// What kind of instrument a metric is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically increasing event count.
    Counter,
    /// A level with a high-water mark (current value + maximum ever).
    Gauge,
    /// A log2-bucketed value distribution with count and sum.
    Histogram,
}

impl MetricKind {
    /// The kind name as printed in docs and text renderings.
    pub fn name(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// One catalog entry: everything the registry, the renderers and the
/// documentation need to know about a metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetricSpec {
    /// Dotted metric name (`family.metric`), stable on the wire.
    pub name: &'static str,
    /// Counter, gauge or histogram.
    pub kind: MetricKind,
    /// Value unit (empty for plain event counts).
    pub unit: &'static str,
    /// `true` for metrics with one instance per store shard.
    pub per_shard: bool,
    /// One-line description (docs table, Prometheus `# HELP`).
    pub help: &'static str,
}

impl MetricSpec {
    /// The metric family — the name's leading `family.` component.
    pub fn family(&self) -> &'static str {
        self.name.split('.').next().unwrap_or(self.name)
    }
}

macro_rules! catalog {
    ($enum_name:ident, $kind:expr, $all:ident;
     $($variant:ident => { $name:literal, $unit:literal, $per_shard:literal, $help:literal }),+ $(,)?) => {
        /// Catalog index of one registry metric (see [`MetricSpec`]).
        #[derive(Debug, Clone, Copy, PartialEq, Eq)]
        #[repr(usize)]
        #[allow(missing_docs)] // each variant is documented by its spec
        pub enum $enum_name {
            $($variant,)+
        }

        /// Every metric of this kind, in catalog (and snapshot) order.
        pub const $all: &[$enum_name] = &[$($enum_name::$variant,)+];

        impl $enum_name {
            /// The metric's catalog entry.
            pub fn spec(self) -> MetricSpec {
                match self {
                    $($enum_name::$variant => MetricSpec {
                        name: $name,
                        kind: $kind,
                        unit: $unit,
                        per_shard: $per_shard,
                        help: $help,
                    },)+
                }
            }

            pub(crate) fn index(self) -> usize {
                self as usize
            }
        }
    };
}

catalog!(Counter, MetricKind::Counter, COUNTERS;
    AcceptorAccepts => { "acceptor.accepts", "connections", false,
        "connections handed to the worker pool by the accept loop" },
    AcceptorBacklogRearms => { "acceptor.backlog_rearms", "", false,
        "listen(2) re-arms widening the accept backlog past std's 128" },
    WorkerTicks => { "worker.ticks", "", false,
        "poll-loop passes across all workers" },
    WorkerConnTicks => { "worker.conn_ticks", "", false,
        "per-connection state-machine steps across all workers" },
    WorkerSleeps => { "worker.sleeps", "", false,
        "idle sleeps taken after a tick with no progress" },
    WorkerReadBudgetExhausted => { "worker.read_budget_exhausted", "", false,
        "read passes cut off by the per-tick fairness budget" },
    WorkerParks => { "worker.parks", "", false,
        "connections that stopped reading under shard-queue backpressure" },
    WorkerUnparks => { "worker.unparks", "", false,
        "parked connections that resumed reading after their queue drained" },
    WriterCountsAppended => { "writer.counts_appended", "frames", false,
        "COUNTS frames appended by the shard writers this process" },
    WriterWindowsAppended => { "writer.windows_appended", "frames", false,
        "WINDOW timeline frames appended by the shard writers this process" },
    WriterBytesCommitted => { "writer.bytes_committed", "bytes", false,
        "segment-log bytes made durable by group commits" },
    WriterCommits => { "writer.commits", "", false,
        "group commits executed across all shard writers" },
    DecoderRecords => { "decoder.records", "records", false,
        "perf records decoded from ingest streams" },
    DecoderCompactions => { "decoder.compactions", "", false,
        "stream-buffer compactions (consumed prefix reclaimed)" },
    DecoderResyncBytes => { "decoder.resync_bytes", "bytes", false,
        "bytes scanned past while resynchronizing after corruption" },
    DecoderCorruptSkipped => { "decoder.corrupt_skipped", "frames", false,
        "corrupt frames skipped by resilient decoding" },
    DecoderUnknownSkipped => { "decoder.unknown_skipped", "frames", false,
        "unknown-type frames skipped (forward compatibility)" },
    AnalyzerWindowCloses => { "analyzer.window_closes", "windows", false,
        "timeline windows closed by the online analyzers" },
    AnalyzerPoolHits => { "analyzer.pool_hits", "", false,
        "LBR stack buffers recycled from the analyzer pool" },
    AnalyzerPoolMisses => { "analyzer.pool_misses", "", false,
        "LBR stack buffers freshly allocated (pool empty)" },
);

catalog!(Gauge, MetricKind::Gauge, GAUGES;
    WorkerConnections => { "worker.connections", "connections", false,
        "connections currently multiplexed across the worker pool" },
    WorkerParkedConnections => { "worker.parked_connections", "connections", false,
        "connections currently parked (reads deprioritized) under backpressure" },
    WriterQueueDepth => { "writer.queue_depth", "messages", true,
        "messages queued to this shard's writer (bounded; full = backpressure)" },
);

catalog!(Histogram, MetricKind::Histogram, HISTOGRAMS;
    WorkerTickScanUs => { "worker.tick_scan_us", "us", false,
        "microseconds a worker spent scanning live connections (sampled 1 tick in 64)" },
    WriterBatchMessages => { "writer.batch_messages", "messages", false,
        "queue messages folded into one group commit" },
    WriterCommitUs => { "writer.commit_us", "us", false,
        "microseconds per group commit (segment-log write)" },
);

/// Number of log2 histogram buckets. Bucket `0` holds the value `0`;
/// bucket `i` holds `[2^(i-1), 2^i)`; the last bucket absorbs everything
/// at or above `2^(HIST_BUCKETS-2)`.
pub const HIST_BUCKETS: usize = 32;

/// The bucket index a value lands in (see [`HIST_BUCKETS`]).
pub fn bucket_index(value: u64) -> usize {
    ((64 - value.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
}

/// The inclusive upper bound of bucket `i` (`None` for the unbounded
/// last bucket) — the `le` edge of the Prometheus exposition.
pub fn bucket_upper_bound(i: usize) -> Option<u64> {
    if i + 1 >= HIST_BUCKETS {
        None
    } else if i == 0 {
        Some(0)
    } else {
        Some((1u64 << i) - 1)
    }
}

/// Look up a catalog entry by its dotted name (any kind).
pub fn spec_for_name(name: &str) -> Option<MetricSpec> {
    COUNTERS
        .iter()
        .map(|c| c.spec())
        .chain(GAUGES.iter().map(|g| g.spec()))
        .chain(HISTOGRAMS.iter().map(|h| h.spec()))
        .find(|s| s.name == name)
}

/// The metric-catalog table of `docs/OBSERVABILITY.md`, as markdown —
/// generated from the same [`MetricSpec`] catalog the registry is built
/// from, and pinned against the document by `tests/metrics_doc.rs`.
pub fn catalog_tables() -> String {
    let mut out = String::new();
    out.push_str("| metric | kind | unit | per shard | description |\n");
    out.push_str("|---|---|---|---|---|\n");
    let specs = COUNTERS
        .iter()
        .map(|c| c.spec())
        .chain(GAUGES.iter().map(|g| g.spec()))
        .chain(HISTOGRAMS.iter().map(|h| h.spec()));
    for s in specs {
        out.push_str(&format!(
            "| `{}` | {} | {} | {} | {} |\n",
            s.name,
            s.kind.name(),
            if s.unit.is_empty() { "-" } else { s.unit },
            if s.per_shard { "yes" } else { "no" },
            s.help
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_names_are_unique_dotted_and_indexed() {
        let mut names: Vec<&str> = Vec::new();
        for (i, c) in COUNTERS.iter().enumerate() {
            assert_eq!(c.index(), i);
            names.push(c.spec().name);
        }
        for (i, g) in GAUGES.iter().enumerate() {
            assert_eq!(g.index(), i);
            names.push(g.spec().name);
        }
        for (i, h) in HISTOGRAMS.iter().enumerate() {
            assert_eq!(h.index(), i);
            names.push(h.spec().name);
        }
        let n = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), n, "metric names must be unique");
        for name in names {
            assert!(name.contains('.'), "{name} must be family.metric");
            assert!(spec_for_name(name).is_some());
        }
    }

    #[test]
    fn bucket_edges_partition_the_u64_range() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), HIST_BUCKETS - 1);
        // Every bounded bucket's upper edge lands in that bucket, and the
        // next value lands in the next bucket.
        for i in 0..HIST_BUCKETS {
            match bucket_upper_bound(i) {
                Some(ub) => {
                    assert_eq!(bucket_index(ub), i, "upper bound of bucket {i}");
                    assert_eq!(bucket_index(ub + 1), i + 1);
                }
                None => assert_eq!(i, HIST_BUCKETS - 1),
            }
        }
    }

    #[test]
    fn catalog_tables_cover_every_metric() {
        let tables = catalog_tables();
        for c in COUNTERS {
            assert!(tables.contains(c.spec().name));
        }
        for g in GAUGES {
            assert!(tables.contains(g.spec().name));
        }
        for h in HISTOGRAMS {
            assert!(tables.contains(h.spec().name));
        }
    }

    #[test]
    fn families_are_the_documented_set() {
        let mut families: Vec<&str> = COUNTERS
            .iter()
            .map(|c| c.spec().family())
            .chain(GAUGES.iter().map(|g| g.spec().family()))
            .chain(HISTOGRAMS.iter().map(|h| h.spec().family()))
            .collect();
        families.sort_unstable();
        families.dedup();
        assert_eq!(
            families,
            ["acceptor", "analyzer", "decoder", "worker", "writer"]
        );
    }
}

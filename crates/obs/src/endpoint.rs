//! The optional plain-TCP scrape endpoint behind `hbbp serve
//! --metrics-addr`.
//!
//! Deliberately not HTTP: the daemon writes one Prometheus text
//! exposition per accepted connection and closes, which `nc addr port`
//! or any line-oriented collector can consume. Keeping the listener off
//! the daemon's main port means scrapers never contend with ingest
//! connections for accept slots or worker ticks.

use crate::registry::Metrics;
use std::io::Write;
use std::net::TcpListener;
use std::thread::JoinHandle;

/// Serve the Prometheus text exposition on `listener`, one snapshot per
/// connection, until the process exits or the listener errors out.
///
/// Accept errors are retried (transient `EMFILE`-style failures should
/// not kill the scrape endpoint); per-connection write errors are
/// ignored — a scraper that hangs up early is its own problem. The
/// spawned thread holds only a [`Metrics`] handle, so it never blocks
/// daemon shutdown on anything but process exit.
pub fn serve_text_endpoint(listener: TcpListener, metrics: Metrics) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name("hbbp-metrics".into())
        .spawn(move || {
            let mut consecutive_errors = 0u32;
            loop {
                match listener.accept() {
                    Ok((mut conn, _peer)) => {
                        consecutive_errors = 0;
                        let body = metrics.snapshot().to_prometheus();
                        let _ = conn.write_all(body.as_bytes());
                        let _ = conn.flush();
                    }
                    Err(_) => {
                        consecutive_errors += 1;
                        if consecutive_errors > 64 {
                            return;
                        }
                        std::thread::sleep(std::time::Duration::from_millis(10));
                    }
                }
            }
        })
        .expect("spawn metrics endpoint thread")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Counter;
    use std::io::Read;
    use std::net::TcpStream;

    #[test]
    fn endpoint_serves_one_exposition_per_connection() {
        let metrics = Metrics::new(1);
        metrics.add(Counter::AcceptorAccepts, 3);
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let _handle = serve_text_endpoint(listener, metrics.clone());

        for round in 0..2 {
            let mut conn = TcpStream::connect(addr).unwrap();
            let mut body = String::new();
            conn.read_to_string(&mut body).unwrap();
            assert!(
                body.contains(&format!("hbbp_acceptor_accepts {}", 3 + round)),
                "round {round}: {body}"
            );
            metrics.inc(Counter::AcceptorAccepts);
        }
    }
}

//! The lock-free registry and its cloneable [`Metrics`] handle.
//!
//! Layout: one 64-byte-aligned cell per counter and per gauge instance
//! (per-shard gauges get one cell per shard), so two hot metrics never
//! share a cache line; each histogram owns its contiguous bucket array.
//! Every update is a single relaxed atomic RMW — there is no lock, no
//! CAS loop, and no ordering stronger than `Relaxed` anywhere: metrics
//! never synchronize program state, they only count it.

use crate::snapshot::{CounterSample, GaugeSample, HistogramSample, Snapshot};
use crate::{bucket_index, Counter, Gauge, Histogram, COUNTERS, GAUGES, HISTOGRAMS, HIST_BUCKETS};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Arc;

/// One counter, alone on its cache line.
#[repr(align(64))]
#[derive(Default)]
struct CounterCell {
    value: AtomicU64,
}

/// One gauge instance — current level and high-water mark share the
/// line (they are always touched together).
#[repr(align(64))]
#[derive(Default)]
struct GaugeCell {
    current: AtomicU64,
    high_water: AtomicU64,
}

/// One histogram — count, sum and the log2 buckets, contiguous.
#[repr(align(64))]
struct HistogramCell {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; HIST_BUCKETS],
}

impl Default for HistogramCell {
    fn default() -> HistogramCell {
        HistogramCell {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

struct Registry {
    shards: usize,
    counters: Vec<CounterCell>,
    /// Gauge instances, per-shard gauges expanded: `gauge_base[g]` is the
    /// first cell of gauge `g` (1 cell, or `shards` cells when per-shard).
    gauges: Vec<GaugeCell>,
    gauge_base: Vec<usize>,
    histograms: Vec<HistogramCell>,
}

impl Registry {
    fn new(shards: usize) -> Registry {
        let shards = shards.max(1);
        let mut gauge_base = Vec::with_capacity(GAUGES.len());
        let mut slots = 0usize;
        for g in GAUGES {
            gauge_base.push(slots);
            slots += if g.spec().per_shard { shards } else { 1 };
        }
        Registry {
            shards,
            counters: (0..COUNTERS.len())
                .map(|_| CounterCell::default())
                .collect(),
            gauges: (0..slots).map(|_| GaugeCell::default()).collect(),
            gauge_base,
            histograms: (0..HISTOGRAMS.len())
                .map(|_| HistogramCell::default())
                .collect(),
        }
    }

    fn gauge_cell(&self, gauge: Gauge, shard: usize) -> &GaugeCell {
        let base = self.gauge_base[gauge.index()];
        let offset = if gauge.spec().per_shard {
            shard.min(self.shards - 1)
        } else {
            0
        };
        &self.gauges[base + offset]
    }
}

/// A cloneable handle on the metrics registry — or an explicit no-op.
///
/// Every instrumented component holds one. The disabled form keeps every
/// operation to a single predicted branch, which is what the
/// `instrumentation_overhead` bench compares a live registry against.
#[derive(Clone, Default)]
pub struct Metrics {
    inner: Option<Arc<Registry>>,
}

impl std::fmt::Debug for Metrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            Some(r) => write!(f, "Metrics({} shards)", r.shards),
            None => write!(f, "Metrics(disabled)"),
        }
    }
}

impl Metrics {
    /// A live registry for a daemon with `shards` store partitions
    /// (per-shard gauges get one instance each; `0` is treated as `1`).
    pub fn new(shards: usize) -> Metrics {
        Metrics {
            inner: Some(Arc::new(Registry::new(shards))),
        }
    }

    /// The no-op handle: every update is one predicted branch, and
    /// [`Metrics::snapshot`] returns an empty snapshot.
    pub fn disabled() -> Metrics {
        Metrics { inner: None }
    }

    /// Whether this handle updates a live registry.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Shard instances per-shard gauges were sized for (0 if disabled).
    pub fn shards(&self) -> usize {
        self.inner.as_ref().map_or(0, |r| r.shards)
    }

    /// Increment a counter by 1.
    #[inline]
    pub fn inc(&self, counter: Counter) {
        self.add(counter, 1);
    }

    /// Increment a counter by `n`.
    #[inline]
    pub fn add(&self, counter: Counter, n: u64) {
        if let Some(r) = &self.inner {
            r.counters[counter.index()].value.fetch_add(n, Relaxed);
        }
    }

    /// Raise a global gauge by 1, updating its high-water mark.
    #[inline]
    pub fn gauge_inc(&self, gauge: Gauge) {
        self.gauge_shard_inc(gauge, 0);
    }

    /// Lower a global gauge by 1. Increments and decrements must be
    /// balanced by the caller; the registry does not guard underflow.
    #[inline]
    pub fn gauge_dec(&self, gauge: Gauge) {
        self.gauge_shard_dec(gauge, 0);
    }

    /// Raise a per-shard gauge instance by 1, updating its high water.
    #[inline]
    pub fn gauge_shard_inc(&self, gauge: Gauge, shard: usize) {
        if let Some(r) = &self.inner {
            let cell = r.gauge_cell(gauge, shard);
            let now = cell.current.fetch_add(1, Relaxed) + 1;
            cell.high_water.fetch_max(now, Relaxed);
        }
    }

    /// Lower a per-shard gauge instance by 1.
    #[inline]
    pub fn gauge_shard_dec(&self, gauge: Gauge, shard: usize) {
        if let Some(r) = &self.inner {
            r.gauge_cell(gauge, shard).current.fetch_sub(1, Relaxed);
        }
    }

    /// Record one histogram observation.
    #[inline]
    pub fn observe(&self, histogram: Histogram, value: u64) {
        if let Some(r) = &self.inner {
            let cell = &r.histograms[histogram.index()];
            cell.count.fetch_add(1, Relaxed);
            cell.sum.fetch_add(value, Relaxed);
            cell.buckets[bucket_index(value)].fetch_add(1, Relaxed);
        }
    }

    /// A counter's current value (0 when disabled).
    pub fn counter_value(&self, counter: Counter) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |r| r.counters[counter.index()].value.load(Relaxed))
    }

    /// A gauge instance's `(current, high_water)` (zeros when disabled).
    pub fn gauge_value(&self, gauge: Gauge, shard: usize) -> (u64, u64) {
        self.inner.as_ref().map_or((0, 0), |r| {
            let cell = r.gauge_cell(gauge, shard);
            (cell.current.load(Relaxed), cell.high_water.load(Relaxed))
        })
    }

    /// A consistent-enough view of every metric: relaxed reads, no
    /// locking. Concurrent updates may or may not be visible (a
    /// histogram's `count` can momentarily disagree with its buckets by
    /// in-flight observations); once writers quiesce, totals are exact.
    /// Disabled handles return an empty snapshot.
    pub fn snapshot(&self) -> Snapshot {
        let Some(r) = &self.inner else {
            return Snapshot::default();
        };
        let mut snap = Snapshot::default();
        for c in COUNTERS {
            snap.counters.push(CounterSample {
                name: c.spec().name.to_owned(),
                shard: None,
                value: r.counters[c.index()].value.load(Relaxed),
            });
        }
        for g in GAUGES {
            let shards = if g.spec().per_shard { r.shards } else { 1 };
            for shard in 0..shards {
                let cell = r.gauge_cell(*g, shard);
                snap.gauges.push(GaugeSample {
                    name: g.spec().name.to_owned(),
                    shard: g.spec().per_shard.then_some(shard as u32),
                    current: cell.current.load(Relaxed),
                    high_water: cell.high_water.load(Relaxed),
                });
            }
        }
        for h in HISTOGRAMS {
            let cell = &r.histograms[h.index()];
            snap.histograms.push(HistogramSample {
                name: h.spec().name.to_owned(),
                shard: None,
                count: cell.count.load(Relaxed),
                sum: cell.sum.load(Relaxed),
                buckets: cell.buckets.iter().map(|b| b.load(Relaxed)).collect(),
            });
        }
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let m = Metrics::disabled();
        m.inc(Counter::WorkerTicks);
        m.gauge_inc(Gauge::WorkerConnections);
        m.observe(Histogram::WriterCommitUs, 7);
        assert!(!m.enabled());
        assert_eq!(m.counter_value(Counter::WorkerTicks), 0);
        assert!(m.snapshot().is_empty());
    }

    #[test]
    fn counters_gauges_histograms_roundtrip() {
        let m = Metrics::new(2);
        m.add(Counter::DecoderRecords, 41);
        m.inc(Counter::DecoderRecords);
        assert_eq!(m.counter_value(Counter::DecoderRecords), 42);

        m.gauge_shard_inc(Gauge::WriterQueueDepth, 1);
        m.gauge_shard_inc(Gauge::WriterQueueDepth, 1);
        m.gauge_shard_dec(Gauge::WriterQueueDepth, 1);
        assert_eq!(m.gauge_value(Gauge::WriterQueueDepth, 1), (1, 2));
        assert_eq!(m.gauge_value(Gauge::WriterQueueDepth, 0), (0, 0));

        m.observe(Histogram::WriterBatchMessages, 0);
        m.observe(Histogram::WriterBatchMessages, 5);
        let snap = m.snapshot();
        let h = snap
            .histograms
            .iter()
            .find(|h| h.name == "writer.batch_messages")
            .unwrap();
        assert_eq!((h.count, h.sum), (2, 5));
        assert_eq!(h.buckets[bucket_index(0)], 1);
        assert_eq!(h.buckets[bucket_index(5)], 1);
    }

    #[test]
    fn per_shard_gauges_expand_in_the_snapshot() {
        let m = Metrics::new(3);
        let snap = m.snapshot();
        let depths: Vec<_> = snap
            .gauges
            .iter()
            .filter(|g| g.name == "writer.queue_depth")
            .collect();
        assert_eq!(depths.len(), 3);
        assert_eq!(depths[0].shard, Some(0));
        assert_eq!(depths[2].shard, Some(2));
        let parked: Vec<_> = snap
            .gauges
            .iter()
            .filter(|g| g.name == "worker.parked_connections")
            .collect();
        assert_eq!(parked.len(), 1);
        assert_eq!(parked[0].shard, None);
    }

    #[test]
    fn out_of_range_shard_clamps_instead_of_panicking() {
        let m = Metrics::new(2);
        m.gauge_shard_inc(Gauge::WriterQueueDepth, 99);
        assert_eq!(m.gauge_value(Gauge::WriterQueueDepth, 99), (1, 1));
        assert_eq!(m.gauge_value(Gauge::WriterQueueDepth, 1), (1, 1));
    }
}

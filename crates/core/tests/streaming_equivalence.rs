//! Streaming equivalence properties: the online analyzer fed any chunking
//! of a record stream — whole-batch, one record at a time, or through the
//! byte-level [`StreamDecoder`] with random chunk splits — must produce
//! **bit-identical** results to [`Analyzer::analyze_fused`]; windowed runs
//! must partition the stream (window sums equal whole-run totals) and each
//! window must equal the batch analysis of exactly its slice. The fused
//! zero-copy ingest ([`StreamDecoder::decode_into`] driving
//! [`OnlineAnalyzer::push_view`]) must match the owned
//! `next_record`+`push_owned` path bit-for-bit on the same byte stream,
//! windowed and unwindowed alike.

use hbbp_core::{Analyzer, HybridRule, LbrOptions, OnlineAnalyzer, SamplingPeriods, Window};
use hbbp_isa::instruction::build;
use hbbp_isa::{Mnemonic, Reg};
use hbbp_perf::{codec, PerfData, PerfRecord, PerfSample, StreamDecoder};
use hbbp_program::{BlockMap, ImageView, Layout, ProgramBuilder, Ring, TextImage};
use hbbp_sim::{EventSpec, LbrEntry};
use proptest::prelude::*;
use std::collections::HashMap;

/// A chain of loop blocks with the given body lengths, ending in an exit
/// block, plus a pool of interesting addresses to sample from.
struct Fx {
    map: BlockMap,
    pool: Vec<u64>,
}

fn fixture(bodies: &[usize]) -> Fx {
    let mut b = ProgramBuilder::new("f");
    let m = b.module("f.bin", Ring::User);
    let f = b.function(m, "main");
    let bids: Vec<_> = bodies.iter().map(|_| b.block(f)).collect();
    let exit = b.block(f);
    for (i, &body) in bodies.iter().enumerate() {
        let bid = bids[i];
        for k in 0..body {
            b.push(
                bid,
                build::rr(Mnemonic::Add, Reg::gpr((k % 8) as u8), Reg::gpr(9)),
            );
        }
        let next = *bids.get(i + 1).unwrap_or(&exit);
        b.terminate_branch(bid, Mnemonic::Jnz, bid, next);
    }
    b.terminate_exit(exit, build::bare(Mnemonic::Syscall));
    let mut p = b.build(f).unwrap();
    let layout = Layout::compute(&mut p).unwrap();
    let image = TextImage::encode(&p, &layout, p.modules()[0].id(), ImageView::Disk);
    let map = BlockMap::discover(&[image], layout.symbols()).unwrap();

    let mut pool = vec![0u64, 0xdead_beef, u64::MAX];
    for block in map.blocks() {
        pool.extend([
            block.start,
            block.start + 1,
            block.terminator_addr(),
            block.end(),
            block.end() + 3,
        ]);
    }
    Fx { map, pool }
}

fn ebs_sample(ip: u64, t: u64) -> PerfRecord {
    PerfRecord::Sample(PerfSample {
        counter: 0,
        event: EventSpec::inst_retired_prec_dist(),
        ip,
        time_cycles: t,
        pid: 1,
        tid: 1,
        ring: Ring::User,
        lbr: vec![],
    })
}

fn lbr_sample(entries: Vec<LbrEntry>, t: u64) -> PerfRecord {
    PerfRecord::Sample(PerfSample {
        counter: 1,
        event: EventSpec::br_inst_retired_near_taken(),
        ip: 0,
        time_cycles: t,
        pid: 1,
        tid: 1,
        ring: Ring::User,
        lbr: entries,
    })
}

/// Build an interleaved recording with monotone timestamps (how a real
/// collection session orders samples), bracketed by process records the
/// analyzer must ignore.
fn build_data(fx: &Fx, ips: &[usize], stacks: &[Vec<(usize, usize)>]) -> PerfData {
    let pick = |i: usize| fx.pool[i % fx.pool.len()];
    let mut t = 0u64;
    let mut data = PerfData::new();
    data.push(PerfRecord::Comm {
        pid: 1,
        tid: 1,
        name: "f".into(),
    });
    let mut stacks_iter = stacks.iter();
    for (i, &ip) in ips.iter().enumerate() {
        t += 17;
        data.push(ebs_sample(pick(ip), t));
        if i % 2 == 0 {
            if let Some(stack) = stacks_iter.next() {
                t += 5;
                data.push(lbr_sample(
                    stack
                        .iter()
                        .map(|&(from, to)| LbrEntry {
                            from: pick(from),
                            to: pick(to),
                        })
                        .collect(),
                    t,
                ));
            }
        }
    }
    for stack in stacks_iter {
        t += 23;
        data.push(lbr_sample(
            stack
                .iter()
                .map(|&(from, to)| LbrEntry {
                    from: pick(from),
                    to: pick(to),
                })
                .collect(),
            t,
        ));
    }
    data.push(PerfRecord::Exit {
        pid: 1,
        time_cycles: t + 1,
    });
    data
}

fn arb_stacks() -> impl Strategy<Value = Vec<Vec<(usize, usize)>>> {
    proptest::collection::vec(
        proptest::collection::vec((0usize..4096, 0usize..4096), 0..9),
        0..30,
    )
}

/// Loose LBR options so the bias machinery actually fires on small inputs.
fn twitchy_options() -> LbrOptions {
    LbrOptions {
        entry0_excess_threshold: 0.05,
        min_branch_occurrences: 2,
        biased_weight_threshold: 0.10,
    }
}

fn analyzer_for(fx: &Fx) -> Analyzer {
    Analyzer::from_map(fx.map.clone(), HashMap::new()).with_lbr_options(twitchy_options())
}

/// Assert two analyses are bit-identical in every estimate and statistic.
fn assert_analysis_eq(a: &hbbp_core::Analysis, b: &hbbp_core::Analysis) {
    prop_assert_eq!(&a.ebs.bbec, &b.ebs.bbec);
    prop_assert_eq!(&a.ebs.dense, &b.ebs.dense);
    prop_assert_eq!(&a.ebs.samples_per_block, &b.ebs.samples_per_block);
    prop_assert_eq!(a.ebs.samples_used, b.ebs.samples_used);
    prop_assert_eq!(a.ebs.samples_unmapped, b.ebs.samples_unmapped);
    prop_assert_eq!(&a.lbr.bbec, &b.lbr.bbec);
    prop_assert_eq!(&a.lbr.dense, &b.lbr.dense);
    prop_assert_eq!(&a.lbr.biased_blocks, &b.lbr.biased_blocks);
    prop_assert_eq!(&a.lbr.biased_idx, &b.lbr.biased_idx);
    prop_assert_eq!(&a.lbr.biased_branches, &b.lbr.biased_branches);
    prop_assert_eq!(&a.lbr.biased_weight_fraction, &b.lbr.biased_weight_fraction);
    prop_assert_eq!(a.lbr.stacks, b.lbr.stacks);
    prop_assert_eq!(a.lbr.streams, b.lbr.streams);
    prop_assert_eq!(a.lbr.derailed_streams, b.lbr.derailed_streams);
    prop_assert_eq!(&a.hbbp.bbec, &b.hbbp.bbec);
    prop_assert_eq!(&a.hbbp.dense, &b.hbbp.dense);
    prop_assert_eq!(&a.hbbp.choices, &b.hbbp.choices);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// One record at a time through `OnlineAnalyzer` ≡ `analyze_fused`.
    #[test]
    fn record_at_a_time_matches_batch(
        bodies in proptest::collection::vec(1usize..28, 1..5),
        ips in proptest::collection::vec(0usize..4096, 0..120),
        stacks in arb_stacks(),
        ebs_period in 1u64..50_000,
        lbr_period in 1u64..50_000,
        cutoff in 0usize..40,
    ) {
        let fx = fixture(&bodies);
        let data = build_data(&fx, &ips, &stacks);
        let analyzer = analyzer_for(&fx);
        let periods = SamplingPeriods { ebs: ebs_period, lbr: lbr_period };
        let rule = HybridRule::LengthCutoff(cutoff);
        let batch = analyzer.analyze_fused(&data, periods, &rule);
        let mut online = OnlineAnalyzer::new(&analyzer, periods, rule);
        for record in data.records() {
            online.push_record(record);
        }
        let streamed = online.finish().into_analysis().expect("unwindowed");
        assert_analysis_eq(&streamed, &batch);
    }

    /// The full wire path — encode, split into random byte chunks, stream
    /// decode, push owned records — ≡ `analyze_fused` on the original.
    #[test]
    fn chunked_wire_stream_matches_batch(
        bodies in proptest::collection::vec(1usize..28, 1..5),
        ips in proptest::collection::vec(0usize..4096, 0..100),
        stacks in arb_stacks(),
        cuts in proptest::collection::vec(0usize..1_000_000, 0..10),
        cutoff in 0usize..40,
    ) {
        let fx = fixture(&bodies);
        let data = build_data(&fx, &ips, &stacks);
        let analyzer = analyzer_for(&fx);
        let periods = SamplingPeriods { ebs: 733, lbr: 211 };
        let rule = HybridRule::LengthCutoff(cutoff);
        let batch = analyzer.analyze_fused(&data, periods, &rule);

        let bytes = codec::write(&data);
        let mut points: Vec<usize> = cuts.iter().map(|&c| c % bytes.len()).collect();
        points.sort_unstable();
        points.dedup();
        points.push(bytes.len());
        let mut online = OnlineAnalyzer::new(&analyzer, periods, rule);
        let mut decoder = StreamDecoder::new();
        let mut prev = 0;
        for p in points {
            decoder.feed(&bytes[prev..p]);
            prev = p;
            while let Some(record) = decoder.next_record().expect("valid stream") {
                online.push_owned(record);
            }
        }
        decoder.finish().expect("clean end of stream");
        let streamed = online.finish().into_analysis().expect("unwindowed");
        assert_analysis_eq(&streamed, &batch);
    }

    /// Windowed runs partition the stream: per-window sample tallies sum
    /// to the whole-run totals, and each window's analysis is bit-identical
    /// to `analyze_fused` over exactly that window's records.
    #[test]
    fn window_sums_equal_totals(
        bodies in proptest::collection::vec(1usize..28, 1..4),
        ips in proptest::collection::vec(0usize..4096, 1..100),
        stacks in arb_stacks(),
        window_samples in 1u64..40,
    ) {
        let fx = fixture(&bodies);
        let data = build_data(&fx, &ips, &stacks);
        let analyzer = analyzer_for(&fx);
        let periods = SamplingPeriods { ebs: 733, lbr: 211 };
        let rule = HybridRule::paper_default();
        let mut online = OnlineAnalyzer::new(&analyzer, periods, rule.clone())
            .with_window(Window::Samples(window_samples));
        for record in data.records() {
            online.push_record(record);
        }
        let outcome = online.finish();

        // Sample-count partition (exact integer invariant).
        let total_ebs: u64 = outcome.windows.iter().map(|w| w.ebs_samples).sum();
        let total_lbr: u64 = outcome.windows.iter().map(|w| w.lbr_samples).sum();
        let batch = analyzer.analyze_fused(&data, periods, &rule);
        prop_assert_eq!(
            total_ebs,
            batch.ebs.samples_used + batch.ebs.samples_unmapped
        );
        let lbr_in_stream = data
            .samples_of(EventSpec::br_inst_retired_near_taken())
            .count() as u64;
        prop_assert_eq!(total_lbr, lbr_in_stream);
        prop_assert_eq!(total_ebs + total_lbr, outcome.samples_seen);

        // Estimator statistics partition too.
        let stacks_sum: u64 = outcome.windows.iter().map(|w| w.analysis.lbr.stacks).sum();
        let streams_sum: u64 = outcome.windows.iter().map(|w| w.analysis.lbr.streams).sum();
        prop_assert_eq!(stacks_sum, batch.lbr.stacks);
        prop_assert_eq!(streams_sum, batch.lbr.streams);

        // EBS extrapolation is linear, so windowed totals recompose to the
        // batch total (up to float summation order).
        let windowed_total: f64 = outcome.windows.iter().map(|w| w.analysis.ebs.bbec.total()).sum();
        let batch_total = batch.ebs.bbec.total();
        let tol = 1e-9 * batch_total.abs().max(1.0);
        prop_assert!(
            (windowed_total - batch_total).abs() <= tol,
            "windowed {} vs batch {}",
            windowed_total,
            batch_total
        );

        // Every window ≡ the batch analysis of exactly its slice.
        let mut remaining: Vec<&PerfRecord> = data
            .records()
            .iter()
            .filter(|r| match r {
                PerfRecord::Sample(s) => {
                    s.event == EventSpec::inst_retired_prec_dist()
                        || s.event == EventSpec::br_inst_retired_near_taken()
                }
                _ => false,
            })
            .collect();
        for w in &outcome.windows {
            let n = (w.ebs_samples + w.lbr_samples) as usize;
            let slice: PerfData = remaining.drain(..n).cloned().collect();
            let slice_batch = analyzer.analyze_fused(&slice, periods, &rule);
            assert_analysis_eq(&w.analysis, &slice_batch);
        }
        prop_assert!(remaining.is_empty());
    }

    /// The fused zero-copy ingest — `decode_into` handing borrowed views
    /// straight to the analyzer — ≡ the owned `push_owned` path ≡
    /// `analyze_fused`, under any chunking of the wire bytes.
    #[test]
    fn fused_wire_stream_matches_owned_and_batch(
        bodies in proptest::collection::vec(1usize..28, 1..5),
        ips in proptest::collection::vec(0usize..4096, 0..100),
        stacks in arb_stacks(),
        cuts in proptest::collection::vec(0usize..1_000_000, 0..10),
        cutoff in 0usize..40,
    ) {
        let fx = fixture(&bodies);
        let data = build_data(&fx, &ips, &stacks);
        let analyzer = analyzer_for(&fx);
        let periods = SamplingPeriods { ebs: 733, lbr: 211 };
        let rule = HybridRule::LengthCutoff(cutoff);
        let batch = analyzer.analyze_fused(&data, periods, &rule);

        let bytes = codec::write(&data);
        let mut points: Vec<usize> = cuts.iter().map(|&c| c % bytes.len()).collect();
        points.sort_unstable();
        points.dedup();
        points.push(bytes.len());

        let mut fused = OnlineAnalyzer::new(&analyzer, periods, rule.clone());
        let mut owned = OnlineAnalyzer::new(&analyzer, periods, rule);
        let mut fused_dec = StreamDecoder::new();
        let mut owned_dec = StreamDecoder::new();
        let mut prev = 0;
        for p in points {
            fused_dec.feed(&bytes[prev..p]);
            fused_dec.decode_into(&mut fused).expect("valid stream");
            owned_dec.feed(&bytes[prev..p]);
            while let Some(record) = owned_dec.next_record().expect("valid stream") {
                owned.push_owned(record);
            }
            prev = p;
        }
        fused_dec.finish().expect("clean end of stream");
        owned_dec.finish().expect("clean end of stream");

        let fused_out = fused.finish();
        let owned_out = owned.finish();
        prop_assert_eq!(fused_out.records_seen, owned_out.records_seen);
        prop_assert_eq!(fused_out.samples_seen, owned_out.samples_seen);
        let fused_analysis = fused_out.into_analysis().expect("unwindowed");
        assert_analysis_eq(&fused_analysis, &owned_out.into_analysis().expect("unwindowed"));
        assert_analysis_eq(&fused_analysis, &batch);
    }

    /// Windowed fused ingest ≡ windowed owned ingest: the same windows in
    /// the same order, with identical bounds, tallies, analyses and mixes.
    #[test]
    fn fused_windowed_matches_owned_windowed(
        bodies in proptest::collection::vec(1usize..28, 1..4),
        ips in proptest::collection::vec(0usize..4096, 1..100),
        stacks in arb_stacks(),
        cuts in proptest::collection::vec(0usize..1_000_000, 0..8),
        window_samples in 1u64..40,
    ) {
        let fx = fixture(&bodies);
        let data = build_data(&fx, &ips, &stacks);
        let analyzer = analyzer_for(&fx);
        let periods = SamplingPeriods { ebs: 733, lbr: 211 };
        let rule = HybridRule::paper_default();
        let window = Window::Samples(window_samples);

        let bytes = codec::write(&data);
        let mut points: Vec<usize> = cuts.iter().map(|&c| c % bytes.len()).collect();
        points.sort_unstable();
        points.dedup();
        points.push(bytes.len());

        let mut fused = OnlineAnalyzer::new(&analyzer, periods, rule.clone()).with_window(window);
        let mut owned = OnlineAnalyzer::new(&analyzer, periods, rule).with_window(window);
        let mut fused_dec = StreamDecoder::new();
        let mut owned_dec = StreamDecoder::new();
        let mut prev = 0;
        for p in points {
            fused_dec.feed(&bytes[prev..p]);
            fused_dec.decode_into(&mut fused).expect("valid stream");
            owned_dec.feed(&bytes[prev..p]);
            while let Some(record) = owned_dec.next_record().expect("valid stream") {
                owned.push_owned(record);
            }
            prev = p;
        }
        fused_dec.finish().expect("clean end of stream");
        owned_dec.finish().expect("clean end of stream");

        let fused_out = fused.finish();
        let owned_out = owned.finish();
        prop_assert_eq!(fused_out.windows.len(), owned_out.windows.len());
        for (f, o) in fused_out.windows.iter().zip(&owned_out.windows) {
            prop_assert_eq!(f.index, o.index);
            prop_assert_eq!(f.start_cycles, o.start_cycles);
            prop_assert_eq!(f.end_cycles, o.end_cycles);
            prop_assert_eq!(f.ebs_samples, o.ebs_samples);
            prop_assert_eq!(f.lbr_samples, o.lbr_samples);
            assert_analysis_eq(&f.analysis, &o.analysis);
            prop_assert_eq!(&f.mix, &o.mix);
        }
        prop_assert_eq!(fused_out.records_seen, owned_out.records_seen);
        prop_assert_eq!(fused_out.samples_seen, owned_out.samples_seen);
        prop_assert_eq!(fused_out.peak_buffered_entries, owned_out.peak_buffered_entries);
    }

    /// Time windows also partition the stream (bounds disjoint, ordered,
    /// tallies summing to totals).
    #[test]
    fn time_windows_partition_stream(
        bodies in proptest::collection::vec(1usize..28, 1..4),
        ips in proptest::collection::vec(0usize..4096, 1..80),
        stacks in arb_stacks(),
        width in 1u64..500,
    ) {
        let fx = fixture(&bodies);
        let data = build_data(&fx, &ips, &stacks);
        let analyzer = analyzer_for(&fx);
        let periods = SamplingPeriods { ebs: 733, lbr: 211 };
        let mut online = OnlineAnalyzer::new(&analyzer, periods, HybridRule::paper_default())
            .with_window(Window::TimeCycles(width));
        for record in data.records() {
            online.push_record(record);
        }
        let outcome = online.finish();
        let total: u64 = outcome
            .windows
            .iter()
            .map(|w| w.ebs_samples + w.lbr_samples)
            .sum();
        prop_assert_eq!(total, outcome.samples_seen);
        for pair in outcome.windows.windows(2) {
            prop_assert!(pair[0].end_cycles <= pair[1].start_cycles);
        }
        for w in &outcome.windows {
            prop_assert_eq!(w.end_cycles - w.start_cycles, width);
            prop_assert!(w.ebs_samples + w.lbr_samples > 0);
        }
    }
}

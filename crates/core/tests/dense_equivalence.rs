//! Equivalence property tests: the dense block-index estimator pipeline
//! (and the fused single-pass analyzer built on it) must produce
//! **bit-identical** results to the seed address-keyed implementations on
//! arbitrary sample streams — mapped, unmapped, derailing and biased alike.

use hbbp_core::{ebs, hybrid, lbr, Analyzer, HybridRule, LbrOptions, SamplingPeriods};
use hbbp_isa::instruction::build;
use hbbp_isa::{Mnemonic, Reg};
use hbbp_perf::{PerfData, PerfRecord, PerfSample};
use hbbp_program::{BlockMap, ImageView, Layout, ProgramBuilder, Ring, TextImage};
use hbbp_sim::{EventSpec, LbrEntry};
use proptest::prelude::*;
use std::collections::HashMap;

/// A chain of loop blocks with the given body lengths, ending in an exit
/// block, plus a pool of interesting addresses to sample from.
struct Fx {
    map: BlockMap,
    /// Mapped and unmapped addresses: block starts, terminators, interior
    /// and out-of-range points.
    pool: Vec<u64>,
}

fn fixture(bodies: &[usize]) -> Fx {
    let mut b = ProgramBuilder::new("f");
    let m = b.module("f.bin", Ring::User);
    let f = b.function(m, "main");
    let bids: Vec<_> = bodies.iter().map(|_| b.block(f)).collect();
    let exit = b.block(f);
    for (i, &body) in bodies.iter().enumerate() {
        let bid = bids[i];
        for k in 0..body {
            b.push(
                bid,
                build::rr(Mnemonic::Add, Reg::gpr((k % 8) as u8), Reg::gpr(9)),
            );
        }
        let next = *bids.get(i + 1).unwrap_or(&exit);
        b.terminate_branch(bid, Mnemonic::Jnz, bid, next);
    }
    b.terminate_exit(exit, build::bare(Mnemonic::Syscall));
    let mut p = b.build(f).unwrap();
    let layout = Layout::compute(&mut p).unwrap();
    let image = TextImage::encode(&p, &layout, p.modules()[0].id(), ImageView::Disk);
    let map = BlockMap::discover(&[image], layout.symbols()).unwrap();

    let mut pool = vec![0u64, 0xdead_beef, u64::MAX];
    for block in map.blocks() {
        pool.extend([
            block.start,
            block.start + 1,
            block.terminator_addr(),
            block.end(),
            block.end() + 3,
        ]);
    }
    Fx { map, pool }
}

fn ebs_sample(ip: u64) -> PerfRecord {
    PerfRecord::Sample(PerfSample {
        counter: 0,
        event: EventSpec::inst_retired_prec_dist(),
        ip,
        time_cycles: 0,
        pid: 1,
        tid: 1,
        ring: Ring::User,
        lbr: vec![],
    })
}

fn lbr_sample(entries: Vec<LbrEntry>) -> PerfRecord {
    PerfRecord::Sample(PerfSample {
        counter: 1,
        event: EventSpec::br_inst_retired_near_taken(),
        ip: 0,
        time_cycles: 0,
        pid: 1,
        tid: 1,
        ring: Ring::User,
        lbr: entries,
    })
}

/// Build an interleaved recording from pool picks: EBS IPs and LBR stacks
/// of `(from, to)` pool indices.
fn build_data(fx: &Fx, ips: &[usize], stacks: &[Vec<(usize, usize)>]) -> PerfData {
    let pick = |i: usize| fx.pool[i % fx.pool.len()];
    let mut data = PerfData::new();
    let mut stacks_iter = stacks.iter();
    for (i, &ip) in ips.iter().enumerate() {
        data.push(ebs_sample(pick(ip)));
        // Interleave so the fused dispatch sees mixed event order.
        if i % 2 == 0 {
            if let Some(stack) = stacks_iter.next() {
                data.push(lbr_sample(
                    stack
                        .iter()
                        .map(|&(from, to)| LbrEntry {
                            from: pick(from),
                            to: pick(to),
                        })
                        .collect(),
                ));
            }
        }
    }
    for stack in stacks_iter {
        data.push(lbr_sample(
            stack
                .iter()
                .map(|&(from, to)| LbrEntry {
                    from: pick(from),
                    to: pick(to),
                })
                .collect(),
        ));
    }
    data
}

fn arb_stacks() -> impl Strategy<Value = Vec<Vec<(usize, usize)>>> {
    proptest::collection::vec(
        proptest::collection::vec((0usize..4096, 0usize..4096), 0..9),
        0..30,
    )
}

/// Loose LBR options so the bias machinery actually fires on small inputs.
fn twitchy_options() -> LbrOptions {
    LbrOptions {
        entry0_excess_threshold: 0.05,
        min_branch_occurrences: 2,
        biased_weight_threshold: 0.10,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// `ebs::estimate` (index path) ≡ `ebs::estimate_ref` (seed path).
    #[test]
    fn ebs_dense_path_matches_seed(
        bodies in proptest::collection::vec(1usize..28, 1..5),
        ips in proptest::collection::vec(0usize..4096, 0..150),
        period in 0u64..100_000,
    ) {
        let fx = fixture(&bodies);
        let data = build_data(&fx, &ips, &[]);
        let fast = ebs::estimate(&data, &fx.map, period);
        let seed = ebs::estimate_ref(&data, &fx.map, period);
        prop_assert_eq!(&fast.bbec, &seed.bbec);
        prop_assert_eq!(&fast.dense, &seed.dense);
        prop_assert_eq!(&fast.samples_per_block, &seed.samples_per_block);
        prop_assert_eq!(fast.samples_used, seed.samples_used);
        prop_assert_eq!(fast.samples_unmapped, seed.samples_unmapped);
        // The dense table is exactly the bbec re-coordinated (to_bbec
        // drops zero entries, so only meaningful for a nonzero period).
        if period > 0 {
            prop_assert_eq!(fast.dense.to_bbec(&fx.map), fast.bbec);
        }
    }

    /// `lbr::estimate` (index path) ≡ `lbr::estimate_ref` (seed path),
    /// including all bias statistics.
    #[test]
    fn lbr_dense_path_matches_seed(
        bodies in proptest::collection::vec(1usize..28, 1..5),
        stacks in arb_stacks(),
        period in 0u64..100_000,
    ) {
        let fx = fixture(&bodies);
        let data = build_data(&fx, &[], &stacks);
        let options = twitchy_options();
        let fast = lbr::estimate(&data, &fx.map, period, &options);
        let seed = lbr::estimate_ref(&data, &fx.map, period, &options);
        prop_assert_eq!(&fast.bbec, &seed.bbec);
        prop_assert_eq!(&fast.dense, &seed.dense);
        prop_assert_eq!(&fast.biased_blocks, &seed.biased_blocks);
        prop_assert_eq!(&fast.biased_idx, &seed.biased_idx);
        prop_assert_eq!(&fast.biased_branches, &seed.biased_branches);
        prop_assert_eq!(&fast.biased_weight_fraction, &seed.biased_weight_fraction);
        prop_assert_eq!(fast.stacks, seed.stacks);
        prop_assert_eq!(fast.streams, seed.streams);
        prop_assert_eq!(fast.derailed_streams, seed.derailed_streams);
        if period > 0 {
            prop_assert_eq!(fast.dense.to_bbec(&fx.map), fast.bbec);
        }
    }

    /// The fused single-pass analyzer ≡ the seed two-scan pipeline:
    /// bit-identical BBECs and identical per-block choices.
    #[test]
    fn analyze_fused_matches_seed_pipeline(
        bodies in proptest::collection::vec(1usize..28, 1..5),
        ips in proptest::collection::vec(0usize..4096, 0..120),
        stacks in arb_stacks(),
        ebs_period in 1u64..50_000,
        lbr_period in 1u64..50_000,
        cutoff in 0usize..40,
    ) {
        let fx = fixture(&bodies);
        let data = build_data(&fx, &ips, &stacks);
        let analyzer = Analyzer::from_map(fx.map.clone(), HashMap::new())
            .with_lbr_options(twitchy_options());
        let periods = SamplingPeriods { ebs: ebs_period, lbr: lbr_period };
        let rule = HybridRule::LengthCutoff(cutoff);
        let fused = analyzer.analyze_fused(&data, periods, &rule);
        let seed = analyzer.analyze_ref(&data, periods, &rule);
        prop_assert_eq!(&fused.ebs.bbec, &seed.ebs.bbec);
        prop_assert_eq!(&fused.lbr.bbec, &seed.lbr.bbec);
        prop_assert_eq!(&fused.hbbp.bbec, &seed.hbbp.bbec);
        prop_assert_eq!(&fused.hbbp.dense, &seed.hbbp.dense);
        prop_assert_eq!(&fused.hbbp.choices, &seed.hbbp.choices);
        // `analyze` is a thin wrapper over the fused path.
        let via_analyze = analyzer.analyze(&data, periods, &rule);
        prop_assert_eq!(&via_analyze.hbbp.bbec, &fused.hbbp.bbec);
        prop_assert_eq!(&via_analyze.hbbp.choices, &fused.hbbp.choices);
    }

    /// `hybrid::combine` on dense estimates ≡ `hybrid::combine_ref` on the
    /// same estimates, across every rule variant.
    #[test]
    fn combine_dense_matches_seed(
        bodies in proptest::collection::vec(1usize..28, 1..5),
        ips in proptest::collection::vec(0usize..4096, 0..80),
        stacks in arb_stacks(),
        cutoff in 0usize..40,
    ) {
        let fx = fixture(&bodies);
        let data = build_data(&fx, &ips, &stacks);
        let e = ebs::estimate(&data, &fx.map, 1000);
        let l = lbr::estimate(&data, &fx.map, 300, &twitchy_options());
        for rule in [
            HybridRule::LengthCutoff(cutoff),
            HybridRule::AlwaysEbs,
            HybridRule::AlwaysLbr,
        ] {
            let fast = hybrid::combine(&fx.map, &e, &l, &rule);
            let seed = hybrid::combine_ref(&fx.map, &e, &l, &rule);
            prop_assert_eq!(&fast.bbec, &seed.bbec);
            prop_assert_eq!(&fast.dense, &seed.dense);
            prop_assert_eq!(&fast.choices, &seed.choices);
        }
    }
}

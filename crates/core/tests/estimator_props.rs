//! Property tests for the HBBP estimators and error metrics.

use hbbp_core::{ebs, errors::MixComparison, hybrid, lbr, HybridRule, LbrOptions};
use hbbp_isa::instruction::build;
use hbbp_isa::{Mnemonic, Reg};
use hbbp_perf::{PerfData, PerfRecord, PerfSample};
use hbbp_program::{BlockMap, ImageView, Layout, MnemonicMix, ProgramBuilder, Ring, TextImage};
use hbbp_sim::{EventSpec, LbrEntry};
use proptest::prelude::*;

/// Fixture: a loop block (len `body+1`) and an exit block.
struct Fx {
    map: BlockMap,
    head_start: u64,
    head_term: u64,
    head_len: usize,
}

fn fixture(body: usize) -> Fx {
    let mut b = ProgramBuilder::new("f");
    let m = b.module("f.bin", Ring::User);
    let f = b.function(m, "main");
    let b0 = b.block(f);
    let b1 = b.block(f);
    for i in 0..body {
        b.push(
            b0,
            build::rr(Mnemonic::Add, Reg::gpr((i % 8) as u8), Reg::gpr(9)),
        );
    }
    b.terminate_branch(b0, Mnemonic::Jnz, b0, b1);
    b.terminate_exit(b1, build::bare(Mnemonic::Syscall));
    let mut p = b.build(f).unwrap();
    let layout = Layout::compute(&mut p).unwrap();
    let image = TextImage::encode(&p, &layout, p.modules()[0].id(), ImageView::Disk);
    let map = BlockMap::discover(&[image], layout.symbols()).unwrap();
    Fx {
        head_start: layout.block_start(b0),
        head_term: layout.terminator_addr(b0),
        head_len: body + 1,
        map,
    }
}

fn ebs_sample(ip: u64) -> PerfRecord {
    PerfRecord::Sample(PerfSample {
        counter: 0,
        event: EventSpec::inst_retired_prec_dist(),
        ip,
        time_cycles: 0,
        pid: 1,
        tid: 1,
        ring: Ring::User,
        lbr: vec![],
    })
}

fn lbr_sample(entries: Vec<LbrEntry>) -> PerfRecord {
    PerfRecord::Sample(PerfSample {
        counter: 1,
        event: EventSpec::br_inst_retired_near_taken(),
        ip: 0,
        time_cycles: 0,
        pid: 1,
        tid: 1,
        ring: Ring::User,
        lbr: entries,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// EBS extrapolation is linear: count = samples × period / len.
    #[test]
    fn ebs_estimate_is_linear(
        body in 1usize..30,
        n_samples in 1usize..200,
        period in 1u64..100_000,
    ) {
        let fx = fixture(body);
        let mut data = PerfData::new();
        for _ in 0..n_samples {
            data.push(ebs_sample(fx.head_start));
        }
        let est = ebs::estimate(&data, &fx.map, period);
        let expected = n_samples as f64 * period as f64 / fx.head_len as f64;
        prop_assert!((est.count(fx.head_start) - expected).abs() < 1e-6);
        prop_assert_eq!(est.samples_used, n_samples as u64);
    }

    /// Each LBR stack contributes exactly `period` worth of block
    /// executions (weights sum to 1 per stack), regardless of stack size.
    #[test]
    fn lbr_stack_weight_normalizes(
        body in 1usize..30,
        stack_len in 2usize..16,
        n_stacks in 1usize..100,
        period in 1u64..10_000,
    ) {
        let fx = fixture(body);
        let e = LbrEntry { from: fx.head_term, to: fx.head_start };
        let mut data = PerfData::new();
        for _ in 0..n_stacks {
            data.push(lbr_sample(vec![e; stack_len]));
        }
        let est = lbr::estimate(&data, &fx.map, period, &LbrOptions::default());
        let expected = n_stacks as f64 * period as f64;
        prop_assert!(
            (est.bbec.total() - expected).abs() < 1e-6,
            "total {} expected {}",
            est.bbec.total(),
            expected
        );
    }

    /// The hybrid's per-block value always equals one of the two sources.
    #[test]
    fn hybrid_is_a_selection(
        body in 1usize..40,
        ebs_samples in 1usize..50,
        stacks in 1usize..50,
        cutoff in 0usize..50,
    ) {
        let fx = fixture(body);
        let mut data = PerfData::new();
        for _ in 0..ebs_samples {
            data.push(ebs_sample(fx.head_start));
        }
        let e = LbrEntry { from: fx.head_term, to: fx.head_start };
        for _ in 0..stacks {
            data.push(lbr_sample(vec![e; 8]));
        }
        let est_e = ebs::estimate(&data, &fx.map, 1000);
        let est_l = lbr::estimate(&data, &fx.map, 300, &LbrOptions::default());
        let h = hybrid::combine(&fx.map, &est_e, &est_l, &HybridRule::LengthCutoff(cutoff));
        let he = h.count(fx.head_start);
        let a = est_e.count(fx.head_start);
        let b = est_l.count(fx.head_start);
        prop_assert!((he - a).abs() < 1e-9 || (he - b).abs() < 1e-9);
        // And the choice respects the cutoff.
        let expect_lbr = fx.head_len <= cutoff;
        if expect_lbr {
            prop_assert!((he - b).abs() < 1e-9);
        } else {
            prop_assert!((he - a).abs() < 1e-9);
        }
    }

    /// Error metric identities: compare(x, x) is zero error; scaling the
    /// measurement by (1+f) yields avg weighted error |f|.
    #[test]
    fn error_metric_identities(
        counts in proptest::collection::vec(1.0f64..1e6, 1..20),
        factor in -0.5f64..0.5,
    ) {
        let mix: MnemonicMix = Mnemonic::ALL
            .iter()
            .zip(&counts)
            .map(|(&m, &c)| (m, c))
            .collect();
        let self_cmp = MixComparison::compare(&mix, &mix);
        prop_assert!(self_cmp.avg_weighted_error() < 1e-12);

        let mut scaled = mix.clone();
        scaled.scale(1.0 + factor);
        let cmp = MixComparison::compare(&mix, &scaled);
        prop_assert!(
            (cmp.avg_weighted_error() - factor.abs()).abs() < 1e-9,
            "awe {} factor {}",
            cmp.avg_weighted_error(),
            factor
        );
    }

    /// Average weighted error is invariant under uniform rescaling of both
    /// mixes (it is a relative metric).
    #[test]
    fn error_metric_scale_invariance(
        counts in proptest::collection::vec(1.0f64..1e6, 2..20),
        noise in proptest::collection::vec(0.5f64..1.5, 2..20),
        scale in 0.001f64..1000.0,
    ) {
        let n = counts.len().min(noise.len());
        let reference: MnemonicMix = Mnemonic::ALL
            .iter()
            .zip(&counts[..n])
            .map(|(&m, &c)| (m, c))
            .collect();
        let measured: MnemonicMix = Mnemonic::ALL
            .iter()
            .zip(counts[..n].iter().zip(&noise[..n]))
            .map(|(&m, (&c, &w))| (m, c * w))
            .collect();
        let base = MixComparison::compare(&reference, &measured).avg_weighted_error();
        let mut r2 = reference.clone();
        let mut m2 = measured.clone();
        r2.scale(scale);
        m2.scale(scale);
        let scaled = MixComparison::compare(&r2, &m2).avg_weighted_error();
        prop_assert!((base - scaled).abs() < 1e-9);
    }
}

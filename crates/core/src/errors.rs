//! Error metrics — paper §VI.
//!
//! Per-mnemonic error: `|ref − measured| / ref`. Aggregate: the **average
//! weighted error**, `Σ_M error(M) · ref(M) / Σ ref` — "the sum of errors
//! for each mnemonic M multiplied by its frequency of its occurrence in a
//! given workload".
//!
//! ```
//! use hbbp_core::MixComparison;
//! use hbbp_isa::Mnemonic;
//! use hbbp_program::MnemonicMix;
//!
//! let mut reference = MnemonicMix::new();
//! reference.add(Mnemonic::Add, 100.0);
//! let mut measured = MnemonicMix::new();
//! measured.add(Mnemonic::Add, 90.0);
//!
//! let cmp = MixComparison::compare(&reference, &measured);
//! assert!((cmp.avg_weighted_error() - 0.10).abs() < 1e-12);
//! let add_error = cmp.error_for(Mnemonic::Add).unwrap();
//! assert!((add_error - 0.10).abs() < 1e-12);
//! ```

use hbbp_isa::Mnemonic;
use hbbp_program::MnemonicMix;
use std::fmt;

/// Error of one mnemonic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MixErrorRow {
    /// The mnemonic.
    pub mnemonic: Mnemonic,
    /// Reference (ground truth) execution count.
    pub reference: f64,
    /// Measured execution count.
    pub measured: f64,
    /// `|ref − measured| / ref`; infinite when `ref == 0 && measured > 0`.
    pub error: f64,
}

/// A full per-mnemonic comparison of a measured mix against a reference.
#[derive(Debug, Clone)]
pub struct MixComparison {
    rows: Vec<MixErrorRow>,
    total_reference: f64,
}

impl MixComparison {
    /// Compare `measured` against `reference` over the union of mnemonics.
    pub fn compare(reference: &MnemonicMix, measured: &MnemonicMix) -> MixComparison {
        let mut rows = Vec::new();
        for m in reference.union_mnemonics(measured) {
            let r = reference.get(m);
            let v = measured.get(m);
            let error = if r > 0.0 {
                (r - v).abs() / r
            } else if v > 0.0 {
                f64::INFINITY
            } else {
                0.0
            };
            rows.push(MixErrorRow {
                mnemonic: m,
                reference: r,
                measured: v,
                error,
            });
        }
        MixComparison {
            total_reference: reference.total(),
            rows,
        }
    }

    /// All rows (union of mnemonics, opcode order).
    pub fn rows(&self) -> &[MixErrorRow] {
        &self.rows
    }

    /// The paper's aggregate: average weighted error.
    ///
    /// Mnemonics absent from the reference carry zero weight (they cannot
    /// distort the weighted sum even when their relative error is
    /// infinite).
    pub fn avg_weighted_error(&self) -> f64 {
        if self.total_reference <= 0.0 {
            return 0.0;
        }
        self.rows
            .iter()
            .filter(|r| r.reference > 0.0)
            .map(|r| r.error * r.reference / self.total_reference)
            .sum()
    }

    /// Error of one mnemonic, if present in the comparison.
    pub fn error_for(&self, mnemonic: Mnemonic) -> Option<f64> {
        self.rows
            .iter()
            .find(|r| r.mnemonic == mnemonic)
            .map(|r| r.error)
    }

    /// The `n` mnemonics with the largest reference counts (the paper's
    /// "top instruction retiring mnemonics" of Figures 3-4), with their
    /// errors.
    pub fn top_by_reference(&self, n: usize) -> Vec<MixErrorRow> {
        let mut rows = self.rows.clone();
        rows.sort_by(|a, b| {
            b.reference
                .partial_cmp(&a.reference)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        rows.truncate(n);
        rows
    }

    /// Maximum error among the top-`n` mnemonics by reference count.
    pub fn max_error_in_top(&self, n: usize) -> f64 {
        self.top_by_reference(n)
            .iter()
            .map(|r| r.error)
            .fold(0.0, f64::max)
    }
}

impl fmt::Display for MixComparison {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<14} {:>16} {:>16} {:>9}",
            "mnemonic", "reference", "measured", "error%"
        )?;
        for r in self.top_by_reference(20) {
            writeln!(
                f,
                "{:<14} {:>16.0} {:>16.0} {:>8.2}%",
                r.mnemonic.name(),
                r.reference,
                r.measured,
                r.error * 100.0
            )?;
        }
        write!(
            f,
            "avg weighted error: {:.2}%",
            self.avg_weighted_error() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mix(pairs: &[(Mnemonic, f64)]) -> MnemonicMix {
        pairs.iter().copied().collect()
    }

    #[test]
    fn paper_example() {
        // "if we obtain a reference value of 500 executions of MOV, and
        // measure 510 executions of MOV with HBBP, the error for that
        // mnemonic is reported as 10/500 = 2%".
        let reference = mix(&[(Mnemonic::Mov, 500.0)]);
        let measured = mix(&[(Mnemonic::Mov, 510.0)]);
        let c = MixComparison::compare(&reference, &measured);
        assert!((c.error_for(Mnemonic::Mov).unwrap() - 0.02).abs() < 1e-12);
        assert!((c.avg_weighted_error() - 0.02).abs() < 1e-12);
    }

    #[test]
    fn weighting_by_frequency() {
        // A 50% error on a rare mnemonic matters less than 1% on a hot one.
        let reference = mix(&[(Mnemonic::Mov, 9_900.0), (Mnemonic::Idiv, 100.0)]);
        let measured = mix(&[(Mnemonic::Mov, 9_801.0), (Mnemonic::Idiv, 150.0)]);
        let c = MixComparison::compare(&reference, &measured);
        // avg = 0.01*0.99 + 0.5*0.01 = 0.0149
        assert!((c.avg_weighted_error() - 0.0149).abs() < 1e-9);
    }

    #[test]
    fn phantom_mnemonics_do_not_poison_average() {
        let reference = mix(&[(Mnemonic::Mov, 100.0)]);
        let measured = mix(&[(Mnemonic::Mov, 100.0), (Mnemonic::Fsin, 5.0)]);
        let c = MixComparison::compare(&reference, &measured);
        assert_eq!(c.error_for(Mnemonic::Fsin), Some(f64::INFINITY));
        assert_eq!(c.avg_weighted_error(), 0.0);
    }

    #[test]
    fn missing_measured_mnemonic_is_total_error() {
        let reference = mix(&[(Mnemonic::Mov, 100.0), (Mnemonic::Add, 100.0)]);
        let measured = mix(&[(Mnemonic::Mov, 100.0)]);
        let c = MixComparison::compare(&reference, &measured);
        assert_eq!(c.error_for(Mnemonic::Add), Some(1.0));
        assert!((c.avg_weighted_error() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn top_by_reference_ordering() {
        let reference = mix(&[
            (Mnemonic::Mov, 300.0),
            (Mnemonic::Add, 200.0),
            (Mnemonic::Sub, 100.0),
        ]);
        let c = MixComparison::compare(&reference, &reference);
        let top2 = c.top_by_reference(2);
        assert_eq!(top2[0].mnemonic, Mnemonic::Mov);
        assert_eq!(top2[1].mnemonic, Mnemonic::Add);
        assert_eq!(c.avg_weighted_error(), 0.0);
        assert_eq!(c.max_error_in_top(3), 0.0);
    }

    #[test]
    fn display_renders() {
        let reference = mix(&[(Mnemonic::Mov, 100.0)]);
        let measured = mix(&[(Mnemonic::Mov, 90.0)]);
        let c = MixComparison::compare(&reference, &measured);
        let s = c.to_string();
        assert!(s.contains("MOV"));
        assert!(s.contains("avg weighted error"));
    }
}

//! The one-stop HBBP profiler: clean run → period selection → dual-event
//! collection → kernel-text patching → analysis.
//!
//! This is the end-to-end tool of paper §V ("The tool is composed of two
//! main components: a collector that computes BBECs, and an analyzer that
//! combines the BBECs with static information to produce instruction
//! mixes").

use crate::{Analysis, Analyzer, HybridRule, SamplingPeriods};
use hbbp_perf::{PerfSession, Recording};
use hbbp_program::{DiscoverError, ImageView, MnemonicMix, Ring, TextImage};
use hbbp_sim::{Cpu, PmuConfig, PmuError, RunResult};
use hbbp_workloads::Workload;
use std::fmt;

/// Errors from end-to-end profiling.
#[derive(Debug, Clone)]
pub enum ProfileError {
    /// PMU programming failed.
    Pmu(PmuError),
    /// Static block discovery failed.
    Discover(DiscoverError),
}

impl fmt::Display for ProfileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProfileError::Pmu(e) => write!(f, "pmu error: {e}"),
            ProfileError::Discover(e) => write!(f, "discovery error: {e}"),
        }
    }
}

impl std::error::Error for ProfileError {}

impl From<PmuError> for ProfileError {
    fn from(e: PmuError) -> ProfileError {
        ProfileError::Pmu(e)
    }
}

impl From<DiscoverError> for ProfileError {
    fn from(e: DiscoverError) -> ProfileError {
        ProfileError::Discover(e)
    }
}

/// End-to-end HBBP profiler configuration.
#[derive(Debug, Clone)]
pub struct HbbpProfiler {
    /// The machine to run on.
    pub cpu: Cpu,
    /// Per-block decision rule.
    pub rule: HybridRule,
    /// Apply the §III.C remedy: patch on-disk kernel text from the live
    /// image before building the block map.
    pub patch_kernel_text: bool,
    /// Fixed periods; `None` selects them from the clean run's size
    /// (Table 4 policy, scaled for simulation).
    pub periods: Option<SamplingPeriods>,
    /// Base PMU configuration (the dual-LBR HBBP collector); periods are
    /// overwritten per run.
    pub pmu_template: PmuConfig,
    /// PMI cost as a fraction of one EBS period's worth of cycles.
    ///
    /// Simulated runs are orders of magnitude shorter than the paper's,
    /// but carry similar *sample counts* (statistical power). A fixed
    /// physical PMI cost would therefore dwarf the scaled-down runtime, so
    /// the profiler preserves the full-scale **overhead ratio** instead:
    /// on the paper's hardware one PMI (~2,400 cycles) costs ≈0.2–0.7% of
    /// an EBS sampling period. See DESIGN.md ("wall-clock comparisons").
    pub pmi_period_fraction: f64,
    /// Pid stamped into every record of the collection stream.
    pub pid: u32,
}

impl HbbpProfiler {
    /// Default profiler: paper rule, kernel patching on, auto periods.
    pub fn new(cpu: Cpu) -> HbbpProfiler {
        HbbpProfiler {
            cpu,
            rule: HybridRule::paper_default(),
            patch_kernel_text: true,
            periods: None,
            pmu_template: PmuConfig::hbbp_collector(1, 1),
            pmi_period_fraction: 0.004,
            pid: 1000,
        }
    }

    /// Use a specific decision rule.
    pub fn with_rule(mut self, rule: HybridRule) -> HbbpProfiler {
        self.rule = rule;
        self
    }

    /// Record under a specific pid.
    pub fn with_pid(mut self, pid: u32) -> HbbpProfiler {
        self.pid = pid;
        self
    }

    /// Use fixed sampling periods.
    pub fn with_periods(mut self, periods: SamplingPeriods) -> HbbpProfiler {
        self.periods = Some(periods);
        self
    }

    /// Disable the kernel text patch step (ablation: reproduces the
    /// stale-text distortion).
    pub fn without_kernel_patching(mut self) -> HbbpProfiler {
        self.patch_kernel_text = false;
        self
    }

    /// Profile a workload end to end.
    ///
    /// # Errors
    ///
    /// Returns [`ProfileError`] on invalid PMU programming or undecodable
    /// images.
    pub fn profile(&self, workload: &Workload) -> Result<ProfileResult, ProfileError> {
        // 1. Clean run: baseline timing + workload size for period policy.
        let clean = self
            .cpu
            .run_clean(workload.program(), workload.layout(), workload.oracle())?;
        let policy = SamplingPeriods::scaled_for(clean.instructions);
        let periods = self.periods.unwrap_or(policy);

        // 2. Collection: single run, two counters in LBR mode (§V.A).
        let mut pmu = self.pmu_template.clone();
        pmu.counters[0].period = periods.ebs;
        pmu.counters[1].period = periods.lbr;
        // PMI cost is anchored to the *policy* period so that overriding
        // periods (denser sampling) visibly trades overhead for accuracy.
        pmu.pmi_cost_cycles = ((policy.ebs as f64 * self.pmi_period_fraction).ceil() as u64).max(1);
        let session = PerfSession {
            cpu: self.cpu.clone(),
            pmu,
            pid: self.pid,
        };
        let recording = session.record(workload.program(), workload.layout(), workload.oracle())?;

        // 3. Static side: disk images, patched from the live text where
        //    kernel modules self-modify (§III.C).
        let mut disk = workload.images(ImageView::Disk);
        if self.patch_kernel_text {
            let live = workload.images(ImageView::Live);
            for (d, l) in disk.iter_mut().zip(&live) {
                if d.ring() == Ring::Kernel {
                    d.patch_from(l).expect("same module images");
                }
            }
        }
        let analyzer = Analyzer::from_images(&disk, workload.layout().symbols())?;

        // 4. Analysis: EBS, LBR and HBBP estimates.
        let analysis = analyzer.analyze(&recording.data, periods, &self.rule);
        Ok(ProfileResult {
            periods,
            clean,
            recording,
            analyzer,
            analysis,
        })
    }

    /// The images used for analysis (useful for tests/inspection).
    pub fn analysis_images(&self, workload: &Workload) -> Vec<TextImage> {
        let mut disk = workload.images(ImageView::Disk);
        if self.patch_kernel_text {
            let live = workload.images(ImageView::Live);
            for (d, l) in disk.iter_mut().zip(&live) {
                if d.ring() == Ring::Kernel {
                    d.patch_from(l).expect("same module images");
                }
            }
        }
        disk
    }
}

/// Everything an end-to-end profile produces.
#[derive(Debug, Clone)]
pub struct ProfileResult {
    /// The sampling periods used.
    pub periods: SamplingPeriods,
    /// The clean (unsampled) run: baseline wall time.
    pub clean: RunResult,
    /// The collection run: perf data + overheads.
    pub recording: Recording,
    /// The analyzer (owns the block map).
    pub analyzer: Analyzer,
    /// The three estimates.
    pub analysis: Analysis,
}

impl ProfileResult {
    /// HBBP instruction mix.
    pub fn hbbp_mix(&self) -> MnemonicMix {
        self.analyzer.mix(&self.analysis.hbbp.bbec)
    }

    /// EBS-only instruction mix.
    pub fn ebs_mix(&self) -> MnemonicMix {
        self.analyzer.mix(&self.analysis.ebs.bbec)
    }

    /// LBR-only instruction mix.
    pub fn lbr_mix(&self) -> MnemonicMix {
        self.analyzer.mix(&self.analysis.lbr.bbec)
    }

    /// HBBP mix restricted to one ring (Table 7).
    pub fn hbbp_mix_for_ring(&self, ring: Ring) -> MnemonicMix {
        self.analyzer.mix_for_ring(&self.analysis.hbbp.bbec, ring)
    }

    /// Collection overhead vs the clean run.
    pub fn overhead_fraction(&self) -> f64 {
        self.recording.run.overhead_fraction()
    }

    /// Wall seconds of the collection run.
    pub fn collection_seconds(&self) -> f64 {
        self.recording.run.wall_seconds()
    }

    /// Wall seconds of the clean run.
    pub fn clean_seconds(&self) -> f64 {
        self.clean.clean_seconds()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbbp_sim::EventSpec;
    use hbbp_workloads::{generate, GenSpec, Scale};

    #[test]
    fn end_to_end_profile_produces_all_estimates() {
        let w = generate(&GenSpec::default(), Scale::Tiny);
        let result = HbbpProfiler::new(Cpu::with_seed(7)).profile(&w).unwrap();
        assert!(result.analysis.ebs.samples_used > 100);
        assert!(result.analysis.lbr.stacks > 50);
        assert!(!result.analysis.hbbp.bbec.is_empty());
        // Total instruction estimates should be within a few percent of
        // the true count.
        let total = result
            .analyzer
            .total_instructions(&result.analysis.hbbp.bbec);
        let truth = result.clean.instructions as f64;
        let err = (total - truth).abs() / truth;
        assert!(err < 0.15, "total estimate off by {:.1}%", err * 100.0);
    }

    #[test]
    fn overhead_is_small() {
        let w = generate(&GenSpec::default(), Scale::Tiny);
        let result = HbbpProfiler::new(Cpu::with_seed(8)).profile(&w).unwrap();
        let overhead = result.overhead_fraction();
        assert!(
            overhead < 0.06,
            "collection overhead {:.2}% too large",
            overhead * 100.0
        );
        assert!(result.collection_seconds() > result.clean_seconds());
    }

    #[test]
    fn configured_pid_reaches_every_record() {
        let w = generate(&GenSpec::default(), Scale::Tiny);
        let result = HbbpProfiler::new(Cpu::with_seed(7))
            .with_pid(31337)
            .profile(&w)
            .unwrap();
        for record in result.recording.data.records() {
            let pid = match record {
                hbbp_perf::PerfRecord::Comm { pid, .. }
                | hbbp_perf::PerfRecord::Exit { pid, .. } => *pid,
                hbbp_perf::PerfRecord::Mmap { pid, ring, .. } => {
                    if *ring == Ring::Kernel {
                        continue;
                    }
                    *pid
                }
                hbbp_perf::PerfRecord::Sample(s) => {
                    assert_eq!(s.tid, 31337);
                    s.pid
                }
                _ => continue,
            };
            assert_eq!(pid, 31337);
        }
    }

    #[test]
    fn fixed_periods_respected() {
        let w = generate(&GenSpec::default(), Scale::Tiny);
        let periods = SamplingPeriods {
            ebs: 4001,
            lbr: 563,
        };
        let result = HbbpProfiler::new(Cpu::with_seed(9))
            .with_periods(periods)
            .profile(&w)
            .unwrap();
        assert_eq!(result.periods, periods);
        let ebs_n = result
            .recording
            .data
            .samples_of(EventSpec::inst_retired_prec_dist())
            .count() as u64;
        let expect = result.clean.instructions / periods.ebs;
        assert!(
            (ebs_n as i64 - expect as i64).unsigned_abs() <= expect / 5 + 2,
            "ebs samples {ebs_n} vs expected {expect}"
        );
    }
}

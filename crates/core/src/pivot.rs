//! Pivot tables — the analyzer's output format (paper §V.B).
//!
//! "The final instruction mix data is output as a pivot table … Data can
//! be filtered, aggregated or broken down using different granularity
//! levels: by thread ID, binary module, symbol (function), basic block or
//! source line."

use hbbp_isa::{Instruction, Taxonomy};
use hbbp_program::StaticBlock;
use std::collections::BTreeMap;
use std::fmt;

/// A grouping axis for pivot tables.
#[derive(Debug, Clone)]
pub enum Field {
    /// Binary module (file) name.
    Module,
    /// Privilege ring (user/kernel).
    Ring,
    /// Symbol (function) name.
    Symbol,
    /// Basic block start address.
    Block,
    /// Instruction mnemonic.
    Mnemonic,
    /// ISA extension.
    Extension,
    /// Functional category.
    Category,
    /// Packing attribute.
    Packing,
    /// A custom taxonomy group (instructions outside every group fall into
    /// `"-"`).
    Taxon(Taxonomy),
}

impl Field {
    fn header(&self) -> &str {
        match self {
            Field::Module => "module",
            Field::Ring => "ring",
            Field::Symbol => "symbol",
            Field::Block => "block",
            Field::Mnemonic => "mnemonic",
            Field::Extension => "ext",
            Field::Category => "category",
            Field::Packing => "packing",
            Field::Taxon(t) => t.name(),
        }
    }

    fn key(&self, block: &StaticBlock, instr: &Instruction, module_name: &str) -> String {
        match self {
            Field::Module => module_name.to_owned(),
            Field::Ring => block.ring.name().to_owned(),
            Field::Symbol => block
                .symbol
                .clone()
                .unwrap_or_else(|| format!("{:#x}", block.start)),
            Field::Block => format!("{:#x}", block.start),
            Field::Mnemonic => instr.mnemonic().name().to_owned(),
            Field::Extension => instr.extension().name().to_owned(),
            Field::Category => instr.category().name().to_owned(),
            Field::Packing => instr.packing().name().to_owned(),
            Field::Taxon(tax) => tax.classify(instr).unwrap_or("-").to_owned(),
        }
    }
}

/// One pivot row: the grouping key plus the aggregated execution count.
#[derive(Debug, Clone, PartialEq)]
pub struct PivotRow {
    /// One entry per grouping field.
    pub keys: Vec<String>,
    /// Total executions attributed to this key combination.
    pub count: f64,
}

/// An aggregated pivot table.
#[derive(Debug, Clone)]
pub struct PivotTable {
    headers: Vec<String>,
    rows: Vec<PivotRow>,
    total: f64,
}

impl PivotTable {
    pub(crate) fn build<'a>(
        fields: &[Field],
        entries: impl Iterator<Item = (&'a StaticBlock, &'a Instruction, &'a str, f64)>,
    ) -> PivotTable {
        let mut agg: BTreeMap<Vec<String>, f64> = BTreeMap::new();
        let mut total = 0.0;
        for (block, instr, module_name, weight) in entries {
            let keys: Vec<String> = fields
                .iter()
                .map(|f| f.key(block, instr, module_name))
                .collect();
            *agg.entry(keys).or_insert(0.0) += weight;
            total += weight;
        }
        let mut rows: Vec<PivotRow> = agg
            .into_iter()
            .map(|(keys, count)| PivotRow { keys, count })
            .collect();
        rows.sort_by(|a, b| {
            b.count
                .partial_cmp(&a.count)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        PivotTable {
            headers: fields.iter().map(|f| f.header().to_owned()).collect(),
            rows,
            total,
        }
    }

    /// Column headers.
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// Rows, sorted by descending count.
    pub fn rows(&self) -> &[PivotRow] {
        &self.rows
    }

    /// Total executions across all rows.
    pub fn total(&self) -> f64 {
        self.total
    }

    /// The first `n` rows.
    pub fn top(&self, n: usize) -> &[PivotRow] {
        &self.rows[..n.min(self.rows.len())]
    }

    /// Count for an exact key combination.
    pub fn get(&self, keys: &[&str]) -> f64 {
        self.rows
            .iter()
            .find(|r| r.keys.iter().map(String::as_str).eq(keys.iter().copied()))
            .map(|r| r.count)
            .unwrap_or(0.0)
    }

    /// Render as CSV (machine processing, §V.B).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.headers.join(","));
        out.push_str(",count\n");
        for r in &self.rows {
            out.push_str(&r.keys.join(","));
            out.push_str(&format!(",{:.1}\n", r.count));
        }
        out
    }
}

impl fmt::Display for PivotTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let widths: Vec<usize> = self
            .headers
            .iter()
            .enumerate()
            .map(|(i, h)| {
                self.rows
                    .iter()
                    .map(|r| r.keys[i].len())
                    .chain([h.len()])
                    .max()
                    .unwrap_or(8)
            })
            .collect();
        for (h, w) in self.headers.iter().zip(&widths) {
            write!(f, "{h:<w$}  ")?;
        }
        writeln!(f, "{:>16} {:>7}", "count", "share")?;
        for r in &self.rows {
            for (k, w) in r.keys.iter().zip(&widths) {
                write!(f, "{k:<w$}  ")?;
            }
            let share = if self.total > 0.0 {
                r.count / self.total * 100.0
            } else {
                0.0
            };
            writeln!(f, "{:>16.0} {:>6.2}%", r.count, share)?;
        }
        write!(f, "total: {:.0}", self.total)
    }
}

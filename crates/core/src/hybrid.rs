//! HBBP — the hybrid combiner (paper §IV).
//!
//! "For each basic block, the data from EBS and LBR need to be combined to
//! produce a single BBEC. Concretely, we decide (for each basic block)
//! whether to use either EBS or LBR data." The decision rule is either the
//! paper's distilled cutoff ("for blocks with 18 instructions or less we
//! choose values from LBR, while for longer blocks we choose values from
//! EBS") or a trained classification tree.

use crate::{BlockFeatures, EbsEstimate, LbrEstimate};
use hbbp_mltree::DecisionTree;
use hbbp_program::{Bbec, BlockMap, DenseBbec};
use std::collections::HashMap;
use std::fmt;

/// The paper's distilled block-length cutoff.
pub const PAPER_CUTOFF: usize = 18;

/// Which PMU source a block's count is taken from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Choice {
    /// Event-based sampling data.
    Ebs,
    /// Last Branch Record data.
    Lbr,
}

impl fmt::Display for Choice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Choice::Ebs => "EBS",
            Choice::Lbr => "LBR",
        })
    }
}

/// A per-block decision rule.
#[derive(Debug, Clone)]
pub enum HybridRule {
    /// The paper's final rule: `block_len <= 18 → LBR`, else EBS.
    LengthCutoff(usize),
    /// A trained classification tree over [`crate::FEATURE_NAMES`]
    /// (class 0 = EBS, class 1 = LBR).
    Tree(DecisionTree),
    /// Ablation: always EBS.
    AlwaysEbs,
    /// Ablation: always LBR.
    AlwaysLbr,
}

impl HybridRule {
    /// The paper's published rule (Figure 1 distilled).
    pub fn paper_default() -> HybridRule {
        HybridRule::LengthCutoff(PAPER_CUTOFF)
    }

    /// Decide the data source for a block.
    pub fn choose(&self, features: &BlockFeatures) -> Choice {
        match self {
            HybridRule::LengthCutoff(cutoff) => {
                if features.block_len <= *cutoff as f64 {
                    Choice::Lbr
                } else {
                    Choice::Ebs
                }
            }
            HybridRule::Tree(tree) => {
                if tree.predict(&features.to_vec()) == 1 {
                    Choice::Lbr
                } else {
                    Choice::Ebs
                }
            }
            HybridRule::AlwaysEbs => Choice::Ebs,
            HybridRule::AlwaysLbr => Choice::Lbr,
        }
    }

    /// Decide the data source for the block at map index `bi`, extracting
    /// the full feature vector only when the rule actually consumes it (a
    /// tree). The cutoff and ablation rules read nothing but the block
    /// length, so the hot combine loop skips the per-instruction latency
    /// scan for them. Same result as `choose(&extract(..))` for every
    /// rule.
    fn choose_indexed(
        &self,
        block: &hbbp_program::StaticBlock,
        bi: usize,
        ebs: &EbsEstimate,
        lbr: &LbrEstimate,
    ) -> Choice {
        match self {
            HybridRule::LengthCutoff(cutoff) => {
                // block_len is compared as f64 in `choose`; both lengths
                // are far below 2^53, so the integer compare is identical.
                if block.len() <= *cutoff {
                    Choice::Lbr
                } else {
                    Choice::Ebs
                }
            }
            HybridRule::AlwaysEbs => Choice::Ebs,
            HybridRule::AlwaysLbr => Choice::Lbr,
            HybridRule::Tree(_) => {
                self.choose(&BlockFeatures::extract_indexed(block, bi, ebs, lbr))
            }
        }
    }
}

impl fmt::Display for HybridRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HybridRule::LengthCutoff(c) => write!(f, "block_len <= {c} -> LBR, else EBS"),
            HybridRule::Tree(t) => write!(
                f,
                "decision tree ({} leaves, depth {})",
                t.leaves(),
                t.depth()
            ),
            HybridRule::AlwaysEbs => write!(f, "always EBS"),
            HybridRule::AlwaysLbr => write!(f, "always LBR"),
        }
    }
}

/// The combined HBBP estimate.
#[derive(Debug, Clone)]
pub struct HbbpEstimate {
    /// Combined per-block execution counts (address-keyed).
    pub bbec: Bbec,
    /// The same counts in the block-index coordinate system of the map
    /// they were combined over.
    pub dense: DenseBbec,
    /// Per-block source choice (keyed by block start).
    pub choices: HashMap<u64, Choice>,
}

impl HbbpEstimate {
    /// Estimated executions of the block starting at `addr`.
    pub fn count(&self, addr: u64) -> f64 {
        self.bbec.get(addr)
    }

    /// Estimated executions of the block at map index `bi`.
    pub fn count_idx(&self, bi: usize) -> f64 {
        self.dense.get(bi)
    }

    /// How many blocks chose each source.
    pub fn choice_counts(&self) -> (usize, usize) {
        let ebs = self.choices.values().filter(|c| **c == Choice::Ebs).count();
        (ebs, self.choices.len() - ebs)
    }
}

/// Combine EBS and LBR estimates into the HBBP BBEC.
///
/// Only blocks with evidence from at least one source receive an entry —
/// exactly one of the two estimates is consulted per block, per the paper
/// ("HBBP does not fix the problems with the individual use of EBS and
/// LBR", §IV.A).
///
/// Works entirely in block-index coordinates: per-block counts and bias
/// flags come from the estimates' dense tables, so the per-block loop does
/// no hashing or tree walks. [`combine_ref`] keeps the seed address-keyed
/// version for equivalence testing.
pub fn combine(
    map: &BlockMap,
    ebs: &EbsEstimate,
    lbr: &LbrEstimate,
    rule: &HybridRule,
) -> HbbpEstimate {
    let mut dense = DenseBbec::for_map(map);
    let mut choices = HashMap::new();
    for (bi, block) in map.blocks().iter().enumerate() {
        let e = ebs.count_idx(bi);
        let l = lbr.count_idx(bi);
        if e == 0.0 && l == 0.0 {
            continue;
        }
        let choice = rule.choose_indexed(block, bi, ebs, lbr);
        let value = match choice {
            Choice::Ebs => e,
            Choice::Lbr => l,
        };
        choices.insert(block.start, choice);
        if value > 0.0 {
            dense.set(bi, value);
        }
    }
    HbbpEstimate {
        bbec: dense.to_bbec(map),
        dense,
        choices,
    }
}

/// The seed address-keyed implementation of [`combine`], kept as the
/// reference for equivalence property tests and the `BENCH_pipeline.json`
/// perf trajectory. Produces bit-identical results.
pub fn combine_ref(
    map: &BlockMap,
    ebs: &EbsEstimate,
    lbr: &LbrEstimate,
    rule: &HybridRule,
) -> HbbpEstimate {
    let mut bbec = Bbec::new();
    let mut choices = HashMap::new();
    for block in map.blocks() {
        let e = ebs.count(block.start);
        let l = lbr.count(block.start);
        if e == 0.0 && l == 0.0 {
            continue;
        }
        let features = BlockFeatures::extract(block, ebs, lbr);
        let choice = rule.choose(&features);
        let value = match choice {
            Choice::Ebs => e,
            Choice::Lbr => l,
        };
        choices.insert(block.start, choice);
        if value > 0.0 {
            bbec.set(block.start, value);
        }
    }
    let dense = DenseBbec::from_bbec(&bbec, map);
    HbbpEstimate {
        bbec,
        dense,
        choices,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ebs, lbr, LbrOptions};
    use hbbp_isa::instruction::build;
    use hbbp_isa::{Mnemonic, Reg};
    use hbbp_perf::{PerfData, PerfRecord, PerfSample};
    use hbbp_program::{BlockMap, ImageView, Layout, ProgramBuilder, Ring, TextImage};
    use hbbp_sim::{EventSpec, LbrEntry};

    /// Two loops: a short block (4+1) and a long one (22+1).
    struct Fixture {
        map: BlockMap,
        short_start: u64,
        short_term: u64,
        long_start: u64,
        long_term: u64,
    }

    fn fixture() -> Fixture {
        let mut b = ProgramBuilder::new("f");
        let m = b.module("f.bin", Ring::User);
        let f = b.function(m, "main");
        let s = b.block(f);
        let mid = b.block(f);
        let l = b.block(f);
        let exit = b.block(f);
        for i in 0..4 {
            b.push(s, build::rr(Mnemonic::Add, Reg::gpr(i % 8), Reg::gpr(9)));
        }
        b.terminate_branch(s, Mnemonic::Jnz, s, mid);
        b.push(mid, build::rr(Mnemonic::Mov, Reg::gpr(0), Reg::gpr(1)));
        b.terminate_jump(mid, l);
        for i in 0..22 {
            b.push(l, build::rr(Mnemonic::Sub, Reg::gpr(i % 8), Reg::gpr(9)));
        }
        b.terminate_branch(l, Mnemonic::Jnz, l, exit);
        b.terminate_exit(exit, build::bare(Mnemonic::Syscall));
        let mut p = b.build(f).unwrap();
        let layout = Layout::compute(&mut p).unwrap();
        let image = TextImage::encode(&p, &layout, p.modules()[0].id(), ImageView::Disk);
        let map = BlockMap::discover(&[image], layout.symbols()).unwrap();
        Fixture {
            short_start: layout.block_start(s),
            short_term: layout.terminator_addr(s),
            long_start: layout.block_start(l),
            long_term: layout.terminator_addr(l),
            map,
        }
    }

    fn data_with_both(fx: &Fixture) -> PerfData {
        let mut data = PerfData::new();
        // EBS: 10 samples in short block, 10 in long.
        for i in 0..20 {
            let ip = if i % 2 == 0 {
                fx.short_start
            } else {
                fx.long_start
            };
            data.push(PerfRecord::Sample(PerfSample {
                counter: 0,
                event: EventSpec::inst_retired_prec_dist(),
                ip,
                time_cycles: 0,
                pid: 1,
                tid: 1,
                ring: Ring::User,
                lbr: vec![],
            }));
        }
        // LBR: stacks of short-loop and long-loop iterations.
        for i in 0..10 {
            let (from, to) = if i % 2 == 0 {
                (fx.short_term, fx.short_start)
            } else {
                (fx.long_term, fx.long_start)
            };
            data.push(PerfRecord::Sample(PerfSample {
                counter: 1,
                event: EventSpec::br_inst_retired_near_taken(),
                ip: 0,
                time_cycles: 0,
                pid: 1,
                tid: 1,
                ring: Ring::User,
                lbr: vec![LbrEntry { from, to }; 5],
            }));
        }
        data
    }

    #[test]
    fn paper_rule_routes_by_length() {
        let fx = fixture();
        let data = data_with_both(&fx);
        let e = ebs::estimate(&data, &fx.map, 1000);
        let l = lbr::estimate(&data, &fx.map, 300, &LbrOptions::default());
        let h = combine(&fx.map, &e, &l, &HybridRule::paper_default());
        assert_eq!(h.choices[&fx.short_start], Choice::Lbr);
        assert_eq!(h.choices[&fx.long_start], Choice::Ebs);
        assert_eq!(h.count(fx.short_start), l.count(fx.short_start));
        assert_eq!(h.count(fx.long_start), e.count(fx.long_start));
        let (n_ebs, n_lbr) = h.choice_counts();
        assert!(n_ebs >= 1 && n_lbr >= 1);
    }

    #[test]
    fn ablation_rules() {
        let fx = fixture();
        let data = data_with_both(&fx);
        let e = ebs::estimate(&data, &fx.map, 1000);
        let l = lbr::estimate(&data, &fx.map, 300, &LbrOptions::default());
        let he = combine(&fx.map, &e, &l, &HybridRule::AlwaysEbs);
        assert_eq!(he.count(fx.short_start), e.count(fx.short_start));
        let hl = combine(&fx.map, &e, &l, &HybridRule::AlwaysLbr);
        assert_eq!(hl.count(fx.long_start), l.count(fx.long_start));
    }

    #[test]
    fn blocks_without_evidence_are_absent() {
        let fx = fixture();
        let empty = PerfData::new();
        let e = ebs::estimate(&empty, &fx.map, 1000);
        let l = lbr::estimate(&empty, &fx.map, 300, &LbrOptions::default());
        let h = combine(&fx.map, &e, &l, &HybridRule::paper_default());
        assert!(h.bbec.is_empty());
        assert!(h.choices.is_empty());
    }

    #[test]
    fn tree_rule_equivalent_to_cutoff() {
        use hbbp_mltree::{Dataset, DecisionTree, TrainConfig};
        // Train a tiny tree that reproduces the length cutoff.
        let mut d = Dataset::new(crate::FEATURE_NAMES, ["EBS", "LBR"]);
        for len in 1..=40 {
            let feats = vec![len as f64, 0.0, 3.0, 0.0, 1.0, 1.0];
            d.push(feats, usize::from(len <= 18)).unwrap();
        }
        let tree = DecisionTree::train(&d, &TrainConfig::default()).unwrap();
        let rule = HybridRule::Tree(tree);

        let fx = fixture();
        let data = data_with_both(&fx);
        let e = ebs::estimate(&data, &fx.map, 1000);
        let l = lbr::estimate(&data, &fx.map, 300, &LbrOptions::default());
        let h_tree = combine(&fx.map, &e, &l, &rule);
        let h_cut = combine(&fx.map, &e, &l, &HybridRule::paper_default());
        assert_eq!(h_tree.choices, h_cut.choices);
    }

    #[test]
    fn rule_display() {
        assert!(HybridRule::paper_default().to_string().contains("18"));
        assert!(HybridRule::AlwaysEbs.to_string().contains("EBS"));
    }
}

//! Online (streaming) analysis with optional windowing.
//!
//! [`crate::Analyzer::analyze_fused`] needs the whole recording in memory;
//! [`OnlineAnalyzer`] consumes one record at a time — straight off a
//! collection session or a [`hbbp_perf::StreamDecoder`] — and keeps only
//! what estimation fundamentally requires: the per-branch pass-1
//! statistics plus owned copies of the LBR stacks of the **current
//! window**. Memory is bounded by window size, not run length, which is
//! what makes long-running, phase-varying workloads profileable at all.
//!
//! Records arrive either owned ([`OnlineAnalyzer::push_record`] /
//! [`OnlineAnalyzer::push_owned`]) or as zero-copy
//! [`hbbp_perf::RecordView`]s ([`OnlineAnalyzer::push_view`]) — the fused
//! ingest path, where LBR branch pairs are parsed straight out of the
//! decoder's wire buffer into pooled stack buffers and no owned
//! [`PerfRecord`] ever exists. As a [`hbbp_perf::ViewSink`] the analyzer
//! plugs directly into [`hbbp_perf::StreamDecoder::decode_into`]. All
//! paths are pinned bit-identical by the property suite.
//!
//! Two consumption modes:
//!
//! * **Unwindowed** — one analysis of the whole stream. Pinned
//!   bit-identical to [`crate::Analyzer::analyze_fused`] by the property
//!   suite in `crates/core/tests/streaming_equivalence.rs`, under any
//!   chunking of the record stream.
//! * **Windowed** ([`Window::Samples`] / [`Window::TimeCycles`]) — each
//!   closed window emits a [`WindowedAnalysis`]: the three estimates, the
//!   HBBP instruction mix, raw sample tallies and the window bounds. A
//!   window is analyzed exactly as if its records were a recording of
//!   their own, so per-window results compose into instruction-mix
//!   **timelines** (see the `mix_timeline` experiment in `hbbp-bench`).
//!
//! ```
//! use hbbp_core::{Analyzer, HybridRule, OnlineAnalyzer, SamplingPeriods};
//! use hbbp_perf::PerfData;
//! # fn demo(analyzer: &Analyzer, data: &PerfData) {
//! let periods = SamplingPeriods { ebs: 1009, lbr: 211 };
//! let mut online = OnlineAnalyzer::new(analyzer, periods, HybridRule::paper_default());
//! for record in data.records() {
//!     online.push_record(record);
//! }
//! let analysis = online.finish().into_analysis().unwrap();
//! # let _ = analysis;
//! # }
//! ```

use crate::ebs::EbsAccum;
use crate::lbr::LbrStats;
use crate::{hybrid, Analysis, Analyzer, HybridRule, SamplingPeriods};
use hbbp_perf::{PerfRecord, RecordSink, RecordView, ViewSink};
use hbbp_program::MnemonicMix;
use hbbp_sim::{EventSpec, LbrEntry};

/// Windowing policy for online analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Window {
    /// Close a window after this many profiled samples (samples of the two
    /// collector events; other records do not advance the window).
    Samples(u64),
    /// Fixed wall-time windows of this width in core cycles, aligned at
    /// cycle 0: a sample with timestamp `t` belongs to window `t / width`.
    /// Empty windows (time ranges with no samples) are not emitted.
    TimeCycles(u64),
}

/// One closed window's analysis: a self-contained per-phase view of the
/// stream.
#[derive(Debug, Clone)]
pub struct WindowedAnalysis {
    /// Emission order (0-based).
    pub index: usize,
    /// Window start in core cycles — nominal (`k * width`) for
    /// [`Window::TimeCycles`], the first sample's timestamp otherwise.
    pub start_cycles: u64,
    /// Window end in core cycles — nominal (exclusive, `(k + 1) * width`)
    /// for [`Window::TimeCycles`], the last sample's timestamp otherwise.
    pub end_cycles: u64,
    /// EBS-event samples observed in the window (mapped or not).
    pub ebs_samples: u64,
    /// LBR-event samples observed in the window (usable stacks or not).
    pub lbr_samples: u64,
    /// The three estimates over exactly this window's samples.
    pub analysis: Analysis,
    /// HBBP instruction mix of the window.
    pub mix: MnemonicMix,
}

/// Everything an online run produces.
#[derive(Debug, Clone)]
pub struct OnlineOutcome {
    /// The emitted windows, in order. Exactly one for an unwindowed run.
    /// Windows drained early through
    /// [`OnlineAnalyzer::take_closed_windows`] are not repeated here —
    /// only the windows closed since the last drain remain.
    pub windows: Vec<WindowedAnalysis>,
    /// Whether the run used a [`Window`] policy (per-window analyses) or
    /// produced one whole-stream analysis.
    pub windowed: bool,
    /// Records pushed (all types).
    pub records_seen: u64,
    /// Profiled samples pushed (both collector events).
    pub samples_seen: u64,
    /// High-water mark of buffered LBR stack entries — the analyzer's
    /// dominant memory term; bounded by the densest window, not the run.
    pub peak_buffered_entries: usize,
    /// Windows closed over the whole run, including windows drained early
    /// through [`OnlineAnalyzer::take_closed_windows`] (which
    /// `windows.len()` would miss).
    pub windows_closed: usize,
    /// Stack buffers obtained by recycling a retired one from the pool.
    pub pool_hits: u64,
    /// Stack buffers that had to be freshly allocated (pool empty).
    pub pool_misses: u64,
}

impl OnlineOutcome {
    /// The single whole-stream analysis of an **unwindowed** run; `None`
    /// when the run was windowed (which emits per-window analyses
    /// instead, even when only one window happened to close).
    pub fn into_analysis(self) -> Option<Analysis> {
        if self.windowed {
            return None;
        }
        let mut windows = self.windows;
        debug_assert_eq!(windows.len(), 1, "unwindowed run emits one window");
        windows.pop().map(|w| w.analysis)
    }
}

/// Where an incoming LBR stack lives: borrowed (cloned into a pooled
/// buffer when kept), carved out of an owned record (moved when kept,
/// dropped otherwise), or already in a pooled buffer filled from a
/// zero-copy view (returned to the pool when not kept).
enum StackIn<'s> {
    Borrowed(&'s [LbrEntry]),
    Owned(Vec<LbrEntry>),
    Pooled(Vec<LbrEntry>),
}

/// Streaming analyzer: [`push_record`](OnlineAnalyzer::push_record) the
/// stream in any chunking, then [`finish`](OnlineAnalyzer::finish).
///
/// Also a [`RecordSink`], so it can terminate
/// [`hbbp_perf::PerfSession::record_streaming`] directly — collection into
/// analysis with no intermediate [`hbbp_perf::PerfData`] at all.
#[derive(Debug)]
pub struct OnlineAnalyzer<'a> {
    analyzer: &'a Analyzer,
    rule: HybridRule,
    window: Option<Window>,
    ebs_event: EventSpec,
    lbr_event: EventSpec,
    // Current-window accumulators.
    ebs: EbsAccum<'a>,
    lbr: LbrStats<'a>,
    stacks: Vec<Vec<LbrEntry>>,
    /// Retired stack buffers recycled across windows (and across rejected
    /// view-path stacks): [`close_window`](OnlineAnalyzer::close_window)
    /// drains into here instead of freeing, so a long windowed run stops
    /// allocating per stack once past its densest window.
    stack_pool: Vec<Vec<LbrEntry>>,
    // Current-window bookkeeping.
    win_samples: u64,
    win_ebs: u64,
    win_lbr: u64,
    win_first_time: Option<u64>,
    win_last_time: u64,
    /// For [`Window::TimeCycles`]: the `t / width` key of the current
    /// window, set by its first sample.
    time_key: Option<u64>,
    buffered_entries: usize,
    // Whole-run bookkeeping.
    windows: Vec<WindowedAnalysis>,
    /// Windows closed over the whole run, including ones already drained
    /// through [`OnlineAnalyzer::take_closed_windows`] — the source of the
    /// monotonically increasing `WindowedAnalysis::index`.
    emitted: usize,
    records_seen: u64,
    samples_seen: u64,
    peak_buffered_entries: usize,
    pool_hits: u64,
    pool_misses: u64,
}

impl<'a> OnlineAnalyzer<'a> {
    /// Unwindowed online analyzer (one whole-stream analysis,
    /// bit-identical to [`Analyzer::analyze_fused`]).
    pub fn new(
        analyzer: &'a Analyzer,
        periods: SamplingPeriods,
        rule: HybridRule,
    ) -> OnlineAnalyzer<'a> {
        let map = analyzer.map();
        OnlineAnalyzer {
            ebs: EbsAccum::new(map, periods.ebs),
            lbr: LbrStats::new(map, periods.lbr, analyzer.lbr_options().clone()),
            analyzer,
            rule,
            window: None,
            ebs_event: EventSpec::inst_retired_prec_dist(),
            lbr_event: EventSpec::br_inst_retired_near_taken(),
            stacks: Vec::new(),
            stack_pool: Vec::new(),
            win_samples: 0,
            win_ebs: 0,
            win_lbr: 0,
            win_first_time: None,
            win_last_time: 0,
            time_key: None,
            buffered_entries: 0,
            windows: Vec::new(),
            emitted: 0,
            records_seen: 0,
            samples_seen: 0,
            peak_buffered_entries: 0,
            pool_hits: 0,
            pool_misses: 0,
        }
    }

    /// Emit per-window analyses under the given policy.
    ///
    /// # Panics
    ///
    /// Panics on a zero-length window.
    pub fn with_window(mut self, window: Window) -> OnlineAnalyzer<'a> {
        match window {
            Window::Samples(n) => assert!(n > 0, "window needs at least one sample"),
            Window::TimeCycles(w) => assert!(w > 0, "window needs a nonzero width"),
        }
        self.window = Some(window);
        self
    }

    /// Windows closed so far (the current, still-open window excluded),
    /// including windows already drained through
    /// [`take_closed_windows`](OnlineAnalyzer::take_closed_windows).
    pub fn windows_closed(&self) -> usize {
        self.emitted
    }

    /// Drain the windows closed since the last drain — the **flush hook**
    /// for long-running consumers (e.g. a collection daemon periodically
    /// persisting timeline records) that must not hold every closed window
    /// until [`finish`](OnlineAnalyzer::finish).
    ///
    /// Windows drained here no longer appear in
    /// [`OnlineOutcome::windows`]; concatenating every drain with the
    /// final outcome's windows reproduces the undrained run exactly
    /// (indices stay monotonic across drains). The current, still-open
    /// window is never drained.
    pub fn take_closed_windows(&mut self) -> Vec<WindowedAnalysis> {
        std::mem::take(&mut self.windows)
    }

    /// Consume one record by reference (LBR stacks are copied into the
    /// window buffer; use [`push_owned`](OnlineAnalyzer::push_owned) when
    /// the record can be given away, e.g. from a decoder or a sink).
    pub fn push_record(&mut self, record: &PerfRecord) {
        self.records_seen += 1;
        if let PerfRecord::Sample(s) = record {
            self.ingest(s.event, s.ip, s.time_cycles, StackIn::Borrowed(&s.lbr));
        }
    }

    /// Consume one owned record, moving its LBR stack into the window
    /// buffer instead of cloning it.
    pub fn push_owned(&mut self, record: PerfRecord) {
        self.records_seen += 1;
        if let PerfRecord::Sample(mut s) = record {
            let lbr = std::mem::take(&mut s.lbr);
            self.ingest(s.event, s.ip, s.time_cycles, StackIn::Owned(lbr));
        }
    }

    /// Consume one zero-copy record view ([`hbbp_perf::SampleView`] LBR
    /// entries are parsed straight out of the wire buffer into a pooled
    /// stack buffer — the fused ingest path never materializes an owned
    /// `PerfRecord`). Pinned bit-identical to
    /// [`push_owned`](OnlineAnalyzer::push_owned) of the same record by
    /// `crates/core/tests/streaming_equivalence.rs`.
    pub fn push_view(&mut self, view: &RecordView<'_>) {
        self.records_seen += 1;
        if let RecordView::Sample(s) = view {
            if s.event == self.lbr_event {
                let mut buf = self.take_pooled();
                buf.extend(s.lbr_entries());
                self.ingest(s.event, s.ip, s.time_cycles, StackIn::Pooled(buf));
            } else if s.event == self.ebs_event {
                // The EBS estimator discards LBR stacks (paper §V.A), so
                // the view's entries are never even parsed.
                self.ingest(s.event, s.ip, s.time_cycles, StackIn::Borrowed(&[]));
            }
        }
    }

    /// A cleared stack buffer, reusing a retired one when available.
    fn take_pooled(&mut self) -> Vec<LbrEntry> {
        match self.stack_pool.pop() {
            Some(buf) => {
                self.pool_hits += 1;
                buf
            }
            None => {
                self.pool_misses += 1;
                Vec::new()
            }
        }
    }

    fn ingest(&mut self, event: EventSpec, ip: u64, time_cycles: u64, stack: StackIn<'_>) {
        let is_ebs = event == self.ebs_event;
        let is_lbr = event == self.lbr_event;
        if !is_ebs && !is_lbr {
            return;
        }
        self.roll_window(time_cycles);
        self.samples_seen += 1;
        self.win_samples += 1;
        self.win_first_time.get_or_insert(time_cycles);
        self.win_last_time = time_cycles;
        if is_ebs {
            self.win_ebs += 1;
            self.ebs.observe_ip(ip);
        } else {
            self.win_lbr += 1;
            let entries: &[LbrEntry] = match &stack {
                StackIn::Borrowed(e) => e,
                StackIn::Owned(e) | StackIn::Pooled(e) => e,
            };
            if self.lbr.observe_stack(entries) {
                let kept: Vec<LbrEntry> = match stack {
                    StackIn::Borrowed(e) => {
                        let mut buf = self.take_pooled();
                        buf.extend_from_slice(e);
                        buf
                    }
                    StackIn::Owned(e) | StackIn::Pooled(e) => e,
                };
                self.buffered_entries += kept.len();
                self.peak_buffered_entries = self.peak_buffered_entries.max(self.buffered_entries);
                self.stacks.push(kept);
            } else if let StackIn::Pooled(mut buf) = stack {
                buf.clear();
                self.stack_pool.push(buf);
            }
        }
    }

    /// Close the current window if `time` falls outside it.
    fn roll_window(&mut self, time: u64) {
        match self.window {
            None => {}
            Some(Window::Samples(n)) if self.win_samples >= n => self.close_window(),
            Some(Window::Samples(_)) => {}
            Some(Window::TimeCycles(width)) => {
                let key = time / width;
                if self.win_samples > 0 && self.time_key != Some(key) {
                    self.close_window();
                }
                self.time_key = Some(key);
            }
        }
    }

    /// Finish the current accumulators into a [`WindowedAnalysis`] and
    /// reset them in place — accumulator tallies, caches and stack
    /// buffers are all recycled into the next window instead of being
    /// reallocated per window.
    fn close_window(&mut self) {
        let map = self.analyzer.map();
        let ebs = self.ebs.take_estimate();
        let lbr = self
            .lbr
            .take_estimate(self.stacks.iter().map(|s| s.as_slice()));
        for mut stack in self.stacks.drain(..) {
            stack.clear();
            self.stack_pool.push(stack);
        }
        let hbbp = hybrid::combine(map, &ebs, &lbr, &self.rule);
        let analysis = Analysis { ebs, lbr, hbbp };
        let mix = self.analyzer.mix(&analysis.hbbp.bbec);
        let (start_cycles, end_cycles) = match (self.window, self.time_key) {
            (Some(Window::TimeCycles(width)), Some(key)) => (key * width, (key + 1) * width),
            _ => (self.win_first_time.unwrap_or(0), self.win_last_time),
        };
        self.windows.push(WindowedAnalysis {
            index: self.emitted,
            start_cycles,
            end_cycles,
            ebs_samples: self.win_ebs,
            lbr_samples: self.win_lbr,
            analysis,
            mix,
        });
        self.emitted += 1;
        self.win_samples = 0;
        self.win_ebs = 0;
        self.win_lbr = 0;
        self.win_first_time = None;
        self.win_last_time = 0;
        self.time_key = None;
        self.buffered_entries = 0;
    }

    /// End the stream: close the open window (an unwindowed run always
    /// emits its single whole-stream window, even when empty) and return
    /// everything produced.
    pub fn finish(mut self) -> OnlineOutcome {
        if self.window.is_none() || self.win_samples > 0 {
            self.close_window();
        }
        OnlineOutcome {
            windows: self.windows,
            windowed: self.window.is_some(),
            records_seen: self.records_seen,
            samples_seen: self.samples_seen,
            peak_buffered_entries: self.peak_buffered_entries,
            windows_closed: self.emitted,
            pool_hits: self.pool_hits,
            pool_misses: self.pool_misses,
        }
    }
}

impl RecordSink for OnlineAnalyzer<'_> {
    fn record(&mut self, record: PerfRecord) {
        self.push_owned(record);
    }
}

impl ViewSink for OnlineAnalyzer<'_> {
    fn view(&mut self, view: &RecordView<'_>) {
        self.push_view(view);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbbp_isa::instruction::build;
    use hbbp_isa::{Mnemonic, Reg};
    use hbbp_perf::{PerfData, PerfSample};
    use hbbp_program::{ImageView, Layout, ProgramBuilder, Ring, TextImage};
    use std::collections::HashMap;

    /// Short loop + long loop + exit, with known addresses.
    fn fixture() -> (Analyzer, u64, u64, u64, u64) {
        let mut b = ProgramBuilder::new("f");
        let m = b.module("f.bin", Ring::User);
        let f = b.function(m, "main");
        let s = b.block(f);
        let l = b.block(f);
        let exit = b.block(f);
        for i in 0..4 {
            b.push(s, build::rr(Mnemonic::Add, Reg::gpr(i), Reg::gpr(9)));
        }
        b.terminate_branch(s, Mnemonic::Jnz, s, l);
        for i in 0..22 {
            b.push(l, build::rr(Mnemonic::Sub, Reg::gpr(i % 8), Reg::gpr(9)));
        }
        b.terminate_branch(l, Mnemonic::Jnz, l, exit);
        b.terminate_exit(exit, build::bare(Mnemonic::Syscall));
        let mut p = b.build(f).unwrap();
        let layout = Layout::compute(&mut p).unwrap();
        let images: Vec<TextImage> = p
            .modules()
            .iter()
            .map(|m| TextImage::encode(&p, &layout, m.id(), ImageView::Disk))
            .collect();
        let analyzer = Analyzer::from_images(&images, layout.symbols()).unwrap();
        (
            analyzer,
            layout.block_start(s),
            layout.terminator_addr(s),
            layout.block_start(l),
            layout.terminator_addr(l),
        )
    }

    fn ebs_at(ip: u64, t: u64) -> PerfRecord {
        PerfRecord::Sample(PerfSample {
            counter: 0,
            event: EventSpec::inst_retired_prec_dist(),
            ip,
            time_cycles: t,
            pid: 1,
            tid: 1,
            ring: Ring::User,
            lbr: vec![],
        })
    }

    fn lbr_at(from: u64, to: u64, n: usize, t: u64) -> PerfRecord {
        PerfRecord::Sample(PerfSample {
            counter: 1,
            event: EventSpec::br_inst_retired_near_taken(),
            ip: 0,
            time_cycles: t,
            pid: 1,
            tid: 1,
            ring: Ring::User,
            lbr: vec![LbrEntry { from, to }; n],
        })
    }

    fn periods() -> SamplingPeriods {
        SamplingPeriods {
            ebs: 1000,
            lbr: 300,
        }
    }

    fn mixed_stream(fx: &(Analyzer, u64, u64, u64, u64)) -> PerfData {
        let (_, s_start, s_term, l_start, _) = *fx;
        let mut data = PerfData::new();
        data.push(PerfRecord::Comm {
            pid: 1,
            tid: 1,
            name: "f".into(),
        });
        for i in 0..30u64 {
            data.push(ebs_at(if i % 2 == 0 { s_start } else { l_start }, i * 10));
            if i % 3 == 0 {
                data.push(lbr_at(s_term, s_start, 5, i * 10 + 1));
            }
        }
        data.push(PerfRecord::Exit {
            pid: 1,
            time_cycles: 400,
        });
        data
    }

    #[test]
    fn unwindowed_matches_analyze_fused() {
        let fx = fixture();
        let data = mixed_stream(&fx);
        let analyzer = &fx.0;
        let batch = analyzer.analyze_fused(&data, periods(), &HybridRule::paper_default());
        let mut online = OnlineAnalyzer::new(analyzer, periods(), HybridRule::paper_default());
        for r in data.records() {
            online.push_record(r);
        }
        let outcome = online.finish();
        assert_eq!(outcome.records_seen, data.len() as u64);
        let analysis = outcome.into_analysis().expect("unwindowed");
        assert_eq!(analysis.ebs.bbec, batch.ebs.bbec);
        assert_eq!(analysis.lbr.bbec, batch.lbr.bbec);
        assert_eq!(analysis.hbbp.bbec, batch.hbbp.bbec);
        assert_eq!(analysis.hbbp.choices, batch.hbbp.choices);
    }

    #[test]
    fn push_owned_matches_push_record() {
        let fx = fixture();
        let data = mixed_stream(&fx);
        let analyzer = &fx.0;
        let run = |owned: bool| {
            let mut online = OnlineAnalyzer::new(analyzer, periods(), HybridRule::paper_default());
            for r in data.records() {
                if owned {
                    online.push_owned(r.clone());
                } else {
                    online.push_record(r);
                }
            }
            online.finish().into_analysis().unwrap()
        };
        let by_ref = run(false);
        let by_val = run(true);
        assert_eq!(by_ref.hbbp.bbec, by_val.hbbp.bbec);
        assert_eq!(by_ref.lbr.biased_blocks, by_val.lbr.biased_blocks);
    }

    #[test]
    fn empty_stream_yields_one_empty_window() {
        let fx = fixture();
        let online = OnlineAnalyzer::new(&fx.0, periods(), HybridRule::paper_default());
        let outcome = online.finish();
        assert_eq!(outcome.windows.len(), 1);
        assert_eq!(outcome.samples_seen, 0);
        let analysis = outcome.into_analysis().unwrap();
        assert!(analysis.hbbp.bbec.is_empty());
    }

    #[test]
    fn windowed_run_with_one_window_is_still_windowed() {
        // A windowed run whose samples all land in one window must not be
        // mistaken for an unwindowed whole-stream analysis.
        let fx = fixture();
        let (_, s_start, ..) = fx;
        let mut online = OnlineAnalyzer::new(&fx.0, periods(), HybridRule::paper_default())
            .with_window(Window::TimeCycles(1_000_000));
        online.push_record(&ebs_at(s_start, 5));
        let outcome = online.finish();
        assert!(outcome.windowed);
        assert_eq!(outcome.windows.len(), 1);
        assert!(outcome.into_analysis().is_none());
    }

    #[test]
    fn sample_count_windows_partition_the_stream() {
        let fx = fixture();
        let (_, s_start, ..) = fx;
        let analyzer = &fx.0;
        let mut online = OnlineAnalyzer::new(analyzer, periods(), HybridRule::paper_default())
            .with_window(Window::Samples(7));
        for i in 0..23u64 {
            online.push_record(&ebs_at(s_start, i));
        }
        let outcome = online.finish();
        // 23 samples in windows of 7: 7 + 7 + 7 + 2.
        assert_eq!(outcome.windows.len(), 4);
        let sizes: Vec<u64> = outcome.windows.iter().map(|w| w.ebs_samples).collect();
        assert_eq!(sizes, vec![7, 7, 7, 2]);
        let total: u64 = sizes.iter().sum();
        assert_eq!(total, outcome.samples_seen);
    }

    #[test]
    fn time_windows_have_nominal_bounds_and_skip_gaps() {
        let fx = fixture();
        let (_, s_start, ..) = fx;
        let analyzer = &fx.0;
        let mut online = OnlineAnalyzer::new(analyzer, periods(), HybridRule::paper_default())
            .with_window(Window::TimeCycles(100));
        // Samples in windows 0, 0, 2 (window 1 is an empty gap).
        for t in [10u64, 90, 250] {
            online.push_record(&ebs_at(s_start, t));
        }
        let outcome = online.finish();
        assert_eq!(outcome.windows.len(), 2);
        assert_eq!(
            (
                outcome.windows[0].start_cycles,
                outcome.windows[0].end_cycles
            ),
            (0, 100)
        );
        assert_eq!(
            (
                outcome.windows[1].start_cycles,
                outcome.windows[1].end_cycles
            ),
            (200, 300)
        );
        assert_eq!(outcome.windows[0].ebs_samples, 2);
        assert_eq!(outcome.windows[1].ebs_samples, 1);
    }

    #[test]
    fn windowed_mixes_reflect_per_phase_content() {
        let fx = fixture();
        let (_, s_start, s_term, l_start, l_term) = fx;
        let analyzer = &fx.0;
        let mut online = OnlineAnalyzer::new(analyzer, periods(), HybridRule::paper_default())
            .with_window(Window::TimeCycles(1000));
        // Phase 1 (t < 1000): short-loop activity (ADDs via LBR).
        for i in 0..20u64 {
            online.push_record(&lbr_at(s_term, s_start, 5, i * 40));
        }
        // Phase 2 (t >= 1000): long-loop activity (SUBs via EBS).
        for i in 0..20u64 {
            online.push_record(&ebs_at(l_start, 1000 + i * 40));
        }
        // LBR evidence for the long block too, so the hybrid has choices.
        online.push_record(&lbr_at(l_term, l_start, 5, 1990));
        let outcome = online.finish();
        assert_eq!(outcome.windows.len(), 2);
        let w0 = &outcome.windows[0];
        let w1 = &outcome.windows[1];
        assert!(w0.mix.get(Mnemonic::Add) > 0.0);
        assert_eq!(w0.mix.get(Mnemonic::Sub), 0.0);
        assert!(w1.mix.get(Mnemonic::Sub) > 0.0);
        assert_eq!(w1.mix.get(Mnemonic::Add), 0.0);
    }

    #[test]
    fn peak_buffer_is_bounded_by_window_not_run() {
        let fx = fixture();
        let (_, s_start, s_term, ..) = fx;
        let analyzer = &fx.0;
        let run = |window: Option<Window>| {
            let mut online = OnlineAnalyzer::new(analyzer, periods(), HybridRule::paper_default());
            if let Some(w) = window {
                online = online.with_window(w);
            }
            for i in 0..200u64 {
                online.push_record(&lbr_at(s_term, s_start, 8, i * 10));
            }
            online.finish().peak_buffered_entries
        };
        let unbounded = run(None);
        let windowed = run(Some(Window::Samples(10)));
        assert_eq!(unbounded, 200 * 8);
        assert_eq!(windowed, 10 * 8);
    }

    #[test]
    fn record_sink_feeds_the_analyzer() {
        let fx = fixture();
        let data = mixed_stream(&fx);
        let analyzer = &fx.0;
        let mut online = OnlineAnalyzer::new(analyzer, periods(), HybridRule::paper_default());
        {
            let sink: &mut dyn RecordSink = &mut online;
            for r in data.records() {
                sink.record(r.clone());
            }
        }
        let outcome = online.finish();
        assert_eq!(outcome.records_seen, data.len() as u64);
    }

    #[test]
    fn draining_closed_windows_preserves_the_run() {
        // Flush-hook invariant: drains interleaved with pushes, then the
        // final outcome, reproduce exactly the undrained window sequence.
        let fx = fixture();
        let (_, s_start, ..) = fx;
        let analyzer = &fx.0;
        let run_undrained = || {
            let mut online = OnlineAnalyzer::new(analyzer, periods(), HybridRule::paper_default())
                .with_window(Window::Samples(5));
            for i in 0..23u64 {
                online.push_record(&ebs_at(s_start, i));
            }
            online.finish()
        };
        let full = run_undrained();

        let mut online = OnlineAnalyzer::new(analyzer, periods(), HybridRule::paper_default())
            .with_window(Window::Samples(5));
        let mut drained = Vec::new();
        for i in 0..23u64 {
            online.push_record(&ebs_at(s_start, i));
            if i % 7 == 0 {
                drained.extend(online.take_closed_windows());
            }
        }
        assert_eq!(online.windows_closed(), 4, "counter includes drained");
        let outcome = online.finish();
        drained.extend(outcome.windows);
        assert_eq!(drained.len(), full.windows.len());
        for (d, f) in drained.iter().zip(&full.windows) {
            assert_eq!(d.index, f.index);
            assert_eq!(d.ebs_samples, f.ebs_samples);
            assert_eq!(
                (d.start_cycles, d.end_cycles),
                (f.start_cycles, f.end_cycles)
            );
            assert_eq!(d.analysis.hbbp.bbec, f.analysis.hbbp.bbec);
            assert_eq!(d.mix, f.mix);
        }
    }

    #[test]
    fn draining_an_unwindowed_run_yields_nothing_early() {
        let fx = fixture();
        let (_, s_start, ..) = fx;
        let mut online = OnlineAnalyzer::new(&fx.0, periods(), HybridRule::paper_default());
        for i in 0..10u64 {
            online.push_record(&ebs_at(s_start, i));
        }
        assert!(online.take_closed_windows().is_empty());
        assert_eq!(online.windows_closed(), 0);
        // The whole-stream window still closes at finish.
        let analysis = online.finish().into_analysis().expect("unwindowed");
        assert!(!analysis.ebs.bbec.is_empty());
    }

    #[test]
    fn from_map_analyzer_works_online() {
        // OnlineAnalyzer over an Analyzer built from an existing map.
        let fx = fixture();
        let analyzer = Analyzer::from_map(fx.0.map().clone(), HashMap::new());
        let data = mixed_stream(&fx);
        let mut online = OnlineAnalyzer::new(&analyzer, periods(), HybridRule::paper_default());
        for r in data.records() {
            online.push_record(r);
        }
        let analysis = online.finish().into_analysis().unwrap();
        let batch = analyzer.analyze_fused(&data, periods(), &HybridRule::paper_default());
        assert_eq!(analysis.hbbp.bbec, batch.hbbp.bbec);
    }
}

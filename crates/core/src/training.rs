//! The HBBP criteria search — paper §IV.B.
//!
//! "We train our classification trees on approximately 1,100 basic blocks
//! of training input from non-SPEC benchmarks. The training labels are set
//! to 'EBS' and 'LBR', depending on which method is closer to the result
//! obtained by software instrumentation."

use crate::{BlockFeatures, HbbpProfiler, HybridRule, ProfileError, FEATURE_NAMES};
use hbbp_instrument::Instrumenter;
use hbbp_mltree::{export_text, Dataset, DecisionTree, Node, TrainConfig};
use hbbp_sim::Cpu;
use hbbp_workloads::Workload;
use std::fmt;

/// Training pipeline configuration.
#[derive(Debug, Clone)]
pub struct TrainingConfig {
    /// Tree hyper-parameters.
    pub tree: TrainConfig,
    /// Minimum ground-truth executions for a block to become a training
    /// row (filters sampling noise).
    pub min_truth_execs: f64,
    /// Seed for the collection runs.
    pub cpu_seed: u64,
}

impl Default for TrainingConfig {
    fn default() -> TrainingConfig {
        TrainingConfig {
            tree: TrainConfig {
                max_depth: 3,
                min_leaf_weight: 30.0,
                ..TrainConfig::default()
            },
            min_truth_execs: 30.0,
            cpu_seed: 0x7EA1,
        }
    }
}

/// Outcome of the criteria search.
#[derive(Debug, Clone)]
pub struct TrainingOutcome {
    /// The trained classification tree (Figure 1).
    pub tree: DecisionTree,
    /// Number of labelled basic blocks (the paper used ≈1,100).
    pub rows: usize,
    /// Root threshold when the root splits on `block_len` — the distilled
    /// cutoff (the paper found ≈18).
    pub cutoff: Option<f64>,
    /// Named feature importances, descending.
    pub importances: Vec<(String, f64)>,
    /// Count of EBS-labelled and LBR-labelled rows.
    pub label_counts: (usize, usize),
}

impl TrainingOutcome {
    /// The rule to deploy: the trained tree.
    pub fn rule(&self) -> HybridRule {
        HybridRule::Tree(self.tree.clone())
    }

    /// The distilled cutoff rule, when the tree's root splits on block
    /// length (the form the paper ships).
    pub fn distilled_rule(&self) -> Option<HybridRule> {
        self.cutoff
            .map(|c| HybridRule::LengthCutoff(c.floor() as usize))
    }

    /// Scikit-style tree dump (Figure 1).
    pub fn tree_text(&self) -> String {
        export_text(&self.tree)
    }
}

impl fmt::Display for TrainingOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "trained on {} blocks ({} EBS / {} LBR)",
            self.rows, self.label_counts.0, self.label_counts.1
        )?;
        match self.cutoff {
            Some(c) => writeln!(f, "root split: block_len <= {c:.2}")?,
            None => writeln!(f, "root does not split on block_len")?,
        }
        for (name, imp) in &self.importances {
            writeln!(f, "  importance {name:<22} {imp:.3}")?;
        }
        write!(f, "{}", self.tree_text())
    }
}

/// Run the full criteria search over a set of (non-SPEC) workloads.
///
/// For every workload: collect with the HBBP dual-event collector, compute
/// the EBS and LBR estimates, obtain exact counts from instrumentation,
/// and label each sufficiently hot user-mode block with whichever method
/// came closer. Rows are weighted by execution count (§IV.B).
///
/// # Errors
///
/// Returns [`ProfileError`] if collection fails on any workload.
pub fn train_rule(
    workloads: &[Workload],
    config: &TrainingConfig,
) -> Result<TrainingOutcome, ProfileError> {
    let mut dataset = Dataset::new(FEATURE_NAMES, ["EBS", "LBR"]);
    let mut ebs_rows = 0usize;
    let mut lbr_rows = 0usize;
    for (i, workload) in workloads.iter().enumerate() {
        let profiler = HbbpProfiler::new(Cpu::with_seed(config.cpu_seed ^ (i as u64) << 8));
        let result = profiler.profile(workload)?;
        let truth =
            Instrumenter::new().run(workload.program(), workload.layout(), workload.oracle());
        let total_truth = truth.bbec.total().max(1.0);
        for (bi, block) in result.analyzer.map().blocks().iter().enumerate() {
            let t = truth.bbec.get(block.start);
            if t < config.min_truth_execs {
                continue;
            }
            let e = result.analysis.ebs.count_idx(bi);
            let l = result.analysis.lbr.count_idx(bi);
            let ebs_err = (e - t).abs() / t;
            let lbr_err = (l - t).abs() / t;
            let label = usize::from(lbr_err < ebs_err);
            if label == 0 {
                ebs_rows += 1;
            } else {
                lbr_rows += 1;
            }
            let features = BlockFeatures::extract_indexed(
                block,
                bi,
                &result.analysis.ebs,
                &result.analysis.lbr,
            );
            // Weight by the block's share of the workload's executions,
            // normalized across workloads.
            let weight = t / total_truth * 1_000.0;
            dataset
                .push_weighted(features.to_vec(), label, weight)
                .expect("schema fixed");
        }
    }
    let tree = DecisionTree::train(&dataset, &config.tree).expect("non-empty training set");
    let cutoff = match tree.root() {
        Node::Split {
            feature, threshold, ..
        } if FEATURE_NAMES[*feature] == "block_len" => Some(*threshold),
        _ => None,
    };
    let mut importances: Vec<(String, f64)> = FEATURE_NAMES
        .iter()
        .map(|s| s.to_string())
        .zip(tree.feature_importances().iter().copied())
        .collect();
    importances.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    Ok(TrainingOutcome {
        rows: dataset.len(),
        cutoff,
        importances,
        label_counts: (ebs_rows, lbr_rows),
        tree,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbbp_workloads::{training_suite, Scale};

    #[test]
    #[ignore = "several seconds; run with --ignored or via the experiments binary"]
    fn criteria_search_recovers_length_rule() {
        let workloads = training_suite(Scale::Tiny);
        let outcome = train_rule(&workloads, &TrainingConfig::default()).unwrap();
        assert!(outcome.rows > 200, "only {} rows", outcome.rows);
        // Block length must dominate (paper: importance > 0.7).
        assert_eq!(outcome.importances[0].0, "block_len");
        assert!(
            outcome.importances[0].1 > 0.5,
            "block_len importance {}",
            outcome.importances[0].1
        );
        // The cutoff lands in the paper's region.
        let cutoff = outcome.cutoff.expect("root splits on block_len");
        assert!(
            (10.0..30.0).contains(&cutoff),
            "cutoff {cutoff} far from 18"
        );
    }
}

//! Sampling period policy — Table 4 of the paper.
//!
//! "The sampling periods have some influence on the accuracy as well as on
//! the runtime overhead. … we choose the values for the two respective
//! events depending on the runtime of the workload. LBR sampling is done
//! with a smaller period than EBS sampling, because LBR data collection
//! only happens on branches taken, which are less frequent than all
//! instruction retirements" (§V.A).
//!
//! Periods are prime, as in the paper, to avoid resonance with loop
//! periodicities. Simulated runs are orders of magnitude shorter than real
//! ones, so [`SamplingPeriods::scaled_for`] derives equivalent periods that
//! keep sample populations statistically comparable.
//!
//! ```
//! use hbbp_core::{RuntimeClass, SamplingPeriods};
//!
//! // Table 4: a seconds-class workload samples EBS at ~1M, LBR at ~100k.
//! let p = SamplingPeriods::paper(RuntimeClass::from_seconds(5.0));
//! assert_eq!((p.ebs, p.lbr), (1_000_037, 100_003));
//!
//! // Simulated runs scale down but keep the LBR period the smaller one.
//! let scaled = SamplingPeriods::scaled_for(50_000_000);
//! assert!(scaled.lbr < scaled.ebs);
//! ```

use std::fmt;

/// Workload runtime classes of Table 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RuntimeClass {
    /// Runtimes of a few seconds.
    Seconds,
    /// Runtimes around 1-2 minutes.
    MinuteOrTwo,
    /// Runtimes of many minutes (SPEC workloads).
    Minutes,
}

impl RuntimeClass {
    /// All classes in Table 4 row order.
    pub const ALL: [RuntimeClass; 3] = [
        RuntimeClass::Seconds,
        RuntimeClass::MinuteOrTwo,
        RuntimeClass::Minutes,
    ];

    /// Table 4 row label.
    pub fn label(self) -> &'static str {
        match self {
            RuntimeClass::Seconds => "Seconds",
            RuntimeClass::MinuteOrTwo => "~1-2 minutes",
            RuntimeClass::Minutes => "Minutes (SPEC workloads)",
        }
    }

    /// Classify a real runtime in seconds.
    pub fn from_seconds(seconds: f64) -> RuntimeClass {
        if seconds < 30.0 {
            RuntimeClass::Seconds
        } else if seconds < 180.0 {
            RuntimeClass::MinuteOrTwo
        } else {
            RuntimeClass::Minutes
        }
    }
}

impl fmt::Display for RuntimeClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// An (EBS period, LBR period) pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SamplingPeriods {
    /// Period of the `INST_RETIRED:PREC_DIST` counter.
    pub ebs: u64,
    /// Period of the `BR_INST_RETIRED:NEAR_TAKEN` counter.
    pub lbr: u64,
}

impl SamplingPeriods {
    /// The paper's Table 4 values for a runtime class.
    pub fn paper(class: RuntimeClass) -> SamplingPeriods {
        match class {
            RuntimeClass::Seconds => SamplingPeriods {
                ebs: 1_000_037,
                lbr: 100_003,
            },
            RuntimeClass::MinuteOrTwo => SamplingPeriods {
                ebs: 10_000_019,
                lbr: 1_000_037,
            },
            RuntimeClass::Minutes => SamplingPeriods {
                ebs: 100_000_007,
                lbr: 10_000_019,
            },
        }
    }

    /// Periods for a *simulated* run of roughly `instructions` retired
    /// instructions: EBS targets ≈100k samples, LBR ≈40k stacks (taken
    /// branches are rarer, so the LBR period is smaller — the paper's 10:1
    /// shape), with prime periods and floors that keep periods above the
    /// skid window.
    pub fn scaled_for(instructions: u64) -> SamplingPeriods {
        let ebs_raw = (instructions / 100_000).max(53);
        // Taken branches are roughly 1/7th of instructions in this corpus.
        let lbr_raw = (instructions / 7 / 40_000).max(29);
        SamplingPeriods {
            ebs: next_prime(ebs_raw),
            lbr: next_prime(lbr_raw),
        }
    }
}

impl fmt::Display for SamplingPeriods {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ebs={} lbr={}", self.ebs, self.lbr)
    }
}

/// Render Table 4 as text (paper values).
pub fn period_table() -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<26} {:>18} {:>18}\n",
        "Runtime", "EBS sampling period", "LBR sampling period"
    ));
    for class in RuntimeClass::ALL {
        let p = SamplingPeriods::paper(class);
        out.push_str(&format!(
            "{:<26} {:>18} {:>18}\n",
            class.label(),
            p.ebs,
            p.lbr
        ));
    }
    out
}

/// Smallest prime ≥ `n`.
pub fn next_prime(n: u64) -> u64 {
    let mut candidate = n.max(2);
    loop {
        if is_prime(candidate) {
            return candidate;
        }
        candidate += 1;
    }
}

fn is_prime(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    if n.is_multiple_of(2) {
        return n == 2;
    }
    let mut d = 3u64;
    while d.saturating_mul(d) <= n {
        if n.is_multiple_of(d) {
            return false;
        }
        d += 2;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_values_match_table4() {
        let s = SamplingPeriods::paper(RuntimeClass::Seconds);
        assert_eq!((s.ebs, s.lbr), (1_000_037, 100_003));
        let m = SamplingPeriods::paper(RuntimeClass::MinuteOrTwo);
        assert_eq!((m.ebs, m.lbr), (10_000_019, 1_000_037));
        let l = SamplingPeriods::paper(RuntimeClass::Minutes);
        assert_eq!((l.ebs, l.lbr), (100_000_007, 10_000_019));
    }

    #[test]
    fn paper_periods_are_prime() {
        for class in RuntimeClass::ALL {
            let p = SamplingPeriods::paper(class);
            assert!(is_prime(p.ebs), "{} ebs", class);
            assert!(is_prime(p.lbr), "{} lbr", class);
        }
    }

    #[test]
    fn scaled_periods_are_prime_and_ordered() {
        for instrs in [1_000u64, 100_000, 5_000_000, 500_000_000] {
            let p = SamplingPeriods::scaled_for(instrs);
            assert!(is_prime(p.ebs));
            assert!(is_prime(p.lbr));
            assert!(p.lbr <= p.ebs, "{instrs}: {p}");
        }
    }

    #[test]
    fn scaled_targets_sample_counts() {
        let instrs = 10_000_000u64;
        let p = SamplingPeriods::scaled_for(instrs);
        let ebs_samples = instrs / p.ebs;
        assert!((30_000..200_000).contains(&ebs_samples), "{ebs_samples}");
    }

    #[test]
    fn runtime_classification() {
        assert_eq!(RuntimeClass::from_seconds(5.0), RuntimeClass::Seconds);
        assert_eq!(RuntimeClass::from_seconds(90.0), RuntimeClass::MinuteOrTwo);
        assert_eq!(RuntimeClass::from_seconds(900.0), RuntimeClass::Minutes);
    }

    #[test]
    fn primality_helpers() {
        assert!(is_prime(2));
        assert!(is_prime(97));
        assert!(!is_prime(1));
        assert!(!is_prime(91));
        assert_eq!(next_prime(90), 97);
        assert_eq!(next_prime(97), 97);
        assert_eq!(next_prime(0), 2);
    }

    #[test]
    fn table_renders() {
        let t = period_table();
        assert!(t.contains("1000037") || t.contains("1_000_037") || t.contains("1000037"));
        assert!(t.contains("Minutes (SPEC workloads)"));
    }
}
